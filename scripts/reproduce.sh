#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every paper
# table/figure plus the extension benches, writing the reference outputs to
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  case "$(basename "$b")" in
    bench_table8_spst_runtime) "$b" --json BENCH_table8.json ;;
    bench_plan_parallel) "$b" --json BENCH_plan_parallel.json ;;
    *) "$b" ;;
  esac
done 2>&1 | tee bench_output.txt
echo "done: see test_output.txt, bench_output.txt, BENCH_table8.json and"
echo "BENCH_plan_parallel.json. To vet the parallel planner under TSan/ASan,"
echo "run scripts/check_sanitizers.sh (separate build trees, not rerun here)."
