#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every paper
# table/figure plus the extension benches, writing the reference outputs to
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  case "$(basename "$b")" in
    bench_table8_spst_runtime) "$b" --json BENCH_table8.json ;;
    bench_plan_parallel) "$b" --json BENCH_plan_parallel.json ;;
    bench_recovery) "$b" --json BENCH_recovery.json ;;
    bench_overlap) "$b" --json BENCH_overlap.json ;;
    bench_serving) "$b" --json BENCH_serving.json ;;
    bench_minibatch) "$b" --json BENCH_minibatch.json ;;
    bench_planner_family) "$b" --json BENCH_planner_family.json ;;
    bench_fig7_main_results) "$b" --trace TRACE_fig7.json ;;
    *) "$b" ;;
  esac
done 2>&1 | tee bench_output.txt
# The headline bench records a full telemetry trace (plus per-dataset cost
# audits, printed into bench_output.txt above); summarize it with the CLI so
# the round-trip importer gets exercised on every reproduction run.
build/tools/dgcl_trace summarize TRACE_fig7.json
echo "done: see test_output.txt, bench_output.txt, BENCH_table8.json,"
echo "BENCH_plan_parallel.json, BENCH_recovery.json (per-phase recovery MTTR"
echo "vs full restart), BENCH_planner_family.json (strategy crossover map),"
echo "BENCH_overlap.json (hidden vs exposed communication per chunk count),"
echo "BENCH_serving.json (serving-tier tail latency, cache hit rates and"
echo "throughput vs shard count, the mid-load shard-kill contract, the"
echo "replica read-scaling sweep — throughput vs R with byte-identical"
echo "digests — and the kill-one-replica-per-shard-under-load contract),"
echo "BENCH_minibatch.json (batched vs unbatched remote-fetch p99 and"
echo "bytes-on-wire, plus sampled mini-batch training per sampler strategy)"
echo "and TRACE_fig7.json (Chrome-trace; load it at"
echo "ui.perfetto.dev or summarize with build/tools/dgcl_trace). To vet the"
echo "parallel planner under TSan/ASan, run scripts/check_sanitizers.sh"
echo "(separate build trees, not rerun here)."
