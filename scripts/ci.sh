#!/usr/bin/env bash
# The full CI gate, in tiers:
#
#   1. build + unit tier      ctest -L unit   (fast; every functional test)
#   2. planner tier           ctest -L planner (the planner-family suites:
#                             conformance over every registered strategy,
#                             SPST, baselines, determinism, properties — a
#                             subset of `unit`, runnable alone when iterating
#                             on planners)
#   3. overlap tier           ctest -L overlap (the chunked/overlapped engine
#                             mode: bitwise conformance vs barrier across
#                             chunk counts and planners, chunk-wait poisoning
#                             under dead peers, and the chunked fault-schedule
#                             fuzz — a subset of unit+fuzz, runnable alone
#                             when iterating on the overlap engine)
#   4. serving tier           ctest -L serving (the graph service tier:
#                             sharded store, bounded-queue backpressure,
#                             LRU/LFU cache conformance, shard-death
#                             fail-fast, and sampler determinism across pool
#                             widths — a subset of `unit`, runnable alone
#                             when iterating on src/service/)
#   5. sampling tier          ctest -L sampling (the sampler family and the
#                             mini-batch training path: registry conformance
#                             over every strategy, determinism across pool
#                             widths, loss-trajectory acceptance, checkpoint
#                             recovery, and cross-request fetch batching — a
#                             subset of `serving`, runnable alone when
#                             iterating on samplers or the trainer feed)
#   6. replicas tier          ctest -L replicas (the shard-replica layer:
#                             byte-identity conformance over R × routing ×
#                             pool width, replica-aware failover and
#                             last-replica death, and the serving
#                             kill-schedule fuzz — a subset of serving+fuzz,
#                             runnable alone when iterating on replica_set
#                             or the kill/drain paths)
#   7. fuzz tier              ctest -L fuzz   (fault-schedule fuzzing, fixed
#                             seed budget so wall time is bounded and every
#                             run covers the same schedules)
#   8. sanitizers             scripts/check_sanitizers.sh (TSan + ASan trees
#                             over the concurrency-sensitive suites, with a
#                             reduced fuzz budget; TSan is the gate for the
#                             per-chunk ready-flag protocol, the serving
#                             tier's MPMC queues, the replica router and
#                             kill/drain handoff, and the fetch-batching
#                             window's leader/joiner handoff)
#
# Usage: scripts/ci.sh [unit|planner|overlap|serving|sampling|replicas|fuzz|sanitizers|all]   (default: all)
# Env:   DGCL_CI_FUZZ_SEEDS  fuzz-tier seed budget (default 200)
set -euo pipefail
cd "$(dirname "$0")/.."

TIER="${1:-all}"

build() {
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)"
}

unit_tier() {
  echo "=== CI tier: unit ==="
  ctest --test-dir build -L unit --output-on-failure -j "$(nproc)"
}

planner_tier() {
  echo "=== CI tier: planner ==="
  ctest --test-dir build -L planner --output-on-failure -j "$(nproc)"
}

overlap_tier() {
  echo "=== CI tier: overlap (DGCL_CI_FUZZ_SEEDS=${DGCL_CI_FUZZ_SEEDS:-200}) ==="
  DGCL_FUZZ_SEEDS="${DGCL_CI_FUZZ_SEEDS:-200}" \
    ctest --test-dir build -L overlap --output-on-failure -j "$(nproc)"
}

serving_tier() {
  echo "=== CI tier: serving ==="
  ctest --test-dir build -L serving --output-on-failure -j "$(nproc)"
}

sampling_tier() {
  echo "=== CI tier: sampling ==="
  ctest --test-dir build -L sampling --output-on-failure -j "$(nproc)"
}

replicas_tier() {
  echo "=== CI tier: replicas (DGCL_CI_FUZZ_SEEDS=${DGCL_CI_FUZZ_SEEDS:-200}) ==="
  DGCL_FUZZ_SEEDS="${DGCL_CI_FUZZ_SEEDS:-200}" \
    ctest --test-dir build -L replicas --output-on-failure -j "$(nproc)"
}

fuzz_tier() {
  echo "=== CI tier: fuzz (DGCL_CI_FUZZ_SEEDS=${DGCL_CI_FUZZ_SEEDS:-200}) ==="
  DGCL_FUZZ_SEEDS="${DGCL_CI_FUZZ_SEEDS:-200}" \
    ctest --test-dir build -L fuzz --output-on-failure
}

sanitizer_tier() {
  echo "=== CI tier: sanitizers ==="
  scripts/check_sanitizers.sh both
}

case "$TIER" in
  unit)
    build
    unit_tier
    ;;
  planner)
    build
    planner_tier
    ;;
  overlap)
    build
    overlap_tier
    ;;
  serving)
    build
    serving_tier
    ;;
  sampling)
    build
    sampling_tier
    ;;
  replicas)
    build
    replicas_tier
    ;;
  fuzz)
    build
    fuzz_tier
    ;;
  sanitizers) sanitizer_tier ;;
  all)
    build
    unit_tier
    fuzz_tier
    sanitizer_tier
    ;;
  *)
    echo "usage: $0 [unit|planner|overlap|serving|sampling|replicas|fuzz|sanitizers|all]" >&2
    exit 2
    ;;
esac
echo "=== CI: OK (${TIER}) ==="
