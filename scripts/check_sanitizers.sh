#!/usr/bin/env bash
# Builds the repo twice — under ThreadSanitizer and AddressSanitizer — and
# runs the concurrency-sensitive test binaries under each: the thread pool,
# the speculative parallel planner (determinism + property suites), the
# allgather engine, the transport/coordination layer (connection retry and
# fault-injection state shared across device threads), the chunked-overlap
# conformance suite (TSan is the gate for the per-chunk ready-flag protocol:
# sender release-stores into op_chunks_done, receiver acquire-loads and reads
# the staged rows), the straggler and
# dead-peer timeout paths, the simulator/trainer (both fan work out on the
# shared pool), the engine-trace cost audit, the lock-free telemetry
# recorder, and the elastic-recovery protocol (engine post-mortems, mid-epoch
# kills, re-plan + resume) including a reduced-budget slice of the
# fault-schedule fuzz suite (DGCL_FUZZ_SEEDS below; the full 200-seed sweep
# runs in the plain build via ctest -L fuzz), and the serving tier (TSan is
# the gate for the bounded MPMC request/response queues, the concurrent
# sampler pools sharing the feature cache, KillShard racing Submit, and the
# cross-request fetch-batching window — leader/joiner handoff on the
# condition variable, batch close racing late joiners, and the atomic wire
# accounting — exercised by minibatch_trainer_test's concurrent-coalescing
# case and the conformance suite's pooled fleets). The replica layer rides
# the same gate: replica_conformance_test and the serving kill-schedule fuzz
# put the lock-free router (alive-mask/cursor/in-flight atomics) under
# concurrent Submit while KillReplica drains queues onto survivors, and
# fetch_batcher_test hammers the gap-close leader loop directly.
# Separate build trees (build-tsan/, build-asan/) so the main build stays
# untouched.
#
# Usage: scripts/check_sanitizers.sh [thread|address]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

TESTS_REGEX='thread_pool_test|plan_determinism_test|planner_property_test|planner_conformance_test|spst_test|transport_test|allgather_engine_test|coordination_test|overlap_conformance_test|straggler_test|network_sim_test|epoch_sim_test|cost_audit_test|trainer_test|telemetry_test|recovery_test|service_test|sampler_determinism_test|sampler_conformance_test|minibatch_trainer_test|replica_conformance_test|fetch_batcher_test|fault_schedule_fuzz_test'

# Sanitizer runs are 5-20x slower; trim the fuzz budget accordingly.
export DGCL_FUZZ_SEEDS="${DGCL_FUZZ_SEEDS:-25}"

run_one() {
  local kind="$1"
  local dir="build-${kind/thread/tsan}"
  dir="${dir/address/asan}"
  echo "=== ${kind} sanitizer: configuring ${dir} ==="
  cmake -B "$dir" -S . -DDGCL_SANITIZE="$kind" >/dev/null
  cmake --build "$dir" -j "$(nproc)" --target \
    thread_pool_test plan_determinism_test planner_property_test \
    planner_conformance_test spst_test \
    transport_test allgather_engine_test coordination_test \
    overlap_conformance_test straggler_test \
    network_sim_test epoch_sim_test cost_audit_test trainer_test telemetry_test \
    recovery_test service_test sampler_determinism_test sampler_conformance_test \
    minibatch_trainer_test replica_conformance_test fetch_batcher_test \
    fault_schedule_fuzz_test
  echo "=== ${kind} sanitizer: running tests ==="
  ctest --test-dir "$dir" -R "$TESTS_REGEX" --output-on-failure
  echo "=== ${kind} sanitizer: OK ==="
}

case "${1:-both}" in
  thread) run_one thread ;;
  address) run_one address ;;
  both)
    run_one thread
    run_one address
    ;;
  *)
    echo "usage: $0 [thread|address]" >&2
    exit 2
    ;;
esac
