// Chunk-count sweep of the overlapped allgather engine mode.
//
// For each dataset, plans one forward GCN allgather (SPST, 8 GPUs) and runs
// it on the real threaded engine with bandwidth emulation: once in barrier
// mode, then chunked/double-buffered for K in {2, 4, 8, 16} with an eager
// consumer draining every chunk at a fixed aggregate-compute rate
// (EpochSimulator::AuditOverlapFromEngine). The per-K rows show how the
// exposed chunk-wait time and the hidden communication fraction move as the
// chunk granularity tightens; every chunked run's output is compared bitwise
// against the barrier run inside the audit, so a reported speedup can never
// come from a divergent result.
//
// Usage: bench_overlap [--json out.json] [--trace out.json]

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

namespace dgcl {
namespace {

// Stretch emulated time above scheduler noise (same rationale as the fig-7
// engine-trace audit); all audit times are scaled back before reporting.
constexpr double kTimeScale = 500.0;
// Emulated aggregate-compute drain rate for each arrived chunk, in GB/s of
// received rows. Slow enough that consumption genuinely overlaps the wire.
constexpr double kConsumeGbps = 8.0;

int Run(int argc, char** argv) {
  auto json_path = bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = bench::ConsumeTraceFlag(&argc, argv);
  bench::PrintHeader(
      "Overlap sweep: hidden vs exposed communication per chunk count (GCN allgather, 8 GPUs)");

  const DatasetId kDatasets[] = {DatasetId::kReddit, DatasetId::kComOrkut,
                                 DatasetId::kWebGoogle, DatasetId::kWikiTalk};
  const uint32_t kChunkCounts[] = {2, 4, 8, 16};

  TablePrinter table({"Dataset", "Chunks", "barrier ms", "overlapped ms", "exposed ms",
                      "hidden ms", "hidden frac"});
  std::vector<bench::JsonRecord> records;
  bool any_hidden = false;
  for (DatasetId id : kDatasets) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (!bundle.ok()) {
      std::printf("%s: %s\n", DatasetName(id), bundle.status().ToString().c_str());
      return 1;
    }
    const uint32_t dim = bench::BenchDataset(id).feature_dim;
    for (uint32_t chunks : kChunkCounts) {
      auto report = (*bundle)->sim().AuditOverlapFromEngine(dim, kTimeScale, chunks,
                                                            kConsumeGbps);
      if (!report.ok()) {
        std::printf("%s K=%u: %s\n", DatasetName(id), chunks,
                    report.status().ToString().c_str());
        return 1;
      }
      const double hidden_frac =
          report->barrier_total_seconds > 0.0
              ? report->hidden_total_seconds / report->barrier_total_seconds
              : 0.0;
      any_hidden = any_hidden || report->hidden_total_seconds > 0.0;
      table.AddRow({bench::BenchDataset(id).name, std::to_string(chunks),
                    TablePrinter::Fmt(report->barrier_total_seconds * 1e3, 3),
                    TablePrinter::Fmt(report->overlapped_total_seconds * 1e3, 3),
                    TablePrinter::Fmt(report->exposed_total_seconds * 1e3, 3),
                    TablePrinter::Fmt(report->hidden_total_seconds * 1e3, 3),
                    TablePrinter::Fmt(hidden_frac, 2)});
      bench::JsonRecord record;
      record.AddString("dataset", bench::BenchDataset(id).name);
      record.AddInt("gpus", 8);
      record.AddInt("num_chunks", chunks);
      record.AddInt("feature_dim", dim);
      record.AddNumber("time_scale", kTimeScale);
      record.AddNumber("consume_gbps", kConsumeGbps);
      record.AddNumber("barrier_s", report->barrier_total_seconds);
      record.AddNumber("overlapped_s", report->overlapped_total_seconds);
      record.AddNumber("exposed_s", report->exposed_total_seconds);
      record.AddNumber("hidden_s", report->hidden_total_seconds);
      record.AddNumber("hidden_fraction", hidden_frac);
      records.push_back(std::move(record));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("chunked execution %s communication behind chunk consumption\n",
              any_hidden ? "hid" : "did NOT hide any");

  if (json_path) {
    if (Status status = bench::WriteJsonRecords(*json_path, records); !status.ok()) {
      std::printf("json write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (trace_path) {
    if (Status status = bench::FinishTrace(*trace_path); !status.ok()) {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return any_hidden ? 0 : 1;
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) { return dgcl::Run(argc, argv); }
