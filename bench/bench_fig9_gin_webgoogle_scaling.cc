// Figure 9: per-epoch and communication time for GIN on Web-Google across
// 1/2/4/8/16 GPUs — the compute-dominated regime where methods converge.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run() {
  TablePrinter epochs({"GPUs", "DGCL", "Swap", "Peer-to-peer", "Replication"});
  TablePrinter comms({"GPUs", "DGCL", "Swap", "Peer-to-peer"});
  for (uint32_t gpus : {1u, 2u, 4u, 8u, 16u}) {
    auto bundle = bench::MakeSimulator(DatasetId::kWebGoogle, gpus, GnnModel::kGin);
    if (!bundle.ok()) {
      continue;
    }
    EpochSimulator& sim = (*bundle)->sim();
    auto dgcl = sim.Simulate(Method::kDgcl);
    auto swap = sim.Simulate(Method::kSwap);
    auto p2p = sim.Simulate(Method::kPeerToPeer);
    auto rep = sim.Simulate(Method::kReplication);
    epochs.AddRow({TablePrinter::FmtInt(gpus), bench::EpochCell(dgcl), bench::EpochCell(swap),
                   bench::EpochCell(p2p), bench::EpochCell(rep)});
    comms.AddRow({TablePrinter::FmtInt(gpus), bench::CommCell(dgcl), bench::CommCell(swap),
                  bench::CommCell(p2p)});
  }
  std::printf("%s\n", epochs.Render("GIN / Web-Google — per-epoch time (ms)").c_str());
  std::printf("%s\n", comms.Render("GIN / Web-Google — communication time (ms)").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader("Figure 9: GIN on Web-Google vs GPU count");
  dgcl::Run();
  std::printf(
      "Paper shape: methods have similar epochs (computation dominates for the\n"
      "complex model on the sparse graph), but DGCL's comm time stays the lowest.\n");
  return 0;
}
