// Table 2: time peer-to-peer communication spends on NVLink vs the other
// (slow) links for one GCN-layer exchange with 8 GPUs.
//
// The paper's point: the NVLink share finishes an order of magnitude sooner,
// so P2P's makespan is dictated by the slow links it needlessly uses.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "planner/baselines.h"
#include "sim/network_sim.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Table 2: P2P time (ms) on NVLink vs other links, one GCN layer, 8 GPUs");
  TablePrinter table({"Dataset", "NVLink", "Others", "ratio"});
  for (DatasetId id :
       {DatasetId::kWebGoogle, DatasetId::kReddit, DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (!bundle.ok()) {
      continue;
    }
    PeerToPeerPlanner p2p;
    NetworkSimResult net;
    auto seconds = (*bundle)->sim().SimulateAllgatherSeconds(
        p2p, bench::BenchDataset(id).feature_dim, 1.0, nullptr, &net);
    if (!seconds.ok()) {
      continue;
    }
    const Topology& topo = (*bundle)->topology;
    const double nv = std::max(net.TypeBusySeconds(topo, LinkType::kNvLink1),
                               net.TypeBusySeconds(topo, LinkType::kNvLink2)) *
                      1e3;
    const double others = std::max({net.TypeBusySeconds(topo, LinkType::kPcie),
                                    net.TypeBusySeconds(topo, LinkType::kQpi),
                                    net.TypeBusySeconds(topo, LinkType::kInfiniBand)}) *
                          1e3;
    table.AddRow({bench::BenchDataset(id).name, TablePrinter::Fmt(nv, 2),
                  TablePrinter::Fmt(others, 2), TablePrinter::Fmt(others / nv, 1) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 2 (ms): Web-Google 0.99/6.20, Reddit 1.70/18.1, Wiki-Talk 1.39/6.13 —\n"
      "slow links dominate P2P by 4-10x.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
