// Table 2: time peer-to-peer communication spends on NVLink vs the other
// (slow) links for one GCN-layer exchange with 8 GPUs.
//
// The paper's point: the NVLink share finishes an order of magnitude sooner,
// so P2P's makespan is dictated by the slow links it needlessly uses.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "partition/multilevel.h"
#include "planner/baselines.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "sim/network_sim.h"

namespace dgcl {
namespace {

// Per-transport breakdown of one planned exchange: which §6.2 transport each
// device pair resolved to, and how much traffic rides it. Built on the
// runtime's ConnectionTable, then again with EngineOptions::transport_overrides
// forcing every within-machine pair onto the pinned-host path — the
// forced-transport ablation the new API exists for.
void RunTransportBreakdown() {
  bench::PrintHeader(
      "Transport breakdown (§6.2): SelectTransport vs forced pinned-host, SPST plan, 2x8 GPUs");
  Rng rng(71);
  CsrGraph graph = GenerateRmat({.scale = 12, .num_edges = 30000}, rng);
  Topology topo = BuildPaperTopology(16);
  MultilevelPartitioner metis;
  CommRelation rel =
      std::move(BuildCommRelation(graph, *metis.Partition(graph, 16))).value();
  SpstPlanner spst;
  CompiledPlan plan = CompilePlan(*spst.Plan(rel, topo, 64), topo);

  // Within-machine pairs forced onto pinned-host (a cross-machine pair must
  // stay on the NIC — ValidateTransportOverrides enforces the physics).
  std::vector<TransportOverride> force_host;
  for (const TransferOp& op : plan.ops) {
    if (topo.device(op.src).machine == topo.device(op.dst).machine) {
      force_host.push_back({op.src, op.dst, Transport::kPinnedHostMemory});
    }
  }

  constexpr uint32_t kDim = 16;
  std::vector<EmbeddingMatrix> local;
  for (uint32_t d = 0; d < rel.num_devices; ++d) {
    local.push_back(EmbeddingMatrix::Zero(
        static_cast<uint32_t>(rel.local_vertices[d].size()), kDim));
  }

  TablePrinter table({"Config", "Transport", "Pairs", "Ops", "MB moved"});
  std::vector<std::vector<EmbeddingMatrix>> outputs;
  struct Config {
    const char* name;
    std::vector<TransportOverride> overrides;
  };
  for (Config& config : std::vector<Config>{{"selected", {}}, {"forced pinned-host", force_host}}) {
    EngineOptions options;
    options.transport_overrides = std::move(config.overrides);
    auto engine = AllgatherEngine::Create(rel, plan, topo, options);
    if (!engine.ok()) {
      std::printf("engine setup failed: %s\n", engine.status().ToString().c_str());
      return;
    }
    auto out = engine->Forward(local);
    if (!out.ok()) {
      std::printf("forward failed: %s\n", out.status().ToString().c_str());
      return;
    }
    outputs.push_back(*std::move(out));
    for (Transport t : {Transport::kCudaVirtualMemory, Transport::kPinnedHostMemory,
                        Transport::kNic}) {
      uint64_t pairs = 0;
      uint64_t ops = 0;
      double bytes = 0.0;
      const ConnectionTable& connections = engine->connections();
      for (size_t i = 0; i < connections.size(); ++i) {
        const Connection& conn = connections.connection(i);
        if (conn.transport() != t) {
          continue;
        }
        ++pairs;
        ops += conn.op_ids().size();
        for (uint32_t op_id : conn.op_ids()) {
          bytes += static_cast<double>(plan.ops[op_id].vertices.size()) * kDim * sizeof(float);
        }
      }
      table.AddRow({config.name, TransportName(t), TablePrinter::FmtInt(pairs),
                    TablePrinter::FmtInt(ops), TablePrinter::Fmt(bytes / 1e6, 2)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  bool identical = outputs.size() == 2 && outputs[0].size() == outputs[1].size();
  if (identical) {
    for (size_t d = 0; d < outputs[0].size(); ++d) {
      identical = identical && outputs[0][d].data == outputs[1][d].data;
    }
  }
  std::printf(
      "Forcing the transport re-labels the channel, never the data: outputs %s.\n",
      identical ? "bit-identical" : "DIFFER (bug!)");
}

void Run() {
  bench::PrintHeader("Table 2: P2P time (ms) on NVLink vs other links, one GCN layer, 8 GPUs");
  TablePrinter table({"Dataset", "NVLink", "Others", "ratio"});
  for (DatasetId id :
       {DatasetId::kWebGoogle, DatasetId::kReddit, DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (!bundle.ok()) {
      continue;
    }
    PeerToPeerPlanner p2p;
    NetworkSimResult net;
    auto seconds = (*bundle)->sim().SimulateAllgatherSeconds(
        p2p, bench::BenchDataset(id).feature_dim, 1.0, nullptr, &net);
    if (!seconds.ok()) {
      continue;
    }
    const Topology& topo = (*bundle)->topology;
    const double nv = std::max(net.TypeBusySeconds(topo, LinkType::kNvLink1),
                               net.TypeBusySeconds(topo, LinkType::kNvLink2)) *
                      1e3;
    const double others = std::max({net.TypeBusySeconds(topo, LinkType::kPcie),
                                    net.TypeBusySeconds(topo, LinkType::kQpi),
                                    net.TypeBusySeconds(topo, LinkType::kInfiniBand)}) *
                          1e3;
    table.AddRow({bench::BenchDataset(id).name, TablePrinter::Fmt(nv, 2),
                  TablePrinter::Fmt(others, 2), TablePrinter::Fmt(others / nv, 1) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 2 (ms): Web-Google 0.99/6.20, Reddit 1.70/18.1, Wiki-Talk 1.39/6.13 —\n"
      "slow links dominate P2P by 4-10x.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  dgcl::RunTransportBreakdown();
  return 0;
}
