// Planner-family crossover map: which strategy wins where?
//
// Sweeps dataset density x topology x embedding dim and, per cell, plans the
// same workload with every registered strategy (plus the "auto" selection).
// Cells are scored by the discrete-event NetworkSim allgather time of the
// compiled plan; the cost-model estimate is reported alongside so the
// auto-selector's ranking signal can be compared against the simulator.
// Small embeddings are latency-bound (fewer stages win: p2p / flat trees),
// large embeddings are contention-bound (SPST's load-aware routing wins) —
// the table makes the crossover explicit, and the JSON records feed
// BENCH_planner_family.json via --json (scripts/reproduce.sh).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

#include "comm/compiled_plan.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "sim/network_sim.h"
#include "sim/planner_select.h"

namespace dgcl {
namespace {

struct TopoCase {
  std::string name;
  Topology topo;
};

std::vector<TopoCase> Topologies() {
  std::vector<TopoCase> cases;
  MachineConfig nvlink;
  nvlink.num_gpus = 8;
  cases.push_back({"8gpu-nvlink", BuildCluster(1, nvlink)});
  MachineConfig pcie = nvlink;
  pcie.nvlink = false;
  cases.push_back({"8gpu-pcie", BuildCluster(1, pcie)});
  MachineConfig half = nvlink;
  half.num_gpus = 8;
  cases.push_back({"16gpu-2machines", BuildCluster(2, half)});
  return cases;
}

struct CellScore {
  double cost_ms = 0.0;
  double sim_ms = 0.0;
  bool planned = false;
};

void RunSweep(std::vector<bench::JsonRecord>& records) {
  const std::vector<std::string> strategies = PlannerRegistry::Global().Names();
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    const Dataset& dataset = bench::BenchDataset(id);
    for (TopoCase& tc : Topologies()) {
      // One partition + relation per (dataset, topology); every strategy
      // plans the identical class set.
      MultilevelPartitioner metis;
      auto parts = PartitionForTopology(dataset.graph, tc.topo, metis);
      if (!parts.ok()) {
        continue;
      }
      auto rel = BuildCommRelation(dataset.graph, *parts);
      if (!rel.ok()) {
        continue;
      }
      CommClasses classes = BuildCommClasses(*rel);
      for (uint32_t dim : {16u, 256u}) {
        const double bytes = static_cast<double>(dim) * sizeof(float);
        std::map<std::string, CellScore> scores;
        std::string winner;
        std::string auto_pick;
        for (const std::string& strategy : strategies) {
          PlannerOptions popts;
          popts.strategy = strategy;
          auto plan = PlanWithStrategy(popts, classes, tc.topo, bytes);
          CellScore& cell = scores[strategy];
          if (!plan.ok()) {
            continue;  // e.g. no direct link for p2p on this topology
          }
          cell.planned = true;
          cell.cost_ms = plan->planned_cost_seconds * 1e3;
          CompiledPlan compiled = CompilePlan(*plan, classes, tc.topo);
          NetworkSimOptions net;
          net.bytes_per_unit = bytes;
          cell.sim_ms = SimulateTransfer(compiled, tc.topo, net).total_seconds * 1e3;
          if (winner.empty() || cell.sim_ms < scores[winner].sim_ms) {
            winner = strategy;
          }
        }
        {
          PlannerOptions popts;
          popts.strategy = "auto";
          SelectionReport report;
          auto plan = PlanWithStrategy(popts, classes, tc.topo, bytes, &report);
          if (plan.ok()) {
            auto_pick = report.selected_strategy;
          }
        }
        TablePrinter table({"Strategy", "Cost-model ms", "Simulated ms", "Winner"});
        for (const std::string& strategy : strategies) {
          const CellScore& cell = scores[strategy];
          table.AddRow({strategy,
                        cell.planned ? TablePrinter::Fmt(cell.cost_ms, 3) : "n/a",
                        cell.planned ? TablePrinter::Fmt(cell.sim_ms, 3) : "n/a",
                        strategy == winner ? "*" : ""});

          bench::JsonRecord rec;
          rec.AddString("dataset", dataset.name);
          rec.AddString("topology", tc.name);
          rec.AddInt("dim", dim);
          rec.AddString("strategy", strategy);
          rec.AddInt("planned", cell.planned ? 1 : 0);
          rec.AddNumber("cost_model_ms", cell.cost_ms);
          rec.AddNumber("simulated_ms", cell.sim_ms);
          rec.AddInt("winner", strategy == winner ? 1 : 0);
          rec.AddString("auto_selected", auto_pick);
          records.push_back(std::move(rec));
        }
        std::printf("%s", table.Render(dataset.name + " / " + tc.name + " / dim " +
                                       std::to_string(dim) + "  (auto picks: " +
                                       (auto_pick.empty() ? "-" : auto_pick) + ")")
                              .c_str());
        std::printf("\n");
      }
    }
  }
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  auto json_path = dgcl::bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = dgcl::bench::ConsumeTraceFlag(&argc, argv);
  dgcl::bench::PrintHeader(
      "Planner family crossover: strategies x datasets x topologies x dims");
  std::vector<dgcl::bench::JsonRecord> records;
  dgcl::RunSweep(records);
  std::printf(
      "Cells are scored by simulated allgather time; the cost model drives the\n"
      "auto-selector, so cells where the starred winner differs from the auto pick\n"
      "bound the fidelity gap between the two estimates.\n");
  if (json_path) {
    dgcl::Status s = dgcl::bench::WriteJsonRecords(*json_path, records);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
  }
  if (trace_path) {
    dgcl::Status s = dgcl::bench::FinishTrace(*trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
