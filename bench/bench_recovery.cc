// Elastic recovery MTTR vs full restart.
//
// Kills one device mid-epoch (FaultInjection::dead_from_pass) while training
// on the real threaded runtime, lets ElasticTrainingSession run the recovery
// protocol, and reports the per-phase wall times (detect / membership /
// repartition / replan / restore) next to the cost of the alternative every
// non-elastic system pays: a full restart — re-partition (METIS), re-plan
// (SPST), re-compile and re-arm the runtime for the surviving topology from
// scratch. Recovery's advantage is structural: the incremental repartition
// reuses the already-computed destination-set classes and the activation
// checkpoints let the retried epoch skip completed allgathers.
//
// Usage: bench_recovery [--json out.json] [--trace out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "dgcl/dgcl.h"
#include "dgcl/elastic.h"
#include "gnn/trainer.h"

namespace dgcl {
namespace {

struct KillPoint {
  const char* label;
  uint32_t pass;  // engine pass index; 2-layer model => 4 passes per epoch
};

struct BenchCase {
  std::string dataset;
  const char* kill;
  RecoveryReport report;
  double full_restart_s = 0.0;
};

// Full-restart baseline: everything a non-elastic system redoes to get a
// runnable trainer on the surviving topology (partition + plan + compile +
// arm + trainer build). The lost epoch's recompute is excluded on BOTH sides
// — recovery's retried epoch is reported separately as resume_seconds.
Result<double> FullRestartSeconds(const CsrGraph& graph, uint32_t survivors,
                                  const EmbeddingMatrix& features,
                                  const std::vector<uint32_t>& labels, uint32_t num_classes,
                                  const TrainerOptions& trainer_options) {
  WallTimer timer;
  DGCL_ASSIGN_OR_RETURN(DgclContext ctx, DgclContext::Init(BuildPaperTopology(survivors)));
  DGCL_RETURN_IF_ERROR(ctx.BuildCommInfo(graph));
  DGCL_ASSIGN_OR_RETURN(DistributedTrainer trainer,
                        DistributedTrainer::Create(graph, ctx.artifacts().relation, ctx.engine(),
                                                   features, labels, num_classes,
                                                   trainer_options));
  (void)trainer;
  return timer.ElapsedMillis() / 1e3;
}

Result<BenchCase> RunCase(DatasetId id, const KillPoint& kill, uint32_t gpus) {
  // Extra scale reduction on top of the standard stand-in: this bench runs
  // real training passes (threads + dense kernels), not the simulator.
  Dataset dataset = MakeDataset(id, bench::InverseScale(id) * 16);
  const uint32_t n = dataset.graph.num_vertices();
  const uint32_t num_classes = 8;
  Rng rng(97);
  EmbeddingMatrix features = EmbeddingMatrix::Zero(n, 16);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t c = 0; c < features.dim; ++c) {
      features.Row(v)[c] = static_cast<float>(rng.UniformDouble()) - 0.5f;
    }
  }
  std::vector<uint32_t> labels(n);
  for (uint32_t v = 0; v < n; ++v) {
    labels[v] = static_cast<uint32_t>(rng.UniformInt(num_classes));
  }
  TrainerOptions trainer_options;
  trainer_options.num_layers = 2;
  trainer_options.hidden_dim = 16;

  DgclOptions options;
  options.recovery.enabled = true;
  options.recovery.checkpoint_every_n_layers = 1;
  options.engine.faults.dead_device = gpus / 2;
  options.engine.faults.dead_from_pass = kill.pass;
  options.engine.transport.wait_timeout_micros = 100'000;
  DGCL_ASSIGN_OR_RETURN(DgclContext ctx, DgclContext::Init(BuildPaperTopology(gpus), options));
  DGCL_RETURN_IF_ERROR(ctx.BuildCommInfo(dataset.graph));
  DGCL_ASSIGN_OR_RETURN(ElasticTrainingSession session,
                        ElasticTrainingSession::Create(ctx, dataset.graph, features, labels,
                                                       num_classes, trainer_options));
  const uint32_t epochs = kill.pass / (2 * trainer_options.num_layers) + 1;
  for (uint32_t e = 0; e < epochs; ++e) {
    DGCL_ASSIGN_OR_RETURN(EpochResult result, session.TrainEpoch());
    (void)result;
  }
  if (session.recoveries() != 1) {
    return Status::Internal("kill point " + std::string(kill.label) + " never triggered");
  }

  BenchCase out;
  out.dataset = dataset.name;
  out.kill = kill.label;
  out.report = session.recovery_log()[0];
  DGCL_ASSIGN_OR_RETURN(out.full_restart_s,
                        FullRestartSeconds(dataset.graph, gpus - 1, features, labels, num_classes,
                                           trainer_options));
  return out;
}

int Run(int argc, char** argv) {
  auto json_path = bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = bench::ConsumeTraceFlag(&argc, argv);
  bench::PrintHeader("Elastic recovery: per-phase MTTR vs full restart (8 GPUs, kill 1)");

  const KillPoint kKillPoints[] = {
      {"fwd-early", 1},   // epoch 0, layer 1 forward
      {"bwd", 3},         // epoch 0, backward
      {"epoch1-mid", 5},  // epoch 1, layer 1 forward
  };
  const DatasetId kDatasets[] = {DatasetId::kReddit, DatasetId::kComOrkut,
                                 DatasetId::kWebGoogle, DatasetId::kWikiTalk};

  TablePrinter table({"Dataset", "Kill", "detect ms", "member ms", "repart ms", "replan ms",
                      "restore ms", "MTTR ms", "restart ms", "restart/MTTR"});
  std::vector<bench::JsonRecord> records;
  bool all_faster = true;
  for (DatasetId id : kDatasets) {
    for (const KillPoint& kill : kKillPoints) {
      auto result = RunCase(id, kill, 8);
      if (!result.ok()) {
        std::printf("%s/%s failed: %s\n", DatasetName(id), kill.label,
                    result.status().ToString().c_str());
        return 1;
      }
      const RecoveryReport& r = result->report;
      const double mttr = r.MttrSeconds();
      all_faster = all_faster && mttr < result->full_restart_s;
      table.AddRow({result->dataset, kill.label, TablePrinter::Fmt(r.detect_seconds * 1e3, 3),
                    TablePrinter::Fmt(r.membership_seconds * 1e3, 3),
                    TablePrinter::Fmt(r.repartition_seconds * 1e3, 3),
                    TablePrinter::Fmt(r.replan_seconds * 1e3, 3),
                    TablePrinter::Fmt(r.restore_seconds * 1e3, 3),
                    TablePrinter::Fmt(mttr * 1e3, 3),
                    TablePrinter::Fmt(result->full_restart_s * 1e3, 3),
                    TablePrinter::Fmt(result->full_restart_s / mttr, 2)});
      bench::JsonRecord record;
      record.AddString("dataset", result->dataset);
      record.AddString("kill_point", kill.label);
      record.AddInt("kill_pass", kill.pass);
      record.AddInt("gpus", 8);
      record.AddInt("moved_vertices", r.moved_vertices);
      record.AddNumber("detect_s", r.detect_seconds);
      record.AddNumber("membership_s", r.membership_seconds);
      record.AddNumber("repartition_s", r.repartition_seconds);
      record.AddNumber("replan_s", r.replan_seconds);
      record.AddNumber("restore_s", r.restore_seconds);
      record.AddNumber("resume_s", r.resume_seconds);
      record.AddNumber("mttr_s", mttr);
      record.AddNumber("full_restart_s", result->full_restart_s);
      records.push_back(std::move(record));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("recovery %s full restart on every (dataset, kill point)\n",
              all_faster ? "beat" : "did NOT beat");

  if (json_path) {
    if (Status status = bench::WriteJsonRecords(*json_path, records); !status.ok()) {
      std::printf("json write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (trace_path) {
    if (Status status = bench::FinishTrace(*trace_path); !status.ok()) {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) { return dgcl::Run(argc, argv); }
