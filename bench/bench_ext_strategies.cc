// Extension strategies from §3 ("other options for distributed GNN
// training"), evaluated with the same harness as Figure 7:
//  * DGCL+cache — caching remote layer-0 features eliminates the widest
//    allgather (option 1 of §3);
//  * DGCL-R — replication across machines only (option 3; Table 5).
// Not a paper table; DESIGN.md lists it as an extension experiment.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void RunGpuCount(uint32_t gpus) {
  TablePrinter table({"Dataset", "DGCL", "DGCL+cache", "DGCL-R", "cache comm saving"});
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, gpus, GnnModel::kGcn);
    if (!bundle.ok()) {
      continue;
    }
    EpochSimulator& sim = (*bundle)->sim();
    auto dgcl = sim.Simulate(Method::kDgcl);
    auto cache = sim.Simulate(Method::kDgclCache);
    auto dgclr = sim.Simulate(Method::kDgclR);
    std::string saving = "n/a";
    if (dgcl.ok() && cache.ok() && !dgcl->oom && !cache->oom && dgcl->comm_ms > 0) {
      saving = TablePrinter::Fmt((1.0 - cache->comm_ms / dgcl->comm_ms) * 100, 0) + "%";
    }
    table.AddRow({bench::BenchDataset(id).name, bench::EpochCell(dgcl),
                  bench::EpochCell(cache), bench::EpochCell(dgclr), saving});
  }
  std::printf("%s\n",
              table.Render("per-epoch ms, GCN, " + std::to_string(gpus) + " GPUs").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader("Extension strategies (§3): feature caching and machine replication");
  dgcl::RunGpuCount(8);
  dgcl::RunGpuCount(16);
  std::printf(
      "Feature caching removes the layer-1 (feature-width) allgather — the widest\n"
      "transfer of the epoch — at the cost of pinning remote features in memory.\n");
  return 0;
}
