// Table 1: the speed (GB/s) of common communication links.
//
// Prints the calibrated bandwidths of the topology model and cross-checks
// each with a point-to-point measurement on the discrete-event simulator
// (1 GB over an otherwise idle link of that type).

#include <cstdio>

#include "bench_util.h"
#include "sim/network_sim.h"
#include "topology/presets.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Table 1: link speeds (GB/s), model vs simulated point-to-point");

  TablePrinter table({"Type", "Model GB/s", "Simulated GB/s"});
  struct Probe {
    LinkType type;
    // A (topology, src, dst) whose direct link bottlenecks on `type`.
    Topology topo;
    DeviceId src;
    DeviceId dst;
  };
  std::vector<Probe> probes;
  probes.push_back({LinkType::kNvLink2, BuildPaperTopology(8), 0, 3});  // quad diagonal
  probes.push_back({LinkType::kNvLink1, BuildPaperTopology(8), 0, 1});
  probes.push_back({LinkType::kPcie, BuildPaperTopology(8, /*nvlink=*/false), 0, 1});
  probes.push_back({LinkType::kQpi, BuildPaperTopology(8), 0, 5});
  probes.push_back({LinkType::kInfiniBand, BuildPaperTopology(16), 0, 8});
  {
    MachineConfig config;
    config.num_gpus = 4;
    config.nic = LinkType::kEthernet;
    probes.push_back({LinkType::kEthernet, BuildCluster(2, config), 0, 4});
  }

  for (const Probe& probe : probes) {
    const double bytes = 1e9;
    LinkId link = probe.topo.LinkBetween(probe.src, probe.dst);
    auto completions = SimulateConcurrentFlows(probe.topo, {link}, {bytes});
    const double simulated = bytes / completions[0] / 1e9;
    table.AddRow({LinkTypeName(probe.type),
                  TablePrinter::Fmt(LinkTypeBandwidthGBps(probe.type), 2),
                  TablePrinter::Fmt(simulated, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper Table 1: NV2 48.35, NV1 24.22, PCIe 11.13, QPI 9.56, IB 6.37, Eth 3.12\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
