// Figure 2: computation time, communication overhead and per-GPU volume for
// a 2-layer GCN with peer-to-peer communication, on Web-Google and Reddit,
// across 2/4/8/16 GPUs.
//
// The paper's takeaway: communication time *grows* with GPU count (past 50%
// of the epoch at 8 GPUs, past 90% at 16 across two machines) even though
// the per-GPU volume shrinks.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void RunDataset(DatasetId id) {
  TablePrinter table({"GPUs", "Commu. overhead (ms)", "Compu. time (ms)", "Commu. volume (MB)",
                      "comm share"});
  for (uint32_t gpus : {2u, 4u, 8u, 16u}) {
    auto bundle = bench::MakeSimulator(id, gpus, GnnModel::kGcn);
    if (!bundle.ok()) {
      std::printf("  %u GPUs: %s\n", gpus, bundle.status().ToString().c_str());
      continue;
    }
    auto report = (*bundle)->sim().Simulate(Method::kPeerToPeer);
    if (!report.ok() || report->oom) {
      table.AddRow({TablePrinter::FmtInt(gpus), bench::EpochCell(report), "-", "-", "-"});
      continue;
    }
    const double share = report->comm_ms / report->EpochMs();
    table.AddRow({TablePrinter::FmtInt(gpus), TablePrinter::Fmt(report->comm_ms, 1),
                  TablePrinter::Fmt(report->compute_ms, 1),
                  TablePrinter::Fmt(report->avg_comm_bytes_per_gpu / 1e6, 1),
                  TablePrinter::Fmt(share * 100, 1) + "%"});
  }
  std::printf("%s\n", table.Render("(" + bench::BenchDataset(id).name + ")").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader(
      "Figure 2: peer-to-peer comm overhead / compute time / volume vs GPU count (2-layer GCN)");
  dgcl::RunDataset(dgcl::DatasetId::kWebGoogle);
  dgcl::RunDataset(dgcl::DatasetId::kReddit);
  std::printf(
      "Paper shape: comm overhead grows with GPUs, >50%% of epoch at 8 GPUs and\n"
      ">90%% at 16 GPUs (two machines), while per-GPU volume decreases.\n");
  return 0;
}
