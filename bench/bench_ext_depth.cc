// Deeper GNNs (the §2/§3 motivation): 2- vs 3-layer GCN, DGCL vs
// Replication on 8 GPUs. The paper argues replication is "inapplicable for
// deeper GNN models" because the K-hop closure explodes (Figure 4) while
// DGCL's per-layer allgather cost only grows linearly with depth.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Extension: GNN depth — DGCL vs Replication, GCN, 8 GPUs");
  TablePrinter table({"Dataset", "K", "DGCL epoch (ms)", "Replication epoch (ms)",
                      "replication factor"});
  for (DatasetId id : {DatasetId::kWebGoogle, DatasetId::kReddit, DatasetId::kComOrkut}) {
    for (uint32_t layers : {2u, 3u}) {
      auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
      if (!bundle.ok()) {
        continue;
      }
      // Rebuild with the requested depth.
      EpochOptions opts = bench::PaperOptions(id, GnnModel::kGcn);
      opts.num_layers = layers;
      auto sim = EpochSimulator::Create(bench::BenchDataset(id), (*bundle)->topology, opts);
      if (!sim.ok()) {
        continue;
      }
      auto dgcl = sim->Simulate(Method::kDgcl);
      auto rep = sim->Simulate(Method::kReplication);
      std::string factor = "n/a";
      if (rep.ok() && !rep->oom) {
        factor = TablePrinter::Fmt(rep->replication_factor, 2);
      }
      table.AddRow({bench::BenchDataset(id).name, TablePrinter::FmtInt(layers),
                    bench::EpochCell(dgcl), bench::EpochCell(rep), factor});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Expected shape: DGCL's epoch grows roughly linearly with K; Replication's\n"
      "closure (and compute/memory) grows much faster and OOMs first.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
