// All four GNN models (GCN / CommNet / GIN / GAT) on 8 GPUs under DGCL —
// demonstrating the §5.1 corollary in practice: the communication time is
// identical across models (the same plan serves them all; only the
// embedding dimensions matter), while compute varies per model.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Extension: four models under one plan (DGCL, 8 GPUs)");
  TablePrinter table({"Dataset", "Model", "epoch (ms)", "comm (ms)", "compute (ms)"});
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kWebGoogle}) {
    for (GnnModel model :
         {GnnModel::kGcn, GnnModel::kCommNet, GnnModel::kGin, GnnModel::kGat}) {
      auto bundle = bench::MakeSimulator(id, 8, model);
      if (!bundle.ok()) {
        continue;
      }
      auto report = (*bundle)->sim().Simulate(Method::kDgcl);
      if (!report.ok() || report->oom) {
        continue;
      }
      table.AddRow({bench::BenchDataset(id).name, GnnModelName(model),
                    TablePrinter::Fmt(report->EpochMs(), 1),
                    TablePrinter::Fmt(report->comm_ms, 1),
                    TablePrinter::Fmt(report->compute_ms, 1)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Communication time is constant per dataset across models (§5.1: the optimal\n"
      "plan depends only on the relation and topology); compute varies per model.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
