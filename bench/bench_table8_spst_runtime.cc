// Table 8: wall-clock running time of the SPST planning algorithm for each
// dataset and GPU count (single-threaded, as in the paper), extended with the
// class-batching comparison: default batched planning (chunked destination-set
// equivalence classes) vs the seed per-vertex planner (max_class_units = 0).
//
// Uses google-benchmark for the timing harness; the summary tables at the end
// mirror the paper's layout and report the batched-vs-per-vertex speedup and
// plan-cost delta. Pass `--json <path>` to also write the per-(dataset, gpus)
// records machine-readably (scripts/reproduce.sh writes BENCH_table8.json).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "partition/multilevel.h"
#include "planner/cost_model.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

const CommRelation& RelationFor(DatasetId id, uint32_t gpus) {
  static std::map<std::pair<DatasetId, uint32_t>, CommRelation> cache;
  auto key = std::make_pair(id, gpus);
  auto it = cache.find(key);
  if (it == cache.end()) {
    MultilevelPartitioner metis;
    auto parts = metis.Partition(bench::BenchDataset(id).graph, gpus);
    auto rel = BuildCommRelation(bench::BenchDataset(id).graph, *parts);
    it = cache.emplace(key, std::move(rel).value()).first;
  }
  return it->second;
}

const CommClasses& ClassesFor(DatasetId id, uint32_t gpus) {
  static std::map<std::pair<DatasetId, uint32_t>, CommClasses> cache;
  auto key = std::make_pair(id, gpus);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildCommClasses(RelationFor(id, gpus))).first;
  }
  return it->second;
}

SpstOptions PerVertexOptions() {
  SpstOptions opts;
  opts.max_class_units = 0;  // seed semantics: one tree per vertex
  return opts;
}

SpstOptions ParallelOptions() {
  SpstOptions opts;
  opts.num_threads = 0;  // hardware concurrency; plan is bit-identical anyway
  return opts;
}

// One measured planning run: wall time of BuildCommClasses + PlanClasses
// (what an end-to-end BuildCommInfo pays for planning) plus the cost-model
// estimate of the expanded per-vertex plan.
struct PlanMeasurement {
  bool ok = false;
  double planning_ms = 0.0;
  double plan_cost_ms = 0.0;
};

PlanMeasurement MeasurePlanning(const CommRelation& rel, const Topology& topo, double bytes,
                                const SpstOptions& options) {
  PlanMeasurement m;
  WallTimer timer;
  CommClasses classes = BuildCommClasses(rel);
  SpstPlanner planner(options);
  auto class_plan = planner.PlanClasses(classes, topo, bytes);
  if (!class_plan.ok()) {
    return m;
  }
  m.planning_ms = timer.ElapsedSeconds() * 1e3;
  CommPlan plan = ExpandClassPlan(*class_plan, classes);
  m.ok = true;
  m.plan_cost_ms = EvaluatePlanCost(plan, topo, bytes) * 1e3;
  return m;
}

void BM_Spst(benchmark::State& state) {
  const DatasetId id = static_cast<DatasetId>(state.range(0));
  const uint32_t gpus = static_cast<uint32_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const CommRelation& rel = RelationFor(id, gpus);
  Topology topo = BuildPaperTopology(gpus);
  const double bytes = bench::BenchDataset(id).feature_dim * 4.0;
  const SpstOptions options = batched ? SpstOptions{} : PerVertexOptions();
  for (auto _ : state) {
    CommClasses classes = BuildCommClasses(rel);
    SpstPlanner spst(options);
    auto plan = spst.PlanClasses(classes, topo, bytes);
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel(bench::BenchDataset(id).name + "/" + std::to_string(gpus) + "gpu/" +
                 (batched ? "batched" : "per-vertex"));
  state.counters["vertices_with_dests"] =
      static_cast<double>(rel.VerticesWithDestinations().size());
  state.counters["classes"] = static_cast<double>(ClassesFor(id, gpus).classes.size());
}

void RegisterAll() {
  auto* bench_def = benchmark::RegisterBenchmark("SPST_planning", BM_Spst);
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    for (uint32_t gpus : {2u, 4u, 8u, 16u}) {
      for (long batched : {1L, 0L}) {
        bench_def->Args({static_cast<long>(id), static_cast<long>(gpus), batched});
      }
    }
  }
  bench_def->Unit(benchmark::kMillisecond)->Iterations(1);
}

constexpr DatasetId kDatasets[] = {DatasetId::kReddit, DatasetId::kComOrkut,
                                   DatasetId::kWebGoogle, DatasetId::kWikiTalk};
constexpr uint32_t kGpuCounts[] = {2u, 4u, 8u, 16u};

void PrintSummaryTable(const std::optional<std::string>& json_path) {
  bench::PrintHeader("Table 8: SPST planning wall time (batched classes), single thread");
  std::vector<bench::JsonRecord> records;
  TablePrinter table({"GPUs", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"});
  TablePrinter compare({"Dataset", "GPUs", "batched ms", "per-vertex ms", "speedup",
                        "parallel ms", "cost delta", "classes", "vertices"});
  for (uint32_t gpus : kGpuCounts) {
    std::vector<std::string> row = {TablePrinter::FmtInt(gpus)};
    for (DatasetId id : kDatasets) {
      const CommRelation& rel = RelationFor(id, gpus);
      Topology topo = BuildPaperTopology(gpus);
      const double bytes = bench::BenchDataset(id).feature_dim * 4.0;
      PlanMeasurement batched = MeasurePlanning(rel, topo, bytes, SpstOptions{});
      PlanMeasurement per_vertex = MeasurePlanning(rel, topo, bytes, PerVertexOptions());
      PlanMeasurement parallel = MeasurePlanning(rel, topo, bytes, ParallelOptions());
      row.push_back(batched.ok ? TablePrinter::Fmt(batched.planning_ms / 1e3, 3) : "n/a");
      if (!batched.ok || !per_vertex.ok || !parallel.ok) {
        continue;
      }
      const double speedup =
          batched.planning_ms > 0 ? per_vertex.planning_ms / batched.planning_ms : 0.0;
      const double cost_delta =
          per_vertex.plan_cost_ms > 0
              ? (batched.plan_cost_ms - per_vertex.plan_cost_ms) / per_vertex.plan_cost_ms
              : 0.0;
      const CommClasses& classes = ClassesFor(id, gpus);
      compare.AddRow({bench::BenchDataset(id).name, TablePrinter::FmtInt(gpus),
                      TablePrinter::Fmt(batched.planning_ms, 2),
                      TablePrinter::Fmt(per_vertex.planning_ms, 2),
                      TablePrinter::Fmt(speedup, 1) + "x",
                      TablePrinter::Fmt(parallel.planning_ms, 2),
                      TablePrinter::Fmt(cost_delta * 100.0, 2) + "%",
                      TablePrinter::FmtInt(classes.classes.size()),
                      TablePrinter::FmtInt(rel.VerticesWithDestinations().size())});
      bench::JsonRecord rec;
      rec.AddString("dataset", bench::BenchDataset(id).name);
      rec.AddInt("gpus", gpus);
      rec.AddNumber("planning_ms", batched.planning_ms);
      rec.AddNumber("plan_cost_ms", batched.plan_cost_ms);
      rec.AddNumber("planning_ms_per_vertex", per_vertex.planning_ms);
      rec.AddNumber("plan_cost_ms_per_vertex", per_vertex.plan_cost_ms);
      rec.AddNumber("planning_ms_parallel", parallel.planning_ms);
      rec.AddNumber("speedup", speedup);
      rec.AddNumber("cost_delta", cost_delta);
      rec.AddInt("num_classes", classes.classes.size());
      rec.AddInt("num_vertices", rel.VerticesWithDestinations().size());
      records.push_back(std::move(rec));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render("planning wall time (s)").c_str());
  std::printf("%s\n", compare.Render("class batching vs per-vertex planning").c_str());
  std::printf(
      "Paper Table 8 (s, full-size graphs): grows ~linearly with GPUs, seconds to\n"
      "~110s for Com-Orkut at 16 GPUs; our graphs are scale-reduced so absolute\n"
      "numbers are proportionally smaller. Batched class planning plans one tree\n"
      "per class chunk instead of per vertex; \"cost delta\" is the cost-model\n"
      "difference of the resulting plans (positive = batched plan is costlier).\n"
      "\"parallel ms\" re-plans with num_threads = hardware concurrency — the\n"
      "plan is bit-identical to the single-threaded column by construction\n"
      "(bench_plan_parallel sweeps thread counts and verifies this).\n");
  if (json_path) {
    Status s = bench::WriteJsonRecords(*json_path, records);
    if (s.ok()) {
      std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path->c_str(),
                   s.message().c_str());
    }
  }
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  std::optional<std::string> json_path = dgcl::bench::ConsumeJsonFlag(&argc, argv);
  dgcl::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dgcl::PrintSummaryTable(json_path);
  return 0;
}
