// Table 8: wall-clock running time of the SPST planning algorithm for each
// dataset and GPU count (single-threaded, as in the paper).
//
// Uses google-benchmark for the timing harness; the summary table at the end
// mirrors the paper's layout.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/timer.h"
#include "partition/multilevel.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

const CommRelation& RelationFor(DatasetId id, uint32_t gpus) {
  static std::map<std::pair<DatasetId, uint32_t>, CommRelation> cache;
  auto key = std::make_pair(id, gpus);
  auto it = cache.find(key);
  if (it == cache.end()) {
    MultilevelPartitioner metis;
    auto parts = metis.Partition(bench::BenchDataset(id).graph, gpus);
    auto rel = BuildCommRelation(bench::BenchDataset(id).graph, *parts);
    it = cache.emplace(key, std::move(rel).value()).first;
  }
  return it->second;
}

void BM_Spst(benchmark::State& state) {
  const DatasetId id = static_cast<DatasetId>(state.range(0));
  const uint32_t gpus = static_cast<uint32_t>(state.range(1));
  const CommRelation& rel = RelationFor(id, gpus);
  Topology topo = BuildPaperTopology(gpus);
  const double bytes = bench::BenchDataset(id).feature_dim * 4.0;
  for (auto _ : state) {
    SpstPlanner spst;
    auto plan = spst.Plan(rel, topo, bytes);
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel(bench::BenchDataset(id).name + "/" + std::to_string(gpus) + "gpu");
  state.counters["vertices_with_dests"] =
      static_cast<double>(rel.VerticesWithDestinations().size());
}

void RegisterAll() {
  auto* bench_def = benchmark::RegisterBenchmark("SPST_planning", BM_Spst);
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    for (uint32_t gpus : {2u, 4u, 8u, 16u}) {
      bench_def->Args({static_cast<long>(id), static_cast<long>(gpus)});
    }
  }
  bench_def->Unit(benchmark::kMillisecond)->Iterations(1);
}

void PrintSummaryTable() {
  bench::PrintHeader("Table 8: SPST planning wall time (s), single thread");
  TablePrinter table({"GPUs", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"});
  for (uint32_t gpus : {2u, 4u, 8u, 16u}) {
    std::vector<std::string> row = {TablePrinter::FmtInt(gpus)};
    for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                         DatasetId::kWikiTalk}) {
      const CommRelation& rel = RelationFor(id, gpus);
      Topology topo = BuildPaperTopology(gpus);
      SpstPlanner spst;
      WallTimer timer;
      auto plan = spst.Plan(rel, topo, bench::BenchDataset(id).feature_dim * 4.0);
      row.push_back(plan.ok() ? TablePrinter::Fmt(timer.ElapsedSeconds(), 3) : "n/a");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 8 (s, full-size graphs): grows ~linearly with GPUs, seconds to\n"
      "~110s for Com-Orkut at 16 GPUs; our graphs are scale-reduced so absolute\n"
      "numbers are proportionally smaller.\n");
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  dgcl::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dgcl::PrintSummaryTable();
  return 0;
}
