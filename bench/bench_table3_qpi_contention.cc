// Table 3: attainable per-GPU bandwidth when 1/2/3 GPUs use the QPI link
// concurrently — the contention effect that motivates joint planning (§3).

#include <cstdio>

#include "bench_util.h"
#include "sim/network_sim.h"
#include "topology/presets.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Table 3: attainable per-GPU bandwidth (GB/s) over a shared QPI");
  Topology topo = BuildPaperTopology(8);
  TablePrinter table({"Number of GPUs", "Attainable bandwidth (GB/s)"});
  const DeviceId senders[] = {0, 2, 3};  // cross-socket pairs without NVLink
  for (uint32_t n = 1; n <= 3; ++n) {
    std::vector<LinkId> links;
    std::vector<double> bytes;
    for (uint32_t i = 0; i < n; ++i) {
      links.push_back(topo.LinkBetween(senders[i], 5));
      bytes.push_back(1e9);
    }
    auto completions = SimulateConcurrentFlows(topo, links, bytes);
    double slowest = 0.0;
    for (double c : completions) {
      slowest = std::max(slowest, c);
    }
    table.AddRow({TablePrinter::FmtInt(n), TablePrinter::Fmt(1e9 / slowest / 1e9, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper Table 3: 9.50 / 5.12 / 3.34 GB/s — contention divides the QPI.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
