// Table 9: backward-pass graphAllgather time with atomic vs non-atomic
// gradient aggregation (8 GPUs, hidden dimension 128, §6.2).

#include <cstdio>

#include "bench_util.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 9: backward graphAllgather time (ms), atomic vs non-atomic, dim 128, 8 GPUs");
  TablePrinter table({"Mode", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"});
  std::vector<std::string> atomic_row = {"Atomic"};
  std::vector<std::string> nonatomic_row = {"Non-atomic"};
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (!bundle.ok()) {
      atomic_row.push_back("n/a");
      nonatomic_row.push_back("n/a");
      continue;
    }
    EpochSimulator& sim = (*bundle)->sim();
    SpstPlanner spst;
    auto atomic = sim.SimulateAllgatherSeconds(spst, 128, 1.0, nullptr, nullptr,
                                               PassDirection::kBackward, /*non_atomic=*/false);
    auto nonatomic = sim.SimulateAllgatherSeconds(spst, 128, 1.0, nullptr, nullptr,
                                                  PassDirection::kBackward, /*non_atomic=*/true);
    atomic_row.push_back(atomic.ok() ? TablePrinter::Fmt(*atomic * 1e3, 2) : "n/a");
    nonatomic_row.push_back(nonatomic.ok() ? TablePrinter::Fmt(*nonatomic * 1e3, 2) : "n/a");
  }
  table.AddRow(atomic_row);
  table.AddRow(nonatomic_row);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 9 (ms): atomic 1.72/14.3/1.11/0.99 vs non-atomic\n"
      "1.28/9.16/0.83/0.71 — non-atomic ~25-35%% faster.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
