// Figure 11: the memory used for the decentralized-coordination send/receive
// tables as a fraction (per mille) of normal training memory — the paper
// reports < 2e-3 everywhere.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "sim/memory_model.h"

namespace dgcl {
namespace {

void RunGpuCount(uint32_t gpus) {
  TablePrinter table({"Dataset", "table bytes/GPU", "training bytes/GPU", "ratio (permille)"});
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                       DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, gpus, GnnModel::kGcn);
    if (!bundle.ok()) {
      continue;
    }
    auto report = (*bundle)->sim().Simulate(Method::kDgcl);
    if (!report.ok() || report->oom) {
      continue;
    }
    const Dataset& ds = bench::BenchDataset(id);
    const CommRelation& rel = (*bundle)->sim().relation();
    // Peak per-GPU training footprint (full-size equivalent).
    double max_training = 0.0;
    for (uint32_t d = 0; d < rel.num_devices; ++d) {
      uint64_t stored = rel.local_vertices[d].size() + rel.remote_vertices[d].size();
      uint64_t edges = 0;
      for (VertexId v : rel.local_vertices[d]) {
        edges += ds.graph.Degree(v);
      }
      const uint64_t scale = bench::InverseScale(id);
      max_training =
          std::max(max_training, TrainingFootprintBytes(stored * scale, edges * scale,
                                                        ds.feature_dim, ds.hidden_dim, 2));
    }
    // Table ids scale with the relation size (full-size equivalent).
    const double table_per_gpu = static_cast<double>(report->plan_table_bytes) *
                                 bench::InverseScale(id) / rel.num_devices;
    table.AddRow({ds.name, TablePrinter::FmtBytes(table_per_gpu),
                  TablePrinter::FmtBytes(max_training),
                  TablePrinter::Fmt(table_per_gpu / max_training * 1e3, 3)});
  }
  std::printf("%s\n", table.Render("(" + std::to_string(gpus) + " GPUs)").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader(
      "Figure 11: send/receive table memory over training memory (per mille)");
  dgcl::RunGpuCount(8);
  dgcl::RunGpuCount(16);
  std::printf("Paper shape: ratio below 2 permille for every dataset and GPU count.\n");
  return 0;
}
