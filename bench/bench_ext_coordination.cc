// Coordination ablation (§6.1): decentralized ready/done flags vs a
// centralized master barrier between stages, measured as wall-clock time of
// real graphAllgather executions on the threaded runtime.
//
// The paper argues centralized coordination pays a master round-trip and
// straggler wait per stage; here the cost shows up as barrier convoying.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "partition/multilevel.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Coordination ablation (§6.1): decentralized flags vs central barrier");
  Rng rng(71);
  CsrGraph graph = GenerateRmat({.scale = 12, .num_edges = 30000}, rng);
  Topology topo = BuildPaperTopology(8);
  MultilevelPartitioner metis;
  CommRelation rel = std::move(BuildCommRelation(graph, *metis.Partition(graph, 8))).value();
  SpstPlanner spst;
  CompiledPlan plan = CompilePlan(*spst.Plan(rel, topo, 64), topo);
  std::vector<EmbeddingMatrix> local;
  for (uint32_t d = 0; d < rel.num_devices; ++d) {
    local.push_back(EmbeddingMatrix::Zero(
        static_cast<uint32_t>(rel.local_vertices[d].size()), 16));
  }

  constexpr int kWarmup = 3;
  constexpr int kIters = 20;
  TablePrinter table({"Coordination", "graphAllgather wall time (ms, median-ish mean)"});
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    EngineOptions options;
    options.coordination = mode;
    auto engine = AllgatherEngine::Create(rel, plan, topo, options);
    if (!engine.ok()) {
      std::printf("engine setup failed\n");
      return;
    }
    for (int i = 0; i < kWarmup; ++i) {
      (void)engine->Forward(local);
    }
    WallTimer timer;
    for (int i = 0; i < kIters; ++i) {
      auto result = engine->Forward(local);
      if (!result.ok()) {
        std::printf("forward failed\n");
        return;
      }
    }
    const double ms = timer.ElapsedMillis() / kIters;
    table.AddRow({mode == CoordinationMode::kDecentralized ? "decentralized (ready/done flags)"
                                                           : "centralized (master barrier)",
                  TablePrinter::Fmt(ms, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Note: wall-clock on the host CPU. The decentralized protocol lets devices\n"
      "run ahead through stages they do not participate in; the barrier convoys\n"
      "everyone to the slowest device every stage. Caveat: on a host with fewer\n"
      "cores than simulated devices, the flags' spin-waits oversubscribe the CPU\n"
      "while the barrier parks threads, which can invert the comparison — on real\n"
      "per-GPU processes (the paper's setting) the decentralized protocol wins.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
