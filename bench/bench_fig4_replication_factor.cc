// Figure 4: replication factor for 1/2/3-hop replication across 2-16 GPUs on
// Web-Google and Reddit — why replication cannot support deeper GNNs.

#include <cstdio>

#include "bench_util.h"
#include "graph/khop.h"
#include "partition/multilevel.h"

namespace dgcl {
namespace {

void RunDataset(DatasetId id) {
  const Dataset& ds = bench::BenchDataset(id);
  MultilevelPartitioner metis;
  TablePrinter table({"GPUs", "1-hop", "2-hop", "3-hop"});
  for (uint32_t gpus : {2u, 4u, 8u, 16u}) {
    auto parts = metis.Partition(ds.graph, gpus);
    if (!parts.ok()) {
      continue;
    }
    std::vector<std::string> row = {TablePrinter::FmtInt(gpus)};
    for (uint32_t hops = 1; hops <= 3; ++hops) {
      row.push_back(TablePrinter::Fmt(
          ReplicationFactor(ds.graph, parts->assignment, gpus, hops), 2));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render("(" + ds.name + ")").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader("Figure 4: replication factor vs GPU count and GNN depth");
  dgcl::RunDataset(dgcl::DatasetId::kWebGoogle);
  dgcl::RunDataset(dgcl::DatasetId::kReddit);
  std::printf(
      "Paper shape: factor grows with GPUs and hops; on dense Reddit 2-hop already\n"
      "covers almost the whole graph per GPU (factor -> GPU count), on sparse\n"
      "Web-Google the 3-hop factor passes 3 at 16 GPUs.\n");
  return 0;
}
