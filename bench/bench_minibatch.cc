// Mini-batch training path: cross-request fetch batching and the sampled
// trainer loop.
//
// Phase 1 (fetch batching): lockstep bursts of feature-fetching sample
// requests (return_features = true, a deliberately tiny cache so nearly
// every remote row goes to the wire) — emulating synchronized trainers that
// all submit a training step's batch requests at once — against the same
// service with cross-request batching off and on at two window settings.
// Every remote Transmit pays a fixed per-message envelope
// (FaultInjection::latency_micros — the stand-in for real per-message wire
// overhead, which FetchBatchOptions::header_bytes mirrors in the byte
// accounting), so coalescing shows up twice: fewer messages → fewer
// envelopes on the wire (bytes win) and fewer serialized per-connection
// waits (p50/p99 win). The wider window shows the regression direction:
// stalling longer than the burst's natural arrival spread just adds
// latency. The batched/unbatched bytes ratio is the number EXPERIMENTS.md
// feeds back into EpochOptions::fetch_batch_bytes_factor.
//
// Phase 2 (trainer loop): MiniBatchTrainer over the serving tier on the
// community fixture, once per registered sampler strategy — epochs of
// sampled mini-batch SGD, reporting the full-graph loss/accuracy before and
// after plus wall time per epoch.
//
// Usage: bench_minibatch [--json out.json] [--trace out.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "service/minibatch_trainer.h"
#include "service/service.h"

namespace dgcl {
namespace {

constexpr uint32_t kNumShards = 4;
// Mini-batch traffic is bursty: `kBurstSize` concurrent trainers submit
// their batch requests in lockstep (a training step), round-robin over the
// shards, and the next step starts when the last response lands. Within a
// burst, one shard's pool fetches the same remote owners at the same
// instant — the contention cross-request batching amortizes.
constexpr uint32_t kBurstSize = 64;
constexpr uint32_t kBursts = 20;

struct Fixture {
  CsrGraph graph;
  EmbeddingMatrix features;
  std::vector<uint32_t> labels;
  uint32_t num_classes = 6;
  uint32_t feature_dim = 16;

  static Fixture Make() {
    Fixture f;
    Rng rng(97);
    const VertexId n = 1200;
    f.graph = GenerateCommunityGraph(n, f.num_classes, 12.0, 0.8, rng);
    f.features = EmbeddingMatrix::Zero(n, f.feature_dim);
    f.labels.resize(n);
    const VertexId block = n / f.num_classes;
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t community = std::min<uint32_t>(v / block, f.num_classes - 1);
      f.labels[v] = community;
      for (uint32_t c = 0; c < f.feature_dim; ++c) {
        f.features.Row(v)[c] = rng.UniformFloat(-0.3f, 0.3f);
      }
      f.features.Row(v)[community] += 1.0f;
    }
    return f;
  }

  ServiceOptions Options() const {
    ServiceOptions options;
    options.num_shards = kNumShards;
    options.samplers_per_shard = 8;
    options.feature_dim = feature_dim;
    options.hidden_dim = 8;
    options.cache_capacity_rows = 64;  // tiny on purpose: fetches hit the wire
    // The per-message envelope every remote fetch pays (emulated wire). Big
    // enough that unbatched fetches queue on the serialized per-connection
    // wire under load — the contention batching exists to amortize.
    options.faults.latency_micros = 200;
    options.faults.all_transports = true;
    return options;
  }
};

struct LoadResult {
  uint64_t completed = 0;
  uint64_t shed = 0;
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
};

LoadResult OfferLoad(GraphService& service) {
  LoadResult result;
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t burst = 0; burst < kBursts; ++burst) {
    uint64_t accepted = 0;
    for (uint32_t j = 0; j < kBurstSize; ++j) {
      const uint32_t i = burst * kBurstSize + j;
      SampleRequest request;
      request.request_id = i;
      request.shard = j % kNumShards;
      request.num_seeds = 4;
      request.sample = {2, 2, 5000 + i};
      request.return_features = true;
      if (service.Submit(std::move(request)).ok()) {
        ++accepted;
      } else {
        ++result.shed;
      }
    }
    for (uint64_t j = 0; j < accepted; ++j) {
      std::optional<SampleResponse> response = service.PopResponse(5'000'000);
      if (!response) {
        break;
      }
      if (response->status.ok()) {
        ++result.completed;
        result.latencies_ms.push_back(response->latency_seconds * 1e3);
      }
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.Stop();
  return result;
}

int Run(int argc, char** argv) {
  auto json_path = bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = bench::ConsumeTraceFlag(&argc, argv);
  bench::PrintHeader("Mini-batch path: cross-request fetch batching + sampled training");

  Fixture fixture = Fixture::Make();
  std::printf("community fixture: %u vertices, %llu edges, %u classes, feature dim %u\n\n",
              fixture.graph.num_vertices(),
              static_cast<unsigned long long>(fixture.graph.num_edges()), fixture.num_classes,
              fixture.feature_dim);

  std::vector<bench::JsonRecord> records;

  // ---- phase 1: batched vs unbatched remote feature fetches -----------------
  struct Config {
    const char* name;
    bool enabled;
    uint64_t window_micros;
  };
  const Config kConfigs[] = {
      {"unbatched", false, 0},
      {"batched-200us", true, 200},
      {"batched-500us", true, 500},
  };
  TablePrinter table({"Config", "Offered", "Shed", "p50 ms", "p99 ms", "Messages", "Rows",
                      "KB wire", "Coalesced", "req/s"});
  uint64_t unbatched_bytes = 0;
  double batched_bytes_factor = 1.0;
  for (const Config& config : kConfigs) {
    ServiceOptions options = fixture.Options();
    options.fetch.enabled = config.enabled;
    // The byte-accounting mirror of the emulated 200us envelope: what a real
    // per-message header + descriptor exchange costs on the wire.
    options.fetch.header_bytes = 512;
    if (config.enabled) {
      options.fetch.window_micros = config.window_micros;
    }
    auto service = GraphService::Create(fixture.graph, options, &fixture.features);
    if (!service.ok()) {
      std::printf("Create(%s) failed: %s\n", config.name, service.status().ToString().c_str());
      return 1;
    }
    (*service)->Start();
    LoadResult load = OfferLoad(**service);
    const ServiceStats stats = (*service)->stats();
    const double p50 = Percentile(load.latencies_ms, 0.50);
    const double p99 = Percentile(load.latencies_ms, 0.99);
    const double rps = load.wall_seconds > 0
                           ? static_cast<double>(load.completed) / load.wall_seconds
                           : 0.0;
    if (!config.enabled) {
      unbatched_bytes = stats.fetch_bytes;
    } else if (unbatched_bytes > 0 && config.window_micros == 200) {
      batched_bytes_factor =
          static_cast<double>(stats.fetch_bytes) / static_cast<double>(unbatched_bytes);
    }
    table.AddRow({config.name, std::to_string(kBursts * kBurstSize), std::to_string(load.shed),
                  TablePrinter::Fmt(p50, 3), TablePrinter::Fmt(p99, 3),
                  std::to_string(stats.fetch_messages), std::to_string(stats.fetch_rows),
                  TablePrinter::Fmt(stats.fetch_bytes / 1024.0, 1),
                  std::to_string(stats.fetch_coalesced), TablePrinter::Fmt(rps, 0)});
    bench::JsonRecord record;
    record.AddString("phase", "fetch");
    record.AddString("config", config.name);
    record.AddInt("window_micros", config.window_micros);
    record.AddInt("offered", kBursts * kBurstSize);
    record.AddInt("completed", load.completed);
    record.AddInt("shed", load.shed);
    record.AddNumber("p50_ms", p50);
    record.AddNumber("p99_ms", p99);
    record.AddInt("fetch_messages", stats.fetch_messages);
    record.AddInt("fetch_rows", stats.fetch_rows);
    record.AddInt("fetch_bytes", stats.fetch_bytes);
    record.AddInt("fetch_coalesced", stats.fetch_coalesced);
    record.AddNumber("throughput_rps", rps);
    records.push_back(std::move(record));
  }
  std::printf("%s", table.Render("remote feature fetches, batched vs unbatched").c_str());
  std::printf(
      "bytes-on-wire factor (batched-200us / unbatched): %.4f — feed this into\n"
      "EpochOptions::fetch_batch_bytes_factor for the kDgclCache simulation.\n\n",
      batched_bytes_factor);
  {
    bench::JsonRecord record;
    record.AddString("phase", "fetch-summary");
    record.AddNumber("fetch_batch_bytes_factor", batched_bytes_factor);
    records.push_back(std::move(record));
  }

  // ---- phase 2: sampled mini-batch training, one run per strategy -----------
  constexpr uint32_t kEpochs = 15;
  TablePrinter train_table({"Strategy", "Epochs", "Loss before", "Loss after", "Accuracy",
                            "ms/epoch"});
  for (const std::string& strategy : SamplerRegistry::Global().Names()) {
    ServiceOptions options = fixture.Options();
    options.fetch.enabled = true;
    options.fetch.window_micros = 200;
    auto service = GraphService::Create(fixture.graph, options, &fixture.features);
    if (!service.ok()) {
      std::printf("train Create failed: %s\n", service.status().ToString().c_str());
      return 1;
    }
    MiniBatchTrainerOptions train_options;
    train_options.trainer.hidden_dim = 16;
    train_options.trainer.learning_rate = 0.3f;
    train_options.batch_seeds = 48;
    train_options.batches_per_epoch = 8;
    train_options.sampler = strategy;
    train_options.sample = {2, 6, 0x5eed};
    auto trainer = MiniBatchTrainer::Create(service->get(), fixture.labels,
                                            fixture.num_classes, train_options);
    if (!trainer.ok()) {
      std::printf("trainer Create(%s) failed: %s\n", strategy.c_str(),
                  trainer.status().ToString().c_str());
      return 1;
    }
    auto before = (*trainer)->Evaluate();
    if (!before.ok()) {
      std::printf("Evaluate failed: %s\n", before.status().ToString().c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    for (uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
      auto result = (*trainer)->TrainEpoch();
      if (!result.ok()) {
        std::printf("epoch %u (%s) failed: %s\n", epoch, strategy.c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
    }
    const double ms_per_epoch =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() * 1e3 /
        kEpochs;
    auto after = (*trainer)->Evaluate();
    if (!after.ok()) {
      std::printf("Evaluate failed: %s\n", after.status().ToString().c_str());
      return 1;
    }
    train_table.AddRow({strategy, std::to_string(kEpochs), TablePrinter::Fmt(before->loss, 4),
                        TablePrinter::Fmt(after->loss, 4),
                        TablePrinter::Fmt(after->accuracy, 3),
                        TablePrinter::Fmt(ms_per_epoch, 2)});
    bench::JsonRecord record;
    record.AddString("phase", "train");
    record.AddString("strategy", strategy);
    record.AddInt("epochs", kEpochs);
    record.AddNumber("loss_before", before->loss);
    record.AddNumber("loss_after", after->loss);
    record.AddNumber("accuracy", after->accuracy);
    record.AddNumber("ms_per_epoch", ms_per_epoch);
    records.push_back(std::move(record));
  }
  std::printf("%s", train_table.Render("sampled mini-batch training by strategy").c_str());

  if (json_path) {
    if (Status status = bench::WriteJsonRecords(*json_path, records); !status.ok()) {
      std::printf("json write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (trace_path) {
    if (Status status = bench::FinishTrace(*trace_path); !status.ok()) {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) { return dgcl::Run(argc, argv); }
