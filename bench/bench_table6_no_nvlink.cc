// Table 6: one graphAllgather (feature size 128, 8 GPUs) on the second
// hardware configuration — PCIe only, no NVLink. DGCL still wins through
// contention avoidance and load balancing.

#include <cstdio>

#include "bench_util.h"
#include "planner/baselines.h"
#include "planner/spst.h"
#include "sim/swap_model.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Table 6: graphAllgather time (ms), PCIe-only 8-GPU server, dim 128");
  TablePrinter table({"Method", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"});
  const DatasetId ids[] = {DatasetId::kReddit, DatasetId::kComOrkut, DatasetId::kWebGoogle,
                           DatasetId::kWikiTalk};
  std::vector<std::string> dgcl_row = {"DGCL"};
  std::vector<std::string> swap_row = {"Swap"};
  std::vector<std::string> p2p_row = {"Peer-to-peer"};
  for (DatasetId id : ids) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn, /*nvlink=*/false);
    if (!bundle.ok()) {
      dgcl_row.push_back("n/a");
      swap_row.push_back("n/a");
      p2p_row.push_back("n/a");
      continue;
    }
    EpochSimulator& sim = (*bundle)->sim();
    SpstPlanner spst;
    PeerToPeerPlanner p2p;
    const uint32_t dim = 128;
    auto t_dgcl = sim.SimulateAllgatherSeconds(spst, dim);
    auto t_p2p = sim.SimulateAllgatherSeconds(p2p, dim);
    SwapOptions swap_opts;
    swap_opts.bytes_per_unit = dim * 4.0 * bench::InverseScale(id);
    auto t_swap = SwapExchangeSeconds(sim.relation(), (*bundle)->topology, swap_opts);
    dgcl_row.push_back(t_dgcl.ok() ? TablePrinter::Fmt(*t_dgcl * 1e3, 2) : "n/a");
    swap_row.push_back(t_swap.ok() ? TablePrinter::Fmt(*t_swap * 1e3, 2) : "n/a");
    p2p_row.push_back(t_p2p.ok() ? TablePrinter::Fmt(*t_p2p * 1e3, 2) : "n/a");
  }
  table.AddRow(dgcl_row);
  table.AddRow(swap_row);
  table.AddRow(p2p_row);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 6 (ms): DGCL 14.3/128/7.84/5.86, Swap 14.5/1220/116/317,\n"
      "P2P 17.9/179/8.72/8.51 — DGCL's edge is smaller without NVLink but it\n"
      "still wins on every graph; Swap collapses on the large graphs.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
