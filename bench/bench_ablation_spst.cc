// Ablations of the SPST design choices called out in §5.2 (not a paper
// table; see DESIGN.md):
//  * vertex-order shuffling on/off,
//  * tree-depth cap 1 (no relaying) / 2 / 4,
//  * per-vertex trees (SPST) vs one-shot direct sends (P2P) vs ring.

#include <cstdio>

#include "bench_util.h"
#include "planner/baselines.h"
#include "planner/cost_model.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

double PlanCostMs(Planner& planner, const CommRelation& rel, const Topology& topo,
                  double bytes) {
  auto plan = planner.Plan(rel, topo, bytes);
  if (!plan.ok()) {
    return -1.0;
  }
  return EvaluatePlanCost(*plan, topo, bytes) * 1e3;
}

void RunDataset(DatasetId id) {
  auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
  if (!bundle.ok()) {
    return;
  }
  const CommRelation& rel = (*bundle)->sim().relation();
  const Topology& topo = (*bundle)->topology;
  const double bytes =
      bench::BenchDataset(id).feature_dim * 4.0 * bench::InverseScale(id);

  TablePrinter table({"Variant", "plan cost (ms)", "vs default"});
  SpstPlanner spst_default;
  const double base = PlanCostMs(spst_default, rel, topo, bytes);
  auto add = [&](const std::string& name, double cost) {
    table.AddRow({name, TablePrinter::Fmt(cost, 2),
                  cost >= 0 ? TablePrinter::Fmt(cost / base, 2) + "x" : "n/a"});
  };
  add("SPST (default: shuffle, depth<=4)", base);

  SpstOptions no_shuffle;
  no_shuffle.shuffle = false;
  SpstPlanner spst_no_shuffle(no_shuffle);
  add("SPST without vertex shuffling", PlanCostMs(spst_no_shuffle, rel, topo, bytes));

  for (uint32_t depth : {1u, 2u}) {
    SpstOptions capped;
    capped.max_tree_depth = depth;
    SpstPlanner spst_capped(capped);
    add("SPST depth cap " + std::to_string(depth) + (depth == 1 ? " (no relaying)" : ""),
        PlanCostMs(spst_capped, rel, topo, bytes));
  }

  PeerToPeerPlanner p2p;
  add("Peer-to-peer (direct links)", PlanCostMs(p2p, rel, topo, bytes));
  RingPlanner ring;
  add("Ring (NCCL-style fixed pattern)", PlanCostMs(ring, rel, topo, bytes));

  std::printf("%s\n", table.Render("(" + bench::BenchDataset(id).name + ", 8 GPUs)").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader("Ablation: SPST design choices (cost-model ms, lower is better)");
  dgcl::RunDataset(dgcl::DatasetId::kReddit);
  dgcl::RunDataset(dgcl::DatasetId::kWebGoogle);
  std::printf(
      "Expected: relaying (depth >= 2) and load-aware incremental costs drive the\n"
      "win; the fixed ring moves far more traffic; shuffling has a minor effect.\n");
  return 0;
}
