// Table 5: DGCL vs DGCL-R (cross-machine replication + intra-machine DGCL)
// on 16 GPUs, for GCN and GIN on Web-Google and Reddit.
//
// Replicating across the slow IB boundary helps exactly when the model is
// cheap (GCN) and the graph sparse (Web-Google); it backfires for the
// compute-heavy GIN and for dense Reddit.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Table 5: per-epoch time (ms), DGCL vs DGCL-R, 16 GPUs");
  TablePrinter table(
      {"Model", "Web-Google DGCL", "Web-Google DGCL-R", "Reddit DGCL", "Reddit DGCL-R"});
  for (GnnModel model : {GnnModel::kGcn, GnnModel::kGin}) {
    std::vector<std::string> row = {GnnModelName(model)};
    for (DatasetId id : {DatasetId::kWebGoogle, DatasetId::kReddit}) {
      auto bundle = bench::MakeSimulator(id, 16, model);
      if (!bundle.ok()) {
        row.push_back("n/a");
        row.push_back("n/a");
        continue;
      }
      row.push_back(bench::EpochCell((*bundle)->sim().Simulate(Method::kDgcl)));
      row.push_back(bench::EpochCell((*bundle)->sim().Simulate(Method::kDgclR)));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 5 (ms): GCN 54.0/26.7 (WG), 88.4/86.4 (Reddit); GIN 94.8/107,\n"
      "53.1/71.9 — DGCL-R wins only for GCN on sparse Web-Google.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
