// Table 7: breakdown of DGCL's graphAllgather time across NVLink vs the
// other links — SPST balances the loads so both finish together (the paper
// reports relative differences of 1.8-12.6%).

#include <cmath>
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "planner/spst.h"
#include "sim/network_sim.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 7: DGCL communication time (ms) on NVLink vs other links, 8 GPUs");
  TablePrinter table({"Dataset", "NVLink", "Others", "Relative difference"});
  for (DatasetId id : {DatasetId::kWebGoogle, DatasetId::kReddit, DatasetId::kComOrkut,
                       DatasetId::kWikiTalk}) {
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (!bundle.ok()) {
      continue;
    }
    SpstPlanner spst;
    NetworkSimResult net;
    auto seconds = (*bundle)->sim().SimulateAllgatherSeconds(
        spst, bench::BenchDataset(id).feature_dim, 1.0, nullptr, &net);
    if (!seconds.ok()) {
      continue;
    }
    const Topology& topo = (*bundle)->topology;
    const double nv = std::max(net.TypeBusySeconds(topo, LinkType::kNvLink1),
                               net.TypeBusySeconds(topo, LinkType::kNvLink2)) *
                      1e3;
    const double others = std::max({net.TypeBusySeconds(topo, LinkType::kPcie),
                                    net.TypeBusySeconds(topo, LinkType::kQpi),
                                    net.TypeBusySeconds(topo, LinkType::kInfiniBand)}) *
                          1e3;
    const double rel = std::abs(nv - others) / std::max(nv, others) * 100.0;
    table.AddRow({bench::BenchDataset(id).name, TablePrinter::Fmt(nv, 3),
                  TablePrinter::Fmt(others, 3), TablePrinter::Fmt(rel, 1) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper Table 7: NVLink vs others within 1.8-12.6%% of each other — compare\n"
      "with Table 2 where P2P leaves NVLink idle 4-10x earlier.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
