// Figure 7: per-epoch time and communication time for GCN / CommNet / GIN on
// the four datasets with 8 GPUs, comparing DGCL, Swap, Peer-to-peer and
// Replication — the paper's headline result.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void RunDataset(DatasetId id) {
  TablePrinter table({"Method", "GCN epoch (comm)", "CommNet epoch (comm)", "GIN epoch (comm)"});
  const GnnModel models[] = {GnnModel::kGcn, GnnModel::kCommNet, GnnModel::kGin};
  for (Method method :
       {Method::kDgcl, Method::kSwap, Method::kPeerToPeer, Method::kReplication}) {
    std::vector<std::string> row = {MethodName(method)};
    for (GnnModel model : models) {
      auto bundle = bench::MakeSimulator(id, 8, model);
      if (!bundle.ok()) {
        row.push_back("n/a");
        continue;
      }
      auto report = (*bundle)->sim().Simulate(method);
      if (!report.ok()) {
        row.push_back("n/a");
      } else if (report->oom) {
        row.push_back("OOM");
      } else {
        row.push_back(TablePrinter::Fmt(report->EpochMs(), 1) + " (" +
                      TablePrinter::Fmt(report->comm_ms, 1) + ")");
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n",
              table.Render("(" + bench::BenchDataset(id).name + ", 8 GPUs, ms)").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader(
      "Figure 7: per-epoch time (communication time) per method, 3 models x 4 datasets, 8 GPUs");
  for (dgcl::DatasetId id : {dgcl::DatasetId::kReddit, dgcl::DatasetId::kComOrkut,
                             dgcl::DatasetId::kWebGoogle, dgcl::DatasetId::kWikiTalk}) {
    dgcl::RunDataset(id);
  }
  std::printf(
      "Paper shape: DGCL has the shortest epoch everywhere; P2P comm is ~4.45x DGCL's\n"
      "on average; Swap is worst on the three larger graphs; Replication OOMs on\n"
      "Com-Orkut and Wiki-Talk and loses badly on dense Reddit.\n");
  return 0;
}
