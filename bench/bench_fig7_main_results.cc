// Figure 7: per-epoch time and communication time for GCN / CommNet / GIN on
// the four datasets with 8 GPUs, comparing DGCL, Swap, Peer-to-peer and
// Replication — the paper's headline result.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void RunDataset(DatasetId id, bool audit) {
  TablePrinter table({"Method", "GCN epoch (comm)", "CommNet epoch (comm)", "GIN epoch (comm)"});
  const GnnModel models[] = {GnnModel::kGcn, GnnModel::kCommNet, GnnModel::kGin};
  for (Method method :
       {Method::kDgcl, Method::kSwap, Method::kPeerToPeer, Method::kReplication}) {
    std::vector<std::string> row = {MethodName(method)};
    for (GnnModel model : models) {
      auto bundle = bench::MakeSimulator(id, 8, model);
      if (!bundle.ok()) {
        row.push_back("n/a");
        continue;
      }
      auto report = (*bundle)->sim().Simulate(method);
      if (!report.ok()) {
        row.push_back("n/a");
      } else if (report->oom) {
        row.push_back("OOM");
      } else {
        row.push_back(TablePrinter::Fmt(report->EpochMs(), 1) + " (" +
                      TablePrinter::Fmt(report->comm_ms, 1) + ")");
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n",
              table.Render("(" + bench::BenchDataset(id).name + ", 8 GPUs, ms)").c_str());
  if (audit) {
    // Fig-10-style accuracy check rides along with the tracing run: per-stage
    // cost-model predictions joined against the network simulator.
    auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
    if (bundle.ok()) {
      auto report = (*bundle)->sim().AuditAllgather(bench::BenchDataset(id).feature_dim);
      if (report.ok()) {
        std::printf("%s\n", report->ToString("cost audit (" + bench::BenchDataset(id).name +
                                             ", GCN allgather)")
                                .c_str());
      } else {
        std::printf("cost audit (%s): %s\n\n", bench::BenchDataset(id).name.c_str(),
                    report.status().ToString().c_str());
      }
      // Wall-clock calibration: the same predictions joined against a real
      // engine run (bandwidth-emulated transports, per-stage spans from the
      // recorded trace). time_scale stretches emulated time far above the
      // fixed per-stage scheduler overhead (thread wakeups + flag spins cost
      // ~ms on a shared CPU box, vs ~50us of predicted wire time); observed
      // times are scaled back before the join, so the printed ratio isolates
      // coordination overhead rather than being swamped by it.
      auto engine_report = (*bundle)->sim().AuditAllgatherFromEngine(
          bench::BenchDataset(id).feature_dim, /*time_scale=*/500.0);
      if (engine_report.ok()) {
        std::printf("%s\n", engine_report
                                ->ToString("engine-trace cost audit (" +
                                           bench::BenchDataset(id).name +
                                           ", GCN allgather, emulated wire)")
                                .c_str());
      } else {
        std::printf("engine-trace cost audit (%s): %s\n\n", bench::BenchDataset(id).name.c_str(),
                    engine_report.status().ToString().c_str());
      }
      // Hidden-vs-exposed communication: the same allgather run once in
      // barrier mode and once chunked/double-buffered with an eager consumer
      // draining each chunk as its flag publishes. Per stage: how much of the
      // barrier-mode communication time stayed exposed in chunk waits and how
      // much now hides under consumption (outputs compared bitwise inside
      // the audit).
      auto overlap_report = (*bundle)->sim().AuditOverlapFromEngine(
          bench::BenchDataset(id).feature_dim, /*time_scale=*/500.0);
      if (overlap_report.ok()) {
        std::printf("%s\n", overlap_report
                                ->ToString("overlap audit (" + bench::BenchDataset(id).name +
                                           ", GCN allgather, 4 chunks, emulated wire)")
                                .c_str());
      } else {
        std::printf("overlap audit (%s): %s\n\n", bench::BenchDataset(id).name.c_str(),
                    overlap_report.status().ToString().c_str());
      }
    }
  }
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  auto trace_path = dgcl::bench::ConsumeTraceFlag(&argc, argv);
  dgcl::bench::PrintHeader(
      "Figure 7: per-epoch time (communication time) per method, 3 models x 4 datasets, 8 GPUs");
  for (dgcl::DatasetId id : {dgcl::DatasetId::kReddit, dgcl::DatasetId::kComOrkut,
                             dgcl::DatasetId::kWebGoogle, dgcl::DatasetId::kWikiTalk}) {
    dgcl::RunDataset(id, trace_path.has_value());
  }
  std::printf(
      "Paper shape: DGCL has the shortest epoch everywhere; P2P comm is ~4.45x DGCL's\n"
      "on average; Swap is worst on the three larger graphs; Replication OOMs on\n"
      "Com-Orkut and Wiki-Talk and loses badly on dense Reddit.\n");
  if (trace_path.has_value()) {
    dgcl::Status status = dgcl::bench::FinishTrace(*trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
