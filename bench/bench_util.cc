#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "telemetry/chrome_trace.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace bench {

uint32_t InverseScale(DatasetId id) {
  // Keeps the largest stand-in near a million undirected edges; see
  // EXPERIMENTS.md ("Scale substitutions").
  switch (id) {
    case DatasetId::kReddit:
      return 32;
    case DatasetId::kComOrkut:
      return 64;
    case DatasetId::kWebGoogle:
      return 16;
    case DatasetId::kWikiTalk:
      return 64;
  }
  return 16;
}

const Dataset& BenchDataset(DatasetId id) {
  static std::map<DatasetId, Dataset> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, MakeDataset(id, InverseScale(id))).first;
    std::fprintf(stderr, "[bench] generated %s stand-in: %u vertices, %llu edges\n",
                 it->second.name.c_str(), it->second.graph.num_vertices(),
                 static_cast<unsigned long long>(it->second.graph.num_edges()));
  }
  return it->second;
}

EpochOptions PaperOptions(DatasetId id, GnnModel model) {
  EpochOptions opts;
  opts.gnn = model;
  opts.num_layers = 2;
  opts.inverse_scale = InverseScale(id);
  // Compute-model calibration: effective V100 throughputs chosen so the
  // compute/communication split lands in the regime of Figure 7 (see
  // EXPERIMENTS.md for the derivation).
  opts.compute.dense_flops = 7e12;
  opts.compute.sparse_flops = 1.1e12;
  opts.compute.layer_overhead_s = 3e-4;
  opts.net.per_op_latency_s = 2e-5;
  return opts;
}

Result<std::unique_ptr<SimBundle>> MakeSimulator(DatasetId id, uint32_t gpus, GnnModel model,
                                                 bool nvlink) {
  auto bundle = std::make_unique<SimBundle>();
  bundle->topology = BuildPaperTopology(gpus, nvlink);
  EpochOptions opts = PaperOptions(id, model);
  if (gpus > 8) {
    bundle->machine_topology = BuildPaperTopology(gpus / 2, nvlink);
    opts.machine_topology = &bundle->machine_topology;
  }
  DGCL_ASSIGN_OR_RETURN(EpochSimulator sim,
                        EpochSimulator::Create(BenchDataset(id), bundle->topology, opts));
  bundle->simulator.emplace(std::move(sim));
  return bundle;
}

std::string EpochCell(const Result<EpochReport>& report) {
  if (!report.ok()) {
    return "n/a";
  }
  if (report->oom) {
    return "OOM";
  }
  return TablePrinter::Fmt(report->EpochMs(), 1);
}

std::string CommCell(const Result<EpochReport>& report) {
  if (!report.ok()) {
    return "n/a";
  }
  if (report->oom) {
    return "OOM";
  }
  return TablePrinter::Fmt(report->comm_ms, 1);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void JsonRecord::AddString(const std::string& key, const std::string& value) {
  fields.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void JsonRecord::AddNumber(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  fields.emplace_back(key, buf);
}

void JsonRecord::AddInt(const std::string& key, uint64_t value) {
  fields.emplace_back(key, std::to_string(value));
}

std::optional<std::string> ConsumeJsonFlag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) {
        argv[j] = argv[j + 2];
      }
      *argc -= 2;
      return path;
    }
  }
  return std::nullopt;
}

std::optional<std::string> ConsumeTraceFlag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < *argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) {
        argv[j] = argv[j + 2];
      }
      *argc -= 2;
      telemetry::Telemetry::Get().SetEnabled(true);
      return path;
    }
  }
  return std::nullopt;
}

Status FinishTrace(const std::string& path) {
  telemetry::Telemetry::Get().SetEnabled(false);
  telemetry::Trace trace = telemetry::Telemetry::Get().Collect();
  DGCL_RETURN_IF_ERROR(telemetry::WriteChromeTrace(trace, path));
  std::printf("%s", telemetry::RenderTraceSummary(trace, "trace summary").c_str());
  std::printf("trace written to %s (%zu events)\n", path.c_str(), trace.events.size());
  return Status::Ok();
}

Status WriteJsonRecords(const std::string& path, const std::vector<JsonRecord>& records) {
  // Write-then-rename so readers tracking the file across bench re-runs
  // (perf dashboards, reproduce.sh consumers) never observe a truncated
  // array: the target either holds its previous contents or the complete new
  // ones. rename(2) is atomic within a filesystem, and the temp file lives
  // next to the target so the rename never crosses one.
  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open " + tmp_path + " for writing");
  }
  out << "[\n";
  for (size_t r = 0; r < records.size(); ++r) {
    out << "  {";
    for (size_t f = 0; f < records[r].fields.size(); ++f) {
      out << "\"" << JsonEscape(records[r].fields[f].first)
          << "\": " << records[r].fields[f].second;
      if (f + 1 < records[r].fields.size()) {
        out << ", ";
      }
    }
    out << "}" << (r + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  out.close();
  if (!out) {
    std::remove(tmp_path.c_str());
    return Status::Internal("error writing " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

void PrintHeader(const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("(simulated full-size equivalents; see EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace dgcl
