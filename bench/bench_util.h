// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper. This
// helper fixes the dataset scales, compute-model calibration and epoch
// options so all benches measure the same simulated world; EXPERIMENTS.md
// documents the constants.

#ifndef DGCL_BENCH_BENCH_UTIL_H_
#define DGCL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/table_printer.h"
#include "graph/generators.h"
#include "sim/epoch_sim.h"
#include "topology/presets.h"

namespace dgcl {
namespace bench {

// Scale reduction per dataset (chosen so the largest stand-in stays around a
// million edges and every bench runs in seconds on one core). All reported
// times are full-size equivalents via EpochOptions::inverse_scale.
uint32_t InverseScale(DatasetId id);

// Cached stand-in dataset (generated once per process).
const Dataset& BenchDataset(DatasetId id);

// Epoch options with the calibrated compute model and the dataset's scale.
EpochOptions PaperOptions(DatasetId id, GnnModel model);

// An EpochSimulator for (dataset, gpu count), using the paper topology
// (<= 8 GPUs: one machine; 16: two machines). The per-machine topology for
// DGCL-R is wired automatically for 16 GPUs. Heap-allocated so the internal
// topology pointers stay stable.
struct SimBundle {
  Topology topology;
  Topology machine_topology;  // used when gpus > 8
  std::optional<EpochSimulator> simulator;

  EpochSimulator& sim() { return *simulator; }
};
Result<std::unique_ptr<SimBundle>> MakeSimulator(DatasetId id, uint32_t gpus, GnnModel model,
                                                 bool nvlink = true);

// Formats "12.3" / "OOM" cells for per-epoch tables.
std::string EpochCell(const Result<EpochReport>& report);
std::string CommCell(const Result<EpochReport>& report);

void PrintHeader(const std::string& what);

// ---- Machine-readable bench output ----------------------------------------
//
// Benches accumulate flat records and, when the user passes `--json <path>`,
// write them as a JSON array of objects so the perf trajectory can be tracked
// across revisions (e.g. BENCH_table8.json from scripts/reproduce.sh).

struct JsonRecord {
  // Field order is preserved; values are stored pre-encoded.
  std::vector<std::pair<std::string, std::string>> fields;

  void AddString(const std::string& key, const std::string& value);
  void AddNumber(const std::string& key, double value);
  void AddInt(const std::string& key, uint64_t value);
};

// Strips a "--json <path>" pair from argv (so downstream flag parsers, e.g.
// google-benchmark's, never see it) and returns the path when present.
std::optional<std::string> ConsumeJsonFlag(int* argc, char** argv);

// Writes the records as a JSON array; parent directory must exist.
Status WriteJsonRecords(const std::string& path, const std::vector<JsonRecord>& records);

// ---- Tracing ---------------------------------------------------------------
//
// Every bench accepts `--trace <path>`: telemetry recording is switched on
// for the run and, on exit, the collected trace is written as Chrome-trace
// JSON (loadable in Perfetto / chrome://tracing) with a compact per-event
// summary printed to stdout. `tools/dgcl_trace` post-processes these files.

// Strips a "--trace <path>" pair from argv and, when present, enables
// process-wide telemetry recording before returning the path.
std::optional<std::string> ConsumeTraceFlag(int* argc, char** argv);

// Collects the process-wide trace, writes it to `path` as Chrome-trace JSON
// and prints the summary table. No-op trace (zero events) still writes a
// valid file so downstream tooling never sees a missing artifact.
Status FinishTrace(const std::string& path);

}  // namespace bench
}  // namespace dgcl

#endif  // DGCL_BENCH_BENCH_UTIL_H_
