// Serving tier under open-loop load: latency percentiles, cache hit rate and
// throughput vs shard count, a mid-load shard kill, plus the replica tier:
// throughput vs replicas-per-shard and a kill-replicas-under-load contract.
//
// An open-loop generator submits mini-batch sample+inference requests on a
// fixed schedule regardless of completions (so a saturated service shows up
// as shed requests and fat tails, not as a silently slowed generator), round-
// robin across shards, while a drain thread collects responses. For each
// (shard count, cache policy) the bench reports p50/p99/p999 end-to-end
// latency, the feature cache's measured hit rate (the number EXPERIMENTS.md
// feeds back into EpochOptions::cache_hit_rate), and completed throughput.
// The shard-kill phase kills one shard mid-load and checks the failure
// contract: every request touching the dead shard completes kUnavailable
// naming it as suspect — no hangs, no drops.
//
// The replica phases run a CLOSED-loop saturating read-heavy workload
// (remote fetches pay real emulated wire latency, so workers block on the
// wire and extra replicas buy genuine concurrency even on small hosts):
//  * sweep — R in {1, 2, 3}, same request schedule each run; reports
//    completed throughput and an order-independent response digest. The
//    read-scaling contract requires R=2 to out-serve R=1.
//  * kill — R=2, one replica of EVERY shard killed mid-load; the contract
//    requires zero kUnavailable (survivors absorb everything) and a digest
//    byte-identical to the unkilled R=1 run.
//
// Usage: bench_serving [--json out.json] [--trace out.json]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/percentile.h"
#include "common/table_printer.h"
#include "service/service.h"

namespace dgcl {
namespace {

constexpr uint32_t kRequestsPerConfig = 1200;
constexpr double kOfferedRps = 3000.0;  // open-loop schedule, per config

struct LoadResult {
  uint64_t completed = 0;
  uint64_t unavailable = 0;
  uint64_t shed = 0;
  uint64_t suspect_named = 0;  // kUnavailable responses naming a suspect
  std::vector<double> latencies_ms;  // OK responses
  double max_unavailable_ms = 0.0;
  double wall_seconds = 0.0;
};

// Offers `num_requests` requests at kOfferedRps, round-robin over the alive
// shards (dead ones keep receiving traffic — that is the point of the kill
// phase). `kill_shard` != kInvalidId kills that shard after half the load.
LoadResult OfferLoad(GraphService& service, uint32_t num_requests, uint64_t seed_base,
                     uint32_t kill_shard) {
  LoadResult result;
  std::vector<SampleResponse> responses;
  responses.reserve(num_requests);
  std::thread drainer([&] {
    // The generator stops producing once every accepted request is answered;
    // a bounded pop keeps the drainer from hanging if the contract breaks.
    while (true) {
      std::optional<SampleResponse> response = service.PopResponse(200'000);
      if (!response) {
        break;
      }
      responses.push_back(std::move(*response));
    }
  });

  const uint32_t num_shards = service.options().num_shards;
  const auto start = std::chrono::steady_clock::now();
  const double period_s = 1.0 / kOfferedRps;
  uint64_t accepted = 0;
  for (uint32_t i = 0; i < num_requests; ++i) {
    // Open loop: wait until this request's scheduled offset, never earlier.
    const auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(i * period_s));
    std::this_thread::sleep_until(due);
    if (kill_shard != kInvalidId && i == num_requests / 2) {
      Status killed = service.KillShard(kill_shard);
      if (!killed.ok()) {
        std::printf("KillShard failed: %s\n", killed.ToString().c_str());
      }
    }
    SampleRequest request;
    request.request_id = i;
    request.shard = i % num_shards;
    request.num_seeds = 16;
    request.sample.seed = seed_base + i;
    request.run_inference = (i % 8) == 0;
    Status status = service.Submit(std::move(request));
    if (status.ok()) {
      ++accepted;
    } else {
      ++result.shed;
    }
  }
  // Every accepted request must produce exactly one response; wait for them.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (responses.size() + 0 < accepted && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.Stop();  // closes the response queue; drainer exits after draining
  drainer.join();

  for (const SampleResponse& response : responses) {
    if (response.status.ok()) {
      ++result.completed;
      result.latencies_ms.push_back(response.latency_seconds * 1e3);
    } else if (response.status.code() == StatusCode::kUnavailable) {
      ++result.unavailable;
      if (!response.suspects.empty()) {
        ++result.suspect_named;
      }
      result.max_unavailable_ms =
          std::max(result.max_unavailable_ms, response.latency_seconds * 1e3);
    }
  }
  return result;
}

// ---- replica phases ---------------------------------------------------------

constexpr uint32_t kReplicaRequests = 600;
constexpr uint32_t kReplicaWindow = 48;  // closed-loop in-flight cap

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

// Order-independent digest of one response's payload: responses arrive in
// arbitrary order, so per-request digests are XOR-combined. Equal aggregate
// digests across runs mean every request got byte-identical nodes+features.
uint64_t ResponseDigest(const SampleResponse& response) {
  uint64_t h = Fnv1a(&response.request_id, sizeof(response.request_id), 1469598103934665603ull);
  h = Fnv1a(response.nodes.data(), response.nodes.size() * sizeof(VertexId), h);
  h = Fnv1a(response.features.data.data(), response.features.data.size() * sizeof(float), h);
  return h;
}

// The read-heavy replica workload: remote-row fetches pay 1 ms of emulated
// wire latency per owner (all transports), the cache is tiny, inference is
// off — a request's service time is dominated by blocked wire waits, so
// throughput scales with how many requests the shard can have on the wire
// at once, i.e. with its replica pool width.
ServiceOptions ReplicaOptions(uint32_t replicas) {
  ServiceOptions options;
  options.num_shards = 4;
  options.samplers_per_shard = 2;
  options.replication.replicas = replicas;
  options.cache_capacity_rows = 64;
  options.faults.latency_micros = 1000;
  options.faults.all_transports = true;
  return options;
}

struct ReplicaLoadResult {
  uint64_t completed = 0;
  uint64_t unavailable = 0;
  uint64_t failed_other = 0;
  uint64_t shed = 0;
  double wall_seconds = 0.0;
  uint64_t digest = 0;
};

// Closed-loop load: up to kReplicaWindow requests in flight, so the service
// runs saturated but never sheds. `kill_one_replica_per_shard` kills replica
// 0 of every shard after half the load. Stops the service before returning.
ReplicaLoadResult SaturateLoad(GraphService& service, uint32_t num_requests, uint64_t seed_base,
                               bool kill_one_replica_per_shard) {
  ReplicaLoadResult result;
  std::mutex mutex;
  std::condition_variable cv;
  uint32_t in_flight = 0;
  std::atomic<bool> submitted_all{false};
  std::atomic<bool> stop_draining{false};
  std::atomic<uint64_t> digest{0};

  const auto start = std::chrono::steady_clock::now();
  std::thread drainer([&] {
    while (true) {
      std::optional<SampleResponse> response = service.PopResponse(200'000);
      if (!response) {
        if (stop_draining.load(std::memory_order_acquire)) {
          return;  // service stopped: a still-nonzero in_flight is a lost response
        }
        if (submitted_all.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(mutex);
          if (in_flight == 0) {
            return;
          }
        }
        continue;
      }
      if (response->status.ok()) {
        ++result.completed;
        digest.fetch_xor(ResponseDigest(*response), std::memory_order_relaxed);
      } else if (response->status.code() == StatusCode::kUnavailable) {
        ++result.unavailable;
      } else {
        ++result.failed_other;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        --in_flight;
      }
      cv.notify_all();
    }
  });

  const uint32_t num_shards = service.options().num_shards;
  for (uint32_t i = 0; i < num_requests; ++i) {
    if (kill_one_replica_per_shard && i == num_requests / 2) {
      for (uint32_t s = 0; s < num_shards; ++s) {
        Status killed = service.KillReplica(s, 0);
        if (!killed.ok()) {
          std::printf("KillReplica(%u, 0) failed: %s\n", s, killed.ToString().c_str());
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return in_flight < kReplicaWindow; });
      ++in_flight;
    }
    SampleRequest request;
    request.request_id = i;
    request.shard = i % num_shards;
    request.num_seeds = 6;
    request.sample = {2, 4, seed_base + i};
    request.return_features = true;
    Status status = service.Submit(std::move(request));
    if (!status.ok()) {
      ++result.shed;
      std::lock_guard<std::mutex> lock(mutex);
      --in_flight;
    }
  }
  submitted_all.store(true, std::memory_order_release);
  {
    // Bounded wait so a broken contract (lost response) cannot hang the
    // bench; the drainer notices in_flight == 0 on its next poll.
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return in_flight == 0; });
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  stop_draining.store(true, std::memory_order_release);
  service.Stop();
  drainer.join();
  result.digest = digest.load(std::memory_order_relaxed);
  return result;
}

int Run(int argc, char** argv) {
  auto json_path = bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = bench::ConsumeTraceFlag(&argc, argv);
  bench::PrintHeader("Graph service tier: open-loop serving latency vs shard count");

  Dataset dataset = MakeDataset(DatasetId::kReddit, bench::InverseScale(DatasetId::kReddit) * 4);
  std::printf("dataset %s: %u vertices, %llu edges\n\n", dataset.name.c_str(),
              dataset.graph.num_vertices(),
              static_cast<unsigned long long>(dataset.graph.num_edges()));

  const uint32_t kShardCounts[] = {2, 4, 8};
  const char* kPolicies[] = {"lru", "lfu"};

  TablePrinter table({"Shards", "Policy", "Offered", "Shed", "p50 ms", "p99 ms", "p999 ms",
                      "Hit rate", "req/s"});
  std::vector<bench::JsonRecord> records;
  for (uint32_t shards : kShardCounts) {
    for (const char* policy : kPolicies) {
      ServiceOptions options;
      options.num_shards = shards;
      options.samplers_per_shard = 2;
      options.cache_policy = policy;
      options.cache_capacity_rows = 256;  // well under the remote set: evictions happen
      auto service = GraphService::Create(dataset.graph, options);
      if (!service.ok()) {
        std::printf("Create(%u, %s) failed: %s\n", shards, policy,
                    service.status().ToString().c_str());
        return 1;
      }
      (*service)->Start();
      LoadResult load = OfferLoad(**service, kRequestsPerConfig, 1000ull * shards, kInvalidId);
      const FeatureCache::Stats cache = (*service)->cache().stats();
      const double p50 = Percentile(load.latencies_ms, 0.50);
      const double p99 = Percentile(load.latencies_ms, 0.99);
      const double p999 = Percentile(load.latencies_ms, 0.999);
      const double rps = load.wall_seconds > 0
                             ? static_cast<double>(load.completed) / load.wall_seconds
                             : 0.0;
      table.AddRow({std::to_string(shards), policy, std::to_string(kRequestsPerConfig),
                    std::to_string(load.shed), TablePrinter::Fmt(p50, 3),
                    TablePrinter::Fmt(p99, 3), TablePrinter::Fmt(p999, 3),
                    TablePrinter::Fmt(cache.HitRate(), 3), TablePrinter::Fmt(rps, 0)});
      bench::JsonRecord record;
      record.AddString("phase", "steady");
      record.AddInt("shards", shards);
      record.AddString("cache_policy", policy);
      record.AddInt("offered", kRequestsPerConfig);
      record.AddInt("completed", load.completed);
      record.AddInt("shed", load.shed);
      record.AddNumber("p50_ms", p50);
      record.AddNumber("p99_ms", p99);
      record.AddNumber("p999_ms", p999);
      record.AddNumber("cache_hit_rate", cache.HitRate());
      record.AddInt("cache_evictions", cache.evictions);
      record.AddNumber("throughput_rps", rps);
      records.push_back(std::move(record));
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // ---- kill phase: one shard dies under load --------------------------------
  {
    ServiceOptions options;
    options.num_shards = 4;
    options.samplers_per_shard = 2;
    options.cache_capacity_rows = 256;
    auto service = GraphService::Create(dataset.graph, options);
    if (!service.ok()) {
      std::printf("kill-phase Create failed: %s\n", service.status().ToString().c_str());
      return 1;
    }
    (*service)->Start();
    const uint32_t kill_shard = 1;
    LoadResult load = OfferLoad(**service, kRequestsPerConfig, 7000, kill_shard);
    const bool contract_held = load.unavailable > 0 && load.suspect_named == load.unavailable;
    std::printf(
        "kill phase (4 shards, shard %u dies mid-load): %llu ok, %llu unavailable "
        "(%llu naming a suspect), %llu shed, slowest failure %.3f ms — contract %s\n",
        kill_shard, static_cast<unsigned long long>(load.completed),
        static_cast<unsigned long long>(load.unavailable),
        static_cast<unsigned long long>(load.suspect_named),
        static_cast<unsigned long long>(load.shed), load.max_unavailable_ms,
        contract_held ? "HELD" : "VIOLATED");
    bench::JsonRecord record;
    record.AddString("phase", "kill");
    record.AddInt("shards", 4);
    record.AddInt("killed_shard", kill_shard);
    record.AddInt("completed", load.completed);
    record.AddInt("unavailable", load.unavailable);
    record.AddInt("suspect_named", load.suspect_named);
    record.AddInt("shed", load.shed);
    record.AddNumber("max_unavailable_ms", load.max_unavailable_ms);
    record.AddString("contract", contract_held ? "held" : "violated");
    records.push_back(std::move(record));
    if (!contract_held) {
      return 1;
    }
  }

  // ---- replica sweep: throughput vs replicas-per-shard ----------------------
  uint64_t r1_digest = 0;
  double r1_rps = 0.0;
  double r2_rps = 0.0;
  {
    TablePrinter replica_table(
        {"Replicas", "Routing", "Offered", "Completed", "Unavail", "req/s", "Digest"});
    for (uint32_t replicas : {1u, 2u, 3u}) {
      auto service = GraphService::Create(dataset.graph, ReplicaOptions(replicas));
      if (!service.ok()) {
        std::printf("replica-sweep Create(R=%u) failed: %s\n", replicas,
                    service.status().ToString().c_str());
        return 1;
      }
      (*service)->Start();
      ReplicaLoadResult load =
          SaturateLoad(**service, kReplicaRequests, /*seed_base=*/5000, false);
      const double rps = load.wall_seconds > 0
                             ? static_cast<double>(load.completed) / load.wall_seconds
                             : 0.0;
      if (replicas == 1) {
        r1_digest = load.digest;
        r1_rps = rps;
      } else if (replicas == 2) {
        r2_rps = rps;
      }
      char digest_hex[32];
      std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                    static_cast<unsigned long long>(load.digest));
      replica_table.AddRow({std::to_string(replicas), "round-robin",
                            std::to_string(kReplicaRequests), std::to_string(load.completed),
                            std::to_string(load.unavailable), TablePrinter::Fmt(rps, 0),
                            digest_hex});
      bench::JsonRecord record;
      record.AddString("phase", "replica-sweep");
      record.AddInt("shards", 4);
      record.AddInt("replicas", replicas);
      record.AddString("routing", "round-robin");
      record.AddInt("offered", kReplicaRequests);
      record.AddInt("completed", load.completed);
      record.AddInt("unavailable", load.unavailable);
      record.AddInt("shed", load.shed);
      record.AddNumber("throughput_rps", rps);
      record.AddString("digest", digest_hex);
      record.AddString("digest_matches_r1", load.digest == r1_digest ? "yes" : "no");
      records.push_back(std::move(record));
    }
    const bool scaling_held = r2_rps > r1_rps;
    std::printf("%s", replica_table.Render("replica sweep (read-heavy, closed-loop)").c_str());
    std::printf("read scaling: R=2 %.0f req/s vs R=1 %.0f req/s — contract %s\n\n", r2_rps,
                r1_rps, scaling_held ? "HELD" : "VIOLATED");
    if (!scaling_held) {
      return 1;
    }
  }

  // ---- replica kill: one replica of every shard dies under load -------------
  {
    auto service = GraphService::Create(dataset.graph, ReplicaOptions(2));
    if (!service.ok()) {
      std::printf("replica-kill Create failed: %s\n", service.status().ToString().c_str());
      return 1;
    }
    (*service)->Start();
    ReplicaLoadResult load = SaturateLoad(**service, kReplicaRequests, /*seed_base=*/5000, true);
    const ServiceStats stats = (*service)->stats();
    // The contract: survivors absorb everything — every request completes OK
    // (zero kUnavailable, zero drops) and the payloads are byte-identical to
    // the unkilled R=1 run of the same schedule.
    const bool contract_held = load.unavailable == 0 && load.failed_other == 0 &&
                               load.shed == 0 && load.completed == kReplicaRequests &&
                               load.digest == r1_digest;
    std::printf(
        "replica kill (4 shards x R=2, replica 0 of every shard dies mid-load): %llu ok, "
        "%llu unavailable, %llu shed, %llu failovers, %llu replica kills, digest %s R=1 — "
        "contract %s\n",
        static_cast<unsigned long long>(load.completed),
        static_cast<unsigned long long>(load.unavailable),
        static_cast<unsigned long long>(load.shed),
        static_cast<unsigned long long>(stats.failovers),
        static_cast<unsigned long long>(stats.replica_kills),
        load.digest == r1_digest ? "==" : "!=", contract_held ? "HELD" : "VIOLATED");
    bench::JsonRecord record;
    record.AddString("phase", "replica-kill");
    record.AddInt("shards", 4);
    record.AddInt("replicas", 2);
    record.AddInt("offered", kReplicaRequests);
    record.AddInt("completed", load.completed);
    record.AddInt("unavailable", load.unavailable);
    record.AddInt("shed", load.shed);
    record.AddInt("failovers", stats.failovers);
    record.AddInt("replica_kills", stats.replica_kills);
    record.AddString("digest_matches_unkilled_r1", load.digest == r1_digest ? "yes" : "no");
    record.AddString("contract", contract_held ? "held" : "violated");
    records.push_back(std::move(record));
    if (!contract_held) {
      return 1;
    }
  }

  if (json_path) {
    if (Status status = bench::WriteJsonRecords(*json_path, records); !status.ok()) {
      std::printf("json write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (trace_path) {
    if (Status status = bench::FinishTrace(*trace_path); !status.ok()) {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) { return dgcl::Run(argc, argv); }
