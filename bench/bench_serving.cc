// Serving tier under open-loop load: latency percentiles, cache hit rate and
// throughput vs shard count, plus a mid-load shard kill.
//
// An open-loop generator submits mini-batch sample+inference requests on a
// fixed schedule regardless of completions (so a saturated service shows up
// as shed requests and fat tails, not as a silently slowed generator), round-
// robin across shards, while a drain thread collects responses. For each
// (shard count, cache policy) the bench reports p50/p99/p999 end-to-end
// latency, the feature cache's measured hit rate (the number EXPERIMENTS.md
// feeds back into EpochOptions::cache_hit_rate), and completed throughput.
// The final phase kills one shard mid-load and checks the failure contract:
// every request touching the dead shard completes kUnavailable naming it as
// suspect — no hangs, no drops.
//
// Usage: bench_serving [--json out.json] [--trace out.json]

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/percentile.h"
#include "common/table_printer.h"
#include "service/service.h"

namespace dgcl {
namespace {

constexpr uint32_t kRequestsPerConfig = 1200;
constexpr double kOfferedRps = 3000.0;  // open-loop schedule, per config

struct LoadResult {
  uint64_t completed = 0;
  uint64_t unavailable = 0;
  uint64_t shed = 0;
  uint64_t suspect_named = 0;  // kUnavailable responses naming a suspect
  std::vector<double> latencies_ms;  // OK responses
  double max_unavailable_ms = 0.0;
  double wall_seconds = 0.0;
};

// Offers `num_requests` requests at kOfferedRps, round-robin over the alive
// shards (dead ones keep receiving traffic — that is the point of the kill
// phase). `kill_shard` != kInvalidId kills that shard after half the load.
LoadResult OfferLoad(GraphService& service, uint32_t num_requests, uint64_t seed_base,
                     uint32_t kill_shard) {
  LoadResult result;
  std::vector<SampleResponse> responses;
  responses.reserve(num_requests);
  std::thread drainer([&] {
    // The generator stops producing once every accepted request is answered;
    // a bounded pop keeps the drainer from hanging if the contract breaks.
    while (true) {
      std::optional<SampleResponse> response = service.PopResponse(200'000);
      if (!response) {
        break;
      }
      responses.push_back(std::move(*response));
    }
  });

  const uint32_t num_shards = service.options().num_shards;
  const auto start = std::chrono::steady_clock::now();
  const double period_s = 1.0 / kOfferedRps;
  uint64_t accepted = 0;
  for (uint32_t i = 0; i < num_requests; ++i) {
    // Open loop: wait until this request's scheduled offset, never earlier.
    const auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(i * period_s));
    std::this_thread::sleep_until(due);
    if (kill_shard != kInvalidId && i == num_requests / 2) {
      Status killed = service.KillShard(kill_shard);
      if (!killed.ok()) {
        std::printf("KillShard failed: %s\n", killed.ToString().c_str());
      }
    }
    SampleRequest request;
    request.request_id = i;
    request.shard = i % num_shards;
    request.num_seeds = 16;
    request.sample.seed = seed_base + i;
    request.run_inference = (i % 8) == 0;
    Status status = service.Submit(std::move(request));
    if (status.ok()) {
      ++accepted;
    } else {
      ++result.shed;
    }
  }
  // Every accepted request must produce exactly one response; wait for them.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (responses.size() + 0 < accepted && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.Stop();  // closes the response queue; drainer exits after draining
  drainer.join();

  for (const SampleResponse& response : responses) {
    if (response.status.ok()) {
      ++result.completed;
      result.latencies_ms.push_back(response.latency_seconds * 1e3);
    } else if (response.status.code() == StatusCode::kUnavailable) {
      ++result.unavailable;
      if (!response.suspects.empty()) {
        ++result.suspect_named;
      }
      result.max_unavailable_ms =
          std::max(result.max_unavailable_ms, response.latency_seconds * 1e3);
    }
  }
  return result;
}

int Run(int argc, char** argv) {
  auto json_path = bench::ConsumeJsonFlag(&argc, argv);
  auto trace_path = bench::ConsumeTraceFlag(&argc, argv);
  bench::PrintHeader("Graph service tier: open-loop serving latency vs shard count");

  Dataset dataset = MakeDataset(DatasetId::kReddit, bench::InverseScale(DatasetId::kReddit) * 4);
  std::printf("dataset %s: %u vertices, %llu edges\n\n", dataset.name.c_str(),
              dataset.graph.num_vertices(),
              static_cast<unsigned long long>(dataset.graph.num_edges()));

  const uint32_t kShardCounts[] = {2, 4, 8};
  const char* kPolicies[] = {"lru", "lfu"};

  TablePrinter table({"Shards", "Policy", "Offered", "Shed", "p50 ms", "p99 ms", "p999 ms",
                      "Hit rate", "req/s"});
  std::vector<bench::JsonRecord> records;
  for (uint32_t shards : kShardCounts) {
    for (const char* policy : kPolicies) {
      ServiceOptions options;
      options.num_shards = shards;
      options.samplers_per_shard = 2;
      options.cache_policy = policy;
      options.cache_capacity_rows = 256;  // well under the remote set: evictions happen
      auto service = GraphService::Create(dataset.graph, options);
      if (!service.ok()) {
        std::printf("Create(%u, %s) failed: %s\n", shards, policy,
                    service.status().ToString().c_str());
        return 1;
      }
      (*service)->Start();
      LoadResult load = OfferLoad(**service, kRequestsPerConfig, 1000ull * shards, kInvalidId);
      const FeatureCache::Stats cache = (*service)->cache().stats();
      const double p50 = Percentile(load.latencies_ms, 0.50);
      const double p99 = Percentile(load.latencies_ms, 0.99);
      const double p999 = Percentile(load.latencies_ms, 0.999);
      const double rps = load.wall_seconds > 0
                             ? static_cast<double>(load.completed) / load.wall_seconds
                             : 0.0;
      table.AddRow({std::to_string(shards), policy, std::to_string(kRequestsPerConfig),
                    std::to_string(load.shed), TablePrinter::Fmt(p50, 3),
                    TablePrinter::Fmt(p99, 3), TablePrinter::Fmt(p999, 3),
                    TablePrinter::Fmt(cache.HitRate(), 3), TablePrinter::Fmt(rps, 0)});
      bench::JsonRecord record;
      record.AddString("phase", "steady");
      record.AddInt("shards", shards);
      record.AddString("cache_policy", policy);
      record.AddInt("offered", kRequestsPerConfig);
      record.AddInt("completed", load.completed);
      record.AddInt("shed", load.shed);
      record.AddNumber("p50_ms", p50);
      record.AddNumber("p99_ms", p99);
      record.AddNumber("p999_ms", p999);
      record.AddNumber("cache_hit_rate", cache.HitRate());
      record.AddInt("cache_evictions", cache.evictions);
      record.AddNumber("throughput_rps", rps);
      records.push_back(std::move(record));
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // ---- kill phase: one shard dies under load --------------------------------
  {
    ServiceOptions options;
    options.num_shards = 4;
    options.samplers_per_shard = 2;
    options.cache_capacity_rows = 256;
    auto service = GraphService::Create(dataset.graph, options);
    if (!service.ok()) {
      std::printf("kill-phase Create failed: %s\n", service.status().ToString().c_str());
      return 1;
    }
    (*service)->Start();
    const uint32_t kill_shard = 1;
    LoadResult load = OfferLoad(**service, kRequestsPerConfig, 7000, kill_shard);
    const bool contract_held = load.unavailable > 0 && load.suspect_named == load.unavailable;
    std::printf(
        "kill phase (4 shards, shard %u dies mid-load): %llu ok, %llu unavailable "
        "(%llu naming a suspect), %llu shed, slowest failure %.3f ms — contract %s\n",
        kill_shard, static_cast<unsigned long long>(load.completed),
        static_cast<unsigned long long>(load.unavailable),
        static_cast<unsigned long long>(load.suspect_named),
        static_cast<unsigned long long>(load.shed), load.max_unavailable_ms,
        contract_held ? "HELD" : "VIOLATED");
    bench::JsonRecord record;
    record.AddString("phase", "kill");
    record.AddInt("shards", 4);
    record.AddInt("killed_shard", kill_shard);
    record.AddInt("completed", load.completed);
    record.AddInt("unavailable", load.unavailable);
    record.AddInt("suspect_named", load.suspect_named);
    record.AddInt("shed", load.shed);
    record.AddNumber("max_unavailable_ms", load.max_unavailable_ms);
    record.AddString("contract", contract_held ? "held" : "violated");
    records.push_back(std::move(record));
    if (!contract_held) {
      return 1;
    }
  }

  if (json_path) {
    if (Status status = bench::WriteJsonRecords(*json_path, records); !status.ok()) {
      std::printf("json write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (trace_path) {
    if (Status status = bench::FinishTrace(*trace_path); !status.ok()) {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) { return dgcl::Run(argc, argv); }
