// Multi-NIC clusters: the paper's 16-GPU results bottleneck on one shared IB
// card per machine ("the GPUs on one machine communicate with peers on the
// other machine using the same IB NIC card"). Figure 3 shows four NICs; this
// extension asks how much of the 16-GPU scaling wall that single card costs.

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run() {
  bench::PrintHeader("Extension: NICs per machine vs 16-GPU epoch (GCN, 2x8 over IB)");
  TablePrinter table({"Dataset", "NICs", "DGCL epoch (ms)", "DGCL comm (ms)"});
  for (DatasetId id : {DatasetId::kReddit, DatasetId::kComOrkut}) {
    for (uint32_t nics : {1u, 2u, 4u}) {
      MachineConfig config;
      config.num_gpus = 8;
      config.nics_per_machine = nics;
      auto bundle = std::make_unique<bench::SimBundle>();
      bundle->topology = BuildCluster(2, config);
      bundle->machine_topology = BuildSingleMachine(config);
      EpochOptions opts = bench::PaperOptions(id, GnnModel::kGcn);
      opts.machine_topology = &bundle->machine_topology;
      auto sim = EpochSimulator::Create(bench::BenchDataset(id), bundle->topology, opts);
      if (!sim.ok()) {
        continue;
      }
      auto report = sim->Simulate(Method::kDgcl);
      table.AddRow({bench::BenchDataset(id).name, TablePrinter::FmtInt(nics),
                    bench::EpochCell(report), bench::CommCell(report)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "More NICs shard the cross-machine traffic; the 16-GPU communication wall\n"
      "of Figure 8 is largely an artifact of the single shared IB card.\n");
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::Run();
  return 0;
}
