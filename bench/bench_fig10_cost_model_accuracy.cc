// Figure 10: relation between the cost-model estimate and the actual
// (simulated) time of one graphAllgather, swept by communicating only a
// fraction of the vertices. The paper reports a linear relation with <5%
// divergence from the fitted line in most cases.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

void RunDataset(DatasetId id, bool audit) {
  auto bundle = bench::MakeSimulator(id, 8, GnnModel::kGcn);
  if (!bundle.ok()) {
    return;
  }
  EpochSimulator& sim = (*bundle)->sim();
  SpstPlanner spst;
  TablePrinter table({"volume fraction", "estimated cost (ms)", "actual time (ms)"});
  std::vector<double> est;
  std::vector<double> act;
  for (double fraction : {0.25, 0.4, 0.55, 0.7, 0.85, 1.0}) {
    double estimated = 0.0;
    auto seconds = sim.SimulateAllgatherSeconds(spst, bench::BenchDataset(id).feature_dim,
                                                fraction, &estimated);
    if (!seconds.ok()) {
      continue;
    }
    est.push_back(estimated * 1e3);
    act.push_back(*seconds * 1e3);
    table.AddRow({TablePrinter::Fmt(fraction, 2), TablePrinter::Fmt(estimated * 1e3, 3),
                  TablePrinter::Fmt(*seconds * 1e3, 3)});
  }
  // Least-squares fit actual = a * estimated + b; report max divergence.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(est.size());
  for (size_t i = 0; i < est.size(); ++i) {
    sx += est[i];
    sy += act[i];
    sxx += est[i] * est[i];
    sxy += est[i] * act[i];
  }
  const double a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double b = (sy - a * sx) / n;
  double max_divergence = 0.0;
  for (size_t i = 0; i < est.size(); ++i) {
    const double fitted = a * est[i] + b;
    max_divergence = std::max(max_divergence, std::abs(act[i] - fitted) / fitted);
  }
  std::printf("%s", table.Render("(" + bench::BenchDataset(id).name + ")").c_str());
  std::printf("fitted line: actual = %.3f * estimated + %.3f ms; max divergence %.1f%%\n\n",
              a, b, max_divergence * 100);
  if (audit) {
    auto report = sim.AuditAllgather(bench::BenchDataset(id).feature_dim);
    if (report.ok()) {
      std::printf("%s\n", report->ToString("per-stage cost audit (" +
                                           bench::BenchDataset(id).name + ")")
                              .c_str());
    }
  }
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  auto trace_path = dgcl::bench::ConsumeTraceFlag(&argc, argv);
  dgcl::bench::PrintHeader(
      "Figure 10: cost-model estimate vs simulated graphAllgather time, 8 GPUs");
  dgcl::RunDataset(dgcl::DatasetId::kWebGoogle, true);
  dgcl::RunDataset(dgcl::DatasetId::kReddit, true);
  std::printf("Paper shape: linear relation, divergence from the fitted line below ~5%%.\n");
  if (trace_path.has_value()) {
    dgcl::Status status = dgcl::bench::FinishTrace(*trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
