// Ablation: class-batching chunk size (not a paper table; see DESIGN.md,
// "Batched planning").
//
// Sweeps SpstOptions::max_class_units with the adaptive floor disabled
// (min_chunks = 0) so the chunk bound acts verbatim, isolating its effect:
//  * max_class_units = 0  — the seed per-vertex planner (one tree per vertex),
//  * small bounds         — many chunks, near per-vertex balance, slower,
//  * large bounds         — few chunks, fastest planning, coarser commits.
// Also prints the default configuration (adaptive floor on) and the class
// compression statistics (vertices -> classes -> trees planned).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "partition/multilevel.h"
#include "planner/cost_model.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

struct SweepPoint {
  std::string label;
  bool ok = false;
  double planning_ms = 0.0;
  double plan_cost_ms = 0.0;
  size_t trees = 0;
};

SweepPoint RunPoint(const std::string& label, const CommClasses& classes, const Topology& topo,
                    double bytes, const SpstOptions& options) {
  SweepPoint point;
  point.label = label;
  SpstPlanner planner(options);
  WallTimer timer;
  auto class_plan = planner.PlanClasses(classes, topo, bytes);
  point.planning_ms = timer.ElapsedSeconds() * 1e3;
  if (!class_plan.ok()) {
    return point;
  }
  point.ok = true;
  point.trees = class_plan->trees.size();
  CommPlan plan = ExpandClassPlan(*class_plan, classes);
  point.plan_cost_ms = EvaluatePlanCost(plan, topo, bytes) * 1e3;
  return point;
}

void RunDataset(DatasetId id, uint32_t gpus) {
  MultilevelPartitioner metis;
  auto parts = metis.Partition(bench::BenchDataset(id).graph, gpus);
  auto rel = BuildCommRelation(bench::BenchDataset(id).graph, *parts);
  if (!rel.ok()) {
    return;
  }
  const CommClasses classes = BuildCommClasses(*rel);
  Topology topo = BuildPaperTopology(gpus);
  const double bytes = bench::BenchDataset(id).feature_dim * 4.0;

  const size_t vertices = rel->VerticesWithDestinations().size();
  std::printf("%s, %u GPUs: %zu vertices with destinations -> %zu classes (%.1fx)\n",
              bench::BenchDataset(id).name.c_str(), gpus, vertices, classes.classes.size(),
              classes.classes.empty()
                  ? 0.0
                  : static_cast<double>(vertices) / static_cast<double>(classes.classes.size()));

  std::vector<SweepPoint> points;
  {
    SpstOptions per_vertex;
    per_vertex.max_class_units = 0;
    points.push_back(RunPoint("per-vertex (seed)", classes, topo, bytes, per_vertex));
  }
  for (uint32_t units : {64u, 128u, 256u, 1024u, 4096u}) {
    SpstOptions opts;
    opts.max_class_units = units;
    opts.min_chunks = 0;  // isolate the chunk bound from the adaptive floor
    points.push_back(
        RunPoint("chunk <= " + std::to_string(units), classes, topo, bytes, opts));
  }
  points.push_back(RunPoint("default (adaptive floor)", classes, topo, bytes, SpstOptions{}));

  const SweepPoint& base = points.front();
  TablePrinter table({"Variant", "trees", "planning ms", "speedup", "plan cost ms",
                      "cost delta"});
  for (const SweepPoint& p : points) {
    if (!p.ok) {
      table.AddRow({p.label, "n/a", "n/a", "n/a", "n/a", "n/a"});
      continue;
    }
    const double speedup = p.planning_ms > 0 ? base.planning_ms / p.planning_ms : 0.0;
    const double delta = base.plan_cost_ms > 0
                             ? (p.plan_cost_ms - base.plan_cost_ms) / base.plan_cost_ms
                             : 0.0;
    table.AddRow({p.label, TablePrinter::FmtInt(static_cast<long long>(p.trees)),
                  TablePrinter::Fmt(p.planning_ms, 2), TablePrinter::Fmt(speedup, 1) + "x",
                  TablePrinter::Fmt(p.plan_cost_ms, 2),
                  TablePrinter::Fmt(delta * 100.0, 2) + "%"});
  }
  std::printf("%s\n", table
                          .Render("(" + bench::BenchDataset(id).name + ", " +
                                  std::to_string(gpus) + " GPUs; speedup/delta vs per-vertex)")
                          .c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader(
      "Ablation: class-batching chunk size (planning time vs plan quality)");
  dgcl::RunDataset(dgcl::DatasetId::kReddit, 8);
  dgcl::RunDataset(dgcl::DatasetId::kWebGoogle, 8);
  std::printf(
      "Expected: planning time falls roughly with the number of trees planned;\n"
      "large chunks commit traffic coarsely, so the cost-model estimate degrades\n"
      "once chunks get big relative to the per-link balance granularity. The\n"
      "default setting picks the bound adaptively (see DESIGN.md).\n");
  return 0;
}
