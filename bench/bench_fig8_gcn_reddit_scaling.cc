// Figure 8: per-epoch and communication time for GCN on Reddit across
// 1/2/4/8/16 GPUs and all four methods (Swap is single-machine only, so no
// 16-GPU entry, matching the paper).

#include <cstdio>

#include "bench_util.h"

namespace dgcl {
namespace {

void Run(DatasetId id, GnnModel model, const char* title) {
  TablePrinter epochs({"GPUs", "DGCL", "Swap", "Peer-to-peer", "Replication"});
  TablePrinter comms({"GPUs", "DGCL", "Swap", "Peer-to-peer"});
  for (uint32_t gpus : {1u, 2u, 4u, 8u, 16u}) {
    auto bundle = bench::MakeSimulator(id, gpus, model);
    if (!bundle.ok()) {
      continue;
    }
    EpochSimulator& sim = (*bundle)->sim();
    auto dgcl = sim.Simulate(Method::kDgcl);
    auto swap = sim.Simulate(Method::kSwap);
    auto p2p = sim.Simulate(Method::kPeerToPeer);
    auto rep = sim.Simulate(Method::kReplication);
    epochs.AddRow({TablePrinter::FmtInt(gpus), bench::EpochCell(dgcl), bench::EpochCell(swap),
                   bench::EpochCell(p2p), bench::EpochCell(rep)});
    comms.AddRow({TablePrinter::FmtInt(gpus), bench::CommCell(dgcl), bench::CommCell(swap),
                  bench::CommCell(p2p)});
  }
  std::printf("%s\n", epochs.Render(std::string(title) + " — per-epoch time (ms)").c_str());
  std::printf("%s\n", comms.Render(std::string(title) + " — communication time (ms)").c_str());
}

}  // namespace
}  // namespace dgcl

int main() {
  dgcl::bench::PrintHeader("Figure 8: GCN on Reddit vs GPU count");
  dgcl::Run(dgcl::DatasetId::kReddit, dgcl::GnnModel::kGcn, "GCN / Reddit");
  std::printf(
      "Paper shape: DGCL always shortest; DGCL == P2P at <= 4 GPUs (all-NVLink);\n"
      "at 16 GPUs P2P is ~3.9x and Replication ~6.3x DGCL's epoch.\n");
  return 0;
}
