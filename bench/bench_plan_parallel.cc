// Parallel planning sweep: SPST planning wall time vs SpstOptions::num_threads
// on the largest bundled dataset stand-in (Com-Orkut), plus how each chunk was
// committed (exact / replay-validated / re-planned). Every parallel plan is
// checked to be bit-identical to the single-threaded plan — the speculative
// commit scheme (DESIGN.md §"Parallel planning") guarantees it, and this bench
// doubles as an end-to-end check on real workloads.
//
// Pass `--json <path>` to write the per-thread-count records
// (scripts/reproduce.sh writes BENCH_plan_parallel.json).

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "partition/multilevel.h"
#include "planner/spst.h"

namespace dgcl {
namespace {

// Order-sensitive fingerprint of a class plan (FNV-1a over every field,
// including the accounted cost's bit pattern): any divergence — tree order,
// edge choice, stage, chunk ranges — changes it.
uint64_t Fingerprint(const ClassPlan& plan) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* p, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ bytes[i]) * 1099511628211ull;
    }
  };
  mix(&plan.num_devices, sizeof(plan.num_devices));
  mix(&plan.planned_cost_seconds, sizeof(plan.planned_cost_seconds));
  for (const ClassTree& tree : plan.trees) {
    mix(&tree.class_id, sizeof(tree.class_id));
    mix(&tree.first, sizeof(tree.first));
    mix(&tree.count, sizeof(tree.count));
    for (const TreeEdge& e : tree.edges) {
      mix(&e.link, sizeof(e.link));
      mix(&e.stage, sizeof(e.stage));
    }
  }
  return h;
}

struct SweepPoint {
  uint32_t threads = 0;
  double planning_ms = 0.0;  // best of kReps
  SpstPlanStats stats;
  uint64_t fingerprint = 0;
};

constexpr int kReps = 3;

SweepPoint MeasureThreads(const CommClasses& classes, const Topology& topo, double bytes,
                          uint32_t threads) {
  SweepPoint point;
  point.threads = threads;
  point.planning_ms = -1.0;
  SpstOptions opts;
  opts.num_threads = threads;
  for (int rep = 0; rep < kReps; ++rep) {
    SpstPlanner planner(opts);
    WallTimer timer;
    auto plan = planner.PlanClasses(classes, topo, bytes);
    const double ms = timer.ElapsedSeconds() * 1e3;
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed at %u threads: %s\n", threads,
                   plan.status().ToString().c_str());
      std::exit(1);
    }
    if (point.planning_ms < 0.0 || ms < point.planning_ms) {
      point.planning_ms = ms;
    }
    point.stats = planner.last_stats();
    const uint64_t fp = Fingerprint(*plan);
    if (rep == 0) {
      point.fingerprint = fp;
    } else if (fp != point.fingerprint) {
      std::fprintf(stderr, "nondeterministic plan at %u threads\n", threads);
      std::exit(1);
    }
  }
  return point;
}

void Run(const std::optional<std::string>& json_path) {
  const DatasetId id = DatasetId::kComOrkut;  // largest planning workload
  const uint32_t gpus = 16;
  const Dataset& dataset = bench::BenchDataset(id);
  const double bytes = dataset.feature_dim * 4.0;
  Topology topo = BuildPaperTopology(gpus);
  MultilevelPartitioner metis;
  auto parts = metis.Partition(dataset.graph, gpus);
  CommRelation rel = *BuildCommRelation(dataset.graph, *parts);
  CommClasses classes = BuildCommClasses(rel);

  bench::PrintHeader("Parallel SPST planning: thread sweep on " + dataset.name + ", " +
                     std::to_string(gpus) + " GPUs");
  std::vector<SweepPoint> points;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    points.push_back(MeasureThreads(classes, topo, bytes, threads));
  }

  const SweepPoint& serial = points.front();
  TablePrinter table({"threads", "planning ms", "speedup", "chunks", "exact", "replayed",
                      "replanned", "identical"});
  std::vector<bench::JsonRecord> records;
  for (const SweepPoint& p : points) {
    const bool identical = p.fingerprint == serial.fingerprint;
    const double speedup = p.planning_ms > 0.0 ? serial.planning_ms / p.planning_ms : 0.0;
    table.AddRow({TablePrinter::FmtInt(p.threads), TablePrinter::Fmt(p.planning_ms, 2),
                  TablePrinter::Fmt(speedup, 2) + "x", TablePrinter::FmtInt(p.stats.chunks),
                  TablePrinter::FmtInt(p.stats.exact_commits),
                  TablePrinter::FmtInt(p.stats.replay_commits),
                  TablePrinter::FmtInt(p.stats.replans), identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "plan at %u threads differs from single-threaded plan\n",
                   p.threads);
      std::exit(1);
    }
    bench::JsonRecord rec;
    rec.AddString("dataset", dataset.name);
    rec.AddInt("gpus", gpus);
    rec.AddInt("threads", p.threads);
    rec.AddNumber("planning_ms", p.planning_ms);
    rec.AddNumber("speedup", speedup);
    rec.AddInt("chunks", p.stats.chunks);
    rec.AddInt("exact_commits", p.stats.exact_commits);
    rec.AddInt("replay_commits", p.stats.replay_commits);
    rec.AddInt("replans", p.stats.replans);
    rec.AddInt("identical_to_serial", identical ? 1 : 0);
    records.push_back(std::move(rec));
  }
  std::printf("%s\n", table.Render("SPST planning vs num_threads (best of " +
                                   std::to_string(kReps) + ")").c_str());
  std::printf(
      "Every plan is bit-identical to the serial one (speculative commits are\n"
      "replay-validated; diverged chunks are re-planned at their serial slot).\n"
      "Speedup tracks the machine's core count and the replay acceptance rate;\n"
      "on a single hardware thread the parallel path only adds overhead.\n");
  if (json_path) {
    Status s = bench::WriteJsonRecords(*json_path, records);
    if (s.ok()) {
      std::printf("wrote %zu records to %s\n", records.size(), json_path->c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path->c_str(),
                   s.message().c_str());
    }
  }
}

}  // namespace
}  // namespace dgcl

int main(int argc, char** argv) {
  std::optional<std::string> json_path = dgcl::bench::ConsumeJsonFlag(&argc, argv);
  (void)argc;
  (void)argv;
  dgcl::Run(json_path);
  return 0;
}
