# Empty dependencies file for dgcl_plan.
# This may be replaced when dependencies are built.
