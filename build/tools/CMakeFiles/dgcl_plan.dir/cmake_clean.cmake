file(REMOVE_RECURSE
  "CMakeFiles/dgcl_plan.dir/dgcl_plan.cc.o"
  "CMakeFiles/dgcl_plan.dir/dgcl_plan.cc.o.d"
  "dgcl_plan"
  "dgcl_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
