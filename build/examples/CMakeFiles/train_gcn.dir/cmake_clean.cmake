file(REMOVE_RECURSE
  "CMakeFiles/train_gcn.dir/train_gcn.cpp.o"
  "CMakeFiles/train_gcn.dir/train_gcn.cpp.o.d"
  "train_gcn"
  "train_gcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_gcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
