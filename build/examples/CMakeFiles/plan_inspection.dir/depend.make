# Empty dependencies file for plan_inspection.
# This may be replaced when dependencies are built.
