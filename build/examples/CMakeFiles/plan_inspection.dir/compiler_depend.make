# Empty compiler generated dependencies file for plan_inspection.
# This may be replaced when dependencies are built.
