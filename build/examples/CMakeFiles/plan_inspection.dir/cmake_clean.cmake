file(REMOVE_RECURSE
  "CMakeFiles/plan_inspection.dir/plan_inspection.cpp.o"
  "CMakeFiles/plan_inspection.dir/plan_inspection.cpp.o.d"
  "plan_inspection"
  "plan_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
