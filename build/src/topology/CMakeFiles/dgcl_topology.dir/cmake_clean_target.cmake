file(REMOVE_RECURSE
  "libdgcl_topology.a"
)
