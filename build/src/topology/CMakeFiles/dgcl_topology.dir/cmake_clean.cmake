file(REMOVE_RECURSE
  "CMakeFiles/dgcl_topology.dir/presets.cc.o"
  "CMakeFiles/dgcl_topology.dir/presets.cc.o.d"
  "CMakeFiles/dgcl_topology.dir/topology.cc.o"
  "CMakeFiles/dgcl_topology.dir/topology.cc.o.d"
  "libdgcl_topology.a"
  "libdgcl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
