# Empty dependencies file for dgcl_topology.
# This may be replaced when dependencies are built.
