file(REMOVE_RECURSE
  "CMakeFiles/dgcl_runtime.dir/allgather_engine.cc.o"
  "CMakeFiles/dgcl_runtime.dir/allgather_engine.cc.o.d"
  "CMakeFiles/dgcl_runtime.dir/allreduce.cc.o"
  "CMakeFiles/dgcl_runtime.dir/allreduce.cc.o.d"
  "CMakeFiles/dgcl_runtime.dir/transport.cc.o"
  "CMakeFiles/dgcl_runtime.dir/transport.cc.o.d"
  "libdgcl_runtime.a"
  "libdgcl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
