# Empty dependencies file for dgcl_runtime.
# This may be replaced when dependencies are built.
