file(REMOVE_RECURSE
  "libdgcl_runtime.a"
)
