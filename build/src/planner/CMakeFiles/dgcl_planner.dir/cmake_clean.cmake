file(REMOVE_RECURSE
  "CMakeFiles/dgcl_planner.dir/baselines.cc.o"
  "CMakeFiles/dgcl_planner.dir/baselines.cc.o.d"
  "CMakeFiles/dgcl_planner.dir/cost_model.cc.o"
  "CMakeFiles/dgcl_planner.dir/cost_model.cc.o.d"
  "CMakeFiles/dgcl_planner.dir/spst.cc.o"
  "CMakeFiles/dgcl_planner.dir/spst.cc.o.d"
  "libdgcl_planner.a"
  "libdgcl_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
