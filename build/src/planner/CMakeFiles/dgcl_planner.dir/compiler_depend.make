# Empty compiler generated dependencies file for dgcl_planner.
# This may be replaced when dependencies are built.
