
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/baselines.cc" "src/planner/CMakeFiles/dgcl_planner.dir/baselines.cc.o" "gcc" "src/planner/CMakeFiles/dgcl_planner.dir/baselines.cc.o.d"
  "/root/repo/src/planner/cost_model.cc" "src/planner/CMakeFiles/dgcl_planner.dir/cost_model.cc.o" "gcc" "src/planner/CMakeFiles/dgcl_planner.dir/cost_model.cc.o.d"
  "/root/repo/src/planner/spst.cc" "src/planner/CMakeFiles/dgcl_planner.dir/spst.cc.o" "gcc" "src/planner/CMakeFiles/dgcl_planner.dir/spst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/dgcl_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dgcl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dgcl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
