file(REMOVE_RECURSE
  "libdgcl_planner.a"
)
