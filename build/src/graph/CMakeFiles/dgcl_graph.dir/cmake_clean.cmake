file(REMOVE_RECURSE
  "CMakeFiles/dgcl_graph.dir/csr_graph.cc.o"
  "CMakeFiles/dgcl_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/dgcl_graph.dir/generators.cc.o"
  "CMakeFiles/dgcl_graph.dir/generators.cc.o.d"
  "CMakeFiles/dgcl_graph.dir/graph_io.cc.o"
  "CMakeFiles/dgcl_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/dgcl_graph.dir/khop.cc.o"
  "CMakeFiles/dgcl_graph.dir/khop.cc.o.d"
  "CMakeFiles/dgcl_graph.dir/stats.cc.o"
  "CMakeFiles/dgcl_graph.dir/stats.cc.o.d"
  "libdgcl_graph.a"
  "libdgcl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
