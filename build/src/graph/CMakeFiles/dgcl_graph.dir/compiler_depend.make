# Empty compiler generated dependencies file for dgcl_graph.
# This may be replaced when dependencies are built.
