file(REMOVE_RECURSE
  "libdgcl_graph.a"
)
