file(REMOVE_RECURSE
  "libdgcl_partition.a"
)
