# Empty dependencies file for dgcl_partition.
# This may be replaced when dependencies are built.
