
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/hierarchical.cc" "src/partition/CMakeFiles/dgcl_partition.dir/hierarchical.cc.o" "gcc" "src/partition/CMakeFiles/dgcl_partition.dir/hierarchical.cc.o.d"
  "/root/repo/src/partition/multilevel.cc" "src/partition/CMakeFiles/dgcl_partition.dir/multilevel.cc.o" "gcc" "src/partition/CMakeFiles/dgcl_partition.dir/multilevel.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/partition/CMakeFiles/dgcl_partition.dir/partitioner.cc.o" "gcc" "src/partition/CMakeFiles/dgcl_partition.dir/partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dgcl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dgcl_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
