file(REMOVE_RECURSE
  "CMakeFiles/dgcl_partition.dir/hierarchical.cc.o"
  "CMakeFiles/dgcl_partition.dir/hierarchical.cc.o.d"
  "CMakeFiles/dgcl_partition.dir/multilevel.cc.o"
  "CMakeFiles/dgcl_partition.dir/multilevel.cc.o.d"
  "CMakeFiles/dgcl_partition.dir/partitioner.cc.o"
  "CMakeFiles/dgcl_partition.dir/partitioner.cc.o.d"
  "libdgcl_partition.a"
  "libdgcl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
