file(REMOVE_RECURSE
  "CMakeFiles/dgcl_sim.dir/compute_model.cc.o"
  "CMakeFiles/dgcl_sim.dir/compute_model.cc.o.d"
  "CMakeFiles/dgcl_sim.dir/epoch_sim.cc.o"
  "CMakeFiles/dgcl_sim.dir/epoch_sim.cc.o.d"
  "CMakeFiles/dgcl_sim.dir/memory_model.cc.o"
  "CMakeFiles/dgcl_sim.dir/memory_model.cc.o.d"
  "CMakeFiles/dgcl_sim.dir/network_sim.cc.o"
  "CMakeFiles/dgcl_sim.dir/network_sim.cc.o.d"
  "CMakeFiles/dgcl_sim.dir/swap_model.cc.o"
  "CMakeFiles/dgcl_sim.dir/swap_model.cc.o.d"
  "libdgcl_sim.a"
  "libdgcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
