file(REMOVE_RECURSE
  "libdgcl_sim.a"
)
