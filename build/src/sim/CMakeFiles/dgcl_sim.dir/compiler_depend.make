# Empty compiler generated dependencies file for dgcl_sim.
# This may be replaced when dependencies are built.
