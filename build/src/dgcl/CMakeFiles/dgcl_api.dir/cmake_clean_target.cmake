file(REMOVE_RECURSE
  "libdgcl_api.a"
)
