# Empty dependencies file for dgcl_api.
# This may be replaced when dependencies are built.
