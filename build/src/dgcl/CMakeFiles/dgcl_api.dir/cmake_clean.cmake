file(REMOVE_RECURSE
  "CMakeFiles/dgcl_api.dir/dgcl.cc.o"
  "CMakeFiles/dgcl_api.dir/dgcl.cc.o.d"
  "libdgcl_api.a"
  "libdgcl_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
