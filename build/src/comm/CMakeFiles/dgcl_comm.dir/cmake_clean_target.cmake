file(REMOVE_RECURSE
  "libdgcl_comm.a"
)
