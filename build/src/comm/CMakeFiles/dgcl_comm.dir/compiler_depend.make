# Empty compiler generated dependencies file for dgcl_comm.
# This may be replaced when dependencies are built.
