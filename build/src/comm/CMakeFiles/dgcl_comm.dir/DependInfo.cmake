
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/compiled_plan.cc" "src/comm/CMakeFiles/dgcl_comm.dir/compiled_plan.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/compiled_plan.cc.o.d"
  "/root/repo/src/comm/plan.cc" "src/comm/CMakeFiles/dgcl_comm.dir/plan.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/plan.cc.o.d"
  "/root/repo/src/comm/plan_dump.cc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_dump.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_dump.cc.o.d"
  "/root/repo/src/comm/plan_io.cc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_io.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_io.cc.o.d"
  "/root/repo/src/comm/plan_stats.cc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_stats.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/plan_stats.cc.o.d"
  "/root/repo/src/comm/relation.cc" "src/comm/CMakeFiles/dgcl_comm.dir/relation.cc.o" "gcc" "src/comm/CMakeFiles/dgcl_comm.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dgcl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dgcl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dgcl_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
