file(REMOVE_RECURSE
  "CMakeFiles/dgcl_comm.dir/compiled_plan.cc.o"
  "CMakeFiles/dgcl_comm.dir/compiled_plan.cc.o.d"
  "CMakeFiles/dgcl_comm.dir/plan.cc.o"
  "CMakeFiles/dgcl_comm.dir/plan.cc.o.d"
  "CMakeFiles/dgcl_comm.dir/plan_dump.cc.o"
  "CMakeFiles/dgcl_comm.dir/plan_dump.cc.o.d"
  "CMakeFiles/dgcl_comm.dir/plan_io.cc.o"
  "CMakeFiles/dgcl_comm.dir/plan_io.cc.o.d"
  "CMakeFiles/dgcl_comm.dir/plan_stats.cc.o"
  "CMakeFiles/dgcl_comm.dir/plan_stats.cc.o.d"
  "CMakeFiles/dgcl_comm.dir/relation.cc.o"
  "CMakeFiles/dgcl_comm.dir/relation.cc.o.d"
  "libdgcl_comm.a"
  "libdgcl_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
