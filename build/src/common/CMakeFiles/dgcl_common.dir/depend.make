# Empty dependencies file for dgcl_common.
# This may be replaced when dependencies are built.
