file(REMOVE_RECURSE
  "CMakeFiles/dgcl_common.dir/logging.cc.o"
  "CMakeFiles/dgcl_common.dir/logging.cc.o.d"
  "CMakeFiles/dgcl_common.dir/status.cc.o"
  "CMakeFiles/dgcl_common.dir/status.cc.o.d"
  "CMakeFiles/dgcl_common.dir/table_printer.cc.o"
  "CMakeFiles/dgcl_common.dir/table_printer.cc.o.d"
  "libdgcl_common.a"
  "libdgcl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
