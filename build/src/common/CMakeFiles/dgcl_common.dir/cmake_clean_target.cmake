file(REMOVE_RECURSE
  "libdgcl_common.a"
)
