file(REMOVE_RECURSE
  "CMakeFiles/dgcl_gnn.dir/layers.cc.o"
  "CMakeFiles/dgcl_gnn.dir/layers.cc.o.d"
  "CMakeFiles/dgcl_gnn.dir/local_graph.cc.o"
  "CMakeFiles/dgcl_gnn.dir/local_graph.cc.o.d"
  "CMakeFiles/dgcl_gnn.dir/nn.cc.o"
  "CMakeFiles/dgcl_gnn.dir/nn.cc.o.d"
  "CMakeFiles/dgcl_gnn.dir/trainer.cc.o"
  "CMakeFiles/dgcl_gnn.dir/trainer.cc.o.d"
  "libdgcl_gnn.a"
  "libdgcl_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
