file(REMOVE_RECURSE
  "libdgcl_gnn.a"
)
