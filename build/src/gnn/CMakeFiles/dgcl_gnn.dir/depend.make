# Empty dependencies file for dgcl_gnn.
# This may be replaced when dependencies are built.
