file(REMOVE_RECURSE
  "CMakeFiles/plan_stats_test.dir/plan_stats_test.cc.o"
  "CMakeFiles/plan_stats_test.dir/plan_stats_test.cc.o.d"
  "plan_stats_test"
  "plan_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
