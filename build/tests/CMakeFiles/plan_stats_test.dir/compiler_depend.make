# Empty compiler generated dependencies file for plan_stats_test.
# This may be replaced when dependencies are built.
