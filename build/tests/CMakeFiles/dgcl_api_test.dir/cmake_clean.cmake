file(REMOVE_RECURSE
  "CMakeFiles/dgcl_api_test.dir/dgcl_api_test.cc.o"
  "CMakeFiles/dgcl_api_test.dir/dgcl_api_test.cc.o.d"
  "dgcl_api_test"
  "dgcl_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
