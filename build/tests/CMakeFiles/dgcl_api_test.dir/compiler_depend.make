# Empty compiler generated dependencies file for dgcl_api_test.
# This may be replaced when dependencies are built.
