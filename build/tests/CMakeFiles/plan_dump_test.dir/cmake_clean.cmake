file(REMOVE_RECURSE
  "CMakeFiles/plan_dump_test.dir/plan_dump_test.cc.o"
  "CMakeFiles/plan_dump_test.dir/plan_dump_test.cc.o.d"
  "plan_dump_test"
  "plan_dump_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_dump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
