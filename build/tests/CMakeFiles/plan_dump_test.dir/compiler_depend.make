# Empty compiler generated dependencies file for plan_dump_test.
# This may be replaced when dependencies are built.
