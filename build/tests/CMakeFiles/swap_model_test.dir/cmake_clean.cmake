file(REMOVE_RECURSE
  "CMakeFiles/swap_model_test.dir/swap_model_test.cc.o"
  "CMakeFiles/swap_model_test.dir/swap_model_test.cc.o.d"
  "swap_model_test"
  "swap_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
