# Empty compiler generated dependencies file for swap_model_test.
# This may be replaced when dependencies are built.
