file(REMOVE_RECURSE
  "CMakeFiles/nvswitch_test.dir/nvswitch_test.cc.o"
  "CMakeFiles/nvswitch_test.dir/nvswitch_test.cc.o.d"
  "nvswitch_test"
  "nvswitch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvswitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
