# Empty compiler generated dependencies file for nvswitch_test.
# This may be replaced when dependencies are built.
