file(REMOVE_RECURSE
  "CMakeFiles/epoch_sim_test.dir/epoch_sim_test.cc.o"
  "CMakeFiles/epoch_sim_test.dir/epoch_sim_test.cc.o.d"
  "epoch_sim_test"
  "epoch_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
