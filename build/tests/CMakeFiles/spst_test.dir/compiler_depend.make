# Empty compiler generated dependencies file for spst_test.
# This may be replaced when dependencies are built.
