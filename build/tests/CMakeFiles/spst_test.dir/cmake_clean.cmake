file(REMOVE_RECURSE
  "CMakeFiles/spst_test.dir/spst_test.cc.o"
  "CMakeFiles/spst_test.dir/spst_test.cc.o.d"
  "spst_test"
  "spst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
