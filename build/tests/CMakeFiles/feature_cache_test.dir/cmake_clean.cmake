file(REMOVE_RECURSE
  "CMakeFiles/feature_cache_test.dir/feature_cache_test.cc.o"
  "CMakeFiles/feature_cache_test.dir/feature_cache_test.cc.o.d"
  "feature_cache_test"
  "feature_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
