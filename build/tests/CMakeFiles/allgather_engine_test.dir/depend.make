# Empty dependencies file for allgather_engine_test.
# This may be replaced when dependencies are built.
