file(REMOVE_RECURSE
  "CMakeFiles/allgather_engine_test.dir/allgather_engine_test.cc.o"
  "CMakeFiles/allgather_engine_test.dir/allgather_engine_test.cc.o.d"
  "allgather_engine_test"
  "allgather_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allgather_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
