# Empty compiler generated dependencies file for straggler_test.
# This may be replaced when dependencies are built.
