file(REMOVE_RECURSE
  "CMakeFiles/straggler_test.dir/straggler_test.cc.o"
  "CMakeFiles/straggler_test.dir/straggler_test.cc.o.d"
  "straggler_test"
  "straggler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
