
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/khop_test.cc" "tests/CMakeFiles/khop_test.dir/khop_test.cc.o" "gcc" "tests/CMakeFiles/khop_test.dir/khop_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dgcl/CMakeFiles/dgcl_api.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/dgcl_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dgcl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dgcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/dgcl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dgcl_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dgcl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dgcl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
