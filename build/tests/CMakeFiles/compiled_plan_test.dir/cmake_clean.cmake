file(REMOVE_RECURSE
  "CMakeFiles/compiled_plan_test.dir/compiled_plan_test.cc.o"
  "CMakeFiles/compiled_plan_test.dir/compiled_plan_test.cc.o.d"
  "compiled_plan_test"
  "compiled_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
