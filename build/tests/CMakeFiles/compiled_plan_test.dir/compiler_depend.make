# Empty compiler generated dependencies file for compiled_plan_test.
# This may be replaced when dependencies are built.
