file(REMOVE_RECURSE
  "CMakeFiles/compute_model_test.dir/compute_model_test.cc.o"
  "CMakeFiles/compute_model_test.dir/compute_model_test.cc.o.d"
  "compute_model_test"
  "compute_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
