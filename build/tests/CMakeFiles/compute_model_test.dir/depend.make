# Empty dependencies file for compute_model_test.
# This may be replaced when dependencies are built.
