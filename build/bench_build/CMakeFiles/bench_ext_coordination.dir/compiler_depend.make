# Empty compiler generated dependencies file for bench_ext_coordination.
# This may be replaced when dependencies are built.
