file(REMOVE_RECURSE
  "../bench/bench_ext_coordination"
  "../bench/bench_ext_coordination.pdb"
  "CMakeFiles/bench_ext_coordination.dir/bench_ext_coordination.cc.o"
  "CMakeFiles/bench_ext_coordination.dir/bench_ext_coordination.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
