file(REMOVE_RECURSE
  "../lib/libdgcl_bench_util.a"
  "../lib/libdgcl_bench_util.pdb"
  "CMakeFiles/dgcl_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dgcl_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcl_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
