# Empty compiler generated dependencies file for dgcl_bench_util.
# This may be replaced when dependencies are built.
