file(REMOVE_RECURSE
  "../lib/libdgcl_bench_util.a"
)
