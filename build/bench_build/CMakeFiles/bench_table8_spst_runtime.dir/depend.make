# Empty dependencies file for bench_table8_spst_runtime.
# This may be replaced when dependencies are built.
