file(REMOVE_RECURSE
  "../bench/bench_table8_spst_runtime"
  "../bench/bench_table8_spst_runtime.pdb"
  "CMakeFiles/bench_table8_spst_runtime.dir/bench_table8_spst_runtime.cc.o"
  "CMakeFiles/bench_table8_spst_runtime.dir/bench_table8_spst_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_spst_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
