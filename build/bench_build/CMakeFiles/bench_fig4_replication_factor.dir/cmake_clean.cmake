file(REMOVE_RECURSE
  "../bench/bench_fig4_replication_factor"
  "../bench/bench_fig4_replication_factor.pdb"
  "CMakeFiles/bench_fig4_replication_factor.dir/bench_fig4_replication_factor.cc.o"
  "CMakeFiles/bench_fig4_replication_factor.dir/bench_fig4_replication_factor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_replication_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
