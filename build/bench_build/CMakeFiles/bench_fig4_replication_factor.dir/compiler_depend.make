# Empty compiler generated dependencies file for bench_fig4_replication_factor.
# This may be replaced when dependencies are built.
