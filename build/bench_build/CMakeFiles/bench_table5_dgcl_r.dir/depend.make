# Empty dependencies file for bench_table5_dgcl_r.
# This may be replaced when dependencies are built.
