file(REMOVE_RECURSE
  "../bench/bench_table5_dgcl_r"
  "../bench/bench_table5_dgcl_r.pdb"
  "CMakeFiles/bench_table5_dgcl_r.dir/bench_table5_dgcl_r.cc.o"
  "CMakeFiles/bench_table5_dgcl_r.dir/bench_table5_dgcl_r.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_dgcl_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
