# Empty compiler generated dependencies file for bench_table9_nonatomic.
# This may be replaced when dependencies are built.
