file(REMOVE_RECURSE
  "../bench/bench_table9_nonatomic"
  "../bench/bench_table9_nonatomic.pdb"
  "CMakeFiles/bench_table9_nonatomic.dir/bench_table9_nonatomic.cc.o"
  "CMakeFiles/bench_table9_nonatomic.dir/bench_table9_nonatomic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_nonatomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
