# Empty dependencies file for bench_fig9_gin_webgoogle_scaling.
# This may be replaced when dependencies are built.
