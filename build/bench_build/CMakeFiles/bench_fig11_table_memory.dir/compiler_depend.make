# Empty compiler generated dependencies file for bench_fig11_table_memory.
# This may be replaced when dependencies are built.
