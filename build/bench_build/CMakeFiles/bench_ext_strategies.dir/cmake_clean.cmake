file(REMOVE_RECURSE
  "../bench/bench_ext_strategies"
  "../bench/bench_ext_strategies.pdb"
  "CMakeFiles/bench_ext_strategies.dir/bench_ext_strategies.cc.o"
  "CMakeFiles/bench_ext_strategies.dir/bench_ext_strategies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
