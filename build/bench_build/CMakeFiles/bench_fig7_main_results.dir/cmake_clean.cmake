file(REMOVE_RECURSE
  "../bench/bench_fig7_main_results"
  "../bench/bench_fig7_main_results.pdb"
  "CMakeFiles/bench_fig7_main_results.dir/bench_fig7_main_results.cc.o"
  "CMakeFiles/bench_fig7_main_results.dir/bench_fig7_main_results.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
