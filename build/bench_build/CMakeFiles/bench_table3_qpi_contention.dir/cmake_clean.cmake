file(REMOVE_RECURSE
  "../bench/bench_table3_qpi_contention"
  "../bench/bench_table3_qpi_contention.pdb"
  "CMakeFiles/bench_table3_qpi_contention.dir/bench_table3_qpi_contention.cc.o"
  "CMakeFiles/bench_table3_qpi_contention.dir/bench_table3_qpi_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_qpi_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
