# Empty dependencies file for bench_table3_qpi_contention.
# This may be replaced when dependencies are built.
