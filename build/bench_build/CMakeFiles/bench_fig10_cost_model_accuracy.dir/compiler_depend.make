# Empty compiler generated dependencies file for bench_fig10_cost_model_accuracy.
# This may be replaced when dependencies are built.
