file(REMOVE_RECURSE
  "../bench/bench_table1_link_speeds"
  "../bench/bench_table1_link_speeds.pdb"
  "CMakeFiles/bench_table1_link_speeds.dir/bench_table1_link_speeds.cc.o"
  "CMakeFiles/bench_table1_link_speeds.dir/bench_table1_link_speeds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_link_speeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
