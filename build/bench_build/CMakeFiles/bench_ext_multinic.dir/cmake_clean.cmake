file(REMOVE_RECURSE
  "../bench/bench_ext_multinic"
  "../bench/bench_ext_multinic.pdb"
  "CMakeFiles/bench_ext_multinic.dir/bench_ext_multinic.cc.o"
  "CMakeFiles/bench_ext_multinic.dir/bench_ext_multinic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
