# Empty compiler generated dependencies file for bench_ext_multinic.
# This may be replaced when dependencies are built.
