# Empty dependencies file for bench_table7_link_balance.
# This may be replaced when dependencies are built.
