file(REMOVE_RECURSE
  "../bench/bench_table7_link_balance"
  "../bench/bench_table7_link_balance.pdb"
  "CMakeFiles/bench_table7_link_balance.dir/bench_table7_link_balance.cc.o"
  "CMakeFiles/bench_table7_link_balance.dir/bench_table7_link_balance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_link_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
