
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_gcn_reddit_scaling.cc" "bench_build/CMakeFiles/bench_fig8_gcn_reddit_scaling.dir/bench_fig8_gcn_reddit_scaling.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig8_gcn_reddit_scaling.dir/bench_fig8_gcn_reddit_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/dgcl_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dgcl/CMakeFiles/dgcl_api.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/dgcl_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dgcl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dgcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/dgcl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dgcl_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/dgcl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dgcl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
