# Empty dependencies file for bench_fig8_gcn_reddit_scaling.
# This may be replaced when dependencies are built.
