file(REMOVE_RECURSE
  "../bench/bench_table2_link_breakdown"
  "../bench/bench_table2_link_breakdown.pdb"
  "CMakeFiles/bench_table2_link_breakdown.dir/bench_table2_link_breakdown.cc.o"
  "CMakeFiles/bench_table2_link_breakdown.dir/bench_table2_link_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_link_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
