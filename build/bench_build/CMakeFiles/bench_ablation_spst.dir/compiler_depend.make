# Empty compiler generated dependencies file for bench_ablation_spst.
# This may be replaced when dependencies are built.
