file(REMOVE_RECURSE
  "../bench/bench_ablation_spst"
  "../bench/bench_ablation_spst.pdb"
  "CMakeFiles/bench_ablation_spst.dir/bench_ablation_spst.cc.o"
  "CMakeFiles/bench_ablation_spst.dir/bench_ablation_spst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
