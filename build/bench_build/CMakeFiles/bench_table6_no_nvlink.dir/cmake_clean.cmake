file(REMOVE_RECURSE
  "../bench/bench_table6_no_nvlink"
  "../bench/bench_table6_no_nvlink.pdb"
  "CMakeFiles/bench_table6_no_nvlink.dir/bench_table6_no_nvlink.cc.o"
  "CMakeFiles/bench_table6_no_nvlink.dir/bench_table6_no_nvlink.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_no_nvlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
