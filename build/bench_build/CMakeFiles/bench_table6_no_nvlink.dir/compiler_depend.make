# Empty compiler generated dependencies file for bench_table6_no_nvlink.
# This may be replaced when dependencies are built.
