# Empty compiler generated dependencies file for bench_ext_models.
# This may be replaced when dependencies are built.
