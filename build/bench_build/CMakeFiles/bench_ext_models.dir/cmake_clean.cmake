file(REMOVE_RECURSE
  "../bench/bench_ext_models"
  "../bench/bench_ext_models.pdb"
  "CMakeFiles/bench_ext_models.dir/bench_ext_models.cc.o"
  "CMakeFiles/bench_ext_models.dir/bench_ext_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
