file(REMOVE_RECURSE
  "../bench/bench_ext_depth"
  "../bench/bench_ext_depth.pdb"
  "CMakeFiles/bench_ext_depth.dir/bench_ext_depth.cc.o"
  "CMakeFiles/bench_ext_depth.dir/bench_ext_depth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
