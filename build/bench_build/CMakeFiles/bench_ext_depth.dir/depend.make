# Empty dependencies file for bench_ext_depth.
# This may be replaced when dependencies are built.
