// Extending DGCL: a hand-built topology plus a user-defined planner.
//
// Demonstrates the two extension points a downstream system would use:
//  * Topology construction from scratch (devices, physical connections,
//    links) for hardware the presets do not cover — here a 4-GPU ring with
//    one slow crossbar;
//  * the Planner interface: a custom "hub" planner that routes every
//    transfer through device 0, validated and executed with the same
//    machinery as SPST.
//
// Build & run:  ./build/examples/custom_strategy

#include <bit>
#include <cstdio>

#include "comm/compiled_plan.h"
#include "graph/generators.h"
#include "planner/baselines.h"
#include "planner/cost_model.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"

using namespace dgcl;

namespace {

// 4 GPUs in an NVLink ring (0-1-2-3-0) plus slow PCIe pairwise fallbacks.
Topology BuildRingTopology() {
  Topology topo;
  for (uint32_t g = 0; g < 4; ++g) {
    topo.AddDevice({"gpu" + std::to_string(g), 0, 0, 0});
  }
  // Dedicated PCIe lanes per GPU for the crossbar fallback.
  std::vector<ConnId> tx;
  std::vector<ConnId> rx;
  for (uint32_t g = 0; g < 4; ++g) {
    tx.push_back(topo.AddConnection({"pcie.tx" + std::to_string(g), LinkType::kPcie, 0.0}));
    rx.push_back(topo.AddConnection({"pcie.rx" + std::to_string(g), LinkType::kPcie, 0.0}));
  }
  for (uint32_t g = 0; g < 4; ++g) {
    uint32_t next = (g + 1) % 4;
    ConnId fwd = topo.AddConnection(
        {"nv" + std::to_string(g) + std::to_string(next) + ".f", LinkType::kNvLink1, 0.0});
    ConnId rev = topo.AddConnection(
        {"nv" + std::to_string(g) + std::to_string(next) + ".r", LinkType::kNvLink1, 0.0});
    (void)topo.AddLink(g, next, {fwd});
    (void)topo.AddLink(next, g, {rev});
  }
  // Non-adjacent pairs fall back to the PCIe crossbar.
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      if (i != j && topo.LinkBetween(i, j) == kInvalidId) {
        (void)topo.AddLink(i, j, {tx[i], rx[j]});
      }
    }
  }
  return topo;
}

// Every vertex goes source -> hub (device 0) -> destinations. Deliberately
// naive; shows the Planner contract (class trees rooted at the source —
// all vertices of a (source, dest_mask) class share one tree).
class HubPlanner final : public Planner {
 public:
  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override {
    (void)bytes_per_unit;
    ClassPlan plan;
    plan.num_devices = classes.num_devices;
    for (uint32_t c = 0; c < classes.classes.size(); ++c) {
      const CommClass& cls = classes.classes[c];
      ClassTree tree;
      tree.class_id = c;
      tree.first = 0;
      tree.count = static_cast<uint32_t>(cls.vertices.size());
      const uint32_t src = cls.source;
      DeviceMask remaining = cls.mask;
      uint32_t fanout_stage = 0;
      if (src != 0) {
        if ((remaining >> 0) & 1) {
          remaining &= ~DeviceMask{1};  // hub itself is a destination
        }
        tree.edges.push_back(TreeEdge{topo.LinkBetween(src, 0), 0});
        fanout_stage = 1;
      }
      while (remaining != 0) {
        uint32_t d = static_cast<uint32_t>(std::countr_zero(remaining));
        remaining &= remaining - 1;
        if (d == src) {
          continue;
        }
        tree.edges.push_back(TreeEdge{topo.LinkBetween(fanout_stage == 0 ? src : 0, d),
                                      fanout_stage});
      }
      plan.trees.push_back(std::move(tree));
    }
    return plan;
  }
  std::string name() const override { return "hub"; }
};

}  // namespace

int main() {
  Topology topo = BuildRingTopology();
  std::printf("%s\n", topo.ToString().c_str());

  Rng rng(3);
  CsrGraph graph = GenerateRmat({.scale = 10, .num_edges = 6000}, rng);
  HashPartitioner hash;
  auto rel = BuildCommRelation(graph, *hash.Partition(graph, 4));

  const double bytes = 2048.0;
  SpstPlanner spst;
  PeerToPeerPlanner p2p;
  HubPlanner hub;
  for (Planner* planner : std::initializer_list<Planner*>{&spst, &p2p, &hub}) {
    auto plan = planner->Plan(*rel, topo, bytes);
    if (!plan.ok()) {
      std::printf("%-12s: planning failed: %s\n", planner->name().c_str(),
                  plan.status().ToString().c_str());
      continue;
    }
    Status valid = ValidatePlan(*plan, *rel, topo);
    const double cost_ms = EvaluatePlanCost(*plan, topo, bytes) * 1e3;
    // Execute on the threaded runtime to prove the plan actually delivers.
    CompiledPlan compiled = CompilePlan(*plan, topo);
    auto engine = AllgatherEngine::Create(*rel, compiled, topo);
    std::vector<EmbeddingMatrix> local;
    for (uint32_t d = 0; d < 4; ++d) {
      local.push_back(EmbeddingMatrix::Zero(
          static_cast<uint32_t>(rel->local_vertices[d].size()), 4));
    }
    bool executed = engine.ok() && engine->Forward(local).ok();
    std::printf("%-12s: %u stages, cost %7.3f ms, validate=%s, runtime=%s\n",
                planner->name().c_str(), plan->NumStages(), cost_ms,
                valid.ok() ? "OK" : valid.ToString().c_str(), executed ? "OK" : "FAILED");
  }
  std::printf("\nThe hub plan is valid and executable but costly — the Planner interface\n"
              "lets you try such strategies without touching the runtime.\n");
  return 0;
}
