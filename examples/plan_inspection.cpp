// Plan inspection and caching: visualize what SPST decided and persist the
// compiled plan for a later training run.
//
//  * VertexTreeToDot — dump one vertex's communication tree as Graphviz DOT
//    (pipe into `dot -Tpng` to render);
//  * StageGantt — see how SPST loads each physical connection per stage;
//  * SaveCompiledPlan / LoadCompiledPlan — plan once, reuse across runs.
//
// Build & run:  ./build/examples/plan_inspection

#include <bit>
#include <cstdio>

#include "comm/plan_dump.h"
#include "comm/plan_io.h"
#include "graph/generators.h"
#include "partition/multilevel.h"
#include "planner/spst.h"
#include "topology/presets.h"

using namespace dgcl;

int main() {
  Rng rng(11);
  CsrGraph graph = GenerateRmat({.scale = 10, .num_edges = 12000}, rng);
  Topology topo = BuildPaperTopology(8);
  MultilevelPartitioner metis;
  CommRelation rel = std::move(BuildCommRelation(graph, *metis.Partition(graph, 8))).value();

  SpstPlanner spst;
  CommPlan plan = std::move(spst.Plan(rel, topo, 1024)).value();

  // Pick a vertex with several destinations so the tree is interesting.
  VertexId chosen = kInvalidId;
  int best_dests = 0;
  for (VertexId v : rel.VerticesWithDestinations()) {
    const int dests = std::popcount(rel.dest_mask[v]);
    if (dests > best_dests) {
      best_dests = dests;
      chosen = v;
    }
  }
  std::printf("--- communication tree of vertex %u (%d destinations), DOT ---\n%s\n", chosen,
              best_dests, VertexTreeToDot(plan, topo, chosen).c_str());

  CompiledPlan compiled = CompilePlan(plan, topo);
  std::printf("--- per-stage connection loads ---\n%s\n",
              StageGantt(compiled, topo, 32).c_str());

  // Persist and reload (a restarting trainer skips SPST entirely).
  const std::string path = "/tmp/dgcl_example_plan.bin";
  if (Status s = SaveCompiledPlan(compiled, topo, path); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = LoadCompiledPlan(topo, path);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  const bool valid = ValidateCompiledPlan(*reloaded, rel, topo).ok();
  std::printf("plan round-tripped through %s: %zu ops, valid=%s\n", path.c_str(),
              reloaded->ops.size(), valid ? "yes" : "no");
  std::remove(path.c_str());
  return valid ? 0 : 1;
}
