// Distributed full-graph GCN training across 4 simulated devices — the
// workload the paper's evaluation runs, end to end on the real runtime.
//
// A community-structured graph gets community ids as labels; a 2-layer GCN
// trained with DGCL's graphAllgather between layers learns to classify them.
// The same model trained on a single device is run side by side to show the
// distributed execution is numerically faithful.
//
// Build & run:  ./build/examples/train_gcn

#include <cstdio>
#include <memory>
#include <optional>

#include "gnn/trainer.h"
#include "graph/generators.h"
#include "partition/multilevel.h"
#include "planner/spst.h"
#include "topology/presets.h"

using namespace dgcl;

namespace {

struct Deployment {
  Topology topo;
  CommRelation relation;
  std::optional<AllgatherEngine> engine;
};

// Partition + plan + arm the runtime for `gpus` devices.
std::unique_ptr<Deployment> Deploy(const CsrGraph& graph, uint32_t gpus) {
  auto deployment = std::make_unique<Deployment>();
  deployment->topo = BuildPaperTopology(gpus);
  MultilevelPartitioner metis;
  deployment->relation = std::move(BuildCommRelation(graph, *metis.Partition(graph, gpus))).value();
  SpstPlanner spst;
  CompiledPlan plan =
      CompilePlan(*spst.Plan(deployment->relation, deployment->topo, 64), deployment->topo);
  AssignBackwardSubstages(plan);
  deployment->engine.emplace(
      std::move(AllgatherEngine::Create(deployment->relation, plan, deployment->topo)).value());
  return deployment;
}

}  // namespace

int main() {
  // Labeled data: 4 communities, features weakly correlated with the label.
  const uint32_t n = 400;
  const uint32_t classes = 4;
  Rng rng(2024);
  CsrGraph graph = GenerateCommunityGraph(n, classes, 12.0, 1.0, rng);
  EmbeddingMatrix features = EmbeddingMatrix::Zero(n, 8);
  std::vector<uint32_t> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = std::min(v / (n / classes), classes - 1);
    for (uint32_t c = 0; c < 8; ++c) {
      features.Row(v)[c] = rng.UniformFloat(-0.5f, 0.5f);
    }
    features.Row(v)[labels[v]] += 0.8f;
  }

  TrainerOptions opts;
  opts.model = GnnModel::kGcn;
  opts.num_layers = 2;
  opts.hidden_dim = 16;
  opts.learning_rate = 0.5f;

  auto dist = Deploy(graph, 4);
  auto single = Deploy(graph, 1);
  auto dist_trainer = DistributedTrainer::Create(graph, dist->relation, *dist->engine, features,
                                                 labels, classes, opts);
  auto single_trainer = DistributedTrainer::Create(graph, single->relation, *single->engine,
                                                   features, labels, classes, opts);
  if (!dist_trainer.ok() || !single_trainer.ok()) {
    std::printf("trainer setup failed\n");
    return 1;
  }

  std::printf("epoch | 4-device loss  acc | 1-device loss  acc\n");
  for (int epoch = 0; epoch < 40; ++epoch) {
    auto d = dist_trainer->TrainEpoch();
    auto s = single_trainer->TrainEpoch();
    if (!d.ok() || !s.ok()) {
      std::printf("training failed at epoch %d\n", epoch);
      return 1;
    }
    if (epoch % 5 == 0 || epoch == 39) {
      std::printf("%5d | %9.4f %5.1f%% | %9.4f %5.1f%%\n", epoch, d->loss, d->accuracy * 100,
                  s->loss, s->accuracy * 100);
    }
  }
  auto final_eval = dist_trainer->Evaluate();
  std::printf("final 4-device accuracy: %.1f%% (distributed training over DGCL "
              "graphAllgather)\n",
              final_eval->accuracy * 100);
  return final_eval->accuracy > 0.9 ? 0 : 1;
}
