// Topology explorer: prints the preset communication topologies, the
// transport each device pair would use, and how the planners route a
// workload across them — a window into §3's analysis.
//
// Build & run:  ./build/examples/topology_explorer

#include <cstdio>

#include "common/table_printer.h"
#include "graph/generators.h"
#include "partition/multilevel.h"
#include "planner/baselines.h"
#include "planner/cost_model.h"
#include "planner/spst.h"
#include "runtime/transport.h"
#include "topology/presets.h"

using namespace dgcl;

namespace {

void PrintTransportMatrix(const Topology& topo) {
  std::printf("transport selection (§6.2) for %u devices:\n   ", topo.num_devices());
  for (DeviceId j = 0; j < topo.num_devices(); ++j) {
    std::printf("%3u", j);
  }
  std::printf("\n");
  for (DeviceId i = 0; i < topo.num_devices(); ++i) {
    std::printf("%3u", i);
    for (DeviceId j = 0; j < topo.num_devices(); ++j) {
      if (i == j) {
        std::printf("  .");
        continue;
      }
      switch (SelectTransport(topo, i, j)) {
        case Transport::kCudaVirtualMemory:
          std::printf("  V");
          break;
        case Transport::kPinnedHostMemory:
          std::printf("  H");
          break;
        case Transport::kNic:
          std::printf("  N");
          break;
      }
    }
    std::printf("\n");
  }
  std::printf("  (V = CUDA virtual memory, H = pinned host memory, N = NIC helper thread)\n\n");
}

void PrintLinkMatrix(const Topology& topo) {
  std::printf("direct-link bottleneck bandwidth (GB/s):\n   ");
  for (DeviceId j = 0; j < topo.num_devices(); ++j) {
    std::printf("%7u", j);
  }
  std::printf("\n");
  for (DeviceId i = 0; i < topo.num_devices(); ++i) {
    std::printf("%3u", i);
    for (DeviceId j = 0; j < topo.num_devices(); ++j) {
      if (i == j) {
        std::printf("      .");
      } else {
        std::printf("%7.2f", topo.LinkBottleneckGBps(topo.LinkBetween(i, j)));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void ComparePlanners(const Topology& topo, const char* name) {
  Rng rng(5);
  CsrGraph graph = GenerateRmat({.scale = 11, .num_edges = 20000}, rng);
  MultilevelPartitioner metis;
  auto rel = BuildCommRelation(graph, *metis.Partition(graph, topo.num_devices()));
  const double bytes = 1024.0;
  TablePrinter table({"Planner", "stages", "link traversals", "cost (ms)"});
  SpstPlanner spst;
  PeerToPeerPlanner p2p;
  RingPlanner ring;
  for (Planner* planner : std::initializer_list<Planner*>{&spst, &p2p, &ring}) {
    auto plan = planner->Plan(*rel, topo, bytes);
    if (!plan.ok()) {
      table.AddRow({planner->name(), "n/a", "n/a", "n/a"});
      continue;
    }
    table.AddRow({planner->name(), TablePrinter::FmtInt(plan->NumStages()),
                  TablePrinter::FmtInt(static_cast<long long>(PlanTotalTraffic(*plan))),
                  TablePrinter::Fmt(EvaluatePlanCost(*plan, topo, bytes) * 1e3, 3)});
  }
  std::printf("%s\n", table.Render(std::string("planner comparison on ") + name).c_str());
}

}  // namespace

int main() {
  std::printf("=== 8-GPU DGX-1-like machine (Figure 3) ===\n\n");
  Topology dgx = BuildPaperTopology(8);
  std::printf("%s\n", dgx.ToString().c_str());
  PrintLinkMatrix(dgx);
  PrintTransportMatrix(dgx);
  ComparePlanners(dgx, "DGX-1 (8 GPUs)");

  std::printf("=== 8-GPU PCIe-only server (second configuration) ===\n\n");
  Topology pcie = BuildPaperTopology(8, /*nvlink=*/false);
  PrintLinkMatrix(pcie);
  ComparePlanners(pcie, "PCIe-only (8 GPUs)");

  std::printf("=== two machines, 16 GPUs over IB ===\n\n");
  Topology cluster = BuildPaperTopology(16);
  PrintTransportMatrix(cluster);
  ComparePlanners(cluster, "2x8 GPUs over IB");
  return 0;
}
