// Quickstart: the end-to-end DGCL workflow of §4.2 (Listing 1) in C++.
//
//   1. Build a communication topology (a simulated 8-GPU DGX-1 here).
//   2. Init the DGCL context.
//   3. BuildCommInfo: partition the graph, plan communication with SPST,
//      compile send/receive tables and arm the runtime.
//   4. DispatchFeatures + GraphAllgather: every device ends up with its
//      local and required remote embeddings, moved by the threaded runtime
//      with the decentralized flag protocol.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "dgcl/dgcl.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "planner/baselines.h"
#include "planner/cost_model.h"
#include "topology/presets.h"

using namespace dgcl;

int main() {
  // A synthetic power-law graph standing in for the user's data.
  Rng rng(7);
  CsrGraph graph = GenerateRmat({.scale = 12, .num_edges = 40000}, rng);
  std::printf("input graph: %s\n", ComputeStats(graph).ToString().c_str());

  // init(): an 8-GPU single-machine topology (NVLink cube mesh + PCIe/QPI).
  auto ctx = DgclContext::Init(BuildPaperTopology(8));
  if (!ctx.ok()) {
    std::printf("init failed: %s\n", ctx.status().ToString().c_str());
    return 1;
  }

  // buildCommInfo(graph, topology).
  if (Status s = ctx->BuildCommInfo(graph); !s.ok()) {
    std::printf("buildCommInfo failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // Everything the pipeline produced is bundled on artifacts().
  const PlanArtifacts& artifacts = ctx->artifacts();
  const CommRelation& rel = artifacts.relation;
  std::printf("communication relation: %llu vertex transfers across %u devices\n",
              static_cast<unsigned long long>(rel.TotalTransfers()), rel.num_devices);
  std::printf("SPST plan: %u stages, %zu transfer ops, %llu bytes of send/recv tables\n",
              artifacts.compiled.num_stages, artifacts.compiled.ops.size(),
              static_cast<unsigned long long>(artifacts.compiled.TableBytes()));

  // How much better is the plan than naive peer-to-peer, under the cost model?
  PeerToPeerPlanner p2p;
  auto p2p_plan = p2p.Plan(rel, ctx->topology(), 1024);
  if (p2p_plan.ok()) {
    const double spst_ms = EvaluatePlanCost(artifacts.plan, ctx->topology(), 1024) * 1e3;
    const double p2p_ms = EvaluatePlanCost(*p2p_plan, ctx->topology(), 1024) * 1e3;
    std::printf("planned allgather cost: SPST %.3f ms vs peer-to-peer %.3f ms (%.1fx)\n",
                spst_ms, p2p_ms, p2p_ms / spst_ms);
  }

  // dispatch_features + graphAllgather on real data.
  const uint32_t dim = 16;
  EmbeddingMatrix features = EmbeddingMatrix::Zero(graph.num_vertices(), dim);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    features.Row(v)[0] = static_cast<float>(v);  // recognizable payload
  }
  auto local = ctx->DispatchFeatures(features);
  auto slots = ctx->GraphAllgather(*local);
  if (!slots.ok()) {
    std::printf("graphAllgather failed: %s\n", slots.status().ToString().c_str());
    return 1;
  }

  // Verify delivery: every device must now hold its remote embeddings.
  uint64_t verified = 0;
  for (uint32_t d = 0; d < rel.num_devices; ++d) {
    const auto& locals = rel.local_vertices[d];
    const auto& remotes = rel.remote_vertices[d];
    for (uint32_t i = 0; i < remotes.size(); ++i) {
      if ((*slots)[d].Row(locals.size() + i)[0] != static_cast<float>(remotes[i])) {
        std::printf("delivery mismatch on device %u!\n", d);
        return 1;
      }
      ++verified;
    }
  }
  std::printf("graphAllgather delivered %llu remote embeddings correctly on all devices\n",
              static_cast<unsigned long long>(verified));
  return 0;
}
