#include "planner/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace dgcl {

CostModel::CostModel(const Topology& topo, uint32_t max_stages, double bytes_per_unit)
    : topo_(&topo), max_stages_(max_stages), bytes_per_unit_(bytes_per_unit) {
  DGCL_CHECK_GT(max_stages, 0u);
  DGCL_CHECK_GT(bytes_per_unit, 0.0);
  loads_.assign(max_stages, std::vector<uint64_t>(topo.num_connections(), 0));
  stage_seconds_.assign(max_stages, 0.0);
}

double CostModel::HopSeconds(uint32_t stage, ConnId conn, uint64_t extra_units) const {
  const double bytes = static_cast<double>(loads_[stage][conn] + extra_units) * bytes_per_unit_;
  return bytes / (topo_->connection(conn).bandwidth_gbps * 1e9);
}

void CostModel::AddTransfer(LinkId link, uint32_t stage, uint64_t units) {
  DGCL_CHECK_LT(stage, max_stages_);
  ++epoch_;
  double new_stage_max = stage_seconds_[stage];
  for (ConnId hop : topo_->link(link).hops) {
    loads_[stage][hop] += units;
    new_stage_max = std::max(new_stage_max, HopSeconds(stage, hop, 0));
  }
  total_seconds_ += new_stage_max - stage_seconds_[stage];
  stage_seconds_[stage] = new_stage_max;
}

double CostModel::IncrementalCost(LinkId link, uint32_t stage, uint64_t units) const {
  DGCL_CHECK_LT(stage, max_stages_);
  double new_max = stage_seconds_[stage];
  for (ConnId hop : topo_->link(link).hops) {
    new_max = std::max(new_max, HopSeconds(stage, hop, units));
  }
  return new_max - stage_seconds_[stage];
}

double CostModel::ConnBusySeconds(ConnId conn) const {
  double busy = 0.0;
  for (uint32_t k = 0; k < max_stages_; ++k) {
    if (loads_[k][conn] != 0) {
      busy += HopSeconds(k, conn, 0);
    }
  }
  return busy;
}

double ReplayClassPlanCost(const ClassPlan& plan, const Topology& topo, double bytes_per_unit) {
  if (plan.num_devices <= 1) {
    return 0.0;
  }
  CostModel model(topo, plan.num_devices - 1, bytes_per_unit);
  for (const ClassTree& tree : plan.trees) {
    for (const TreeEdge& e : tree.edges) {
      model.AddTransfer(e.link, e.stage, tree.count);
    }
  }
  return model.TotalSeconds();
}

std::vector<double> ReplayClassPlanStageSeconds(const ClassPlan& plan, const Topology& topo,
                                                double bytes_per_unit) {
  if (plan.num_devices <= 1) {
    return {};
  }
  CostModel model(topo, plan.num_devices - 1, bytes_per_unit);
  uint32_t max_stage_used = 0;
  for (const ClassTree& tree : plan.trees) {
    for (const TreeEdge& e : tree.edges) {
      model.AddTransfer(e.link, e.stage, tree.count);
      max_stage_used = std::max(max_stage_used, e.stage);
    }
  }
  std::vector<double> stage_seconds(plan.trees.empty() ? 0 : max_stage_used + 1, 0.0);
  for (uint32_t k = 0; k < stage_seconds.size(); ++k) {
    stage_seconds[k] = model.StageSeconds(k);
  }
  return stage_seconds;
}

double EvaluatePlanCost(const CommPlan& plan, const Topology& topo, double bytes_per_unit) {
  const uint32_t stages = std::max(plan.NumStages(), 1u);
  CostModel model(topo, stages, bytes_per_unit);
  for (const CommTree& tree : plan.trees) {
    for (const TreeEdge& e : tree.edges) {
      model.AddTransfer(e.link, e.stage);
    }
  }
  return model.TotalSeconds();
}

}  // namespace dgcl
