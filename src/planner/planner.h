// Planner interface: communication classes + topology -> communication plan.
//
// Planners operate on destination-set equivalence classes (CommClasses), not
// raw vertices: every vertex of a class has the same source and destination
// set, so one tree serves the whole class and the cost model is charged the
// class weight in one shot. Per-vertex semantics are recovered by expanding
// the class plan (ExpandClassPlan) or compiling it directly
// (CompilePlan(ClassPlan, ...)); both produce byte-identical runtime tables
// to per-vertex planning with the same trees.

#ifndef DGCL_PLANNER_PLANNER_H_
#define DGCL_PLANNER_PLANNER_H_

#include <string>

#include "comm/plan.h"
#include "comm/relation.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

class Planner {
 public:
  virtual ~Planner() = default;

  // `bytes_per_unit` is the embedding size in bytes; per §5.1 the optimal
  // plan is independent of it, but cost-model-driven planners still need a
  // consistent unit.
  virtual Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                        double bytes_per_unit) = 0;

  // Convenience wrapper: groups the relation into classes, plans, and
  // expands the class trees back into the per-vertex plan.
  Result<CommPlan> Plan(const CommRelation& relation, const Topology& topo,
                        double bytes_per_unit);

  virtual std::string name() const = 0;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_PLANNER_H_
