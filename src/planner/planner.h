// Planner interface: communication relation + topology -> communication plan.

#ifndef DGCL_PLANNER_PLANNER_H_
#define DGCL_PLANNER_PLANNER_H_

#include <string>

#include "comm/plan.h"
#include "comm/relation.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

class Planner {
 public:
  virtual ~Planner() = default;

  // `bytes_per_unit` is the embedding size in bytes; per §5.1 the optimal
  // plan is independent of it, but cost-model-driven planners still need a
  // consistent unit.
  virtual Result<CommPlan> Plan(const CommRelation& relation, const Topology& topo,
                                double bytes_per_unit) = 0;

  virtual std::string name() const = 0;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_PLANNER_H_
