#include "planner/registry.h"

#include <set>
#include <utility>

#include "planner/baselines.h"

namespace dgcl {
namespace {

std::string NormalizeName(const std::string& name) {
  return name == "peer-to-peer" ? "p2p" : name;
}

}  // namespace

Status PlannerOptions::Validate() const {
  if (strategy.empty()) {
    return Status::InvalidArgument(
        "PlannerOptions::strategy is empty; pick a registered strategy (" +
        [] {
          std::string names;
          for (const std::string& n : PlannerRegistry::Global().Names()) {
            names += names.empty() ? n : ", " + n;
          }
          return names;
        }() +
        ") or \"auto\"");
  }
  if (auto_select && strategy != "auto" && strategy != "spst") {
    // "spst" is the default spelling, so auto_select=true with an untouched
    // strategy field means auto; any other explicit strategy contradicts it.
    return Status::InvalidArgument("PlannerOptions::auto_select is set but strategy forces \"" +
                                   strategy +
                                   "\"; drop one of the two (auto_select selects the cost-model "
                                   "winner across every registered strategy)");
  }
  if (strategy != "auto" && !PlannerRegistry::Global().Contains(NormalizeName(strategy))) {
    std::string names;
    for (const std::string& n : PlannerRegistry::Global().Names()) {
      names += names.empty() ? n : ", " + n;
    }
    return Status::InvalidArgument("unknown planner strategy \"" + strategy +
                                   "\"; registered strategies: " + names + ", or \"auto\"");
  }
  DGCL_RETURN_IF_ERROR(broadcast.Validate());
  return Status::Ok();
}

PlannerRegistry& PlannerRegistry::Global() {
  static PlannerRegistry* registry = [] {
    auto* r = new PlannerRegistry();
    auto must = [r](const std::string& name, PlannerFactory factory) {
      Status s = r->Register(name, std::move(factory));
      (void)s;
    };
    must("spst", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<SpstPlanner>(o.spst);
    });
    must("p2p", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<PeerToPeerPlanner>(o.spst.num_threads);
    });
    must("ring", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<RingPlanner>(o.spst.num_threads);
    });
    must("swap", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<SwapPlanner>(o.spst.num_threads);
    });
    must("broadcast-1d", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<BlockBroadcastPlanner>(BroadcastVariant::k1D, o.broadcast);
    });
    must("broadcast-1.5d", [](const PlannerOptions& o) -> std::unique_ptr<Planner> {
      return std::make_unique<BlockBroadcastPlanner>(BroadcastVariant::k1_5D, o.broadcast);
    });
    return r;
  }();
  return *registry;
}

Status PlannerRegistry::Register(const std::string& name, PlannerFactory factory) {
  if (name.empty() || name == "auto") {
    return Status::InvalidArgument("planner name must be non-empty and not \"auto\"");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("planner factory must not be null");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("planner \"" + name + "\" already registered");
  }
  return Status::Ok();
}

bool PlannerRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(NormalizeName(name)) != 0;
}

Result<std::unique_ptr<Planner>> PlannerRegistry::Create(const std::string& name,
                                                         const PlannerOptions& options) const {
  PlannerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(NormalizeName(name));
    if (it == factories_.end()) {
      std::string names;
      for (const auto& [n, f] : factories_) {
        names += names.empty() ? n : ", " + n;
      }
      return Status::NotFound("planner \"" + name + "\" not registered (have: " + names + ")");
    }
    factory = it->second;
  }
  std::unique_ptr<Planner> planner = factory(options);
  if (planner == nullptr) {
    return Status::Internal("planner factory for \"" + name + "\" returned null");
  }
  return planner;
}

std::vector<std::string> PlannerRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

const char* PlannerRegistry::InternedName(const std::string& s) {
  static std::mutex intern_mutex;
  static std::set<std::string>* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(intern_mutex);
  return interned->insert(s).first->c_str();
}

}  // namespace dgcl
