// Baseline communication planners.
//
//  * PeerToPeerPlanner — each vertex goes directly from its source to every
//    destination over the direct link, all in one stage (the scheme of
//    Lux/ROC that §3 profiles).
//  * RingPlanner — vertices travel along a fixed device ring until every
//    destination is covered (the NCCL-style regular pattern; an ablation
//    showing why regular collectives fit GNN traffic poorly).
//
// Both are oblivious to load, so they plan one tree per equivalence class
// with no chunking; the expanded per-vertex trees are identical to what
// per-vertex planning produced. Classes are independent, so both planners
// fan the work out over the shared thread pool (num_threads != 1) with
// slot-indexed writes — the plan is bit-identical for every thread count.
//
// Swap and Replication are not link-level planners (they restructure the
// computation instead); they are modeled in src/sim/.

#ifndef DGCL_PLANNER_BASELINES_H_
#define DGCL_PLANNER_BASELINES_H_

#include "planner/planner.h"

namespace dgcl {

class PeerToPeerPlanner final : public Planner {
 public:
  // 1 = serial (default), 0 = hardware concurrency, else that many workers.
  explicit PeerToPeerPlanner(uint32_t num_threads = 1) : num_threads_(num_threads) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "peer-to-peer"; }

 private:
  uint32_t num_threads_;
};

class RingPlanner final : public Planner {
 public:
  explicit RingPlanner(uint32_t num_threads = 1) : num_threads_(num_threads) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "ring"; }

 private:
  uint32_t num_threads_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_BASELINES_H_
