// Baseline communication planners.
//
//  * PeerToPeerPlanner ("p2p") — each vertex goes directly from its source to
//    every destination over the direct link, all in one stage (the scheme of
//    Lux/ROC that §3 profiles).
//  * RingPlanner ("ring") — vertices travel along a fixed device ring until
//    every destination is covered (the NCCL-style regular pattern; an
//    ablation showing why regular collectives fit GNN traffic poorly).
//  * SwapPlanner ("swap") — the link-level analogue of NeuGraph's swap
//    scheme: every transfer is staged through the source socket's hub device
//    (its lowest GPU id, standing in for the PCIe-root/host staging buffer)
//    and fanned out from there, so all of a partition's traffic funnels
//    through one staging point. Swap's *memory* behaviour is modeled in
//    src/sim/swap_model.h; this planner gives the registry a link-level
//    strategy with the same funnel shape for cost-model comparisons.
//
// All three are oblivious to load, so they plan one tree per equivalence
// class with no chunking; the expanded per-vertex trees are identical to
// what per-vertex planning produced. Classes are independent, so the
// planners fan the work out over the shared thread pool (num_threads != 1)
// with slot-indexed writes — the plan is bit-identical for every thread
// count. Replication is not a link-level planner (it restructures the
// computation instead); it is modeled in src/sim/.

#ifndef DGCL_PLANNER_BASELINES_H_
#define DGCL_PLANNER_BASELINES_H_

#include "planner/planner.h"

namespace dgcl {

class PeerToPeerPlanner final : public Planner {
 public:
  // 1 = serial (default), 0 = hardware concurrency, else that many workers.
  explicit PeerToPeerPlanner(uint32_t num_threads = 1) : num_threads_(num_threads) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "p2p"; }

 private:
  uint32_t num_threads_;
};

class RingPlanner final : public Planner {
 public:
  explicit RingPlanner(uint32_t num_threads = 1) : num_threads_(num_threads) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "ring"; }

 private:
  uint32_t num_threads_;
};

class SwapPlanner final : public Planner {
 public:
  explicit SwapPlanner(uint32_t num_threads = 1) : num_threads_(num_threads) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "swap"; }

 private:
  uint32_t num_threads_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_BASELINES_H_
