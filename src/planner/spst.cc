#include "planner/spst.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"

namespace dgcl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One shortest-path search over the (device, depth) layered graph, routing
// `units` vertex embeddings at once (a whole class chunk).
//
// Sources: devices already in the tree, at their recorded depths, distance 0.
// Targets: any device whose bit is set in `remaining`, at any depth.
// An edge out of depth k is weighted with the cost-model blow-up of adding
// the chunk's units on that link at stage k. Devices already in the tree
// cannot be re-entered.
//
// On success appends the path's edges to `tree_edges`, records new depths in
// `depth_in_tree`, commits the units to `model` and returns the reached
// device; returns kInvalidId when no target is reachable within `max_depth`.
uint32_t GrowTreeOneStep(const Topology& topo, CostModel& model, double hop_epsilon,
                         uint32_t max_depth, DeviceMask remaining, uint64_t units,
                         std::vector<uint32_t>& depth_in_tree,
                         std::vector<TreeEdge>& tree_edges) {
  const uint32_t num_devices = topo.num_devices();
  const uint32_t layers = max_depth + 1;
  const uint32_t num_nodes = num_devices * layers;
  auto node_of = [layers](uint32_t device, uint32_t depth) { return device * layers + depth; };

  std::vector<double> dist(num_nodes, kInf);
  std::vector<uint32_t> parent_node(num_nodes, kInvalidId);
  std::vector<LinkId> parent_link(num_nodes, kInvalidId);

  using QueueEntry = std::pair<double, uint32_t>;  // (distance, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  for (uint32_t d = 0; d < num_devices; ++d) {
    if (depth_in_tree[d] != kInvalidId && depth_in_tree[d] <= max_depth) {
      uint32_t node = node_of(d, depth_in_tree[d]);
      dist[node] = 0.0;
      queue.push({0.0, node});
    }
  }

  // Epsilon scales with the units so chunks of different sizes tie-break
  // consistently (one unit at units = 1 reproduces the per-vertex weights).
  const double edge_epsilon = hop_epsilon * static_cast<double>(units);

  uint32_t target_node = kInvalidId;
  while (!queue.empty()) {
    auto [d_cost, node] = queue.top();
    queue.pop();
    if (d_cost > dist[node]) {
      continue;  // stale entry
    }
    const uint32_t device = node / layers;
    const uint32_t depth = node % layers;
    if ((remaining >> device) & 1) {
      target_node = node;
      break;  // first popped target is the overall nearest
    }
    if (depth == max_depth) {
      continue;
    }
    for (LinkId link_id : topo.LinksFrom(device)) {
      const Link& link = topo.link(link_id);
      if (depth_in_tree[link.dst] != kInvalidId) {
        continue;  // a tree is a tree: never enter a device twice
      }
      const uint32_t next = node_of(link.dst, depth + 1);
      const double weight = model.IncrementalCost(link_id, depth, units) + edge_epsilon;
      if (dist[node] + weight < dist[next]) {
        dist[next] = dist[node] + weight;
        parent_node[next] = node;
        parent_link[next] = link_id;
        queue.push({dist[next], next});
      }
    }
  }
  if (target_node == kInvalidId) {
    return kInvalidId;
  }

  // Backtrack links from target to a tree node, then re-order forward.
  std::vector<LinkId> path;
  uint32_t node = target_node;
  while (parent_node[node] != kInvalidId) {
    path.push_back(parent_link[node]);
    node = parent_node[node];
  }
  std::reverse(path.begin(), path.end());
  const uint32_t start_device = node / layers;

  // Splice out device loops. Because edge weights depend on the stage, the
  // layered search may find it "cheaper" to revisit a device at a deeper
  // layer; the spliced path delivers the same coverage at no higher cost
  // (dropping edges never increases any stage's load).
  std::vector<std::pair<uint32_t, LinkId>> walk;  // (device entered, via link)
  for (LinkId link_id : path) {
    const uint32_t dst = topo.link(link_id).dst;
    if (dst == start_device) {
      walk.clear();
      continue;
    }
    bool already_on_path = false;
    for (size_t i = 0; i < walk.size(); ++i) {
      if (walk[i].first == dst) {
        walk.resize(i + 1);
        already_on_path = true;
        break;
      }
    }
    if (!already_on_path) {
      walk.emplace_back(dst, link_id);
    }
  }
  DGCL_CHECK(!walk.empty());

  // Commit: the stage of each edge is the depth of its source in the tree.
  uint32_t depth = depth_in_tree[start_device];
  for (const auto& [device, link_id] : walk) {
    ++depth;
    DGCL_CHECK_EQ(depth_in_tree[device], kInvalidId);
    depth_in_tree[device] = depth;
    tree_edges.push_back(TreeEdge{link_id, depth - 1});
    model.AddTransfer(link_id, depth - 1, units);
  }
  return walk.back().first;
}

// A planner work item: `count` vertices of one class, planned as one tree.
struct Chunk {
  uint32_t class_id = 0;
  uint32_t first = 0;
  uint32_t count = 0;
};

// Splits every class into chunks of at most `max_units` vertices (evenly, so
// a class of 300 at bound 256 becomes 150 + 150, not 256 + 44). max_units = 0
// degenerates to one single-vertex chunk per vertex, enumerated in ascending
// global vertex id — exactly the seed per-vertex work list.
std::vector<Chunk> BuildChunks(const CommClasses& classes, uint32_t max_units) {
  std::vector<Chunk> chunks;
  if (max_units == 0) {
    std::vector<std::pair<VertexId, Chunk>> per_vertex;
    for (uint32_t c = 0; c < classes.classes.size(); ++c) {
      const CommClass& cls = classes.classes[c];
      for (uint32_t i = 0; i < cls.vertices.size(); ++i) {
        per_vertex.emplace_back(cls.vertices[i], Chunk{c, i, 1});
      }
    }
    std::sort(per_vertex.begin(), per_vertex.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    chunks.reserve(per_vertex.size());
    for (auto& [vertex, chunk] : per_vertex) {
      (void)vertex;
      chunks.push_back(chunk);
    }
    return chunks;
  }
  for (uint32_t c = 0; c < classes.classes.size(); ++c) {
    const uint64_t weight = classes.classes[c].weight;
    if (weight == 0) {
      continue;
    }
    const uint64_t num_chunks = (weight + max_units - 1) / max_units;
    const uint64_t base = weight / num_chunks;
    const uint64_t remainder = weight % num_chunks;
    uint32_t first = 0;
    for (uint64_t k = 0; k < num_chunks; ++k) {
      const uint32_t count = static_cast<uint32_t>(base + (k < remainder ? 1 : 0));
      chunks.push_back(Chunk{c, first, count});
      first += count;
    }
  }
  return chunks;
}

}  // namespace

Result<ClassPlan> SpstPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  if (classes.num_devices <= 1) {
    return plan;
  }

  const uint32_t full_depth = classes.num_devices - 1;
  uint32_t capped_depth = options_.max_tree_depth == 0
                              ? full_depth
                              : std::min(options_.max_tree_depth, full_depth);
  CostModel model(topo, full_depth, bytes_per_unit);

  // Tie-break epsilon scaled to one embedding on the fastest connection, so
  // the plan is invariant under feature-dimension scaling.
  double max_bandwidth = 0.0;
  for (ConnId c = 0; c < topo.num_connections(); ++c) {
    max_bandwidth = std::max(max_bandwidth, topo.connection(c).bandwidth_gbps * 1e9);
  }
  const double hop_epsilon =
      max_bandwidth > 0.0 ? options_.hop_epsilon_fraction * bytes_per_unit / max_bandwidth
                          : 0.0;

  uint32_t max_units = options_.max_class_units;
  if (max_units > 0 && options_.min_chunks > 0) {
    const uint64_t adaptive = classes.TotalWeight() / options_.min_chunks;
    max_units = static_cast<uint32_t>(
        std::clamp<uint64_t>(adaptive, 1, options_.max_class_units));
  }
  std::vector<Chunk> order = BuildChunks(classes, max_units);
  if (options_.shuffle) {
    Rng rng(options_.shuffle_seed);
    rng.Shuffle(order);
  }
  plan.trees.reserve(order.size());

  std::vector<uint32_t> depth_in_tree(classes.num_devices, kInvalidId);
  for (const Chunk& chunk : order) {
    const CommClass& cls = classes.classes[chunk.class_id];
    ClassTree tree;
    tree.class_id = chunk.class_id;
    tree.first = chunk.first;
    tree.count = chunk.count;
    std::fill(depth_in_tree.begin(), depth_in_tree.end(), kInvalidId);
    depth_in_tree[cls.source] = 0;
    DeviceMask remaining = cls.mask;
    while (remaining != 0) {
      uint32_t reached = GrowTreeOneStep(topo, model, hop_epsilon, capped_depth, remaining,
                                         chunk.count, depth_in_tree, tree.edges);
      if (reached == kInvalidId && capped_depth < full_depth) {
        // Depth cap too tight for this tree shape; retry with the full bound.
        reached = GrowTreeOneStep(topo, model, hop_epsilon, full_depth, remaining,
                                  chunk.count, depth_in_tree, tree.edges);
      }
      if (reached == kInvalidId) {
        return Status::Internal("destination unreachable in communication topology");
      }
      remaining &= ~(DeviceMask{1} << reached);
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

}  // namespace dgcl
