#include "planner/spst.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A recorded cost-model interaction of one chunk's tree growth. The search
// reads the model only through IncrementalCost and writes it only through
// AddTransfer, so the op sequence captures the chunk's entire data
// dependency on the shared model: if every recorded query reproduces its
// value against a later model state (with the recorded commits replayed
// in between), the search would have unfolded identically from that state
// and the speculative tree is exactly what a serial run would build.
struct ModelOp {
  LinkId link = kInvalidId;
  uint32_t stage = 0;
  double queried_cost = 0.0;  // kQuery only
  enum : uint8_t { kQuery, kCommit } kind = kQuery;
};
using OpLog = std::vector<ModelOp>;

// One shortest-path search over the (device, depth) layered graph, routing
// `units` vertex embeddings at once (a whole class chunk).
//
// Sources: devices already in the tree, at their recorded depths, distance 0.
// Targets: any device whose bit is set in `remaining`, at any depth.
// An edge out of depth k is weighted with the cost-model blow-up of adding
// the chunk's units on that link at stage k. Devices already in the tree
// cannot be re-entered.
//
// On success appends the path's edges to `tree_edges`, records new depths in
// `depth_in_tree`, commits the units to `model` and returns the reached
// device; returns kInvalidId when no target is reachable within `max_depth`.
// When `log` is non-null every model read/write is recorded (speculative
// planning); logging never changes the computation.
uint32_t GrowTreeOneStep(const Topology& topo, CostModel& model, double hop_epsilon,
                         uint32_t max_depth, DeviceMask remaining, uint64_t units,
                         std::vector<uint32_t>& depth_in_tree,
                         std::vector<TreeEdge>& tree_edges, OpLog* log) {
  const uint32_t num_devices = topo.num_devices();
  const uint32_t layers = max_depth + 1;
  const uint32_t num_nodes = num_devices * layers;
  auto node_of = [layers](uint32_t device, uint32_t depth) { return device * layers + depth; };

  std::vector<double> dist(num_nodes, kInf);
  std::vector<uint32_t> parent_node(num_nodes, kInvalidId);
  std::vector<LinkId> parent_link(num_nodes, kInvalidId);

  using QueueEntry = std::pair<double, uint32_t>;  // (distance, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  for (uint32_t d = 0; d < num_devices; ++d) {
    if (depth_in_tree[d] != kInvalidId && depth_in_tree[d] <= max_depth) {
      uint32_t node = node_of(d, depth_in_tree[d]);
      dist[node] = 0.0;
      queue.push({0.0, node});
    }
  }

  // Epsilon scales with the units so chunks of different sizes tie-break
  // consistently (one unit at units = 1 reproduces the per-vertex weights).
  const double edge_epsilon = hop_epsilon * static_cast<double>(units);

  uint32_t target_node = kInvalidId;
  while (!queue.empty()) {
    auto [d_cost, node] = queue.top();
    queue.pop();
    if (d_cost > dist[node]) {
      continue;  // stale entry
    }
    const uint32_t device = node / layers;
    const uint32_t depth = node % layers;
    if ((remaining >> device) & 1) {
      target_node = node;
      break;  // first popped target is the overall nearest
    }
    if (depth == max_depth) {
      continue;
    }
    for (LinkId link_id : topo.LinksFrom(device)) {
      const Link& link = topo.link(link_id);
      if (depth_in_tree[link.dst] != kInvalidId) {
        continue;  // a tree is a tree: never enter a device twice
      }
      const uint32_t next = node_of(link.dst, depth + 1);
      const double cost = model.IncrementalCost(link_id, depth, units);
      if (log != nullptr) {
        log->push_back({link_id, depth, cost, ModelOp::kQuery});
      }
      const double weight = cost + edge_epsilon;
      if (dist[node] + weight < dist[next]) {
        dist[next] = dist[node] + weight;
        parent_node[next] = node;
        parent_link[next] = link_id;
        queue.push({dist[next], next});
      }
    }
  }
  if (target_node == kInvalidId) {
    return kInvalidId;
  }

  // Backtrack links from target to a tree node, then re-order forward.
  std::vector<LinkId> path;
  uint32_t node = target_node;
  while (parent_node[node] != kInvalidId) {
    path.push_back(parent_link[node]);
    node = parent_node[node];
  }
  std::reverse(path.begin(), path.end());
  const uint32_t start_device = node / layers;

  // Splice out device loops. Because edge weights depend on the stage, the
  // layered search may find it "cheaper" to revisit a device at a deeper
  // layer; the spliced path delivers the same coverage at no higher cost
  // (dropping edges never increases any stage's load).
  std::vector<std::pair<uint32_t, LinkId>> walk;  // (device entered, via link)
  for (LinkId link_id : path) {
    const uint32_t dst = topo.link(link_id).dst;
    if (dst == start_device) {
      walk.clear();
      continue;
    }
    bool already_on_path = false;
    for (size_t i = 0; i < walk.size(); ++i) {
      if (walk[i].first == dst) {
        walk.resize(i + 1);
        already_on_path = true;
        break;
      }
    }
    if (!already_on_path) {
      walk.emplace_back(dst, link_id);
    }
  }
  DGCL_CHECK(!walk.empty());

  // Commit: the stage of each edge is the depth of its source in the tree.
  uint32_t depth = depth_in_tree[start_device];
  for (const auto& [device, link_id] : walk) {
    ++depth;
    DGCL_CHECK_EQ(depth_in_tree[device], kInvalidId);
    depth_in_tree[device] = depth;
    tree_edges.push_back(TreeEdge{link_id, depth - 1});
    model.AddTransfer(link_id, depth - 1, units);
    if (log != nullptr) {
      log->push_back({link_id, depth - 1, 0.0, ModelOp::kCommit});
    }
  }
  return walk.back().first;
}

// A planner work item: `count` vertices of one class, planned as one tree.
struct Chunk {
  uint32_t class_id = 0;
  uint32_t first = 0;
  uint32_t count = 0;
};

// Splits every class into chunks of at most `max_units` vertices (evenly, so
// a class of 300 at bound 256 becomes 150 + 150, not 256 + 44). max_units = 0
// degenerates to one single-vertex chunk per vertex, enumerated in ascending
// global vertex id — exactly the seed per-vertex work list.
std::vector<Chunk> BuildChunks(const CommClasses& classes, uint32_t max_units) {
  std::vector<Chunk> chunks;
  if (max_units == 0) {
    std::vector<std::pair<VertexId, Chunk>> per_vertex;
    for (uint32_t c = 0; c < classes.classes.size(); ++c) {
      const CommClass& cls = classes.classes[c];
      for (uint32_t i = 0; i < cls.vertices.size(); ++i) {
        per_vertex.emplace_back(cls.vertices[i], Chunk{c, i, 1});
      }
    }
    std::sort(per_vertex.begin(), per_vertex.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    chunks.reserve(per_vertex.size());
    for (auto& [vertex, chunk] : per_vertex) {
      (void)vertex;
      chunks.push_back(chunk);
    }
    return chunks;
  }
  for (uint32_t c = 0; c < classes.classes.size(); ++c) {
    const uint64_t weight = classes.classes[c].weight;
    if (weight == 0) {
      continue;
    }
    const uint64_t num_chunks = (weight + max_units - 1) / max_units;
    const uint64_t base = weight / num_chunks;
    const uint64_t remainder = weight % num_chunks;
    uint32_t first = 0;
    for (uint64_t k = 0; k < num_chunks; ++k) {
      const uint32_t count = static_cast<uint32_t>(base + (k < remainder ? 1 : 0));
      chunks.push_back(Chunk{c, first, count});
      first += count;
    }
  }
  return chunks;
}

// Shared read-only inputs of one PlanClasses invocation.
struct PlanContext {
  const CommClasses* classes = nullptr;
  const Topology* topo = nullptr;
  double hop_epsilon = 0.0;
  uint32_t capped_depth = 0;
  uint32_t full_depth = 0;
};

// Grows one chunk's whole tree against `model` (committing its traffic).
// `depth_in_tree` is caller-provided scratch sized to num_devices.
Status PlanChunkTree(const PlanContext& ctx, const Chunk& chunk, CostModel& model,
                     std::vector<uint32_t>& depth_in_tree, ClassTree& tree, OpLog* log) {
  const CommClass& cls = ctx.classes->classes[chunk.class_id];
  tree.class_id = chunk.class_id;
  tree.first = chunk.first;
  tree.count = chunk.count;
  tree.edges.clear();
  std::fill(depth_in_tree.begin(), depth_in_tree.end(), kInvalidId);
  depth_in_tree[cls.source] = 0;
  DeviceMask remaining = cls.mask;
  while (remaining != 0) {
    uint32_t reached = GrowTreeOneStep(*ctx.topo, model, ctx.hop_epsilon, ctx.capped_depth,
                                       remaining, chunk.count, depth_in_tree, tree.edges, log);
    if (reached == kInvalidId && ctx.capped_depth < ctx.full_depth) {
      // Depth cap too tight for this tree shape; retry with the full bound.
      reached = GrowTreeOneStep(*ctx.topo, model, ctx.hop_epsilon, ctx.full_depth, remaining,
                                chunk.count, depth_in_tree, tree.edges, log);
    }
    if (reached == kInvalidId) {
      return Status::Internal("destination unreachable in communication topology");
    }
    remaining &= ~(DeviceMask{1} << reached);
  }
  return Status::Ok();
}

// Replays a chunk's recorded model interactions against `model`. Returns
// true iff every query reproduces its recorded value, in which case `model`
// has also absorbed the chunk's commits (it equals the serial post-chunk
// state bit-for-bit). On false, `model` is partially mutated — callers use a
// scratch copy.
bool ReplayChunk(CostModel& model, const OpLog& log, uint64_t units) {
  for (const ModelOp& op : log) {
    if (op.kind == ModelOp::kCommit) {
      model.AddTransfer(op.link, op.stage, units);
    } else if (model.IncrementalCost(op.link, op.stage, units) != op.queried_cost) {
      return false;
    }
  }
  return true;
}

// One chunk's speculative planning result, published by a worker.
struct SpecSlot {
  uint64_t epoch = 0;  // shared-model epoch the snapshot was taken at
  Status status = Status::Ok();
  ClassTree tree;
  OpLog log;
};

}  // namespace

Result<ClassPlan> SpstPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  stats_ = {};
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  plan.planner_name = name();
  if (classes.num_devices <= 1) {
    return plan;
  }

  PlanContext ctx;
  ctx.classes = &classes;
  ctx.topo = &topo;
  ctx.full_depth = classes.num_devices - 1;
  ctx.capped_depth = options_.max_tree_depth == 0
                         ? ctx.full_depth
                         : std::min(options_.max_tree_depth, ctx.full_depth);

  // Tie-break epsilon scaled to one embedding on the fastest connection, so
  // the plan is invariant under feature-dimension scaling.
  double max_bandwidth = 0.0;
  for (ConnId c = 0; c < topo.num_connections(); ++c) {
    max_bandwidth = std::max(max_bandwidth, topo.connection(c).bandwidth_gbps * 1e9);
  }
  ctx.hop_epsilon = max_bandwidth > 0.0
                        ? options_.hop_epsilon_fraction * bytes_per_unit / max_bandwidth
                        : 0.0;

  uint32_t max_units = options_.max_class_units;
  if (max_units > 0 && options_.min_chunks > 0) {
    const uint64_t adaptive = classes.TotalWeight() / options_.min_chunks;
    max_units = static_cast<uint32_t>(
        std::clamp<uint64_t>(adaptive, 1, options_.max_class_units));
  }
  std::vector<Chunk> order = BuildChunks(classes, max_units);
  if (options_.shuffle) {
    Rng rng(options_.shuffle_seed);
    rng.Shuffle(order);
  }
  plan.trees.reserve(order.size());
  stats_.chunks = order.size();
  DGCL_TSPAN2("planner", "plan_classes", "chunks", order.size(), "threads",
              ThreadPool::ResolveThreadCount(options_.num_threads));

  CostModel model(topo, ctx.full_depth, bytes_per_unit);
  std::vector<uint32_t> depth_in_tree(classes.num_devices, kInvalidId);

  const uint32_t threads = ThreadPool::ResolveThreadCount(options_.num_threads);
  if (threads <= 1 || order.size() <= 1) {
    // Serial path: plan and commit chunk by chunk.
    for (const Chunk& chunk : order) {
      ClassTree tree;
      DGCL_RETURN_IF_ERROR(PlanChunkTree(ctx, chunk, model, depth_in_tree, tree, nullptr));
      plan.trees.push_back(std::move(tree));
    }
    stats_.exact_commits = stats_.chunks;
    plan.planned_cost_seconds = model.TotalSeconds();
    return plan;
  }

  // Serial warm-up prefix: the first chunks of an empty model raise the
  // stage-0 bottleneck on nearly every commit, so speculative replays of
  // them are almost guaranteed to fail validation. Committing a short
  // prefix serially (identical to the serial planner, so the plan is
  // unchanged) lets workers snapshot a model whose bottlenecks have
  // stabilized. See DESIGN.md §"Parallel planning".
  const size_t n = order.size();
  size_t warmup = 0;
  if (options_.warmup_fraction > 0.0) {
    warmup = static_cast<size_t>(options_.warmup_fraction * static_cast<double>(n));
    warmup = std::min(std::max<size_t>(warmup, 1), n);
  }
  {
    DGCL_TSPAN1("planner", "warmup.prefix", "chunks", warmup);
    for (size_t i = 0; i < warmup; ++i) {
      ClassTree tree;
      DGCL_RETURN_IF_ERROR(PlanChunkTree(ctx, order[i], model, depth_in_tree, tree, nullptr));
      plan.trees.push_back(std::move(tree));
    }
  }
  stats_.warmup_commits = warmup;
  stats_.exact_commits += warmup;

  // Parallel path. Workers race ahead planning chunks against snapshots of
  // the shared model; this thread is the committer and walks the chunks in
  // serial order, folding each result in only once it is provably the tree
  // the serial planner would have produced at that point (see DESIGN.md,
  // "Parallel planning"). Invariant: after folding in chunk i, `model` is
  // bit-identical to the serial planner's model after its chunk i.
  std::vector<SpecSlot> slots(n);
  std::vector<char> ready(n, 0);
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::mutex model_mutex;  // guards writes to `model` vs. worker snapshots
  std::atomic<uint64_t> next_chunk{warmup};
  std::atomic<bool> cancel{false};
  const uint32_t num_workers =
      static_cast<uint32_t>(std::min<uint64_t>(threads, n - warmup));
  std::atomic<uint32_t> live_workers{num_workers};
  std::mutex workers_mutex;
  std::condition_variable workers_cv;

  // Bounded speculation window: a worker does not start chunk i until the
  // committer has folded in chunk i - window. Without the bound, workers can
  // race arbitrarily far ahead of the committer (especially when commits are
  // slow replans), taking snapshots so stale that replay validation is
  // hopeless — the window keeps drift to a few chunks' worth of commits and
  // caps the speculative work thrown away. Scheduling only: never affects
  // the committed plan.
  const uint64_t window = options_.speculation_window != 0
                              ? options_.speculation_window
                              : static_cast<uint64_t>(num_workers) * 2;
  std::atomic<uint64_t> committed_count{warmup};
  std::mutex window_mutex;
  std::condition_variable window_cv;

  auto worker = [&] {
    CostModel local(topo, ctx.full_depth, bytes_per_unit);
    std::vector<uint32_t> scratch_depth(classes.num_devices, kInvalidId);
    for (;;) {
      const uint64_t i = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || cancel.load(std::memory_order_relaxed)) {
        break;
      }
      if (i >= committed_count.load(std::memory_order_acquire) + window) {
        std::unique_lock<std::mutex> lock(window_mutex);
        window_cv.wait(lock, [&] {
          return i < committed_count.load(std::memory_order_acquire) + window ||
                 cancel.load(std::memory_order_relaxed);
        });
        if (cancel.load(std::memory_order_relaxed)) {
          break;
        }
      }
      SpecSlot slot;
      {
        std::lock_guard<std::mutex> lock(model_mutex);
        local = model;  // snapshot (committer is the only writer)
      }
      slot.epoch = local.epoch();
      {
        DGCL_TSPAN1("planner", "chunk.plan", "chunk", i);
        slot.status = PlanChunkTree(ctx, order[i], local, scratch_depth, slot.tree, &slot.log);
      }
      {
        std::lock_guard<std::mutex> lock(ready_mutex);
        slots[i] = std::move(slot);
        ready[i] = 1;
      }
      ready_cv.notify_all();
    }
    if (live_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(workers_mutex);
      workers_cv.notify_all();
    }
  };
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::Shared();
  for (uint32_t t = 0; t < num_workers; ++t) {
    pool.Submit(worker);
  }

  CostModel scratch(topo, ctx.full_depth, bytes_per_unit);
  Status failure = Status::Ok();
  for (size_t i = warmup; i < n; ++i) {
    SpecSlot slot;
    {
      std::unique_lock<std::mutex> lock(ready_mutex);
      ready_cv.wait(lock, [&] { return ready[i] != 0; });
      slot = std::move(slots[i]);
    }
    if (!slot.status.ok()) {
      failure = slot.status;
      break;
    }
    const uint64_t units = order[i].count;
    bool committed = false;
    if (slot.epoch == model.epoch()) {
      // Snapshot still current: the speculative tree is exact by definition.
      std::lock_guard<std::mutex> lock(model_mutex);
      for (const TreeEdge& e : slot.tree.edges) {
        model.AddTransfer(e.link, e.stage, units);
      }
      ++stats_.exact_commits;
      committed = true;
    } else if (model.epoch() - slot.epoch <= options_.max_snapshot_staleness) {
      // Drifted: replay the recorded interactions against the live state.
      // Reading `model` without the lock is safe — only this thread writes.
      DGCL_TSPAN1("planner", "chunk.replay", "chunk", i);
      scratch = model;
      if (ReplayChunk(scratch, slot.log, units)) {
        std::lock_guard<std::mutex> lock(model_mutex);
        std::swap(model, scratch);  // scratch == live state + this chunk
        ++stats_.replay_commits;
        committed = true;
      }
    }
    if (!committed) {
      // Too stale or diverged: plan this chunk for real at its serial slot.
      DGCL_TSPAN1("planner", "chunk.replan", "chunk", i);
      std::lock_guard<std::mutex> lock(model_mutex);
      slot.status = PlanChunkTree(ctx, order[i], model, depth_in_tree, slot.tree, nullptr);
      ++stats_.replans;
    }
    if (!slot.status.ok()) {
      failure = slot.status;
      break;
    }
    plan.trees.push_back(std::move(slot.tree));
    {
      std::lock_guard<std::mutex> lock(window_mutex);
      committed_count.store(i + 1, std::memory_order_release);
    }
    window_cv.notify_all();
  }

  // Tear down: stop further claims and wait for in-flight workers, which
  // reference this frame's state.
  cancel.store(true, std::memory_order_relaxed);
  next_chunk.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(window_mutex);
  }
  window_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(workers_mutex);
    workers_cv.wait(lock, [&] { return live_workers.load(std::memory_order_acquire) == 0; });
  }
  if (!failure.ok()) {
    return failure;
  }
  plan.planned_cost_seconds = model.TotalSeconds();
  DGCL_TCOUNT("planner", "spst.exact_commits", stats_.exact_commits);
  DGCL_TCOUNT("planner", "spst.replay_commits", stats_.replay_commits);
  DGCL_TCOUNT("planner", "spst.replans", stats_.replans);
  DGCL_TCOUNT("planner", "spst.warmup_commits", stats_.warmup_commits);
  return plan;
}

}  // namespace dgcl
