#include "planner/baselines.h"

#include <bit>

namespace dgcl {

Result<ClassPlan> PeerToPeerPlanner::PlanClasses(const CommClasses& classes,
                                                 const Topology& topo, double bytes_per_unit) {
  (void)bytes_per_unit;
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  plan.trees.reserve(classes.classes.size());
  for (uint32_t c = 0; c < classes.classes.size(); ++c) {
    const CommClass& cls = classes.classes[c];
    ClassTree tree;
    tree.class_id = c;
    tree.first = 0;
    tree.count = static_cast<uint32_t>(cls.vertices.size());
    DeviceMask mask = cls.mask;
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      LinkId link = topo.LinkBetween(cls.source, d);
      if (link == kInvalidId) {
        return Status::FailedPrecondition("no direct link for peer-to-peer transfer");
      }
      tree.edges.push_back(TreeEdge{link, 0});
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

Result<ClassPlan> RingPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  (void)bytes_per_unit;
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  const uint32_t n = classes.num_devices;
  plan.trees.reserve(classes.classes.size());
  for (uint32_t c = 0; c < classes.classes.size(); ++c) {
    const CommClass& cls = classes.classes[c];
    ClassTree tree;
    tree.class_id = c;
    tree.first = 0;
    tree.count = static_cast<uint32_t>(cls.vertices.size());
    // Walk the ring src -> src+1 -> ... until all destinations are passed.
    uint32_t current = cls.source;
    uint32_t stage = 0;
    DeviceMask remaining = cls.mask;
    while (remaining != 0) {
      uint32_t next = (current + 1) % n;
      LinkId link = topo.LinkBetween(current, next);
      if (link == kInvalidId) {
        return Status::FailedPrecondition("ring hop without a link");
      }
      tree.edges.push_back(TreeEdge{link, stage});
      remaining &= ~(DeviceMask{1} << next);
      current = next;
      ++stage;
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

}  // namespace dgcl
