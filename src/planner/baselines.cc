#include "planner/baselines.h"

#include <bit>

namespace dgcl {

Result<CommPlan> PeerToPeerPlanner::Plan(const CommRelation& relation, const Topology& topo,
                                         double bytes_per_unit) {
  (void)bytes_per_unit;
  if (relation.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  CommPlan plan;
  plan.num_devices = relation.num_devices;
  for (VertexId v = 0; v < relation.dest_mask.size(); ++v) {
    DeviceMask mask = relation.dest_mask[v];
    if (mask == 0) {
      continue;
    }
    CommTree tree;
    tree.vertex = v;
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      LinkId link = topo.LinkBetween(relation.source[v], d);
      if (link == kInvalidId) {
        return Status::FailedPrecondition("no direct link for peer-to-peer transfer");
      }
      tree.edges.push_back(TreeEdge{link, 0});
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

Result<CommPlan> RingPlanner::Plan(const CommRelation& relation, const Topology& topo,
                                   double bytes_per_unit) {
  (void)bytes_per_unit;
  if (relation.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  CommPlan plan;
  plan.num_devices = relation.num_devices;
  const uint32_t n = relation.num_devices;
  for (VertexId v = 0; v < relation.dest_mask.size(); ++v) {
    DeviceMask mask = relation.dest_mask[v];
    if (mask == 0) {
      continue;
    }
    CommTree tree;
    tree.vertex = v;
    // Walk the ring src -> src+1 -> ... until all destinations are passed.
    uint32_t current = relation.source[v];
    uint32_t stage = 0;
    DeviceMask remaining = mask;
    while (remaining != 0) {
      uint32_t next = (current + 1) % n;
      LinkId link = topo.LinkBetween(current, next);
      if (link == kInvalidId) {
        return Status::FailedPrecondition("ring hop without a link");
      }
      tree.edges.push_back(TreeEdge{link, stage});
      remaining &= ~(DeviceMask{1} << next);
      current = next;
      ++stage;
    }
    plan.trees.push_back(std::move(tree));
  }
  return plan;
}

}  // namespace dgcl
