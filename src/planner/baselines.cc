#include "planner/baselines.h"

#include <bit>
#include <limits>
#include <mutex>

#include "common/thread_pool.h"
#include "planner/cost_model.h"

namespace dgcl {
namespace {

// Both baselines are oblivious to load, so class trees are independent and
// planning is trivially parallel: ParallelFor fills slot c of the pre-sized
// tree vector from class c alone, which is deterministic for every thread
// count. Errors are collected first-index-wins so the reported failure is
// also independent of scheduling.
template <typename PlanOneClass>
Result<ClassPlan> PlanClassesParallel(const CommClasses& classes, const Topology& topo,
                                      double bytes_per_unit, uint32_t num_threads,
                                      const PlanOneClass& plan_one) {
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  plan.trees.resize(classes.classes.size());

  std::mutex failure_mutex;
  uint64_t failure_index = std::numeric_limits<uint64_t>::max();
  Status failure = Status::Ok();
  auto plan_class = [&](uint64_t c) {
    ClassTree& tree = plan.trees[c];
    tree.class_id = static_cast<uint32_t>(c);
    tree.first = 0;
    tree.count = static_cast<uint32_t>(classes.classes[c].vertices.size());
    Status s = plan_one(classes.classes[c], tree);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (c < failure_index) {
        failure_index = c;
        failure = std::move(s);
      }
    }
  };

  const uint32_t threads = ThreadPool::ResolveThreadCount(num_threads);
  if (threads <= 1) {
    for (uint64_t c = 0; c < plan.trees.size(); ++c) {
      plan_class(c);
    }
  } else {
    ThreadPool::Shared().ParallelFor(plan.trees.size(), plan_class);
  }
  if (!failure.ok()) {
    return failure;
  }
  plan.planned_cost_seconds = ReplayClassPlanCost(plan, topo, bytes_per_unit);
  return plan;
}

}  // namespace

Result<ClassPlan> PeerToPeerPlanner::PlanClasses(const CommClasses& classes,
                                                 const Topology& topo, double bytes_per_unit) {
  return PlanClassesParallel(
      classes, topo, bytes_per_unit, num_threads_,
      [&topo](const CommClass& cls, ClassTree& tree) {
        DeviceMask mask = cls.mask;
        while (mask != 0) {
          uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
          mask &= mask - 1;
          LinkId link = topo.LinkBetween(cls.source, d);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("no direct link for peer-to-peer transfer");
          }
          tree.edges.push_back(TreeEdge{link, 0});
        }
        return Status::Ok();
      });
}

Result<ClassPlan> RingPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  const uint32_t n = classes.num_devices;
  return PlanClassesParallel(
      classes, topo, bytes_per_unit, num_threads_,
      [&topo, n](const CommClass& cls, ClassTree& tree) {
        // Walk the ring src -> src+1 -> ... until all destinations are passed.
        uint32_t current = cls.source;
        uint32_t stage = 0;
        DeviceMask remaining = cls.mask;
        while (remaining != 0) {
          uint32_t next = (current + 1) % n;
          LinkId link = topo.LinkBetween(current, next);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("ring hop without a link");
          }
          tree.edges.push_back(TreeEdge{link, stage});
          remaining &= ~(DeviceMask{1} << next);
          current = next;
          ++stage;
        }
        return Status::Ok();
      });
}

}  // namespace dgcl
