#include "planner/baselines.h"

#include <bit>

#include "planner/class_parallel.h"

namespace dgcl {

Result<ClassPlan> PeerToPeerPlanner::PlanClasses(const CommClasses& classes,
                                                 const Topology& topo, double bytes_per_unit) {
  return internal::PlanClassesParallel(
      classes, topo, bytes_per_unit, num_threads_, name(),
      [&topo](const CommClass& cls, ClassTree& tree) {
        DeviceMask mask = cls.mask;
        while (mask != 0) {
          uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
          mask &= mask - 1;
          LinkId link = topo.LinkBetween(cls.source, d);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("no direct link for peer-to-peer transfer");
          }
          tree.edges.push_back(TreeEdge{link, 0});
        }
        return Status::Ok();
      });
}

Result<ClassPlan> RingPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  const uint32_t n = classes.num_devices;
  return internal::PlanClassesParallel(
      classes, topo, bytes_per_unit, num_threads_, name(),
      [&topo, n](const CommClass& cls, ClassTree& tree) {
        // Walk the ring src -> src+1 -> ... until all destinations are passed.
        uint32_t current = cls.source;
        uint32_t stage = 0;
        DeviceMask remaining = cls.mask;
        while (remaining != 0) {
          uint32_t next = (current + 1) % n;
          LinkId link = topo.LinkBetween(current, next);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("ring hop without a link");
          }
          tree.edges.push_back(TreeEdge{link, stage});
          remaining &= ~(DeviceMask{1} << next);
          current = next;
          ++stage;
        }
        return Status::Ok();
      });
}

Result<ClassPlan> SwapPlanner::PlanClasses(const CommClasses& classes, const Topology& topo,
                                           double bytes_per_unit) {
  return internal::PlanClassesParallel(
      classes, topo, bytes_per_unit, num_threads_, name(),
      [&topo](const CommClass& cls, ClassTree& tree) {
        // The staging hub: the lowest device id sharing the source's
        // (machine, socket) — the stand-in for the socket's host staging
        // buffer. All of the class's traffic goes source -> hub once, then
        // hub -> destination per destination, mirroring how swap funnels
        // every embedding through CPU memory.
        const Device& src_dev = topo.device(cls.source);
        uint32_t hub = cls.source;
        for (uint32_t d = 0; d < topo.num_devices(); ++d) {
          const Device& dev = topo.device(d);
          if (dev.machine == src_dev.machine && dev.socket == src_dev.socket) {
            hub = d;
            break;
          }
        }
        uint32_t hub_depth = 0;
        DeviceMask mask = cls.mask;
        if (hub != cls.source) {
          LinkId to_hub = topo.LinkBetween(cls.source, hub);
          if (to_hub == kInvalidId) {
            return Status::FailedPrecondition("no link to swap staging hub");
          }
          tree.edges.push_back(TreeEdge{to_hub, 0});
          hub_depth = 1;
          mask &= ~(DeviceMask{1} << hub);  // delivered by the staging hop
        }
        while (mask != 0) {
          uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
          mask &= mask - 1;
          LinkId link = topo.LinkBetween(hub, d);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("no link from swap staging hub");
          }
          tree.edges.push_back(TreeEdge{link, hub_depth});
        }
        return Status::Ok();
      });
}

}  // namespace dgcl
