#include "planner/planner.h"

namespace dgcl {

Result<CommPlan> Planner::Plan(const CommRelation& relation, const Topology& topo,
                               double bytes_per_unit) {
  CommClasses classes = BuildCommClasses(relation);
  DGCL_ASSIGN_OR_RETURN(ClassPlan class_plan, PlanClasses(classes, topo, bytes_per_unit));
  return ExpandClassPlan(class_plan, classes);
}

}  // namespace dgcl
