// Planner strategy registry: the strategy is data, not code.
//
// Every communication-planning algorithm is registered by name in the
// process-wide PlannerRegistry; callers pick one with
// PlannerOptions::strategy ("spst", "p2p", "swap", "ring", "broadcast-1d",
// "broadcast-1.5d", or "auto" for cost-model-driven selection — see
// sim/planner_select.h) instead of instantiating a concrete planner class.
// DgclContext::BuildCommInfo, Recover and tools/dgcl_plan all resolve
// strategies through this registry, so a new planner becomes available to
// the whole pipeline by registering one factory.
//
// The registry is populated with the built-in strategies on first use;
// additional strategies can be registered at runtime (names are interned so
// telemetry counter labels derived from them have static lifetime).

#ifndef DGCL_PLANNER_REGISTRY_H_
#define DGCL_PLANNER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "planner/block_broadcast.h"
#include "planner/planner.h"
#include "planner/spst.h"

namespace dgcl {

// The strategy selection block of DgclOptions (and of any front end that
// plans — tools/dgcl_plan takes the same struct). `strategy` names a
// registered planner, or "auto" to plan with every registered strategy and
// commit the cost-model winner (sim/planner_select.h records the
// per-candidate scores as a SelectionReport).
struct PlannerOptions {
  std::string strategy = "spst";
  SpstOptions spst;            // consumed by the "spst" strategy
  BroadcastOptions broadcast;  // consumed by the "broadcast-*" strategies
  // Convenience alias for strategy = "auto" (the two spellings must agree:
  // auto_select together with a forced non-auto strategy is rejected).
  bool auto_select = false;

  bool IsAuto() const { return auto_select || strategy == "auto"; }

  // Rejects empty/unknown strategy names and contradictory knobs with
  // actionable messages; called by DgclOptions::Validate at Init so a bad
  // config never reaches the planning pipeline.
  Status Validate() const;
};

using PlannerFactory = std::function<std::unique_ptr<Planner>(const PlannerOptions&)>;

class PlannerRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in strategies:
  // spst, p2p, swap, ring, broadcast-1d, broadcast-1.5d.
  static PlannerRegistry& Global();

  // Fails with kInvalidArgument on duplicate, empty or reserved ("auto")
  // names.
  Status Register(const std::string& name, PlannerFactory factory);

  bool Contains(const std::string& name) const;

  // Instantiates the named strategy. "peer-to-peer" is accepted as an alias
  // of "p2p" (the planner's pre-registry display name).
  Result<std::unique_ptr<Planner>> Create(const std::string& name,
                                          const PlannerOptions& options) const;

  // Registered strategy names, ascending. "auto" is not listed — it is a
  // selection mode over these, not a strategy.
  std::vector<std::string> Names() const;

  // A static-lifetime copy of `s` (interned, never freed) — for telemetry
  // event names derived from runtime strategy names, which the lock-free
  // trace ring stores as raw pointers.
  static const char* InternedName(const std::string& s);

 private:
  PlannerRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, PlannerFactory> factories_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_REGISTRY_H_
