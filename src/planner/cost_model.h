// The communication cost model of §5.1.
//
// Communication happens in stages. For a plan S:
//   * each physical hop's time at stage k is (aggregate bytes over the hop at
//     stage k) / hop bandwidth — aggregation across *all* links sharing the
//     hop models contention;
//   * a link's stage time is the max over its hops (pipelined multi-hop);
//   * a stage's time is the max over links (parallel links);
//   * the plan's time is the sum over stages.
//
// Traffic is tracked in *vertex units* (one unit = one vertex embedding);
// bytes_per_unit converts to time. The paper's observation that the optimal
// plan is independent of the feature dimension corresponds to TotalSeconds
// scaling linearly in bytes_per_unit.
//
// AddTransfer/IncrementalCost are O(hops of the link): the "on-demand" cost
// evaluation the paper sketches at the end of §5.2, rather than the O(|V'|
// × |E'|) full matrix of Algorithm 2.

#ifndef DGCL_PLANNER_COST_MODEL_H_
#define DGCL_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "comm/plan.h"
#include "topology/topology.h"

namespace dgcl {

class CostModel {
 public:
  // `max_stages` bounds the stage index (a spanning tree over |V'| devices
  // has at most |V'| - 1 stages). `bytes_per_unit` is the embedding size in
  // bytes (feature dimension × sizeof(float)).
  CostModel(const Topology& topo, uint32_t max_stages, double bytes_per_unit);

  // Commits `units` vertex embeddings to `link` at `stage`.
  void AddTransfer(LinkId link, uint32_t stage, uint64_t units = 1);

  // Cost increase (seconds) if `units` embeddings were added on `link` at
  // `stage`; does not mutate. Zero when the link's hops stay under the
  // stage's current bottleneck — this is what makes SPST balance loads.
  double IncrementalCost(LinkId link, uint32_t stage, uint64_t units = 1) const;

  double TotalSeconds() const { return total_seconds_; }
  double StageSeconds(uint32_t stage) const { return stage_seconds_[stage]; }
  uint32_t max_stages() const { return max_stages_; }
  double bytes_per_unit() const { return bytes_per_unit_; }

  // Commit counter: incremented by every AddTransfer. Two models that
  // evolved from the same state share an epoch iff they saw the same number
  // of commits, which is how the parallel planner detects snapshot drift
  // (a speculative plan computed at epoch e is exact iff the shared model is
  // still at epoch e when the plan's turn to commit comes).
  uint64_t epoch() const { return epoch_; }

  // Traffic (vertex units) on a connection at a stage.
  uint64_t HopLoad(uint32_t stage, ConnId conn) const { return loads_[stage][conn]; }

  // Seconds a single connection is busy, summed over stages (for the link
  // balance breakdown of Table 7).
  double ConnBusySeconds(ConnId conn) const;

  const Topology& topology() const { return *topo_; }

 private:
  double HopSeconds(uint32_t stage, ConnId conn, uint64_t extra_units) const;

  const Topology* topo_;
  uint32_t max_stages_;
  double bytes_per_unit_;
  std::vector<std::vector<uint64_t>> loads_;  // [stage][conn], vertex units
  std::vector<double> stage_seconds_;         // max over conns per stage
  double total_seconds_ = 0.0;
  uint64_t epoch_ = 0;
};

// Replays a class plan's trees (in order) through a fresh cost model and
// returns the resulting t(S). For plans produced by SpstPlanner this is
// bit-identical to the planner's internal accounting (the planner commits
// the same AddTransfer sequence), which the property tests assert.
double ReplayClassPlanCost(const ClassPlan& plan, const Topology& topo, double bytes_per_unit);

// Same replay, but returns the per-stage breakdown (stage_seconds_ of the
// replayed model). Element k is the model's predicted wall time of stage k;
// the CostAudit pass joins this against observed per-stage times (Fig 10).
std::vector<double> ReplayClassPlanStageSeconds(const ClassPlan& plan, const Topology& topo,
                                                double bytes_per_unit);

// Evaluates a whole plan under the cost model: the t(S) of the paper.
double EvaluatePlanCost(const CommPlan& plan, const Topology& topo, double bytes_per_unit);

}  // namespace dgcl

#endif  // DGCL_PLANNER_COST_MODEL_H_
