// Shared driver for load-oblivious planners (baselines, block broadcasts).
//
// A load-oblivious planner derives each class tree from the class alone, so
// classes are independent work items: ParallelFor fills slot c of the
// pre-sized tree vector from class c, which is deterministic for every
// thread count. Errors are collected first-index-wins so the reported
// failure is also independent of scheduling. The finished plan is priced by
// replaying the trees through a fresh CostModel (the same accounting SPST
// does incrementally while planning).

#ifndef DGCL_PLANNER_CLASS_PARALLEL_H_
#define DGCL_PLANNER_CLASS_PARALLEL_H_

#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "planner/cost_model.h"
#include "planner/planner.h"

namespace dgcl {
namespace internal {

template <typename PlanOneClass>
Result<ClassPlan> PlanClassesParallel(const CommClasses& classes, const Topology& topo,
                                      double bytes_per_unit, uint32_t num_threads,
                                      std::string planner_name, const PlanOneClass& plan_one) {
  if (classes.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  ClassPlan plan;
  plan.num_devices = classes.num_devices;
  plan.planner_name = std::move(planner_name);
  plan.trees.resize(classes.classes.size());

  std::mutex failure_mutex;
  uint64_t failure_index = std::numeric_limits<uint64_t>::max();
  Status failure = Status::Ok();
  auto plan_class = [&](uint64_t c) {
    ClassTree& tree = plan.trees[c];
    tree.class_id = static_cast<uint32_t>(c);
    tree.first = 0;
    tree.count = static_cast<uint32_t>(classes.classes[c].vertices.size());
    Status s = plan_one(classes.classes[c], tree);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (c < failure_index) {
        failure_index = c;
        failure = std::move(s);
      }
    }
  };

  const uint32_t threads = ThreadPool::ResolveThreadCount(num_threads);
  if (threads <= 1) {
    for (uint64_t c = 0; c < plan.trees.size(); ++c) {
      plan_class(c);
    }
  } else {
    ThreadPool::Shared().ParallelFor(plan.trees.size(), plan_class);
  }
  if (!failure.ok()) {
    return failure;
  }
  plan.planned_cost_seconds = ReplayClassPlanCost(plan, topo, bytes_per_unit);
  return plan;
}

}  // namespace internal
}  // namespace dgcl

#endif  // DGCL_PLANNER_CLASS_PARALLEL_H_
