#include "planner/block_broadcast.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>
#include <vector>

#include "planner/class_parallel.h"

namespace dgcl {
namespace {

std::vector<uint32_t> MaskToDevices(DeviceMask mask) {
  std::vector<uint32_t> out;
  while (mask != 0) {
    out.push_back(static_cast<uint32_t>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  return out;
}

// Appends a binomial broadcast of `dests` rooted at `root` (already in the
// tree at depth `root_depth`). Holders adopt up to `fanout` new destinations
// per round in insertion order; a node adopted in round r holds the block
// from depth parent+1 on and starts adopting in round r+1. Edge stages are
// the parent's tree depth (the plan representation's invariant), so the
// resulting tree is the binomial shape: the root ends up with O(log |dests|)
// children at stage 0 instead of the P2P star's |dests|.
Status AppendBinomial(const Topology& topo, uint32_t root, uint32_t root_depth,
                      const std::vector<uint32_t>& dests, uint32_t fanout, ClassTree& tree) {
  std::vector<std::pair<uint32_t, uint32_t>> holders;  // (device, depth)
  holders.push_back({root, root_depth});
  size_t next = 0;  // next destination to adopt
  while (next < dests.size()) {
    const size_t holders_this_round = holders.size();
    for (size_t h = 0; h < holders_this_round && next < dests.size(); ++h) {
      for (uint32_t f = 0; f < fanout && next < dests.size(); ++f) {
        const uint32_t dest = dests[next++];
        const LinkId link = topo.LinkBetween(holders[h].first, dest);
        if (link == kInvalidId) {
          return Status::FailedPrecondition("no link for broadcast hop " +
                                            std::to_string(holders[h].first) + " -> " +
                                            std::to_string(dest));
        }
        tree.edges.push_back(TreeEdge{link, holders[h].second});
        holders.push_back({dest, holders[h].second + 1});
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status BroadcastOptions::Validate() const {
  if (fanout == 0) {
    return Status::InvalidArgument("BroadcastOptions::fanout must be >= 1");
  }
  return Status::Ok();
}

Result<ClassPlan> BlockBroadcastPlanner::PlanClasses(const CommClasses& classes,
                                                     const Topology& topo,
                                                     double bytes_per_unit) {
  DGCL_RETURN_IF_ERROR(options_.Validate());
  const BroadcastVariant variant = variant_;
  const BroadcastOptions options = options_;
  return internal::PlanClassesParallel(
      classes, topo, bytes_per_unit, options_.num_threads, name(),
      [&topo, variant, options](const CommClass& cls, ClassTree& tree) -> Status {
        const std::vector<uint32_t> dests = MaskToDevices(cls.mask);
        if (variant == BroadcastVariant::k1D) {
          return AppendBinomial(topo, cls.source, 0, dests, options.fanout, tree);
        }
        // 1.5D: destinations grouped into replication groups; the block
        // crosses the inter-group medium once per group (to the leader, the
        // lowest destination id of the group), then fans out inside the
        // group with the binomial schedule.
        auto group_of = [&topo, &options](uint32_t device) -> uint64_t {
          const Device& d = topo.device(device);
          return options.group_by_socket ? (uint64_t{d.machine} << 32 | d.socket) : d.machine;
        };
        const uint64_t source_group = group_of(cls.source);
        // Groups in ascending (group key, member id) order; dests is sorted.
        std::vector<std::pair<uint64_t, std::vector<uint32_t>>> groups;
        for (uint32_t dest : dests) {
          const uint64_t g = group_of(dest);
          auto it = std::find_if(groups.begin(), groups.end(),
                                 [g](const auto& e) { return e.first == g; });
          if (it == groups.end()) {
            groups.push_back({g, {dest}});
          } else {
            it->second.push_back(dest);
          }
        }
        for (auto& [group, members] : groups) {
          if (group == source_group) {
            // Intra-group destinations broadcast straight from the source.
            DGCL_RETURN_IF_ERROR(
                AppendBinomial(topo, cls.source, 0, members, options.fanout, tree));
            continue;
          }
          const uint32_t leader = members.front();
          const LinkId link = topo.LinkBetween(cls.source, leader);
          if (link == kInvalidId) {
            return Status::FailedPrecondition("no link for broadcast leader hop " +
                                              std::to_string(cls.source) + " -> " +
                                              std::to_string(leader));
          }
          tree.edges.push_back(TreeEdge{link, 0});
          const std::vector<uint32_t> rest(members.begin() + 1, members.end());
          DGCL_RETURN_IF_ERROR(AppendBinomial(topo, leader, 1, rest, options.fanout, tree));
        }
        return Status::Ok();
      });
}

}  // namespace dgcl
