// Shortest Path Spanning Tree planner — the paper's core contribution (§5.2),
// batched over destination-set equivalence classes.
//
// The seed algorithm processed one vertex at a time (in shuffled order),
// growing a communication tree rooted at the source device: every iteration
// runs a multi-source shortest-path search from the devices already in the
// tree to the uncovered destinations, using the *incremental* cost model
// blow-up as edge weights (an edge used at tree depth k is charged at stage
// k), then commits the cheapest path. Committed traffic updates the shared
// cost model, so later work items see the load created by earlier ones —
// this is what yields load balancing, fast-link preference, communication
// fusion and contention avoidance simultaneously.
//
// Batched planning exploits that every vertex of a (source, dest_mask)
// equivalence class has the same feasible trees: the work items are class
// *chunks* (bounded at max_class_units vertices) rather than vertices, each
// chunk's tree is grown once, and the chunk's weight is committed to the
// cost model in one weighted AddTransfer. Planning time drops from
// O(|V| · dijkstra) to O(#chunks · dijkstra) while the expanded per-vertex
// plan stays structurally identical in the max_class_units = 0 limit.
//
// Multi-threaded planning (num_threads != 1) keeps the serial chunk order
// but overlaps the tree searches: workers speculatively grow chunks' trees
// against snapshots of the shared cost model while a single committer
// applies results in deterministic chunk order, replay-validating any chunk
// whose snapshot drifted (and re-planning it when validation fails), so the
// output is bit-identical to the serial planner for every thread count.
// DESIGN.md §"Parallel planning" documents the scheme.

#ifndef DGCL_PLANNER_SPST_H_
#define DGCL_PLANNER_SPST_H_

#include "common/thread_pool.h"
#include "planner/cost_model.h"
#include "planner/planner.h"

namespace dgcl {

struct SpstOptions {
  // Shuffle the work-item processing order (Algorithm 1 preamble). Turning
  // this off (ablation) processes items in deterministic class order, which
  // correlates the processing order with graph locality and hurts balance.
  bool shuffle = true;
  uint64_t shuffle_seed = 1;

  // Cap on tree depth (== stage count). The paper allows |V'| - 1; deep
  // relays are never profitable on real topologies and a small cap speeds
  // planning. 0 means no cap.
  uint32_t max_tree_depth = 4;

  // Tiny per-edge cost added during path search so zero-blow-up paths still
  // prefer fewer hops (tie-breaking; keeps paths loop-free). Expressed as a
  // fraction of the time one embedding takes on the fastest connection, so
  // plans stay invariant under feature-dimension scaling (§5.1 corollary).
  double hop_epsilon_fraction = 1e-6;

  // Upper bound on the vertex units a single class tree may carry. Classes
  // larger than this are split into evenly sized chunks so skewed classes
  // still spread across parallel routes (the load-balancing behaviour of
  // per-vertex planning). 0 = one chunk per vertex, which reproduces the
  // seed per-vertex algorithm exactly (the ablation baseline).
  uint32_t max_class_units = 256;

  // Adaptive floor on work-list length: the effective chunk bound is
  // clamp(total_weight / min_chunks, 1, max_class_units), so small
  // workloads degrade gracefully toward per-vertex granularity instead of
  // quantizing all their traffic into a handful of coarse commits. Set to 0
  // to disable (use max_class_units verbatim, e.g. in chunk-size ablations).
  uint32_t min_chunks = 2048;

  // Speculation workers for parallel planning: 1 = the serial path
  // (default), 0 = hardware concurrency, T > 1 = T workers plus the calling
  // thread as committer. The produced plan is bit-identical for every value.
  uint32_t num_threads = 1;

  // Maximum cost-model drift (AddTransfer commits between a worker's
  // snapshot and the chunk's commit slot) for which replay validation is
  // attempted; chunks staler than this are re-planned outright. Purely a
  // performance knob — never affects the plan.
  uint64_t max_snapshot_staleness = 1024;

  // How many chunks ahead of the committer workers may speculate. A small
  // window keeps snapshots fresh (replay validation succeeds more often) and
  // bounds the speculative work discarded when it fails; 0 = auto
  // (2 × workers). Scheduling only — never affects the plan.
  uint64_t speculation_window = 0;

  // Serial warm-up prefix for parallel planning: this fraction of the
  // chunks (at least one chunk, only when there are enough chunks for the
  // parallel path at all) is planned and committed serially before workers
  // start speculating. Early chunks raise the stage-0 bottleneck from zero
  // on nearly every commit, so speculating on them is wasted work — their
  // replays almost always fail (see DESIGN.md §"Parallel planning"). The
  // warm-up prefix runs exactly the serial algorithm, so the plan stays
  // bit-identical for every value. 0 disables the warm-up.
  double warmup_fraction = 0.05;

  // Pool to run speculation workers on; nullptr = ThreadPool::Shared().
  // The pool only needs to exist for the duration of PlanClasses.
  ThreadPool* pool = nullptr;

  // Used by the DgclOptions legacy-shim to detect a customized struct.
  bool operator==(const SpstOptions&) const = default;
};

// How the chunks of the last PlanClasses call were committed (parallel path;
// the serial path reports every chunk as exact). exact: snapshot epoch still
// current at the commit slot. replayed: snapshot drifted but replaying the
// recorded cost-model interactions against the live model reproduced every
// queried value, proving the speculative tree is what the serial planner
// would have built. replanned: drifted past max_snapshot_staleness or replay
// found a diverged value, so the chunk was planned again at its commit slot.
// Invariant: exact_commits + replay_commits + replans == chunks.
// warmup_commits counts the serial warm-up prefix (see
// SpstOptions::warmup_fraction) and is an informational subset of
// exact_commits.
struct SpstPlanStats {
  uint64_t chunks = 0;
  uint64_t exact_commits = 0;
  uint64_t replay_commits = 0;
  uint64_t replans = 0;
  uint64_t warmup_commits = 0;
};

class SpstPlanner final : public Planner {
 public:
  explicit SpstPlanner(SpstOptions options = {}) : options_(options) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "spst"; }

  // Valid after a successful PlanClasses; overwritten by the next call.
  const SpstPlanStats& last_stats() const { return stats_; }

 private:
  SpstOptions options_;
  SpstPlanStats stats_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_SPST_H_
