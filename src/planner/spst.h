// Shortest Path Spanning Tree planner — the paper's core contribution (§5.2).
//
// Vertices are processed one at a time (in shuffled order). For each vertex
// the algorithm grows a communication tree rooted at the source device: every
// iteration runs a multi-source shortest-path search from the devices already
// in the tree to the uncovered destinations, using the *incremental* cost
// model blow-up as edge weights (an edge used at tree depth k is charged at
// stage k), then commits the cheapest path. Committed traffic updates the
// shared cost model, so later vertices see the load created by earlier ones —
// this is what yields load balancing, fast-link preference, communication
// fusion and contention avoidance simultaneously.

#ifndef DGCL_PLANNER_SPST_H_
#define DGCL_PLANNER_SPST_H_

#include "planner/cost_model.h"
#include "planner/planner.h"

namespace dgcl {

struct SpstOptions {
  // Shuffle the vertex processing order (Algorithm 1 preamble). Turning this
  // off (ablation) processes vertices in id order, which correlates the
  // processing order with graph locality and hurts balance.
  bool shuffle = true;
  uint64_t shuffle_seed = 1;

  // Cap on tree depth (== stage count). The paper allows |V'| - 1; deep
  // relays are never profitable on real topologies and a small cap speeds
  // planning. 0 means no cap.
  uint32_t max_tree_depth = 4;

  // Tiny per-edge cost added during path search so zero-blow-up paths still
  // prefer fewer hops (tie-breaking; keeps paths loop-free). Expressed as a
  // fraction of the time one embedding takes on the fastest connection, so
  // plans stay invariant under feature-dimension scaling (§5.1 corollary).
  double hop_epsilon_fraction = 1e-6;
};

class SpstPlanner final : public Planner {
 public:
  explicit SpstPlanner(SpstOptions options = {}) : options_(options) {}

  Result<CommPlan> Plan(const CommRelation& relation, const Topology& topo,
                        double bytes_per_unit) override;
  std::string name() const override { return "spst"; }

 private:
  SpstOptions options_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_SPST_H_
