// Shortest Path Spanning Tree planner — the paper's core contribution (§5.2),
// batched over destination-set equivalence classes.
//
// The seed algorithm processed one vertex at a time (in shuffled order),
// growing a communication tree rooted at the source device: every iteration
// runs a multi-source shortest-path search from the devices already in the
// tree to the uncovered destinations, using the *incremental* cost model
// blow-up as edge weights (an edge used at tree depth k is charged at stage
// k), then commits the cheapest path. Committed traffic updates the shared
// cost model, so later work items see the load created by earlier ones —
// this is what yields load balancing, fast-link preference, communication
// fusion and contention avoidance simultaneously.
//
// Batched planning exploits that every vertex of a (source, dest_mask)
// equivalence class has the same feasible trees: the work items are class
// *chunks* (bounded at max_class_units vertices) rather than vertices, each
// chunk's tree is grown once, and the chunk's weight is committed to the
// cost model in one weighted AddTransfer. Planning time drops from
// O(|V| · dijkstra) to O(#chunks · dijkstra) while the expanded per-vertex
// plan stays structurally identical in the max_class_units = 0 limit.

#ifndef DGCL_PLANNER_SPST_H_
#define DGCL_PLANNER_SPST_H_

#include "planner/cost_model.h"
#include "planner/planner.h"

namespace dgcl {

struct SpstOptions {
  // Shuffle the work-item processing order (Algorithm 1 preamble). Turning
  // this off (ablation) processes items in deterministic class order, which
  // correlates the processing order with graph locality and hurts balance.
  bool shuffle = true;
  uint64_t shuffle_seed = 1;

  // Cap on tree depth (== stage count). The paper allows |V'| - 1; deep
  // relays are never profitable on real topologies and a small cap speeds
  // planning. 0 means no cap.
  uint32_t max_tree_depth = 4;

  // Tiny per-edge cost added during path search so zero-blow-up paths still
  // prefer fewer hops (tie-breaking; keeps paths loop-free). Expressed as a
  // fraction of the time one embedding takes on the fastest connection, so
  // plans stay invariant under feature-dimension scaling (§5.1 corollary).
  double hop_epsilon_fraction = 1e-6;

  // Upper bound on the vertex units a single class tree may carry. Classes
  // larger than this are split into evenly sized chunks so skewed classes
  // still spread across parallel routes (the load-balancing behaviour of
  // per-vertex planning). 0 = one chunk per vertex, which reproduces the
  // seed per-vertex algorithm exactly (the ablation baseline).
  uint32_t max_class_units = 256;

  // Adaptive floor on work-list length: the effective chunk bound is
  // clamp(total_weight / min_chunks, 1, max_class_units), so small
  // workloads degrade gracefully toward per-vertex granularity instead of
  // quantizing all their traffic into a handful of coarse commits. Set to 0
  // to disable (use max_class_units verbatim, e.g. in chunk-size ablations).
  uint32_t min_chunks = 2048;
};

class SpstPlanner final : public Planner {
 public:
  explicit SpstPlanner(SpstOptions options = {}) : options_(options) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override { return "spst"; }

 private:
  SpstOptions options_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_SPST_H_
