// CAGNET-style block-broadcast planners ("Reducing Communication in Graph
// Neural Network Training", Tripathy et al.).
//
// CAGNET distributes the feature matrix by block rows and moves blocks with
// *broadcast* collectives instead of point-to-point sends. Mapped onto this
// repo's destination-set equivalence classes, a class (source s, mask D) is
// exactly one block-row broadcast: s must deliver the class's rows to every
// device in D. The two variants mirror the paper's 1D and 1.5D algorithms:
//
//  * broadcast-1d   — a binomial (recursive-doubling) broadcast tree over the
//    destination set: at stage k the number of devices holding the block
//    doubles, so the source injects each block once per round instead of |D|
//    times in one stage (the P2P pattern). Stage count is ceil(log2(|D|+1)),
//    per-stage source fan-out is 1 — the communication-avoiding trade: more
//    stages, far less per-stage bottleneck pressure.
//
//  * broadcast-1.5d — the replication-group variant: destinations are grouped
//    by replication group (machine by default, socket under
//    BroadcastOptions::group_by_socket), the source sends the block once to
//    each group's leader, and leaders run the binomial broadcast inside their
//    group. Cross-group media (the NIC between machines) carry each block
//    once per group instead of once per destination — CAGNET's c-fold
//    communication reduction with c = devices per group.
//
// Both are load-oblivious: class trees are independent, planned in parallel
// on the shared pool with slot-indexed writes (bit-identical for every thread
// count), and priced after the fact with the shared CostModel
// (ClassPlan::planned_cost_seconds via ReplayClassPlanCost).

#ifndef DGCL_PLANNER_BLOCK_BROADCAST_H_
#define DGCL_PLANNER_BLOCK_BROADCAST_H_

#include "planner/planner.h"

namespace dgcl {

struct BroadcastOptions {
  // Children a tree node may adopt per stage. 1 = binomial tree (each holder
  // forwards to one new destination per round, coverage doubles). Larger
  // values flatten the tree toward the P2P star at the cost of per-stage
  // fan-out contention.
  uint32_t fanout = 1;

  // 1.5D only: group destinations by (machine, socket) instead of machine —
  // for single-machine topologies where the QPI hop between sockets is the
  // scarce medium, the way the NIC is across machines.
  bool group_by_socket = false;

  // 1 = serial (default), 0 = hardware concurrency, else that many workers.
  uint32_t num_threads = 1;

  bool operator==(const BroadcastOptions&) const = default;

  Status Validate() const;
};

enum class BroadcastVariant : uint8_t { k1D, k1_5D };

class BlockBroadcastPlanner final : public Planner {
 public:
  explicit BlockBroadcastPlanner(BroadcastVariant variant, BroadcastOptions options = {})
      : variant_(variant), options_(options) {}

  Result<ClassPlan> PlanClasses(const CommClasses& classes, const Topology& topo,
                                double bytes_per_unit) override;
  std::string name() const override {
    return variant_ == BroadcastVariant::k1D ? "broadcast-1d" : "broadcast-1.5d";
  }

 private:
  BroadcastVariant variant_;
  BroadcastOptions options_;
};

}  // namespace dgcl

#endif  // DGCL_PLANNER_BLOCK_BROADCAST_H_
