// Multilevel k-way partitioner — the METIS substitute.
//
// Classic three-phase scheme (Karypis & Kumar):
//   1. Coarsening: repeated heavy-edge matching collapses the graph until it
//      is small enough to partition directly.
//   2. Initial partitioning: greedy region growing on the coarsest graph,
//      balanced by collapsed vertex weight.
//   3. Uncoarsening: project the assignment back level by level, running
//      boundary Fiduccia–Mattheyses-style refinement passes at each level.
//
// The objective matches the paper's use of METIS: minimize cross-partition
// edges subject to each part holding a near-equal number of vertices.

#ifndef DGCL_PARTITION_MULTILEVEL_H_
#define DGCL_PARTITION_MULTILEVEL_H_

#include "partition/partitioner.h"

namespace dgcl {

struct MultilevelOptions {
  double balance_epsilon = 0.05;    // max part weight <= (1 + eps) * ideal
  uint32_t coarsest_vertices = 256; // stop coarsening near this size (times num_parts / 4)
  uint32_t refinement_passes = 6;   // boundary refinement sweeps per level
  uint64_t seed = 42;
  // Balance parts by vertex *work* (1 + degree) instead of vertex count.
  // On skewed graphs this equalizes per-device aggregation time (the
  // edge-proportional part of the compute model) at a small edge-cut cost —
  // the load-balancing concern ROC addresses with its learned cost model.
  bool balance_by_degree = false;
};

class MultilevelPartitioner final : public Partitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {}) : options_(options) {}

  Result<Partitioning> Partition(const CsrGraph& graph, uint32_t num_parts) override;
  std::string name() const override { return "multilevel"; }

 private:
  MultilevelOptions options_;
};

}  // namespace dgcl

#endif  // DGCL_PARTITION_MULTILEVEL_H_
