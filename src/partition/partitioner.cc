#include "partition/partitioner.h"

#include <algorithm>
#include <sstream>

namespace dgcl {

Result<Partitioning> HashPartitioner::Partition(const CsrGraph& graph, uint32_t num_parts) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  Partitioning p;
  p.num_parts = num_parts;
  p.assignment.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    p.assignment[v] = v % num_parts;
  }
  return p;
}

Result<Partitioning> RandomPartitioner::Partition(const CsrGraph& graph, uint32_t num_parts) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  Rng rng(seed_);
  std::vector<uint32_t> perm = rng.Permutation(graph.num_vertices());
  Partitioning p;
  p.num_parts = num_parts;
  p.assignment.resize(graph.num_vertices());
  for (VertexId i = 0; i < graph.num_vertices(); ++i) {
    p.assignment[perm[i]] = i % num_parts;
  }
  return p;
}

PartitionQuality EvaluatePartition(const CsrGraph& graph, const Partitioning& partitioning) {
  PartitionQuality q;
  q.part_sizes.assign(partitioning.num_parts, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ++q.part_sizes[partitioning.assignment[v]];
    for (VertexId nbr : graph.Neighbors(v)) {
      if (partitioning.assignment[nbr] != partitioning.assignment[v]) {
        ++q.edge_cut;
      }
    }
  }
  q.cut_fraction =
      graph.num_edges() == 0 ? 0.0 : static_cast<double>(q.edge_cut) / graph.num_edges();
  const double ideal =
      static_cast<double>(graph.num_vertices()) / std::max(1u, partitioning.num_parts);
  uint32_t max_size = 0;
  for (uint32_t size : q.part_sizes) {
    max_size = std::max(max_size, size);
  }
  q.balance = ideal == 0.0 ? 0.0 : max_size / ideal;
  return q;
}

Status ValidatePartitioning(const CsrGraph& graph, const Partitioning& partitioning) {
  if (partitioning.num_parts == 0) {
    return Status::InvalidArgument("num_parts is zero");
  }
  if (partitioning.assignment.size() != graph.num_vertices()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  for (uint32_t part : partitioning.assignment) {
    if (part >= partitioning.num_parts) {
      return Status::OutOfRange("part id out of range");
    }
  }
  return Status::Ok();
}

std::string PartitionQuality::ToString() const {
  std::ostringstream out;
  out << "cut=" << edge_cut << " (" << cut_fraction * 100.0 << "%) balance=" << balance;
  return out.str();
}

}  // namespace dgcl
