#include "partition/hierarchical.h"

#include <algorithm>
#include <numeric>

namespace dgcl {

Result<Partitioning> HierarchicalPartition(const CsrGraph& graph,
                                           const std::vector<std::vector<uint32_t>>& part_groups,
                                           Partitioner& inner) {
  if (part_groups.empty()) {
    return Status::InvalidArgument("no part groups");
  }
  const size_t group_size = part_groups.front().size();
  size_t total_parts = 0;
  std::vector<uint32_t> all_parts;
  for (const auto& group : part_groups) {
    if (group.empty()) {
      return Status::InvalidArgument("empty part group");
    }
    if (group.size() != group_size) {
      return Status::InvalidArgument("part groups must be equal-sized");
    }
    total_parts += group.size();
    all_parts.insert(all_parts.end(), group.begin(), group.end());
  }
  std::sort(all_parts.begin(), all_parts.end());
  for (size_t i = 0; i < all_parts.size(); ++i) {
    if (all_parts[i] != i) {
      return Status::InvalidArgument("part groups must cover [0, total_parts) exactly once");
    }
  }

  if (part_groups.size() == 1) {
    DGCL_ASSIGN_OR_RETURN(Partitioning flat,
                          inner.Partition(graph, static_cast<uint32_t>(group_size)));
    // Remap local part p to the group's global id.
    for (uint32_t& part : flat.assignment) {
      part = part_groups[0][part];
    }
    flat.num_parts = static_cast<uint32_t>(total_parts);
    return flat;
  }

  // Level 1: split across groups (machines).
  DGCL_ASSIGN_OR_RETURN(Partitioning top,
                        inner.Partition(graph, static_cast<uint32_t>(part_groups.size())));

  Partitioning out;
  out.num_parts = static_cast<uint32_t>(total_parts);
  out.assignment.assign(graph.num_vertices(), 0);

  // Level 2: split each group's induced subgraph across its devices.
  for (size_t g = 0; g < part_groups.size(); ++g) {
    std::vector<VertexId> members;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (top.assignment[v] == g) {
        members.push_back(v);
      }
    }
    if (members.empty()) {
      continue;
    }
    CsrGraph sub = graph.InducedSubgraph(members);
    DGCL_ASSIGN_OR_RETURN(Partitioning local,
                          inner.Partition(sub, static_cast<uint32_t>(group_size)));
    for (size_t i = 0; i < members.size(); ++i) {
      out.assignment[members[i]] = part_groups[g][local.assignment[i]];
    }
  }
  return out;
}

std::vector<std::vector<uint32_t>> GroupDevicesByMachine(const Topology& topo) {
  uint32_t num_machines = 0;
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    num_machines = std::max(num_machines, topo.device(d).machine + 1);
  }
  std::vector<std::vector<uint32_t>> groups(num_machines);
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    groups[topo.device(d).machine].push_back(d);
  }
  return groups;
}

Result<Partitioning> PartitionForTopology(const CsrGraph& graph, const Topology& topo,
                                          Partitioner& inner) {
  auto groups = GroupDevicesByMachine(topo);
  if (groups.size() <= 1) {
    return inner.Partition(graph, topo.num_devices());
  }
  return HierarchicalPartition(graph, groups, inner);
}

}  // namespace dgcl
