#include "partition/hierarchical.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"
#include "telemetry/trace.h"

namespace dgcl {

Result<Partitioning> HierarchicalPartition(const CsrGraph& graph,
                                           const std::vector<std::vector<uint32_t>>& part_groups,
                                           Partitioner& inner) {
  if (part_groups.empty()) {
    return Status::InvalidArgument("no part groups");
  }
  const size_t group_size = part_groups.front().size();
  size_t total_parts = 0;
  std::vector<uint32_t> all_parts;
  for (const auto& group : part_groups) {
    if (group.empty()) {
      return Status::InvalidArgument("empty part group");
    }
    if (group.size() != group_size) {
      return Status::InvalidArgument("part groups must be equal-sized");
    }
    total_parts += group.size();
    all_parts.insert(all_parts.end(), group.begin(), group.end());
  }
  std::sort(all_parts.begin(), all_parts.end());
  for (size_t i = 0; i < all_parts.size(); ++i) {
    if (all_parts[i] != i) {
      return Status::InvalidArgument("part groups must cover [0, total_parts) exactly once");
    }
  }

  if (part_groups.size() == 1) {
    DGCL_ASSIGN_OR_RETURN(Partitioning flat,
                          inner.Partition(graph, static_cast<uint32_t>(group_size)));
    // Remap local part p to the group's global id.
    for (uint32_t& part : flat.assignment) {
      part = part_groups[0][part];
    }
    flat.num_parts = static_cast<uint32_t>(total_parts);
    return flat;
  }

  // Level 1: split across groups (machines).
  DGCL_ASSIGN_OR_RETURN(Partitioning top,
                        inner.Partition(graph, static_cast<uint32_t>(part_groups.size())));

  Partitioning out;
  out.num_parts = static_cast<uint32_t>(total_parts);
  out.assignment.assign(graph.num_vertices(), 0);

  // Level 2: split each group's induced subgraph across its devices. The
  // groups are independent and write disjoint assignment slots, so they fan
  // out on the shared pool (the inner partitioner must tolerate concurrent
  // Partition calls — see the Partitioner interface contract).
  const size_t num_groups = part_groups.size();
  std::vector<std::vector<VertexId>> members(num_groups);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    members[top.assignment[v]].push_back(v);
  }
  std::vector<Status> group_status(num_groups, Status::Ok());
  ThreadPool::Shared().ParallelFor(num_groups, [&](uint64_t g) {
    if (members[g].empty()) {
      return;
    }
    DGCL_TSPAN2("partition", "hier.group", "group", g, "vertices", members[g].size());
    CsrGraph sub = graph.InducedSubgraph(members[g]);
    Result<Partitioning> local = inner.Partition(sub, static_cast<uint32_t>(group_size));
    if (!local.ok()) {
      group_status[g] = local.status();
      return;
    }
    for (size_t i = 0; i < members[g].size(); ++i) {
      out.assignment[members[g][i]] = part_groups[g][local->assignment[i]];
    }
  });
  for (const Status& status : group_status) {
    DGCL_RETURN_IF_ERROR(status);
  }
  return out;
}

std::vector<std::vector<uint32_t>> GroupDevicesByMachine(const Topology& topo) {
  uint32_t num_machines = 0;
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    num_machines = std::max(num_machines, topo.device(d).machine + 1);
  }
  std::vector<std::vector<uint32_t>> groups(num_machines);
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    groups[topo.device(d).machine].push_back(d);
  }
  return groups;
}

Result<Partitioning> PartitionForTopology(const CsrGraph& graph, const Topology& topo,
                                          Partitioner& inner) {
  DGCL_TSPAN2("partition", "partition_for_topology", "vertices", graph.num_vertices(),
              "devices", topo.num_devices());
  auto groups = GroupDevicesByMachine(topo);
  if (groups.size() <= 1) {
    return inner.Partition(graph, topo.num_devices());
  }
  return HierarchicalPartition(graph, groups, inner);
}

}  // namespace dgcl
