// Hierarchical graph partitioning (§4.1).
//
// When the communication topology has hierarchy (intra-machine links much
// faster than inter-machine), the paper partitions hierarchically so cut
// reduction is prioritized on the slow boundaries: first split the graph
// across machines, then split each machine's share across its GPUs.

#ifndef DGCL_PARTITION_HIERARCHICAL_H_
#define DGCL_PARTITION_HIERARCHICAL_H_

#include <vector>

#include "partition/partitioner.h"
#include "topology/topology.h"

namespace dgcl {

// `part_groups[g]` lists the global part ids (== device ids) in group g.
// Groups must be non-empty and of equal size (the paper's machines are
// symmetric); the union of groups must be exactly [0, total_parts).
Result<Partitioning> HierarchicalPartition(const CsrGraph& graph,
                                           const std::vector<std::vector<uint32_t>>& part_groups,
                                           Partitioner& inner);

// Devices of `topo` grouped by machine, each group sorted by device id.
std::vector<std::vector<uint32_t>> GroupDevicesByMachine(const Topology& topo);

// Partitions for `topo`: hierarchical by machine when the topology spans
// multiple machines, otherwise a flat `inner` partition.
Result<Partitioning> PartitionForTopology(const CsrGraph& graph, const Topology& topo,
                                          Partitioner& inner);

}  // namespace dgcl

#endif  // DGCL_PARTITION_HIERARCHICAL_H_
