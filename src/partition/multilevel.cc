#include "partition/multilevel.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"

namespace dgcl {
namespace {

// Internal weighted graph used across coarsening levels.
struct WGraph {
  uint32_t n = 0;
  std::vector<uint64_t> offsets;  // n + 1
  std::vector<uint32_t> adj;
  std::vector<uint32_t> wadj;   // edge weights (collapsed multiplicity)
  std::vector<uint32_t> vwgt;   // vertex weights (collapsed vertex count)

  uint64_t TotalVertexWeight() const {
    return std::accumulate(vwgt.begin(), vwgt.end(), uint64_t{0});
  }
};

WGraph FromCsr(const CsrGraph& graph, bool balance_by_degree) {
  WGraph g;
  g.n = graph.num_vertices();
  g.offsets = graph.offsets();
  g.adj = graph.targets();
  g.wadj.assign(g.adj.size(), 1);
  g.vwgt.assign(g.n, 1);
  if (balance_by_degree) {
    for (uint32_t v = 0; v < g.n; ++v) {
      g.vwgt[v] = 1 + graph.Degree(v);
    }
  }
  return g;
}

// Heavy-edge matching; returns the fine->coarse map and the coarse size.
std::pair<std::vector<uint32_t>, uint32_t> HeavyEdgeMatch(const WGraph& g, Rng& rng) {
  std::vector<uint32_t> coarse_of(g.n, kInvalidId);
  std::vector<uint32_t> order = rng.Permutation(g.n);
  uint32_t next = 0;
  for (uint32_t v : order) {
    if (coarse_of[v] != kInvalidId) {
      continue;
    }
    uint32_t best = kInvalidId;
    uint32_t best_w = 0;
    for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      uint32_t u = g.adj[e];
      if (u != v && coarse_of[u] == kInvalidId && g.wadj[e] > best_w) {
        best_w = g.wadj[e];
        best = u;
      }
    }
    coarse_of[v] = next;
    if (best != kInvalidId) {
      coarse_of[best] = next;
    }
    ++next;
  }
  return {std::move(coarse_of), next};
}

WGraph Contract(const WGraph& g, const std::vector<uint32_t>& coarse_of, uint32_t coarse_n) {
  WGraph c;
  c.n = coarse_n;
  c.vwgt.assign(coarse_n, 0);
  for (uint32_t v = 0; v < g.n; ++v) {
    c.vwgt[coarse_of[v]] += g.vwgt[v];
  }
  // Aggregate coarse edges (cu, cv, w) with cu != cv.
  struct CEdge {
    uint32_t u, v, w;
  };
  std::vector<CEdge> edges;
  edges.reserve(g.adj.size());
  for (uint32_t v = 0; v < g.n; ++v) {
    uint32_t cu = coarse_of[v];
    for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      uint32_t cv = coarse_of[g.adj[e]];
      if (cu != cv) {
        edges.push_back({cu, cv, g.wadj[e]});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const CEdge& a, const CEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  c.offsets.assign(coarse_n + 1, 0);
  for (size_t i = 0; i < edges.size();) {
    size_t j = i;
    uint64_t w = 0;
    while (j < edges.size() && edges[j].u == edges[i].u && edges[j].v == edges[i].v) {
      w += edges[j].w;
      ++j;
    }
    c.adj.push_back(edges[i].v);
    c.wadj.push_back(static_cast<uint32_t>(std::min<uint64_t>(w, 0xFFFFFFFFu)));
    ++c.offsets[edges[i].u + 1];
    i = j;
  }
  for (uint32_t v = 1; v <= coarse_n; ++v) {
    c.offsets[v] += c.offsets[v - 1];
  }
  return c;
}

// Greedy BFS region growing on the coarsest graph.
std::vector<uint32_t> InitialPartition(const WGraph& g, uint32_t num_parts, Rng& rng) {
  std::vector<uint32_t> assignment(g.n, kInvalidId);
  const uint64_t total = g.TotalVertexWeight();
  const double target = static_cast<double>(total) / num_parts;
  std::vector<uint32_t> order = rng.Permutation(g.n);
  size_t cursor = 0;
  std::vector<uint64_t> part_weight(num_parts, 0);

  for (uint32_t p = 0; p + 1 < num_parts; ++p) {
    // Find an unassigned seed.
    while (cursor < order.size() && assignment[order[cursor]] != kInvalidId) {
      ++cursor;
    }
    if (cursor >= order.size()) {
      break;
    }
    std::queue<uint32_t> frontier;
    frontier.push(order[cursor]);
    while (!frontier.empty() && part_weight[p] < target) {
      uint32_t v = frontier.front();
      frontier.pop();
      if (assignment[v] != kInvalidId) {
        continue;
      }
      assignment[v] = p;
      part_weight[p] += g.vwgt[v];
      for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        if (assignment[g.adj[e]] == kInvalidId) {
          frontier.push(g.adj[e]);
        }
      }
      // When the BFS island is exhausted, jump to a fresh seed.
      if (frontier.empty() && part_weight[p] < target) {
        while (cursor < order.size() && assignment[order[cursor]] != kInvalidId) {
          ++cursor;
        }
        if (cursor < order.size()) {
          frontier.push(order[cursor]);
        }
      }
    }
  }
  // Everything left goes to the last part, then rebalance trivially by
  // spilling from overweight parts in refinement.
  for (uint32_t v = 0; v < g.n; ++v) {
    if (assignment[v] == kInvalidId) {
      assignment[v] = num_parts - 1;
    }
  }
  return assignment;
}

// Boundary FM-style refinement: greedy single-vertex moves with positive cut
// gain under the balance constraint.
void Refine(const WGraph& g, uint32_t num_parts, double max_part_weight,
            std::vector<uint32_t>& assignment, uint32_t passes) {
  std::vector<uint64_t> part_weight(num_parts, 0);
  for (uint32_t v = 0; v < g.n; ++v) {
    part_weight[assignment[v]] += g.vwgt[v];
  }
  std::vector<uint64_t> conn(num_parts, 0);
  std::vector<uint32_t> touched;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    uint64_t moves = 0;
    for (uint32_t v = 0; v < g.n; ++v) {
      const uint32_t from = assignment[v];
      touched.clear();
      bool boundary = false;
      for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        uint32_t p = assignment[g.adj[e]];
        if (conn[p] == 0) {
          touched.push_back(p);
        }
        conn[p] += g.wadj[e];
        if (p != from) {
          boundary = true;
        }
      }
      if (boundary) {
        uint32_t best_part = from;
        uint64_t best_conn = conn[from];
        for (uint32_t p : touched) {
          if (p == from) {
            continue;
          }
          const bool fits = part_weight[p] + g.vwgt[v] <= max_part_weight;
          if (!fits) {
            continue;
          }
          // Prefer strictly better cut; break ties toward the lighter part to
          // improve balance.
          if (conn[p] > best_conn ||
              (conn[p] == best_conn && part_weight[p] + g.vwgt[v] < part_weight[best_part])) {
            best_conn = conn[p];
            best_part = p;
          }
        }
        if (best_part != from) {
          part_weight[from] -= g.vwgt[v];
          part_weight[best_part] += g.vwgt[v];
          assignment[v] = best_part;
          ++moves;
        }
      }
      for (uint32_t p : touched) {
        conn[p] = 0;
      }
    }
    if (moves == 0) {
      break;
    }
  }
  // Balance repair: spill from overweight parts to the lightest parts,
  // preferring boundary vertices with the least connectivity loss.
  for (uint32_t p = 0; p < num_parts; ++p) {
    while (part_weight[p] > max_part_weight) {
      uint32_t lightest =
          static_cast<uint32_t>(std::min_element(part_weight.begin(), part_weight.end()) -
                                part_weight.begin());
      if (lightest == p) {
        break;
      }
      // Take any vertex of p (first found); correctness over elegance here —
      // this path only triggers when greedy growth badly overfills a part.
      bool moved = false;
      for (uint32_t v = 0; v < g.n && !moved; ++v) {
        if (assignment[v] == p) {
          assignment[v] = lightest;
          part_weight[p] -= g.vwgt[v];
          part_weight[lightest] += g.vwgt[v];
          moved = true;
        }
      }
      if (!moved) {
        break;
      }
    }
  }
}

}  // namespace

Result<Partitioning> MultilevelPartitioner::Partition(const CsrGraph& graph,
                                                      uint32_t num_parts) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  Partitioning out;
  out.num_parts = num_parts;
  if (num_parts == 1 || graph.num_vertices() == 0) {
    out.assignment.assign(graph.num_vertices(), 0);
    return out;
  }
  if (num_parts >= graph.num_vertices()) {
    out.assignment.resize(graph.num_vertices());
    std::iota(out.assignment.begin(), out.assignment.end(), 0u);
    return out;
  }

  Rng rng(options_.seed);
  // Phase 1: coarsen.
  std::vector<WGraph> levels;
  std::vector<std::vector<uint32_t>> maps;  // fine vertex -> coarse vertex
  levels.push_back(FromCsr(graph, options_.balance_by_degree));
  const uint32_t stop_size = std::max(options_.coarsest_vertices, num_parts * 8);
  while (levels.back().n > stop_size) {
    auto [coarse_of, coarse_n] = HeavyEdgeMatch(levels.back(), rng);
    if (coarse_n > levels.back().n * 0.95) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    WGraph coarse = Contract(levels.back(), coarse_of, coarse_n);
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // Phase 2: initial partition at the coarsest level. The balance budget is
  // over total vertex weight (== vertex count unless balancing by degree).
  const double ideal =
      static_cast<double>(levels.front().TotalVertexWeight()) / num_parts;
  const double max_part_weight = (1.0 + options_.balance_epsilon) * ideal;
  std::vector<uint32_t> assignment = InitialPartition(levels.back(), num_parts, rng);
  Refine(levels.back(), num_parts, max_part_weight, assignment, options_.refinement_passes);

  // Phase 3: uncoarsen with refinement at each level.
  for (size_t level = maps.size(); level-- > 0;) {
    const std::vector<uint32_t>& map = maps[level];
    std::vector<uint32_t> finer(levels[level].n);
    for (uint32_t v = 0; v < levels[level].n; ++v) {
      finer[v] = assignment[map[v]];
    }
    assignment = std::move(finer);
    Refine(levels[level], num_parts, max_part_weight, assignment, options_.refinement_passes);
  }

  out.assignment = std::move(assignment);
  return out;
}

}  // namespace dgcl
