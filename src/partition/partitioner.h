// Graph partitioning interfaces and quality metrics.
//
// DGCL assigns each partition to one device (§4.1). The paper uses METIS to
// minimize cross-partition edges under a vertex-balance constraint; our
// MultilevelPartitioner (multilevel.h) plays that role, and HashPartition is
// the quality floor used in tests and ablations.

#ifndef DGCL_PARTITION_PARTITIONER_H_
#define DGCL_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/csr_graph.h"

namespace dgcl {

// A complete assignment of vertices to parts [0, num_parts).
struct Partitioning {
  uint32_t num_parts = 0;
  std::vector<uint32_t> assignment;  // size == graph.num_vertices()

  uint32_t PartOf(VertexId v) const { return assignment[v]; }
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Partitions `graph` into `num_parts` parts. Implementations must return a
  // covering assignment (every vertex gets a part in range).
  //
  // Contract: Partition must be safe to call concurrently from multiple
  // threads on the same instance (the hierarchical partitioner fans the
  // per-machine level-2 passes out on the shared pool). Keep per-call state
  // local — configuration read in the constructor, RNGs seeded per call.
  virtual Result<Partitioning> Partition(const CsrGraph& graph, uint32_t num_parts) = 0;

  virtual std::string name() const = 0;
};

// Assigns vertex v to part v % num_parts. No locality at all.
class HashPartitioner final : public Partitioner {
 public:
  Result<Partitioning> Partition(const CsrGraph& graph, uint32_t num_parts) override;
  std::string name() const override { return "hash"; }
};

// Random balanced assignment (shuffled round-robin).
class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(uint64_t seed = 7) : seed_(seed) {}
  Result<Partitioning> Partition(const CsrGraph& graph, uint32_t num_parts) override;
  std::string name() const override { return "random"; }

 private:
  uint64_t seed_;
};

struct PartitionQuality {
  EdgeIndex edge_cut = 0;      // directed edges crossing parts
  double cut_fraction = 0.0;   // edge_cut / num_edges
  double balance = 0.0;        // max part size / ideal part size
  std::vector<uint32_t> part_sizes;

  std::string ToString() const;
};

PartitionQuality EvaluatePartition(const CsrGraph& graph, const Partitioning& partitioning);

// Validates invariant: assignment covers all vertices with in-range parts.
Status ValidatePartitioning(const CsrGraph& graph, const Partitioning& partitioning);

}  // namespace dgcl

#endif  // DGCL_PARTITION_PARTITIONER_H_
