// Minimal leveled logging plus CHECK macros.
//
// DGCL_LOG(level) << ... streams to stderr with a severity prefix; the global
// threshold is settable at runtime (benchmarks silence INFO). CHECK macros
// abort with a message on violation — used for programmer errors only, never
// for input validation (inputs go through Status).

#ifndef DGCL_COMMON_LOGGING_H_
#define DGCL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace dgcl {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is below threshold.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define DGCL_LOG_LEVEL_kDebug ::dgcl::LogLevel::kDebug
#define DGCL_LOG_LEVEL_kInfo ::dgcl::LogLevel::kInfo
#define DGCL_LOG_LEVEL_kWarning ::dgcl::LogLevel::kWarning
#define DGCL_LOG_LEVEL_kError ::dgcl::LogLevel::kError
#define DGCL_LOG_LEVEL_kFatal ::dgcl::LogLevel::kFatal

#define DGCL_LOG(level)                                                              \
  (DGCL_LOG_LEVEL_##level < ::dgcl::GetLogLevel())                                   \
      ? (void)0                                                                      \
      : ::dgcl::internal::LogVoidify() &                                             \
            ::dgcl::internal::LogMessage(DGCL_LOG_LEVEL_##level, __FILE__, __LINE__) \
                .stream()

#define DGCL_CHECK(cond)                                                                   \
  (cond) ? (void)0                                                                         \
         : ::dgcl::internal::LogVoidify() &                                                \
               ::dgcl::internal::LogMessage(::dgcl::LogLevel::kFatal, __FILE__, __LINE__)  \
                       .stream()                                                           \
                   << "CHECK failed: " #cond " "

#define DGCL_CHECK_EQ(a, b) DGCL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DGCL_CHECK_NE(a, b) DGCL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DGCL_CHECK_LT(a, b) DGCL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DGCL_CHECK_LE(a, b) DGCL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DGCL_CHECK_GT(a, b) DGCL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DGCL_CHECK_GE(a, b) DGCL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace dgcl

#endif  // DGCL_COMMON_LOGGING_H_
