#include "common/thread_pool.h"

#include <atomic>

namespace dgcl {

ThreadPool::ThreadPool(uint32_t num_threads) {
  workers_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(uint64_t n, const std::function<void(uint64_t)>& body) {
  if (n == 0) {
    return;
  }
  const uint64_t helpers = std::min<uint64_t>(num_threads(), n > 0 ? n - 1 : 0);
  if (helpers == 0) {
    for (uint64_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  // Claim-loop shared by the caller and `helpers` pool tasks. The caller
  // participates, so even a fully busy pool makes progress; completion is
  // tracked per finished *item* so the caller returns only after the last
  // body() call, whichever thread ran it.
  struct SharedState {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();
  auto run = [state, n, &body] {
    for (;;) {
      const uint64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      body(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };
  // Helpers capture `body` by reference: they are joined (via the `done`
  // count) before ParallelFor returns, so the reference outlives them.
  for (uint64_t h = 0; h < helpers; ++h) {
    Submit(run);
  }
  run();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == n; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

uint32_t ThreadPool::ResolveThreadCount(uint32_t requested) {
  if (requested != 0) {
    return requested;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace dgcl
