// A small fixed-size thread pool shared by planning-time machinery.
//
// Planning is offline but must scale to large graphs (§5.2 discusses SPST
// running time); the batched planner, the oblivious baselines and the bench
// harnesses all parallelize over independent work items. They share one
// process-wide pool (ThreadPool::Shared()) so nested planner invocations
// never oversubscribe the machine, but callers that need a specific width
// (e.g. the thread-count sweep bench) can construct their own.
//
// The pool runs opaque tasks; determinism is the *caller's* responsibility.
// ParallelFor provides the common deterministic shape: results indexed by
// work-item id are race-free no matter which worker claims which item.

#ifndef DGCL_COMMON_THREAD_POOL_H_
#define DGCL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgcl {

class ThreadPool {
 public:
  // Spawns `num_threads` workers. 0 is allowed: Submit then runs tasks
  // inline (useful for tests and 1-core fallback without special cases).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return static_cast<uint32_t>(workers_.size()); }

  // Enqueues a task. Tasks must not block on other tasks' *submission*;
  // blocking on another task's published result is fine as long as that task
  // was submitted first (workers drain the queue in FIFO order).
  void Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n), using up to num_threads() workers
  // plus the calling thread, and returns when all n calls finished. Work
  // items are claimed dynamically; any body(i) writing only to slot i of a
  // pre-sized output is deterministic regardless of claim order.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& body);

  // Process-wide pool sized to the hardware concurrency (at least 2 workers
  // so concurrency-dependent code paths are exercised even on 1-core CI).
  // Created on first use; never destroyed before exit.
  static ThreadPool& Shared();

  // Maps a user-facing thread-count knob to an effective count:
  // 0 -> hardware concurrency (>= 1), anything else verbatim.
  static uint32_t ResolveThreadCount(uint32_t requested);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dgcl

#endif  // DGCL_COMMON_THREAD_POOL_H_
