// Lightweight Status / Result types for error propagation without exceptions.
//
// DGCL is built to run inside training loops where exceptions are disabled or
// unwelcome; every fallible operation returns a Status (or Result<T>) that the
// caller must inspect. The vocabulary mirrors absl::Status but carries no
// dependency.

#ifndef DGCL_COMMON_STATUS_H_
#define DGCL_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dgcl {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,  // e.g. simulated device out of memory
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,  // a bounded wait (peer flag, send retry) ran out of time
  kUnavailable,       // a peer or transport is down / a pass was aborted
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value-or-error. Engineered for the common case: construct from T or Status.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(storage_);
  }

  // Precondition: ok(). Violations abort via the CHECK in value_impl.
  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagate a non-OK Status out of the enclosing function.
#define DGCL_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::dgcl::Status _dgcl_status = (expr);   \
    if (!_dgcl_status.ok()) {               \
      return _dgcl_status;                  \
    }                                       \
  } while (0)

// Assign the value of a Result<T> expression to `lhs`, or propagate its error.
#define DGCL_ASSIGN_OR_RETURN(lhs, expr)                   \
  DGCL_ASSIGN_OR_RETURN_IMPL_(                             \
      DGCL_STATUS_CONCAT_(_dgcl_result, __LINE__), lhs, expr)

#define DGCL_STATUS_CONCAT_INNER_(a, b) a##b
#define DGCL_STATUS_CONCAT_(a, b) DGCL_STATUS_CONCAT_INNER_(a, b)
#define DGCL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace dgcl

#endif  // DGCL_COMMON_STATUS_H_
