// Wall-clock timing helpers for benchmarks and the SPST runtime table.

#ifndef DGCL_COMMON_TIMER_H_
#define DGCL_COMMON_TIMER_H_

#include <chrono>

namespace dgcl {

class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dgcl

#endif  // DGCL_COMMON_TIMER_H_
