// Fixed-width table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one table/figure of the paper; TablePrinter
// gives them a uniform, diff-friendly text rendering (header row, aligned
// columns, optional title and footnote).

#ifndef DGCL_COMMON_TABLE_PRINTER_H_
#define DGCL_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dgcl {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; short rows are padded with empty cells, long rows truncated.
  void AddRow(std::vector<std::string> cells);

  // Renders the table; when `title` is non-empty it is printed above.
  std::string Render(const std::string& title = "") const;

  // Convenience cell formatters.
  static std::string Fmt(double value, int precision = 2);
  static std::string FmtInt(long long value);
  static std::string FmtBytes(double bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgcl

#endif  // DGCL_COMMON_TABLE_PRINTER_H_
