// Shared sentinel for dense uint32 id spaces (devices, links, parts, ...).

#ifndef DGCL_COMMON_IDS_H_
#define DGCL_COMMON_IDS_H_

#include <cstdint>
#include <limits>

namespace dgcl {

inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

}  // namespace dgcl

#endif  // DGCL_COMMON_IDS_H_
