// Percentiles over small sample sets (serving-latency reporting).
//
// One definition shared by bench_serving and `dgcl_trace summarize
// --serving` so their p50/p99/p999 columns are comparable: nearest-rank on
// the sorted samples (ceil(p * n) - 1, clamped), the convention most load
// generators use. No interpolation — a reported percentile is always an
// observed sample.

#ifndef DGCL_COMMON_PERCENTILE_H_
#define DGCL_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace dgcl {

// Nearest-rank percentile of ascending `sorted`; p in (0, 1]. 0 on empty.
inline double PercentileSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  const size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

// Convenience: sorts a copy.
inline double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, p);
}

}  // namespace dgcl

#endif  // DGCL_COMMON_PERCENTILE_H_
