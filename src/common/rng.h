// Deterministic pseudo-random number generation.
//
// Every stochastic component in DGCL (graph generators, vertex shuffling in
// SPST, feature initialization) takes an explicit Rng so experiments are
// reproducible bit-for-bit from a seed. The engine is xoshiro256** seeded via
// splitmix64, which is fast and has no measurable bias for our use.

#ifndef DGCL_COMMON_RNG_H_
#define DGCL_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace dgcl {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t UniformInt(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(UniformDouble()) * (hi - lo);
  }

  // Standard normal via Box–Muller (one value per call; simple over fast).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // A shuffled identity permutation of size n.
  std::vector<uint32_t> Permutation(uint32_t n) {
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    Shuffle(perm);
    return perm;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
};

}  // namespace dgcl

#endif  // DGCL_COMMON_RNG_H_
