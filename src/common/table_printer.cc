#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dgcl {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) {
    out << title << "\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&]() {
    for (size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_rule();
  return out.str();
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FmtInt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

std::string TablePrinter::FmtBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

}  // namespace dgcl
