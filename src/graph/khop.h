// K-hop neighborhood expansion and seeded (fanout-capped) sampling.
//
// ExpandKHop is used by the Replication baseline (§3 of the paper): a device
// that must train its local partition without communication needs the K-hop
// neighbors of its local vertices replicated locally; ReplicationFactor
// reproduces the metric of Figure 4. SampleKHop is the GraphSAGE-style
// mini-batch variant serving the graph-service tier (src/service/): each hop
// keeps at most `fanout` neighbors per frontier vertex, chosen by a counter-
// hashed RNG keyed on (seed, hop, vertex) — the sampled set is a pure
// function of the request, independent of thread count or visit order.

#ifndef DGCL_GRAPH_KHOP_H_
#define DGCL_GRAPH_KHOP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace dgcl {

// All vertices within `hops` of `seeds` (including the seeds), ascending ids.
std::vector<VertexId> ExpandKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 uint32_t hops);

// Total vertices stored by all parts (each part holds its vertices plus their
// `hops`-hop neighbors) divided by the graph's vertex count. `parts[v]` is
// the part id of vertex v; part ids are dense in [0, num_parts).
double ReplicationFactor(const CsrGraph& graph, std::span<const uint32_t> parts,
                         uint32_t num_parts, uint32_t hops);

// splitmix64-style mix of a seed with per-draw coordinates; the sampling
// primitives below derive every per-vertex RNG from this, so two samplers
// expanding the same vertex under the same request seed make the same choice.
uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b);

// At most `fanout` neighbors of `v`, ascending ids. Degree <= fanout returns
// all neighbors; otherwise a uniform sample without replacement drawn from
// an Rng seeded with MixSeed(seed, hop, v). O(fanout) extra space (sparse
// Fisher–Yates).
std::vector<VertexId> SampleNeighbors(const CsrGraph& graph, VertexId v, uint32_t fanout,
                                      uint64_t seed, uint32_t hop);

// Degree-biased variant of SampleNeighbors (GraphSage-style importance
// sampling without edge weights: a neighbor's weight is its own degree, so
// hubs are preferentially kept). Efraimidis–Spirakis weighted reservoir keys
// drawn sequentially from Rng(MixSeed(seed, hop, v)) over the ascending
// neighbor list, so the choice is a pure function of (graph, v, seed, hop)
// like the uniform sampler. Ascending ids; degree <= fanout returns all.
std::vector<VertexId> SampleNeighborsWeighted(const CsrGraph& graph, VertexId v, uint32_t fanout,
                                              uint64_t seed, uint32_t hop);

// One random walk of at most `steps` steps from `start` (stops early at a
// dead end), uniform next-neighbor per step, all draws from one
// Rng(MixSeed(seed, start, walk_index)). Returns the visited path including
// `start`, in walk order (may revisit vertices). Walks are independent of
// each other, so any union of walks is order-independent.
std::vector<VertexId> SampleRandomWalk(const CsrGraph& graph, VertexId start, uint32_t steps,
                                       uint64_t seed, uint64_t walk_index);

struct SampleKHopOptions {
  uint32_t hops = 2;
  uint32_t fanout = 10;   // per-vertex neighbor cap per hop
  uint64_t seed = 0x5eed;
};

// Fanout-capped variant of ExpandKHop: the union of seeds and sampled
// neighbors across `hops` rounds, ascending ids. Deterministic for a given
// (graph, seeds, options); frontier vertices are expanded in ascending order
// so the first-visit dedup is order-independent too.
std::vector<VertexId> SampleKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 const SampleKHopOptions& options);

}  // namespace dgcl

#endif  // DGCL_GRAPH_KHOP_H_
