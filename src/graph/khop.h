// K-hop neighborhood expansion.
//
// Used by the Replication baseline (§3 of the paper): a device that must
// train its local partition without communication needs the K-hop neighbors
// of its local vertices replicated locally. ExpandKHop computes that closure;
// ReplicationFactor reproduces the metric of Figure 4.

#ifndef DGCL_GRAPH_KHOP_H_
#define DGCL_GRAPH_KHOP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace dgcl {

// All vertices within `hops` of `seeds` (including the seeds), ascending ids.
std::vector<VertexId> ExpandKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 uint32_t hops);

// Total vertices stored by all parts (each part holds its vertices plus their
// `hops`-hop neighbors) divided by the graph's vertex count. `parts[v]` is
// the part id of vertex v; part ids are dense in [0, num_parts).
double ReplicationFactor(const CsrGraph& graph, std::span<const uint32_t> parts,
                         uint32_t num_parts, uint32_t hops);

}  // namespace dgcl

#endif  // DGCL_GRAPH_KHOP_H_
