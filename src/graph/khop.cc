#include "graph/khop.h"

#include <algorithm>

#include "common/logging.h"

namespace dgcl {

std::vector<VertexId> ExpandKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 uint32_t hops) {
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier;
  std::vector<VertexId> result;
  for (VertexId s : seeds) {
    DGCL_CHECK_LT(s, graph.num_vertices());
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
      result.push_back(s);
    }
  }
  std::vector<VertexId> next;
  for (uint32_t hop = 0; hop < hops && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId nbr : graph.Neighbors(v)) {
        if (!visited[nbr]) {
          visited[nbr] = 1;
          next.push_back(nbr);
          result.push_back(nbr);
        }
      }
    }
    std::swap(frontier, next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

double ReplicationFactor(const CsrGraph& graph, std::span<const uint32_t> parts,
                         uint32_t num_parts, uint32_t hops) {
  DGCL_CHECK_EQ(parts.size(), static_cast<size_t>(graph.num_vertices()));
  if (graph.num_vertices() == 0) {
    return 0.0;
  }
  std::vector<std::vector<VertexId>> members(num_parts);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    DGCL_CHECK_LT(parts[v], num_parts);
    members[parts[v]].push_back(v);
  }
  uint64_t total_stored = 0;
  for (uint32_t p = 0; p < num_parts; ++p) {
    total_stored += ExpandKHop(graph, members[p], hops).size();
  }
  return static_cast<double>(total_stored) / graph.num_vertices();
}

}  // namespace dgcl
