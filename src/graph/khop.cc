#include "graph/khop.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace dgcl {

std::vector<VertexId> ExpandKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 uint32_t hops) {
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier;
  std::vector<VertexId> result;
  for (VertexId s : seeds) {
    DGCL_CHECK_LT(s, graph.num_vertices());
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
      result.push_back(s);
    }
  }
  std::vector<VertexId> next;
  for (uint32_t hop = 0; hop < hops && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId nbr : graph.Neighbors(v)) {
        if (!visited[nbr]) {
          visited[nbr] = 1;
          next.push_back(nbr);
          result.push_back(nbr);
        }
      }
    }
    std::swap(frontier, next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b) {
  // splitmix64 finalizer over the three words, chained so (seed, a, b) and
  // (seed, b, a) diverge.
  uint64_t x = seed;
  for (uint64_t word : {a + 0x9E3779B97F4A7C15ULL, b + 0xBF58476D1CE4E5B9ULL}) {
    x += word;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
  }
  return x;
}

std::vector<VertexId> SampleNeighbors(const CsrGraph& graph, VertexId v, uint32_t fanout,
                                      uint64_t seed, uint32_t hop) {
  DGCL_CHECK_LT(v, graph.num_vertices());
  std::span<const VertexId> nbrs = graph.Neighbors(v);
  const uint64_t n = nbrs.size();
  if (n <= fanout) {
    return std::vector<VertexId>(nbrs.begin(), nbrs.end());
  }
  // Sparse Fisher–Yates: draw `fanout` distinct indices in [0, n) touching
  // only O(fanout) state, so hub vertices don't cost O(degree) per sample.
  Rng rng(MixSeed(seed, hop, v));
  std::unordered_map<uint64_t, uint64_t> swapped;
  std::vector<VertexId> chosen;
  chosen.reserve(fanout);
  for (uint32_t i = 0; i < fanout; ++i) {
    const uint64_t j = i + rng.UniformInt(n - i);
    auto at = [&](uint64_t k) {
      auto it = swapped.find(k);
      return it == swapped.end() ? k : it->second;
    };
    const uint64_t pick = at(j);
    swapped[j] = at(i);
    chosen.push_back(nbrs[pick]);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<VertexId> SampleNeighborsWeighted(const CsrGraph& graph, VertexId v, uint32_t fanout,
                                              uint64_t seed, uint32_t hop) {
  DGCL_CHECK_LT(v, graph.num_vertices());
  std::span<const VertexId> nbrs = graph.Neighbors(v);
  const size_t n = nbrs.size();
  if (n <= fanout) {
    return std::vector<VertexId>(nbrs.begin(), nbrs.end());
  }
  // Efraimidis–Spirakis: key_i = u_i^(1/w_i), keep the fanout largest keys.
  // Keys are drawn sequentially over the ascending neighbor list from one
  // per-(seed, hop, vertex) Rng, and ties break on neighbor id, so the
  // selection is independent of which worker expands v.
  Rng rng(MixSeed(seed, hop, v));
  std::vector<std::pair<double, VertexId>> keyed;
  keyed.reserve(n);
  for (VertexId nbr : nbrs) {
    // Weight = neighbor's degree; isolated neighbors still get a positive
    // weight so every neighbor stays sampleable.
    const double weight = static_cast<double>(graph.Degree(nbr)) + 1.0;
    // UniformDouble is in [0, 1); clamp away from 0 so log stays finite.
    const double u = std::max(rng.UniformDouble(), 1e-300);
    keyed.emplace_back(std::log(u) / weight, nbr);
  }
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<VertexId> chosen;
  chosen.reserve(fanout);
  for (uint32_t i = 0; i < fanout; ++i) {
    chosen.push_back(keyed[i].second);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<VertexId> SampleRandomWalk(const CsrGraph& graph, VertexId start, uint32_t steps,
                                       uint64_t seed, uint64_t walk_index) {
  DGCL_CHECK_LT(start, graph.num_vertices());
  Rng rng(MixSeed(seed, start, walk_index));
  std::vector<VertexId> path;
  path.reserve(steps + 1);
  path.push_back(start);
  VertexId v = start;
  for (uint32_t step = 0; step < steps; ++step) {
    std::span<const VertexId> nbrs = graph.Neighbors(v);
    if (nbrs.empty()) {
      break;
    }
    v = nbrs[rng.UniformInt(nbrs.size())];
    path.push_back(v);
  }
  return path;
}

std::vector<VertexId> SampleKHop(const CsrGraph& graph, std::span<const VertexId> seeds,
                                 const SampleKHopOptions& options) {
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier;
  std::vector<VertexId> result;
  for (VertexId s : seeds) {
    DGCL_CHECK_LT(s, graph.num_vertices());
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
      result.push_back(s);
    }
  }
  std::sort(frontier.begin(), frontier.end());
  std::vector<VertexId> next;
  for (uint32_t hop = 0; hop < options.hops && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId nbr : SampleNeighbors(graph, v, options.fanout, options.seed, hop)) {
        if (!visited[nbr]) {
          visited[nbr] = 1;
          next.push_back(nbr);
          result.push_back(nbr);
        }
      }
    }
    std::sort(next.begin(), next.end());
    std::swap(frontier, next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

double ReplicationFactor(const CsrGraph& graph, std::span<const uint32_t> parts,
                         uint32_t num_parts, uint32_t hops) {
  DGCL_CHECK_EQ(parts.size(), static_cast<size_t>(graph.num_vertices()));
  if (graph.num_vertices() == 0) {
    return 0.0;
  }
  std::vector<std::vector<VertexId>> members(num_parts);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    DGCL_CHECK_LT(parts[v], num_parts);
    members[parts[v]].push_back(v);
  }
  uint64_t total_stored = 0;
  for (uint32_t p = 0; p < num_parts; ++p) {
    total_stored += ExpandKHop(graph, members[p], hops).size();
  }
  return static_cast<double>(total_stored) / graph.num_vertices();
}

}  // namespace dgcl
