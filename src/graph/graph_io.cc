#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace dgcl {
namespace {

constexpr char kBinaryMagic[8] = {'D', 'G', 'C', 'L', 'G', '1', 0, 0};

}  // namespace

Result<CsrGraph> LoadEdgeList(const std::string& path, bool symmetrize, bool compact_ids) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<Edge> edges;
  std::unordered_map<uint64_t, VertexId> remap;
  VertexId max_id = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and blank lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    uint64_t raw_src = 0;
    uint64_t raw_dst = 0;
    if (!(fields >> raw_src)) {
      continue;  // blank or comment-only line
    }
    if (!(fields >> raw_dst)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": expected 'src dst'");
    }
    VertexId src;
    VertexId dst;
    if (compact_ids) {
      src = remap.try_emplace(raw_src, static_cast<VertexId>(remap.size())).first->second;
      dst = remap.try_emplace(raw_dst, static_cast<VertexId>(remap.size())).first->second;
    } else {
      if (raw_src > 0xFFFFFFFEull || raw_dst > 0xFFFFFFFEull) {
        return Status::OutOfRange(path + ":" + std::to_string(line_number) +
                                  ": vertex id exceeds 32 bits (use compact_ids)");
      }
      src = static_cast<VertexId>(raw_src);
      dst = static_cast<VertexId>(raw_dst);
    }
    max_id = std::max({max_id, src, dst});
    edges.push_back(Edge{src, dst});
  }
  const VertexId num_vertices =
      compact_ids ? static_cast<VertexId>(remap.size()) : (edges.empty() ? 0 : max_id + 1);
  return CsrGraph::FromEdges(num_vertices, std::move(edges), symmetrize);
}

Status SaveEdgeList(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << "# DGCL edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() / 2 << " undirected edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u) {
        out << v << " " << u << "\n";
      }
    }
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status SaveBinary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const uint64_t n = graph.num_vertices();
  const uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(graph.targets().data()),
            static_cast<std::streamsize>(m * sizeof(VertexId)));
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<CsrGraph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a DGCL binary graph");
  }
  uint64_t n = 0;
  uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || n > 0xFFFFFFFFull) {
    return Status::InvalidArgument(path + ": corrupt header");
  }
  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(VertexId)));
  if (!in) {
    return Status::InvalidArgument(path + ": truncated payload");
  }
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::InvalidArgument(path + ": inconsistent offsets");
  }
  // Rebuild through the validated constructor path to keep invariants.
  std::vector<Edge> edges;
  edges.reserve(m);
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(path + ": non-monotonic offsets");
    }
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      edges.push_back(Edge{v, targets[e]});
    }
  }
  return CsrGraph::FromEdges(static_cast<VertexId>(n), std::move(edges),
                             /*symmetrize=*/false);
}

}  // namespace dgcl
