// Graph loading and saving.
//
// Two formats:
//  * Text edge list — one "src dst" pair per line, '#' comments, whitespace
//    separated; the format of the SNAP datasets the paper evaluates on
//    (Web-Google, Wiki-Talk, Com-Orkut), so real data drops in directly.
//  * Binary CSR — a compact snapshot with a magic/version header for fast
//    reload of generated stand-ins.

#ifndef DGCL_GRAPH_GRAPH_IO_H_
#define DGCL_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace dgcl {

// Parses a SNAP-style edge list. Vertex ids are compacted: the result has
// num_vertices == (max id + 1) unless `compact_ids` is set, in which case
// ids are densely renumbered in first-appearance order.
Result<CsrGraph> LoadEdgeList(const std::string& path, bool symmetrize = true,
                              bool compact_ids = false);

// Writes "src dst" lines (each undirected edge once, src < dst).
Status SaveEdgeList(const CsrGraph& graph, const std::string& path);

// Binary CSR snapshot ("DGCLG1" header).
Status SaveBinary(const CsrGraph& graph, const std::string& path);
Result<CsrGraph> LoadBinary(const std::string& path);

}  // namespace dgcl

#endif  // DGCL_GRAPH_GRAPH_IO_H_
