// Descriptive statistics over a CSR graph, reported by benches and examples.

#ifndef DGCL_GRAPH_STATS_H_
#define DGCL_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/csr_graph.h"

namespace dgcl {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;  // directed edge slots (2x undirected pairs)
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
  uint32_t isolated_vertices = 0;

  std::string ToString() const;
};

GraphStats ComputeStats(const CsrGraph& graph);

}  // namespace dgcl

#endif  // DGCL_GRAPH_STATS_H_
