#include "graph/stats.h"

#include <algorithm>
#include <sstream>

namespace dgcl {

GraphStats ComputeStats(const CsrGraph& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.avg_degree = graph.AverageDegree();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    uint32_t d = graph.Degree(v);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) {
      ++s.isolated_vertices;
    }
  }
  return s;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << "vertices=" << num_vertices << " edges=" << num_edges << " avg_deg=" << avg_degree
      << " max_deg=" << max_degree << " isolated=" << isolated_vertices;
  return out.str();
}

}  // namespace dgcl
