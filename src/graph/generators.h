// Synthetic graph generators and the four dataset stand-ins of the paper.
//
// The paper evaluates on Reddit, Com-Orkut, Web-Google and Wiki-Talk (Table 4)
// which are not redistributable here; MakeDataset() produces scale-reduced
// RMAT graphs calibrated to the same average-degree regime (dense vs sparse)
// and carries the paper's feature/hidden dimensions, so the communication /
// computation ratios that drive every experiment are preserved.

#ifndef DGCL_GRAPH_GENERATORS_H_
#define DGCL_GRAPH_GENERATORS_H_

#include <string>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace dgcl {

// G(n, m): m distinct undirected edges chosen uniformly.
CsrGraph GenerateErdosRenyi(VertexId num_vertices, EdgeIndex num_edges, Rng& rng);

// Recursive-matrix (RMAT) generator; produces skewed degree distributions
// similar to real web/social graphs. `scale` is log2 of the vertex count.
struct RmatParams {
  uint32_t scale = 16;
  EdgeIndex num_edges = 1 << 20;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
CsrGraph GenerateRmat(const RmatParams& params, Rng& rng);

// RMAT with planted locality: a fraction `intra_fraction` of the edges is
// drawn inside one of `num_communities` equal vertex blocks (RMAT-skewed
// within the block), the rest globally. Models graphs that partition well
// (social/web graphs) while keeping a heavy-tailed degree distribution.
CsrGraph GenerateClusteredRmat(const RmatParams& params, uint32_t num_communities,
                               double intra_fraction, Rng& rng);

// Planted-partition graph: `num_communities` groups with dense intra-group
// and sparse inter-group edges. Used to test partitioner quality.
CsrGraph GenerateCommunityGraph(VertexId num_vertices, uint32_t num_communities,
                                double intra_degree, double inter_degree, Rng& rng);

// 2D grid (wraparound off): deterministic, used in unit tests.
CsrGraph GenerateGrid(uint32_t rows, uint32_t cols);

// The four evaluation graphs of Table 4.
enum class DatasetId { kReddit, kComOrkut, kWebGoogle, kWikiTalk };

struct Dataset {
  std::string name;
  CsrGraph graph;
  uint32_t feature_dim = 0;  // input feature size (Table 4)
  uint32_t hidden_dim = 0;   // hidden embedding size (Table 4)
};

// Full-size statistics from Table 4, used to parameterize the stand-ins and
// reported by benches for context.
struct DatasetPaperStats {
  const char* name;
  double vertices_millions;
  double edges_millions;
  double avg_degree;
  uint32_t feature_dim;
  uint32_t hidden_dim;
};
DatasetPaperStats GetPaperStats(DatasetId id);

// Builds the stand-in graph for `id` with vertex count scaled down by
// `inverse_scale` (>= 1) while preserving the average degree. Deterministic
// for a given (id, inverse_scale, seed).
Dataset MakeDataset(DatasetId id, uint32_t inverse_scale, uint64_t seed = 17);

const char* DatasetName(DatasetId id);

}  // namespace dgcl

#endif  // DGCL_GRAPH_GENERATORS_H_
