// Compressed-sparse-row graph: the data-graph representation used everywhere
// in DGCL (partitioning, communication-relation building, GNN aggregation).
//
// Vertices are dense 32-bit ids [0, num_vertices). The adjacency is stored in
// one direction ("neighbors"); GNN training graphs are symmetrized at build
// time so neighbors(v) is exactly the aggregation set N(v) of the paper.

#ifndef DGCL_GRAPH_CSR_GRAPH_H_
#define DGCL_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dgcl {

using VertexId = uint32_t;
using EdgeIndex = uint64_t;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds a CSR graph from an edge list.
  //  - Self loops are dropped, duplicate edges deduplicated.
  //  - When `symmetrize` is true every edge is mirrored, so the result is an
  //    undirected graph (the GNN aggregation graph of the paper).
  // Fails when an endpoint is >= num_vertices.
  static Result<CsrGraph> FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                                    bool symmetrize = true);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeIndex num_edges() const { return static_cast<EdgeIndex>(targets_.size()); }

  // Neighbors of v in ascending id order. Precondition: v < num_vertices().
  std::span<const VertexId> Neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     targets_.data() + offsets_[v + 1]);
  }

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  double AverageDegree() const {
    return num_vertices_ == 0 ? 0.0 : static_cast<double>(num_edges()) / num_vertices_;
  }

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

  // Induces the subgraph on `vertices` (which must be unique ids of this
  // graph); vertex i of the result corresponds to vertices[i]. Edges between
  // retained vertices are kept.
  CsrGraph InducedSubgraph(std::span<const VertexId> vertices) const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<EdgeIndex> offsets_{0};
  std::vector<VertexId> targets_;
};

}  // namespace dgcl

#endif  // DGCL_GRAPH_CSR_GRAPH_H_
