#include "graph/csr_graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace dgcl {

Result<CsrGraph> CsrGraph::FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                                     bool symmetrize) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
  }

  if (symmetrize) {
    const size_t original = edges.size();
    edges.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
      edges.push_back(Edge{edges[i].dst, edges[i].src});
    }
  }

  // Drop self loops, sort, dedup.
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  CsrGraph g;
  g.num_vertices_ = num_vertices;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  g.targets_.resize(edges.size());
  for (const Edge& e : edges) {
    ++g.offsets_[e.src + 1];
  }
  for (size_t v = 1; v <= num_vertices; ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.targets_[cursor[e.src]++] = e.dst;
  }
  return g;
}

CsrGraph CsrGraph::InducedSubgraph(std::span<const VertexId> vertices) const {
  std::unordered_map<VertexId, VertexId> local_id;
  local_id.reserve(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    local_id.emplace(vertices[i], static_cast<VertexId>(i));
  }
  std::vector<Edge> edges;
  for (size_t i = 0; i < vertices.size(); ++i) {
    DGCL_CHECK_LT(vertices[i], num_vertices_);
    for (VertexId nbr : Neighbors(vertices[i])) {
      auto it = local_id.find(nbr);
      if (it != local_id.end()) {
        edges.push_back(Edge{static_cast<VertexId>(i), it->second});
      }
    }
  }
  // Already directed-complete (both directions present in the parent), so no
  // re-symmetrization is needed; FromEdges cannot fail on in-range ids.
  auto result = FromEdges(static_cast<VertexId>(vertices.size()), std::move(edges),
                          /*symmetrize=*/false);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace dgcl
