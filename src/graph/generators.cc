#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace dgcl {
namespace {

// Packs an undirected pair with src < dst into one key for dedup.
uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

CsrGraph GenerateErdosRenyi(VertexId num_vertices, EdgeIndex num_edges, Rng& rng) {
  DGCL_CHECK_GE(num_vertices, 2u);
  const uint64_t max_pairs = static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  DGCL_CHECK_LE(num_edges, max_pairs);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    VertexId a = static_cast<VertexId>(rng.UniformInt(num_vertices));
    VertexId b = static_cast<VertexId>(rng.UniformInt(num_vertices));
    if (a == b) {
      continue;
    }
    if (seen.insert(PairKey(a, b)).second) {
      edges.push_back(Edge{a, b});
    }
  }
  auto result = CsrGraph::FromEdges(num_vertices, std::move(edges), /*symmetrize=*/true);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

CsrGraph GenerateRmat(const RmatParams& params, Rng& rng) {
  const VertexId n = static_cast<VertexId>(1) << params.scale;
  const double d = 1.0 - params.a - params.b - params.c;
  DGCL_CHECK_GT(d, 0.0);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (EdgeIndex i = 0; i < params.num_edges; ++i) {
    VertexId row = 0;
    VertexId col = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      // Add ±10% noise to the quadrant probabilities per level so the degree
      // distribution is not perfectly self-similar (standard RMAT practice).
      double noise = 0.9 + 0.2 * rng.UniformDouble();
      double a = params.a * noise;
      double b = params.b * noise;
      double c = params.c * noise;
      double total = a + b + c + d;
      double u = rng.UniformDouble() * total;
      row <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant: no bits set
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    edges.push_back(Edge{row, col});
  }
  auto result = CsrGraph::FromEdges(n, std::move(edges), /*symmetrize=*/true);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

CsrGraph GenerateClusteredRmat(const RmatParams& params, uint32_t num_communities,
                               double intra_fraction, Rng& rng) {
  DGCL_CHECK_GE(num_communities, 1u);
  uint32_t community_bits = 0;
  while ((1u << community_bits) < num_communities) {
    ++community_bits;
  }
  DGCL_CHECK_LT(community_bits, params.scale);
  // Sample intra-community edges with a block-local RMAT of reduced scale.
  RmatParams local = params;
  local.scale = params.scale - community_bits;
  const VertexId block = static_cast<VertexId>(1) << local.scale;

  const EdgeIndex intra_edges =
      static_cast<EdgeIndex>(static_cast<double>(params.num_edges) * intra_fraction);
  const uint32_t communities = 1u << community_bits;
  RmatParams global = params;
  global.num_edges = params.num_edges - intra_edges;
  CsrGraph global_graph = GenerateRmat(global, rng);

  const VertexId n = static_cast<VertexId>(1) << params.scale;
  std::vector<Edge> edges;
  for (uint32_t c = 0; c < communities; ++c) {
    RmatParams intra = local;
    intra.num_edges = intra_edges / communities;
    CsrGraph intra_graph = GenerateRmat(intra, rng);
    const VertexId offset = c * block;
    for (VertexId v = 0; v < intra_graph.num_vertices(); ++v) {
      for (VertexId u : intra_graph.Neighbors(v)) {
        if (v < u) {
          edges.push_back(Edge{offset + v, offset + u});
        }
      }
    }
  }
  for (VertexId v = 0; v < global_graph.num_vertices(); ++v) {
    for (VertexId u : global_graph.Neighbors(v)) {
      if (v < u) {
        edges.push_back(Edge{v, u});
      }
    }
  }
  auto result = CsrGraph::FromEdges(n, std::move(edges), /*symmetrize=*/true);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

CsrGraph GenerateCommunityGraph(VertexId num_vertices, uint32_t num_communities,
                                double intra_degree, double inter_degree, Rng& rng) {
  DGCL_CHECK_GE(num_communities, 1u);
  DGCL_CHECK_GE(num_vertices, num_communities);
  const VertexId block = num_vertices / num_communities;
  auto community_of = [&](VertexId v) {
    return std::min<uint32_t>(v / block, num_communities - 1);
  };
  const EdgeIndex intra_edges = static_cast<EdgeIndex>(num_vertices * intra_degree / 2.0);
  const EdgeIndex inter_edges = static_cast<EdgeIndex>(num_vertices * inter_degree / 2.0);
  std::vector<Edge> edges;
  edges.reserve(intra_edges + inter_edges);
  for (EdgeIndex i = 0; i < intra_edges; ++i) {
    VertexId a = static_cast<VertexId>(rng.UniformInt(num_vertices));
    uint32_t comm = community_of(a);
    VertexId lo = comm * block;
    VertexId hi = (comm == num_communities - 1) ? num_vertices : lo + block;
    VertexId b = lo + static_cast<VertexId>(rng.UniformInt(hi - lo));
    edges.push_back(Edge{a, b});
  }
  for (EdgeIndex i = 0; i < inter_edges; ++i) {
    VertexId a = static_cast<VertexId>(rng.UniformInt(num_vertices));
    VertexId b = static_cast<VertexId>(rng.UniformInt(num_vertices));
    edges.push_back(Edge{a, b});
  }
  auto result = CsrGraph::FromEdges(num_vertices, std::move(edges), /*symmetrize=*/true);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

CsrGraph GenerateGrid(uint32_t rows, uint32_t cols) {
  std::vector<Edge> edges;
  auto id = [cols](uint32_t r, uint32_t c) { return static_cast<VertexId>(r * cols + c); };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(Edge{id(r, c), id(r, c + 1)});
      }
      if (r + 1 < rows) {
        edges.push_back(Edge{id(r, c), id(r + 1, c)});
      }
    }
  }
  auto result =
      CsrGraph::FromEdges(static_cast<VertexId>(rows) * cols, std::move(edges), true);
  DGCL_CHECK(result.ok());
  return std::move(result).value();
}

DatasetPaperStats GetPaperStats(DatasetId id) {
  switch (id) {
    case DatasetId::kReddit:
      return {"Reddit", 0.23, 110.0, 478.0, 602, 256};
    case DatasetId::kComOrkut:
      return {"Com-Orkut", 3.07, 117.0, 38.1, 128, 128};
    case DatasetId::kWebGoogle:
      return {"Web-Google", 0.87, 5.1, 5.86, 256, 256};
    case DatasetId::kWikiTalk:
      return {"Wiki-Talk", 2.39, 5.0, 2.09, 256, 256};
  }
  DGCL_LOG(kFatal) << "unknown dataset id";
  return {};
}

const char* DatasetName(DatasetId id) { return GetPaperStats(id).name; }

Dataset MakeDataset(DatasetId id, uint32_t inverse_scale, uint64_t seed) {
  DGCL_CHECK_GE(inverse_scale, 1u);
  const DatasetPaperStats stats = GetPaperStats(id);
  const VertexId n =
      static_cast<VertexId>(stats.vertices_millions * 1e6 / inverse_scale);
  // Preserve the paper's average degree; pick RMAT skew by density regime:
  // the dense graphs (Reddit, Orkut) are closer to uniform, the sparse web /
  // interaction graphs are heavily skewed.
  const bool dense = stats.avg_degree > 20.0;
  uint32_t scale = 1;
  while ((static_cast<VertexId>(1) << scale) < n) {
    ++scale;
  }
  RmatParams params;
  params.scale = scale;
  // Generated ids span [0, 2^scale); calibrate the *sampled* edge count so
  // that after symmetrization the average degree over 2^scale vertices tracks
  // the paper. Sampling num_edges = n_pow2 * avg_degree / 2 pairs gives
  // roughly avg_degree after mirroring (minus dedup losses).
  const VertexId n_pow2 = static_cast<VertexId>(1) << scale;
  params.num_edges = static_cast<EdgeIndex>(static_cast<double>(n_pow2) * stats.avg_degree / 2.0);
  if (dense) {
    params.a = 0.45;
    params.b = 0.22;
    params.c = 0.22;
  } else {
    params.a = 0.57;
    params.b = 0.19;
    params.c = 0.19;
  }
  // Locality calibration: how much of the graph a balanced min-cut partition
  // can keep local. Reddit (post co-comment graph) has little structure;
  // Com-Orkut and Web-Google partition well; Wiki-Talk is in between.
  uint32_t communities = 1;
  double intra_fraction = 0.0;
  switch (id) {
    case DatasetId::kReddit:
      // Posts cluster weakly by subreddit; METIS finds moderate locality
      // (Figure 4: 1-hop replication factor ~7 at 16 GPUs, not ~16).
      communities = 16;
      intra_fraction = 0.4;
      break;
    case DatasetId::kComOrkut:
      communities = 64;
      intra_fraction = 0.85;
      break;
    case DatasetId::kWebGoogle:
      communities = 128;
      intra_fraction = 0.9;
      break;
    case DatasetId::kWikiTalk:
      communities = 64;
      intra_fraction = 0.6;
      break;
  }
  Rng rng(seed + static_cast<uint64_t>(id) * 0x51ED2701);
  Dataset ds;
  ds.name = stats.name;
  ds.graph = communities > 1 ? GenerateClusteredRmat(params, communities, intra_fraction, rng)
                             : GenerateRmat(params, rng);
  ds.feature_dim = stats.feature_dim;
  ds.hidden_dim = stats.hidden_dim;
  return ds;
}

}  // namespace dgcl
