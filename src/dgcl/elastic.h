// Elastic training driver: full-graph GNN training that survives device
// death.
//
// ElasticTrainingSession wraps DgclContext + DistributedTrainer into the
// recovery protocol's end-to-end loop. A normal epoch runs exactly as
// DistributedTrainer::TrainEpoch does, plus lightweight activation
// checkpoints (RecoveryOptions::checkpoint_every_n_layers). When an epoch
// fails with a recoverable Status (kDeadlineExceeded / kUnavailable — the
// dead-peer signatures PR 4's deadline-bounded waits produce), the session:
//
//   detect      read the engine's PassFailure post-mortem (suspect set)
//   membership  commit the failed devices as a new membership epoch
//   repartition fold their vertices into survivors (incremental, no re-METIS)
//   replan      rebuild relation/SPST plan/connection table on the survivors
//   restore     rebuild the trainer on the new layout, re-import the replica
//               weights (valid: weights only change in a completed step)
//   resume      retry the epoch, restoring checkpointed layer boundaries
//               instead of re-running their allgathers
//
// Every phase is a "recovery.<phase>" telemetry span; the per-phase wall
// times land in recovery_log() (and bench_recovery's MTTR table).

#ifndef DGCL_DGCL_ELASTIC_H_
#define DGCL_DGCL_ELASTIC_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "dgcl/dgcl.h"
#include "gnn/trainer.h"

namespace dgcl {

class ElasticTrainingSession {
 public:
  // `ctx` must have comm_info_ready(); graph/features/labels and the context
  // itself must outlive the session. The session rebuilds its trainer from
  // the context after every recovery, so callers should reach the trainer
  // through trainer() rather than holding their own.
  static Result<ElasticTrainingSession> Create(DgclContext& ctx, const CsrGraph& graph,
                                               const EmbeddingMatrix& features,
                                               const std::vector<uint32_t>& labels,
                                               uint32_t num_classes, TrainerOptions options);

  // One epoch that survives recoverable failures: on a dead device, runs the
  // recovery protocol against the context and retries on the surviving
  // topology (up to RecoveryOptions::max_recoveries across the session).
  // Non-recoverable failures — and failures with recovery disabled — surface
  // unchanged.
  Result<EpochResult> TrainEpoch();

  // Forward-only evaluation on the current (possibly recovered) layout.
  Result<EpochResult> Evaluate();

  DistributedTrainer& trainer() { return *trainer_; }
  const DgclContext& context() const { return *ctx_; }

  // One report per completed recovery, oldest first. resume_seconds is the
  // wall time of the successful retried epoch.
  const std::vector<RecoveryReport>& recovery_log() const { return recovery_log_; }
  uint32_t recoveries() const { return static_cast<uint32_t>(recovery_log_.size()); }

 private:
  ElasticTrainingSession() = default;

  // Tear down the trainer and rebuild it for the context's (post-recovery)
  // layout, carrying the model weights across. Fills report.restore_seconds.
  Status RestoreTrainer(RecoveryReport& report);

  DgclContext* ctx_ = nullptr;
  const CsrGraph* graph_ = nullptr;
  const EmbeddingMatrix* features_ = nullptr;
  const std::vector<uint32_t>* labels_ = nullptr;
  uint32_t num_classes_ = 0;
  TrainerOptions options_;
  std::optional<DistributedTrainer> trainer_;
  EmbeddingCheckpointStore checkpoints_{0};
  std::vector<RecoveryReport> recovery_log_;
};

}  // namespace dgcl

#endif  // DGCL_DGCL_ELASTIC_H_
