// DGCL public API — the library facade of §4.2.
//
// Mirrors the paper's workflow and function names:
//
//   auto ctx = DgclContext::Init(topology);            // init()
//   ctx->BuildCommInfo(graph);                         // buildCommInfo(...)
//   auto parts = ctx->DispatchFeatures(features);      // dispatch_features(...)
//   auto slots = ctx->GraphAllgather(local_embeddings) // graphAllgather(...)
//
// Init sets up the communication environment for the given topology.
// BuildCommInfo partitions the graph (hierarchically when the topology spans
// machines), builds the communication relation, groups it into destination-
// set equivalence classes, runs the batched SPST planner over the classes
// (chunk size: DgclOptions::spst.max_class_units) and compiles the class
// trees into the same per-vertex send/receive tables the runtime always
// consumed. GraphAllgather
// is the synchronous embedding exchange used before every layer's graph op;
// GraphAllgatherBackward routes gradients to vertex owners in reverse.
//
// A single-GPU GNN system integrates by training on LocalGraph(d) for each
// device — vertices are re-indexed so the system never sees the distribution.

#ifndef DGCL_DGCL_DGCL_H_
#define DGCL_DGCL_DGCL_H_

#include <memory>
#include <vector>

#include "comm/compiled_plan.h"
#include "comm/relation.h"
#include "common/status.h"
#include "gnn/local_graph.h"
#include "partition/multilevel.h"
#include "partition/partitioner.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "topology/topology.h"

namespace dgcl {

struct DgclOptions {
  // Planner knobs, including max_class_units (the class-batching chunk
  // bound; 0 recovers per-vertex planning for ablations) and num_threads
  // (speculative parallel planning on the shared thread pool; the plan is
  // bit-identical for every thread count, so flipping it never changes
  // what BuildCommInfo arms the runtime with).
  SpstOptions spst;
  MultilevelOptions partition;
  double bytes_per_unit = 1024.0;  // embedding bytes used for planning

  // Runtime knobs handed to AllgatherEngine::Create by BuildCommInfo:
  // coordination mode, transport retry/timeout policy, fault injection and
  // per-pair transport overrides (ablations). None of them change what a
  // pass delivers.
  EngineOptions engine;

  // Checked by Init; topology-dependent parts (override ids, dead_device
  // range) are checked there too, so a bad config fails before any planning.
  Status Validate() const;
};

// Everything BuildCommInfo produces, in pipeline order. Returned by
// DgclContext::artifacts() behind a single lifecycle check instead of seven
// individually-checked accessors.
struct PlanArtifacts {
  Partitioning partitioning;  // device assignment per vertex
  CommRelation relation;      // who needs which vertices
  CommClasses classes;        // destination-set equivalence classes
  ClassPlan class_plan;       // batched SPST trees over classes
  CommPlan plan;              // per-vertex expansion (validation/ablations)
  CompiledPlan compiled;      // staged transfer ops the runtime executes
};

class DgclContext {
 public:
  // init(): set up the communication environment for `topology`.
  static Result<DgclContext> Init(Topology topology, DgclOptions options = {});

  DgclContext(DgclContext&&) noexcept;
  DgclContext& operator=(DgclContext&&) noexcept;
  ~DgclContext();

  // buildCommInfo(graph, topology): partition, build the communication
  // relation, run communication planning, compile and arm the runtime.
  Status BuildCommInfo(const CsrGraph& graph);

  // dispatch_features(features): split a global [num_vertices x dim] matrix
  // into per-device local matrices (local_vertices order).
  Result<std::vector<EmbeddingMatrix>> DispatchFeatures(const EmbeddingMatrix& features) const;

  // graphAllgather(local_embeddings): per-device local rows in, per-device
  // slot matrices (locals + required remotes) out. Synchronous.
  Result<std::vector<EmbeddingMatrix>> GraphAllgather(
      const std::vector<EmbeddingMatrix>& local) const;

  // Reverse pass: slot-gradient matrices in, per-owner accumulated local
  // gradients out.
  Result<std::vector<EmbeddingMatrix>> GraphAllgatherBackward(
      const std::vector<EmbeddingMatrix>& slot_grads) const;

  // Device d's re-indexed training graph G_d (locals then remotes).
  Result<LocalGraph> BuildDeviceGraph(uint32_t device) const;

  bool comm_info_ready() const;
  uint32_t num_devices() const;
  const Topology& topology() const;
  const DgclOptions& options() const;

  // The full planning pipeline output. Aborts (DGCL_CHECK) unless
  // comm_info_ready() — the one lifecycle check for all plan state.
  const PlanArtifacts& artifacts() const;

  // The armed runtime (connection table, pass options). Same lifecycle as
  // artifacts().
  const AllgatherEngine& engine() const;

  // Deprecated per-field accessors, kept as shims for one PR: read the
  // fields off artifacts() instead.
  [[deprecated("use artifacts().partitioning")]]
  const Partitioning& partitioning() const { return artifacts().partitioning; }
  [[deprecated("use artifacts().relation")]]
  const CommRelation& relation() const { return artifacts().relation; }
  [[deprecated("use artifacts().classes")]]
  const CommClasses& comm_classes() const { return artifacts().classes; }
  [[deprecated("use artifacts().class_plan")]]
  const ClassPlan& class_plan() const { return artifacts().class_plan; }
  [[deprecated("use artifacts().plan")]]
  const CommPlan& plan() const { return artifacts().plan; }
  [[deprecated("use artifacts().compiled")]]
  const CompiledPlan& compiled_plan() const { return artifacts().compiled; }

 private:
  DgclContext() = default;

  // Heap state keeps addresses stable across moves (the engine holds
  // pointers into the relation and topology).
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace dgcl

#endif  // DGCL_DGCL_DGCL_H_
