// DGCL public API — the library facade of §4.2.
//
// Mirrors the paper's workflow and function names:
//
//   auto ctx = DgclContext::Init(topology);            // init()
//   ctx->BuildCommInfo(graph);                         // buildCommInfo(...)
//   auto parts = ctx->DispatchFeatures(features);      // dispatch_features(...)
//   auto slots = ctx->GraphAllgather(local_embeddings) // graphAllgather(...)
//
// Init sets up the communication environment for the given topology.
// BuildCommInfo partitions the graph (hierarchically when the topology spans
// machines), builds the communication relation, groups it into destination-
// set equivalence classes, runs the configured planning strategy over the
// classes (DgclOptions::planner — batched SPST by default, any registered
// strategy by name, or "auto" for cost-model selection) and compiles the
// class trees into the same per-vertex send/receive tables the runtime
// always consumed. GraphAllgather
// is the synchronous embedding exchange used before every layer's graph op;
// GraphAllgatherBackward routes gradients to vertex owners in reverse.
//
// A single-GPU GNN system integrates by training on LocalGraph(d) for each
// device — vertices are re-indexed so the system never sees the distribution.

#ifndef DGCL_DGCL_DGCL_H_
#define DGCL_DGCL_DGCL_H_

#include <memory>
#include <vector>

#include "comm/compiled_plan.h"
#include "comm/relation.h"
#include "common/status.h"
#include "gnn/local_graph.h"
#include "partition/multilevel.h"
#include "partition/partitioner.h"
#include "planner/registry.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "sim/planner_select.h"
#include "runtime/recovery.h"
#include "topology/topology.h"

namespace dgcl {

struct DgclOptions {
  // Strategy selection and per-strategy planner knobs. planner.strategy
  // names a PlannerRegistry entry ("spst" by default; "p2p", "swap", "ring",
  // "broadcast-1d", "broadcast-1.5d") or "auto" to plan with every
  // registered strategy and commit the cost-model winner (the per-candidate
  // scores land in PlanArtifacts::selection). planner.spst carries the SPST
  // knobs, including max_class_units (the class-batching chunk bound; 0
  // recovers per-vertex planning for ablations) and num_threads (parallel
  // planning; the plan is bit-identical for every thread count).
  // (The pre-PR-6 top-level `spst` spelling is gone; set planner.spst. Init
  // validates the planner block and fails with an actionable error before
  // any planning runs.)
  PlannerOptions planner;

  MultilevelOptions partition;
  double bytes_per_unit = 1024.0;  // embedding bytes used for planning

  // Runtime knobs handed to AllgatherEngine::Create by BuildCommInfo:
  // coordination mode, transport retry/timeout policy, fault injection and
  // per-pair transport overrides (ablations). None of them change what a
  // pass delivers.
  EngineOptions engine;

  // Elastic fault recovery (recovery.h): with recovery.enabled, a failed
  // collective can be survived by Recover() — re-plan onto the surviving
  // topology and resume — instead of surfacing the Status.
  RecoveryOptions recovery;

  // Checked by Init; topology-dependent parts (override ids, dead_device
  // range) are checked there too, so a bad config fails before any planning.
  Status Validate() const;
};

// Everything BuildCommInfo produces, in pipeline order. Returned by
// DgclContext::artifacts() behind a single lifecycle check instead of seven
// individually-checked accessors.
struct PlanArtifacts {
  Partitioning partitioning;  // device assignment per vertex
  CommRelation relation;      // who needs which vertices
  CommClasses classes;        // destination-set equivalence classes
  ClassPlan class_plan;       // class trees from the selected strategy
  CommPlan plan;              // per-vertex expansion (validation/ablations)
  CompiledPlan compiled;      // staged transfer ops the runtime executes
  SelectionReport selection;  // strategy scorecards (one entry when forced)
};

class DgclContext {
 public:
  // init(): set up the communication environment for `topology`.
  static Result<DgclContext> Init(Topology topology, DgclOptions options = {});

  DgclContext(DgclContext&&) noexcept;
  DgclContext& operator=(DgclContext&&) noexcept;
  ~DgclContext();

  // buildCommInfo(graph, topology): partition, build the communication
  // relation, run communication planning, compile and arm the runtime.
  Status BuildCommInfo(const CsrGraph& graph);

  // dispatch_features(features): split a global [num_vertices x dim] matrix
  // into per-device local matrices (local_vertices order).
  Result<std::vector<EmbeddingMatrix>> DispatchFeatures(const EmbeddingMatrix& features) const;

  // graphAllgather(local_embeddings): per-device local rows in, per-device
  // slot matrices (locals + required remotes) out. Synchronous.
  Result<std::vector<EmbeddingMatrix>> GraphAllgather(
      const std::vector<EmbeddingMatrix>& local) const;

  // Reverse pass: slot-gradient matrices in, per-owner accumulated local
  // gradients out.
  Result<std::vector<EmbeddingMatrix>> GraphAllgatherBackward(
      const std::vector<EmbeddingMatrix>& slot_grads) const;

  // Device d's re-indexed training graph G_d (locals then remotes).
  Result<LocalGraph> BuildDeviceGraph(uint32_t device) const;

  bool comm_info_ready() const;
  uint32_t num_devices() const;
  const Topology& topology() const;
  const DgclOptions& options() const;

  // The full planning pipeline output. Aborts (DGCL_CHECK) unless
  // comm_info_ready() — the one lifecycle check for all plan state.
  const PlanArtifacts& artifacts() const;

  // The armed runtime (connection table, pass options). Same lifecycle as
  // artifacts().
  const AllgatherEngine& engine() const;

  // --- Elastic fault recovery -------------------------------------------
  //
  // The recovery protocol driver. `suspects` is the failed-device set in the
  // *current* device-id space (normally PassFailure::suspects from
  // engine().last_failure()). Commits a membership epoch, folds the dead
  // devices' vertices into survivors via the incremental repartition, swaps
  // in the surviving (compacted) topology and re-runs the planning pipeline
  // to re-arm the engine. On success the context looks exactly like one
  // freshly built for the surviving topology: num_devices() shrinks, device
  // ids compact, artifacts()/engine() describe the new plan. Every phase is
  // a "recovery.<phase>" telemetry span; the returned report carries the
  // per-phase wall-clock MTTR breakdown. Requires DgclOptions::recovery
  // .enabled and comm_info_ready().
  Result<RecoveryReport> Recover(DeviceMask suspects);

  // Convenience: Recover using the engine's last recorded PassFailure.
  // Fails with kFailedPrecondition when there is no recorded failure, and
  // with the original Status when that failure is not a recoverable kind.
  Result<RecoveryReport> RecoverFromLastFailure();

  // Current membership: epoch counts committed failures across the
  // context's lifetime; `alive` is over the *current* (compacted) id space,
  // so after a successful recovery every current device is alive.
  const MembershipView& membership() const;

  // Current device id -> device id in the topology Init was given (identity
  // until a recovery compacts the id space; composed across recoveries).
  const std::vector<uint32_t>& device_origin() const;

 private:
  DgclContext() = default;

  // Heap state keeps addresses stable across moves (the engine holds
  // pointers into the relation and topology).
  struct State;

  // The planning pipeline downstream of partitioning (relation -> classes ->
  // strategy planning -> expand/validate -> compile -> arm engine), shared
  // by BuildCommInfo and Recover; honors DgclOptions::planner both times.
  static Status PlanAndArm(State& s, const CsrGraph& graph);

  std::unique_ptr<State> state_;
};

}  // namespace dgcl

#endif  // DGCL_DGCL_DGCL_H_
