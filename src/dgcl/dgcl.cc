#include "dgcl/dgcl.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>
#include <utility>

#include "comm/plan.h"
#include "common/logging.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

struct DgclContext::State {
  Topology topology;
  DgclOptions options;
  const CsrGraph* graph = nullptr;  // set by BuildCommInfo; caller-owned
  PlanArtifacts artifacts;
  std::optional<AllgatherEngine> engine;
  MembershipService membership{0};
  // Current device id -> device id of the topology Init was given.
  std::vector<uint32_t> device_origin;
};

DgclContext::DgclContext(DgclContext&&) noexcept = default;
DgclContext& DgclContext::operator=(DgclContext&&) noexcept = default;
DgclContext::~DgclContext() = default;

Status DgclOptions::Validate() const {
  if (!(bytes_per_unit > 0.0) || !std::isfinite(bytes_per_unit)) {
    return Status::InvalidArgument("bytes_per_unit must be positive and finite");
  }
  DGCL_RETURN_IF_ERROR(planner.Validate());
  DGCL_RETURN_IF_ERROR(recovery.Validate());
  return engine.Validate();
}

Result<DgclContext> DgclContext::Init(Topology topology, DgclOptions options) {
  DGCL_RETURN_IF_ERROR(options.Validate());
  if (topology.num_devices() == 0) {
    return Status::InvalidArgument("topology has no devices");
  }
  if (topology.num_devices() > 1 && !topology.IsFullyConnected()) {
    return Status::InvalidArgument("topology must define a link for every device pair");
  }
  // Topology-dependent option checks, so a bad config fails at Init rather
  // than deep inside BuildCommInfo.
  DGCL_RETURN_IF_ERROR(ValidateTransportOverrides(topology, options.engine.transport_overrides));
  if (options.engine.faults.dead_device != kInvalidId &&
      options.engine.faults.dead_device >= topology.num_devices()) {
    return Status::InvalidArgument("dead_device out of range");
  }
  DgclContext ctx;
  ctx.state_ = std::make_unique<State>();
  ctx.state_->topology = std::move(topology);
  ctx.state_->options = std::move(options);
  ctx.state_->membership = MembershipService(ctx.state_->topology.num_devices());
  ctx.state_->device_origin.resize(ctx.state_->topology.num_devices());
  std::iota(ctx.state_->device_origin.begin(), ctx.state_->device_origin.end(), 0u);
  return ctx;
}

// The downstream planning pipeline — relation, class grouping, strategy
// planning, expansion/validation, compile, arm the engine — from an
// already-set
// s.artifacts.partitioning. BuildCommInfo runs it after the partition phase;
// Recover re-runs it against the surviving topology with the incrementally
// repaired partitioning.
Status DgclContext::PlanAndArm(State& s, const CsrGraph& graph) {
  PlanArtifacts& a = s.artifacts;
  {
    DGCL_TSPAN("dgcl", "phase.relation");
    DGCL_ASSIGN_OR_RETURN(a.relation, BuildCommRelation(graph, a.partitioning));
    a.classes = BuildCommClasses(a.relation);
  }
  {
    DGCL_TSPAN("dgcl", "phase.plan");
    // Resolve the configured strategy through the registry ("auto" plans
    // with every registered strategy and commits the cost-model winner; the
    // scorecards land in a.selection either way).
    DGCL_ASSIGN_OR_RETURN(a.class_plan,
                          PlanWithStrategy(s.options.planner, a.classes, s.topology,
                                           s.options.bytes_per_unit, &a.selection));
  }
  {
    DGCL_TSPAN("dgcl", "phase.expand");
    a.plan = ExpandClassPlan(a.class_plan, a.classes);
    DGCL_RETURN_IF_ERROR(ValidatePlan(a.plan, a.relation, s.topology));
  }
  {
    DGCL_TSPAN("dgcl", "phase.compile");
    // Compile straight from the class trees: byte-identical tables to
    // compiling the expanded plan, without touching the per-vertex trees.
    a.compiled = CompilePlan(a.class_plan, a.classes, s.topology);
    AssignBackwardSubstages(a.compiled);
  }
  DGCL_TSPAN("dgcl", "phase.arm_engine");
  DGCL_ASSIGN_OR_RETURN(AllgatherEngine engine, AllgatherEngine::Create(a.relation, a.compiled,
                                                                        s.topology,
                                                                        s.options.engine));
  s.engine.emplace(std::move(engine));
  s.graph = &graph;
  return Status::Ok();
}

Status DgclContext::BuildCommInfo(const CsrGraph& graph) {
  State& s = *state_;
  DGCL_TSPAN2("dgcl", "build_comm_info", "vertices", graph.num_vertices(), "devices",
              s.topology.num_devices());
  MultilevelPartitioner partitioner(s.options.partition);
  {
    DGCL_TSPAN("dgcl", "phase.partition");
    DGCL_ASSIGN_OR_RETURN(s.artifacts.partitioning,
                          PartitionForTopology(graph, s.topology, partitioner));
  }
  return PlanAndArm(s, graph);
}

Result<RecoveryReport> DgclContext::Recover(DeviceMask suspects) {
  State& s = *state_;
  if (!s.options.recovery.enabled) {
    return Status::FailedPrecondition("Recover: DgclOptions::recovery.enabled is false");
  }
  if (!s.engine.has_value() || s.graph == nullptr) {
    return Status::FailedPrecondition("Recover: BuildCommInfo not called");
  }
  DGCL_TSPAN2("recovery", "recovery.protocol", "suspects", suspects, "epoch",
              s.membership.view().epoch);

  RecoveryReport report;
  const DeviceMask effective = suspects & s.membership.view().alive;

  // Phase: membership — the lowest-id survivor commits the failed set as a
  // new epoch; a bad suspect set fails here with every artifact untouched.
  MembershipView view;
  {
    DGCL_TSPAN("recovery", "recovery.membership");
    const auto t0 = std::chrono::steady_clock::now();
    DGCL_ASSIGN_OR_RETURN(view, s.membership.CommitFailure(suspects));
    report.membership_seconds = SecondsSince(t0);
  }
  report.epoch = view.epoch;
  report.survivors = view.NumAlive();
  for (uint32_t d = 0; d < s.topology.num_devices(); ++d) {
    if ((effective >> d) & 1) {
      report.failed_devices.push_back(d);
    }
  }

  // Phase: repartition — derive the surviving (compacted) topology and fold
  // the dead devices' vertices into survivors over the existing equivalence
  // classes, all computed before any state is mutated.
  SurvivingTopology surviving;
  Partitioning repaired;
  {
    DGCL_TSPAN("recovery", "recovery.repartition");
    const auto t0 = std::chrono::steady_clock::now();
    DGCL_ASSIGN_OR_RETURN(surviving, BuildSurvivingTopology(s.topology, view));
    RepartitionStats stats;
    DGCL_ASSIGN_OR_RETURN(
        Partitioning moved,
        IncrementalRepartition(s.artifacts.classes, s.artifacts.partitioning, view, &stats));
    DGCL_ASSIGN_OR_RETURN(repaired, RemapPartitioning(moved, surviving.old_to_new,
                                                      surviving.topology.num_devices()));
    report.moved_vertices = stats.moved_vertices;
    report.moved_classes = stats.moved_classes;
    report.repartition_seconds = SecondsSince(t0);
  }

  // Phase: replan — swap in the surviving topology and re-run the planning
  // pipeline. The engine holds pointers into the relation/topology, so it is
  // torn down before either is replaced. Engine options referring to dead or
  // renumbered devices are remapped; the injected death is consumed (the
  // retried epoch runs healthy unless the caller re-injects).
  {
    DGCL_TSPAN("recovery", "recovery.replan");
    const auto t0 = std::chrono::steady_clock::now();
    s.engine.reset();

    EngineOptions& eng = s.options.engine;
    eng.faults.dead_device = kInvalidId;
    eng.faults.dead_from_pass = 0;
    if (eng.straggler_device != kInvalidId) {
      eng.straggler_device = eng.straggler_device < surviving.old_to_new.size()
                                 ? surviving.old_to_new[eng.straggler_device]
                                 : kInvalidId;
    }
    std::vector<TransportOverride> kept;
    for (const TransportOverride& o : eng.transport_overrides) {
      if (o.src < surviving.old_to_new.size() && o.dst < surviving.old_to_new.size() &&
          surviving.old_to_new[o.src] != kInvalidId && surviving.old_to_new[o.dst] != kInvalidId) {
        kept.push_back({surviving.old_to_new[o.src], surviving.old_to_new[o.dst], o.transport});
      }
    }
    eng.transport_overrides = std::move(kept);

    std::vector<uint32_t> origin;
    origin.reserve(surviving.new_to_old.size());
    for (uint32_t old_id : surviving.new_to_old) {
      origin.push_back(s.device_origin[old_id]);
    }
    s.device_origin = std::move(origin);

    s.topology = std::move(surviving.topology);
    s.artifacts.partitioning = std::move(repaired);
    DGCL_RETURN_IF_ERROR(PlanAndArm(s, *s.graph));
    // Membership restarts over the compacted id space; the epoch carries.
    s.membership = MembershipService(s.topology.num_devices(), view.epoch);
    report.replan_seconds = SecondsSince(t0);
  }
  return report;
}

Result<RecoveryReport> DgclContext::RecoverFromLastFailure() {
  State& s = *state_;
  if (!s.engine.has_value()) {
    return Status::FailedPrecondition("RecoverFromLastFailure: BuildCommInfo not called");
  }
  std::optional<PassFailure> failure;
  double detect_seconds = 0.0;
  {
    // Phase: detect — classify the failure and read out the suspect set.
    DGCL_TSPAN("recovery", "recovery.detect");
    const auto t0 = std::chrono::steady_clock::now();
    failure = s.engine->last_failure();
    detect_seconds = SecondsSince(t0);
  }
  if (!failure.has_value()) {
    return Status::FailedPrecondition("RecoverFromLastFailure: no recorded pass failure");
  }
  if (!IsRecoverableFailure(failure->status)) {
    return failure->status;
  }
  if (failure->suspects == 0) {
    return Status::FailedPrecondition(
        "RecoverFromLastFailure: failure has no suspect devices (" +
        failure->status.ToString() + ")");
  }
  DGCL_ASSIGN_OR_RETURN(RecoveryReport report, Recover(failure->suspects));
  report.detect_seconds = detect_seconds;
  return report;
}

const MembershipView& DgclContext::membership() const { return state_->membership.view(); }

const std::vector<uint32_t>& DgclContext::device_origin() const { return state_->device_origin; }

Result<std::vector<EmbeddingMatrix>> DgclContext::DispatchFeatures(
    const EmbeddingMatrix& features) const {
  const State& s = *state_;
  if (!s.engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  const CommRelation& relation = s.artifacts.relation;
  if (features.rows != relation.source.size()) {
    return Status::InvalidArgument("feature rows must match graph vertices");
  }
  std::vector<EmbeddingMatrix> out;
  out.reserve(relation.num_devices);
  for (uint32_t d = 0; d < relation.num_devices; ++d) {
    const auto& locals = relation.local_vertices[d];
    EmbeddingMatrix m =
        EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()), features.dim);
    for (uint32_t i = 0; i < locals.size(); ++i) {
      std::copy(features.Row(locals[i]), features.Row(locals[i]) + features.dim, m.Row(i));
    }
    out.push_back(std::move(m));
  }
  return out;
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgather(
    const std::vector<EmbeddingMatrix>& local) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Forward(local);
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgatherBackward(
    const std::vector<EmbeddingMatrix>& slot_grads) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Backward(slot_grads);
}

Result<LocalGraph> DgclContext::BuildDeviceGraph(uint32_t device) const {
  const State& s = *state_;
  if (s.graph == nullptr) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  if (device >= s.artifacts.relation.num_devices) {
    return Status::OutOfRange("device id out of range");
  }
  return BuildLocalGraph(*s.graph, s.artifacts.relation, device);
}

bool DgclContext::comm_info_ready() const { return state_->engine.has_value(); }
uint32_t DgclContext::num_devices() const { return state_->topology.num_devices(); }
const Topology& DgclContext::topology() const { return state_->topology; }
const DgclOptions& DgclContext::options() const { return state_->options; }

const PlanArtifacts& DgclContext::artifacts() const {
  DGCL_CHECK(comm_info_ready()) << "artifacts() before BuildCommInfo";
  return state_->artifacts;
}

const AllgatherEngine& DgclContext::engine() const {
  DGCL_CHECK(comm_info_ready()) << "engine() before BuildCommInfo";
  return *state_->engine;
}

}  // namespace dgcl
