#include "dgcl/dgcl.h"

#include <cmath>
#include <optional>

#include "comm/plan.h"
#include "common/logging.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "telemetry/trace.h"

namespace dgcl {

struct DgclContext::State {
  Topology topology;
  DgclOptions options;
  const CsrGraph* graph = nullptr;  // set by BuildCommInfo; caller-owned
  PlanArtifacts artifacts;
  std::optional<AllgatherEngine> engine;
};

DgclContext::DgclContext(DgclContext&&) noexcept = default;
DgclContext& DgclContext::operator=(DgclContext&&) noexcept = default;
DgclContext::~DgclContext() = default;

Status DgclOptions::Validate() const {
  if (!(bytes_per_unit > 0.0) || !std::isfinite(bytes_per_unit)) {
    return Status::InvalidArgument("bytes_per_unit must be positive and finite");
  }
  return engine.Validate();
}

Result<DgclContext> DgclContext::Init(Topology topology, DgclOptions options) {
  DGCL_RETURN_IF_ERROR(options.Validate());
  if (topology.num_devices() == 0) {
    return Status::InvalidArgument("topology has no devices");
  }
  if (topology.num_devices() > 1 && !topology.IsFullyConnected()) {
    return Status::InvalidArgument("topology must define a link for every device pair");
  }
  // Topology-dependent option checks, so a bad config fails at Init rather
  // than deep inside BuildCommInfo.
  DGCL_RETURN_IF_ERROR(ValidateTransportOverrides(topology, options.engine.transport_overrides));
  if (options.engine.faults.dead_device != kInvalidId &&
      options.engine.faults.dead_device >= topology.num_devices()) {
    return Status::InvalidArgument("dead_device out of range");
  }
  DgclContext ctx;
  ctx.state_ = std::make_unique<State>();
  ctx.state_->topology = std::move(topology);
  ctx.state_->options = std::move(options);
  return ctx;
}

Status DgclContext::BuildCommInfo(const CsrGraph& graph) {
  State& s = *state_;
  PlanArtifacts& a = s.artifacts;
  DGCL_TSPAN2("dgcl", "build_comm_info", "vertices", graph.num_vertices(), "devices",
              s.topology.num_devices());
  MultilevelPartitioner partitioner(s.options.partition);
  {
    DGCL_TSPAN("dgcl", "phase.partition");
    DGCL_ASSIGN_OR_RETURN(a.partitioning, PartitionForTopology(graph, s.topology, partitioner));
  }
  {
    DGCL_TSPAN("dgcl", "phase.relation");
    DGCL_ASSIGN_OR_RETURN(a.relation, BuildCommRelation(graph, a.partitioning));
    a.classes = BuildCommClasses(a.relation);
  }
  SpstPlanner planner(s.options.spst);
  {
    DGCL_TSPAN("dgcl", "phase.plan");
    DGCL_ASSIGN_OR_RETURN(a.class_plan,
                          planner.PlanClasses(a.classes, s.topology, s.options.bytes_per_unit));
  }
  {
    DGCL_TSPAN("dgcl", "phase.expand");
    a.plan = ExpandClassPlan(a.class_plan, a.classes);
    DGCL_RETURN_IF_ERROR(ValidatePlan(a.plan, a.relation, s.topology));
  }
  {
    DGCL_TSPAN("dgcl", "phase.compile");
    // Compile straight from the class trees: byte-identical tables to
    // compiling the expanded plan, without touching the per-vertex trees.
    a.compiled = CompilePlan(a.class_plan, a.classes, s.topology);
    AssignBackwardSubstages(a.compiled);
  }
  DGCL_TSPAN("dgcl", "phase.arm_engine");
  DGCL_ASSIGN_OR_RETURN(AllgatherEngine engine, AllgatherEngine::Create(a.relation, a.compiled,
                                                                        s.topology,
                                                                        s.options.engine));
  s.engine.emplace(std::move(engine));
  s.graph = &graph;
  return Status::Ok();
}

Result<std::vector<EmbeddingMatrix>> DgclContext::DispatchFeatures(
    const EmbeddingMatrix& features) const {
  const State& s = *state_;
  if (!s.engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  const CommRelation& relation = s.artifacts.relation;
  if (features.rows != relation.source.size()) {
    return Status::InvalidArgument("feature rows must match graph vertices");
  }
  std::vector<EmbeddingMatrix> out;
  out.reserve(relation.num_devices);
  for (uint32_t d = 0; d < relation.num_devices; ++d) {
    const auto& locals = relation.local_vertices[d];
    EmbeddingMatrix m =
        EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()), features.dim);
    for (uint32_t i = 0; i < locals.size(); ++i) {
      std::copy(features.Row(locals[i]), features.Row(locals[i]) + features.dim, m.Row(i));
    }
    out.push_back(std::move(m));
  }
  return out;
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgather(
    const std::vector<EmbeddingMatrix>& local) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Forward(local);
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgatherBackward(
    const std::vector<EmbeddingMatrix>& slot_grads) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Backward(slot_grads);
}

Result<LocalGraph> DgclContext::BuildDeviceGraph(uint32_t device) const {
  const State& s = *state_;
  if (s.graph == nullptr) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  if (device >= s.artifacts.relation.num_devices) {
    return Status::OutOfRange("device id out of range");
  }
  return BuildLocalGraph(*s.graph, s.artifacts.relation, device);
}

bool DgclContext::comm_info_ready() const { return state_->engine.has_value(); }
uint32_t DgclContext::num_devices() const { return state_->topology.num_devices(); }
const Topology& DgclContext::topology() const { return state_->topology; }
const DgclOptions& DgclContext::options() const { return state_->options; }

const PlanArtifacts& DgclContext::artifacts() const {
  DGCL_CHECK(comm_info_ready()) << "artifacts() before BuildCommInfo";
  return state_->artifacts;
}

const AllgatherEngine& DgclContext::engine() const {
  DGCL_CHECK(comm_info_ready()) << "engine() before BuildCommInfo";
  return *state_->engine;
}

}  // namespace dgcl
