#include "dgcl/dgcl.h"

#include <optional>

#include "comm/plan.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "telemetry/trace.h"

namespace dgcl {

struct DgclContext::State {
  Topology topology;
  DgclOptions options;
  const CsrGraph* graph = nullptr;  // set by BuildCommInfo; caller-owned
  Partitioning partitioning;
  CommRelation relation;
  CommClasses classes;
  ClassPlan class_plan;
  CommPlan plan;
  CompiledPlan compiled;
  std::optional<AllgatherEngine> engine;
};

DgclContext::DgclContext(DgclContext&&) noexcept = default;
DgclContext& DgclContext::operator=(DgclContext&&) noexcept = default;
DgclContext::~DgclContext() = default;

Result<DgclContext> DgclContext::Init(Topology topology, DgclOptions options) {
  if (topology.num_devices() == 0) {
    return Status::InvalidArgument("topology has no devices");
  }
  if (topology.num_devices() > 1 && !topology.IsFullyConnected()) {
    return Status::InvalidArgument("topology must define a link for every device pair");
  }
  DgclContext ctx;
  ctx.state_ = std::make_unique<State>();
  ctx.state_->topology = std::move(topology);
  ctx.state_->options = options;
  return ctx;
}

Status DgclContext::BuildCommInfo(const CsrGraph& graph) {
  State& s = *state_;
  DGCL_TSPAN2("dgcl", "build_comm_info", "vertices", graph.num_vertices(), "devices",
              s.topology.num_devices());
  MultilevelPartitioner partitioner(s.options.partition);
  {
    DGCL_TSPAN("dgcl", "phase.partition");
    DGCL_ASSIGN_OR_RETURN(s.partitioning, PartitionForTopology(graph, s.topology, partitioner));
  }
  {
    DGCL_TSPAN("dgcl", "phase.relation");
    DGCL_ASSIGN_OR_RETURN(s.relation, BuildCommRelation(graph, s.partitioning));
    s.classes = BuildCommClasses(s.relation);
  }
  SpstPlanner planner(s.options.spst);
  {
    DGCL_TSPAN("dgcl", "phase.plan");
    DGCL_ASSIGN_OR_RETURN(
        s.class_plan, planner.PlanClasses(s.classes, s.topology, s.options.bytes_per_unit));
  }
  {
    DGCL_TSPAN("dgcl", "phase.expand");
    s.plan = ExpandClassPlan(s.class_plan, s.classes);
    DGCL_RETURN_IF_ERROR(ValidatePlan(s.plan, s.relation, s.topology));
  }
  {
    DGCL_TSPAN("dgcl", "phase.compile");
    // Compile straight from the class trees: byte-identical tables to
    // compiling the expanded plan, without touching the per-vertex trees.
    s.compiled = CompilePlan(s.class_plan, s.classes, s.topology);
    AssignBackwardSubstages(s.compiled);
  }
  DGCL_TSPAN("dgcl", "phase.arm_engine");
  DGCL_ASSIGN_OR_RETURN(AllgatherEngine engine,
                        AllgatherEngine::Create(s.relation, s.compiled, s.topology));
  s.engine.emplace(std::move(engine));
  s.graph = &graph;
  return Status::Ok();
}

Result<std::vector<EmbeddingMatrix>> DgclContext::DispatchFeatures(
    const EmbeddingMatrix& features) const {
  const State& s = *state_;
  if (!s.engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  if (features.rows != s.relation.source.size()) {
    return Status::InvalidArgument("feature rows must match graph vertices");
  }
  std::vector<EmbeddingMatrix> out;
  out.reserve(s.relation.num_devices);
  for (uint32_t d = 0; d < s.relation.num_devices; ++d) {
    const auto& locals = s.relation.local_vertices[d];
    EmbeddingMatrix m =
        EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()), features.dim);
    for (uint32_t i = 0; i < locals.size(); ++i) {
      std::copy(features.Row(locals[i]), features.Row(locals[i]) + features.dim, m.Row(i));
    }
    out.push_back(std::move(m));
  }
  return out;
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgather(
    const std::vector<EmbeddingMatrix>& local) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Forward(local);
}

Result<std::vector<EmbeddingMatrix>> DgclContext::GraphAllgatherBackward(
    const std::vector<EmbeddingMatrix>& slot_grads) const {
  if (!state_->engine.has_value()) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  return state_->engine->Backward(slot_grads);
}

Result<LocalGraph> DgclContext::BuildDeviceGraph(uint32_t device) const {
  const State& s = *state_;
  if (s.graph == nullptr) {
    return Status::FailedPrecondition("BuildCommInfo not called");
  }
  if (device >= s.relation.num_devices) {
    return Status::OutOfRange("device id out of range");
  }
  return BuildLocalGraph(*s.graph, s.relation, device);
}

bool DgclContext::comm_info_ready() const { return state_->engine.has_value(); }
uint32_t DgclContext::num_devices() const { return state_->topology.num_devices(); }
const Topology& DgclContext::topology() const { return state_->topology; }
const Partitioning& DgclContext::partitioning() const { return state_->partitioning; }
const CommRelation& DgclContext::relation() const { return state_->relation; }
const CommClasses& DgclContext::comm_classes() const { return state_->classes; }
const ClassPlan& DgclContext::class_plan() const { return state_->class_plan; }
const CommPlan& DgclContext::plan() const { return state_->plan; }
const CompiledPlan& DgclContext::compiled_plan() const { return state_->compiled; }

}  // namespace dgcl
