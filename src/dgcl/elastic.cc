#include "dgcl/elastic.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Result<ElasticTrainingSession> ElasticTrainingSession::Create(
    DgclContext& ctx, const CsrGraph& graph, const EmbeddingMatrix& features,
    const std::vector<uint32_t>& labels, uint32_t num_classes, TrainerOptions options) {
  if (!ctx.comm_info_ready()) {
    return Status::FailedPrecondition("ElasticTrainingSession: BuildCommInfo not called");
  }
  ElasticTrainingSession session;
  session.ctx_ = &ctx;
  session.graph_ = &graph;
  session.features_ = &features;
  session.labels_ = &labels;
  session.num_classes_ = num_classes;
  session.options_ = options;
  session.checkpoints_ =
      EmbeddingCheckpointStore(ctx.options().recovery.checkpoint_every_n_layers);
  DGCL_ASSIGN_OR_RETURN(
      DistributedTrainer trainer,
      DistributedTrainer::Create(graph, ctx.artifacts().relation, ctx.engine(), features, labels,
                                 num_classes, options));
  session.trainer_.emplace(std::move(trainer));
  return session;
}

Status ElasticTrainingSession::RestoreTrainer(RecoveryReport& report) {
  DGCL_TSPAN("recovery", "recovery.restore");
  const auto t0 = std::chrono::steady_clock::now();
  // Any replica's weights are *the* model: weights only ever change inside a
  // fully-completed synchronized step, so at every possible failure point
  // each replica still holds the epoch-start weights.
  ReplicaWeights weights = trainer_->ExportReplica();
  trainer_.reset();
  DGCL_ASSIGN_OR_RETURN(
      DistributedTrainer trainer,
      DistributedTrainer::Create(*graph_, ctx_->artifacts().relation, ctx_->engine(), *features_,
                                 *labels_, num_classes_, options_));
  trainer_.emplace(std::move(trainer));
  DGCL_RETURN_IF_ERROR(trainer_->ImportReplica(weights));
  if (checkpoints_.every_n_layers() > 0) {
    // Seed boundary 0 with the (static) input features so the retried
    // epoch's first layer skips its allgather too.
    checkpoints_.Save(0, *features_);
  }
  report.restore_seconds = SecondsSince(t0);
  return Status::Ok();
}

Result<EpochResult> ElasticTrainingSession::TrainEpoch() {
  // Activation snapshots are only valid while the weights that produced them
  // are live; a new epoch starts from fresh post-step weights.
  checkpoints_.Clear();
  EpochHooks hooks;
  hooks.checkpoints = checkpoints_.every_n_layers() > 0 ? &checkpoints_ : nullptr;
  hooks.restore = false;

  Result<EpochResult> result = trainer_->TrainEpoch(hooks);
  while (!result.ok()) {
    const RecoveryOptions& recovery = ctx_->options().recovery;
    if (!recovery.enabled || !IsRecoverableFailure(result.status()) ||
        recoveries() >= recovery.max_recoveries) {
      return result;
    }
    DGCL_ASSIGN_OR_RETURN(RecoveryReport report, ctx_->RecoverFromLastFailure());
    DGCL_RETURN_IF_ERROR(RestoreTrainer(report));
    hooks.restore = true;
    const auto t0 = std::chrono::steady_clock::now();
    {
      DGCL_TSPAN1("recovery", "recovery.resume", "epoch", report.epoch);
      result = trainer_->TrainEpoch(hooks);
    }
    if (result.ok()) {
      report.resume_seconds = SecondsSince(t0);
    }
    recovery_log_.push_back(std::move(report));
  }
  checkpoints_.Clear();
  return result;
}

Result<EpochResult> ElasticTrainingSession::Evaluate() { return trainer_->Evaluate(); }

}  // namespace dgcl
