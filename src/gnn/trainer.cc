#include "gnn/trainer.h"

#include <algorithm>

#include "common/ids.h"
#include "common/logging.h"
#include "runtime/allreduce.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

// Rows [0, n) of `m` as a copy (drops forwarded-extra slot rows).
EmbeddingMatrix TrimRows(const EmbeddingMatrix& m, uint32_t n) {
  EmbeddingMatrix out = EmbeddingMatrix::Zero(n, m.dim);
  std::copy(m.data.begin(), m.data.begin() + static_cast<size_t>(n) * m.dim, out.data.begin());
  return out;
}

uint32_t CountLabeled(const std::vector<uint32_t>& labels) {
  uint32_t n = 0;
  for (uint32_t label : labels) {
    if (label != kInvalidId) {
      ++n;
    }
  }
  return n;
}

}  // namespace

Result<MiniBatchModel> MiniBatchModel::Create(uint32_t feature_dim, uint32_t num_classes,
                                              TrainerOptions options) {
  if (feature_dim == 0 || num_classes == 0 || options.num_layers == 0) {
    return Status::InvalidArgument("need feature_dim, num_classes and num_layers >= 1");
  }
  MiniBatchModel model;
  model.options_ = options;
  model.num_classes_ = num_classes;
  Rng rng(options.weight_seed);
  uint32_t dim_in = feature_dim;
  for (uint32_t l = 0; l < options.num_layers; ++l) {
    model.layers_.push_back(MakeLayer(options.model, dim_in, options.hidden_dim, rng));
    dim_in = options.hidden_dim;
  }
  model.head_w_ = RandomWeights(options.hidden_dim, num_classes, rng);
  model.head_dw_ = EmbeddingMatrix::Zero(options.hidden_dim, num_classes);
  return model;
}

Result<EpochResult> MiniBatchModel::Pass(bool train, const LocalGraph& block,
                                         const EmbeddingMatrix& inputs,
                                         const std::vector<uint32_t>& labels) {
  if (block.num_slots != block.num_compute) {
    return Status::InvalidArgument(
        "mini-batch blocks must be fully local (num_slots == num_compute); got " +
        std::to_string(block.num_slots) + " slots for " + std::to_string(block.num_compute) +
        " compute rows");
  }
  if (inputs.rows != block.num_slots || labels.size() != block.num_compute) {
    return Status::InvalidArgument("inputs/labels must cover every block row");
  }
  if (CountLabeled(labels) == 0) {
    return Status::FailedPrecondition("no labeled vertices in the block");
  }
  if (train) {
    // Clear any partial accumulations a failed earlier step left behind.
    for (auto& layer : layers_) {
      for (EmbeddingMatrix* g : layer->Grads()) {
        std::fill(g->data.begin(), g->data.end(), 0.0f);
      }
    }
    std::fill(head_dw_.data.begin(), head_dw_.data.end(), 0.0f);
  }
  // Fully-local forward: each layer's output rows are the next layer's slot
  // rows directly (the InferenceForward schedule, kept inline here because
  // backward needs the stack's cached activations).
  EmbeddingMatrix acts = inputs;
  for (auto& layer : layers_) {
    acts = layer->Forward(block, acts);
  }

  EpochResult result;
  EmbeddingMatrix logits;
  Gemm(acts, head_w_, logits);
  EmbeddingMatrix dlogits;
  result.loss = SoftmaxCrossEntropy(logits, labels, dlogits);
  result.accuracy = Accuracy(logits, labels);
  if (!train) {
    return result;
  }

  EmbeddingMatrix dw;
  GemmTransposeA(acts, dlogits, dw);
  AddInPlace(head_dw_, dw);
  EmbeddingMatrix dacts;
  GemmTransposeB(dlogits, head_w_, dacts);
  for (uint32_t l = static_cast<uint32_t>(layers_.size()); l-- > 0;) {
    dacts = layers_[l]->Backward(block, dacts);
  }
  for (auto& layer : layers_) {
    layer->Step(options_.learning_rate);
  }
  for (size_t i = 0; i < head_w_.data.size(); ++i) {
    head_w_.data[i] -= options_.learning_rate * head_dw_.data[i];
  }
  std::fill(head_dw_.data.begin(), head_dw_.data.end(), 0.0f);
  return result;
}

Result<EpochResult> MiniBatchModel::Step(const LocalGraph& block, const EmbeddingMatrix& inputs,
                                         const std::vector<uint32_t>& labels) {
  return Pass(/*train=*/true, block, inputs, labels);
}

Result<EpochResult> MiniBatchModel::Evaluate(const LocalGraph& block,
                                             const EmbeddingMatrix& inputs,
                                             const std::vector<uint32_t>& labels) {
  return Pass(/*train=*/false, block, inputs, labels);
}

ReplicaWeights MiniBatchModel::ExportReplica() {
  ReplicaWeights weights;
  weights.layers.reserve(layers_.size());
  for (auto& layer : layers_) {
    std::vector<EmbeddingMatrix> params;
    for (EmbeddingMatrix* p : layer->Params()) {
      params.push_back(*p);
    }
    weights.layers.push_back(std::move(params));
  }
  weights.head = head_w_;
  return weights;
}

Status MiniBatchModel::ImportReplica(const ReplicaWeights& weights) {
  if (weights.layers.size() != layers_.size()) {
    return Status::InvalidArgument("ImportReplica: layer count mismatch");
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::vector<EmbeddingMatrix*> params = layers_[l]->Params();
    if (params.size() != weights.layers[l].size()) {
      return Status::InvalidArgument("ImportReplica: param count mismatch at layer " +
                                     std::to_string(l));
    }
    for (size_t g = 0; g < params.size(); ++g) {
      if (params[g]->rows != weights.layers[l][g].rows ||
          params[g]->dim != weights.layers[l][g].dim) {
        return Status::InvalidArgument("ImportReplica: shape mismatch at layer " +
                                       std::to_string(l));
      }
      *params[g] = weights.layers[l][g];
    }
  }
  if (head_w_.rows != weights.head.rows || head_w_.dim != weights.head.dim) {
    return Status::InvalidArgument("ImportReplica: head shape mismatch");
  }
  head_w_ = weights.head;
  return Status::Ok();
}

Result<DistributedTrainer> DistributedTrainer::Create(
    const CsrGraph& graph, const CommRelation& relation, const AllgatherEngine& engine,
    const EmbeddingMatrix& features, const std::vector<uint32_t>& labels, uint32_t num_classes,
    TrainerOptions options) {
  if (features.rows != graph.num_vertices() || labels.size() != graph.num_vertices()) {
    return Status::InvalidArgument("features/labels must cover every vertex");
  }
  if (options.num_layers == 0 || num_classes == 0) {
    return Status::InvalidArgument("need at least one layer and one class");
  }
  if (options.aggregate_every_r == 0) {
    return Status::InvalidArgument(
        "aggregate_every_r must be >= 1 (1 = synchronous, r = exchange every r-th epoch)");
  }
  DistributedTrainer trainer;
  trainer.relation_ = &relation;
  trainer.engine_ = &engine;
  trainer.options_ = options;
  trainer.num_classes_ = num_classes;

  const uint32_t devices = relation.num_devices;
  trainer.local_graphs_.reserve(devices);
  trainer.local_features_.reserve(devices);
  trainer.local_labels_.resize(devices);
  trainer.layers_.resize(devices);
  for (uint32_t d = 0; d < devices; ++d) {
    trainer.local_graphs_.push_back(BuildLocalGraph(graph, relation, d));
    const auto& locals = relation.local_vertices[d];
    EmbeddingMatrix feat = EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()),
                                                 features.dim);
    for (uint32_t i = 0; i < locals.size(); ++i) {
      std::copy(features.Row(locals[i]), features.Row(locals[i]) + features.dim, feat.Row(i));
    }
    trainer.local_features_.push_back(std::move(feat));
    for (VertexId v : locals) {
      trainer.local_labels_[d].push_back(labels[v]);
    }
    // Identical weight replica per device: fresh identically-seeded Rng.
    Rng rng(options.weight_seed);
    uint32_t dim_in = features.dim;
    for (uint32_t l = 0; l < options.num_layers; ++l) {
      trainer.layers_[d].push_back(MakeLayer(options.model, dim_in, options.hidden_dim, rng));
      dim_in = options.hidden_dim;
    }
    trainer.head_w_.push_back(RandomWeights(options.hidden_dim, num_classes, rng));
    trainer.head_dw_.push_back(EmbeddingMatrix::Zero(options.hidden_dim, num_classes));
  }
  return trainer;
}

Result<EpochResult> DistributedTrainer::Pass(bool train, EmbeddingMatrix* all_logits,
                                             const EpochHooks& hooks) {
  const uint32_t devices = relation_->num_devices;
  DGCL_TSPAN2("trainer", train ? "epoch.train" : "epoch.eval", "devices", devices, "layers",
              options_.num_layers);
  if (train) {
    // A previous pass that failed mid-backward may have left partial
    // parameter-gradient accumulations behind (weights are only touched by
    // the all-or-nothing synchronized step, so *they* are always clean).
    // Re-zero so a retried epoch reproduces a fresh one exactly.
    for (uint32_t d = 0; d < devices; ++d) {
      for (uint32_t l = 0; l < options_.num_layers; ++l) {
        for (EmbeddingMatrix* g : layers_[d][l]->Grads()) {
          std::fill(g->data.begin(), g->data.end(), 0.0f);
        }
      }
      std::fill(head_dw_[d].data.begin(), head_dw_[d].data.end(), 0.0f);
    }
  }
  std::vector<EmbeddingMatrix> acts = local_features_;

  // cd-r: a training epoch is stale when it is not a multiple of r and a
  // fresh exchange has already populated the remote-row cache; it reuses the
  // cached rows and skips both directions of communication. Eval passes are
  // always fresh.
  const bool stale = train && options_.aggregate_every_r > 1 &&
                     (train_epochs_ % options_.aggregate_every_r) != 0 &&
                     !stale_remote_.empty();

  for (uint32_t l = 0; l < options_.num_layers; ++l) {
    const EmbeddingCheckpoint* ckpt =
        (hooks.checkpoints != nullptr && hooks.restore) ? hooks.checkpoints->Find(l) : nullptr;
    if (ckpt != nullptr) {
      // Restore path: the activations entering this layer were snapshotted by
      // the failed pass (weights unchanged since — see ExportReplica), so the
      // slot inputs come straight from the global checkpoint and this layer's
      // allgather is skipped. Local compute still runs below, keeping every
      // layer's backward cache exact.
      DGCL_TSPAN1("recovery", "recovery.restore.layer", "layer", l);
      for (uint32_t d = 0; d < devices; ++d) {
        EmbeddingMatrix trimmed =
            EmbeddingMatrix::Zero(local_graphs_[d].num_slots, ckpt->acts.dim);
        uint32_t row = 0;
        for (VertexId v : relation_->local_vertices[d]) {
          std::copy(ckpt->acts.Row(v), ckpt->acts.Row(v) + ckpt->acts.dim, trimmed.Row(row++));
        }
        for (VertexId v : relation_->remote_vertices[d]) {
          std::copy(ckpt->acts.Row(v), ckpt->acts.Row(v) + ckpt->acts.dim, trimmed.Row(row++));
        }
        acts[d] = layers_[d][l]->Forward(local_graphs_[d], trimmed);
      }
      continue;
    }
    if (hooks.checkpoints != nullptr && l >= 1 && hooks.checkpoints->ShouldCheckpoint(l) &&
        hooks.checkpoints->Find(l) == nullptr) {
      // Snapshot the boundary *before* attempting the allgather: if the
      // exchange below dies, the retry resumes from this very layer.
      DGCL_TSPAN1("recovery", "recovery.checkpoint.save", "layer", l);
      const uint32_t dim = layers_[0][l]->dim_in();
      EmbeddingMatrix global =
          EmbeddingMatrix::Zero(static_cast<uint32_t>(relation_->source.size()), dim);
      for (uint32_t d = 0; d < devices; ++d) {
        const auto& locals = relation_->local_vertices[d];
        for (uint32_t i = 0; i < locals.size(); ++i) {
          std::copy(acts[d].Row(i), acts[d].Row(i) + dim, global.Row(locals[i]));
        }
      }
      hooks.checkpoints->Save(l, std::move(global));
    }
    if (stale) {
      // Stale epoch: slot inputs are fresh local rows plus the remote rows
      // cached at the last exchange; no communication for this layer.
      DGCL_TSPAN1("trainer", "layer.stale_reuse", "layer", l);
      for (uint32_t d = 0; d < devices; ++d) {
        const LocalGraph& g = local_graphs_[d];
        const EmbeddingMatrix& cached = stale_remote_[l][d];
        EmbeddingMatrix trimmed = EmbeddingMatrix::Zero(g.num_slots, acts[d].dim);
        std::copy(acts[d].data.begin(),
                  acts[d].data.begin() + static_cast<size_t>(g.num_compute) * acts[d].dim,
                  trimmed.data.begin());
        std::copy(cached.data.begin(), cached.data.end(),
                  trimmed.data.begin() + static_cast<size_t>(g.num_compute) * trimmed.dim);
        acts[d] = layers_[d][l]->Forward(g, trimmed);
      }
      continue;
    }
    std::vector<EmbeddingMatrix> trimmed_slots(devices);
    if (engine_->options().overlap.num_chunks > 1) {
      // Overlapped exchange: consume each chunk as its flag publishes — the
      // first stage of aggregation (materializing the compute-side slot
      // matrix) runs while later chunks are still on the wire, instead of
      // after the pass barrier. Each callback fires on the receiving
      // device's pass thread and writes only that device's matrix, so
      // callbacks race neither with each other nor with this thread (which
      // blocks in Forward until every pass thread has joined). Rows land via
      // the same copies the barrier path makes, so the result is
      // bit-identical; the neighbor-sum itself still runs after the pass
      // because reassociating it per arrival order would break that
      // guarantee.
      DGCL_TSPAN1("trainer", "layer.allgather.overlap", "layer", l);
      for (uint32_t d = 0; d < devices; ++d) {
        const LocalGraph& g = local_graphs_[d];
        trimmed_slots[d] = EmbeddingMatrix::Zero(g.num_slots, acts[d].dim);
        std::copy(acts[d].data.begin(),
                  acts[d].data.begin() + static_cast<size_t>(g.num_compute) * acts[d].dim,
                  trimmed_slots[d].data.begin());
      }
      auto on_chunk = [&](const ChunkArrival& a) {
        const TransferOp& op = engine_->plan().ops[a.op];
        const LocalGraph& g = local_graphs_[a.device];
        EmbeddingMatrix& t = trimmed_slots[a.device];
        for (uint32_t i = a.row_begin; i < a.row_end; ++i) {
          const uint32_t slot = engine_->SlotOf(a.device, op.vertices[i]);
          if (slot < g.num_slots) {
            std::copy(a.output->Row(slot), a.output->Row(slot) + a.dim, t.Row(slot));
          }
        }
      };
      std::vector<EmbeddingMatrix> slots;
      DGCL_ASSIGN_OR_RETURN(slots, engine_->Forward(acts, on_chunk));
    } else {
      std::vector<EmbeddingMatrix> slots;
      {
        DGCL_TSPAN1("trainer", "layer.allgather", "layer", l);
        DGCL_ASSIGN_OR_RETURN(slots, engine_->Forward(acts));
      }
      for (uint32_t d = 0; d < devices; ++d) {
        trimmed_slots[d] = TrimRows(slots[d], local_graphs_[d].num_slots);
      }
    }
    DGCL_TSPAN1("trainer", "layer.compute", "layer", l);
    for (uint32_t d = 0; d < devices; ++d) {
      const LocalGraph& g = local_graphs_[d];
      EmbeddingMatrix& trimmed = trimmed_slots[d];
      if (train && options_.aggregate_every_r > 1) {
        // Refresh the cache the stale epochs will reuse until the next
        // exchange.
        if (stale_remote_.empty()) {
          stale_remote_.resize(options_.num_layers,
                               std::vector<EmbeddingMatrix>(devices));
        }
        const uint32_t remotes = g.num_slots - g.num_compute;
        EmbeddingMatrix cached = EmbeddingMatrix::Zero(remotes, trimmed.dim);
        std::copy(trimmed.data.begin() + static_cast<size_t>(g.num_compute) * trimmed.dim,
                  trimmed.data.end(), cached.data.begin());
        stale_remote_[l][d] = std::move(cached);
      }
      acts[d] = layers_[d][l]->Forward(g, trimmed);
    }
  }

  // Classification head and loss.
  uint32_t total_labeled = 0;
  for (uint32_t d = 0; d < devices; ++d) {
    total_labeled += CountLabeled(local_labels_[d]);
  }
  if (total_labeled == 0) {
    return Status::FailedPrecondition("no labeled vertices");
  }

  EpochResult result;
  std::vector<EmbeddingMatrix> dlogits(devices);
  std::vector<EmbeddingMatrix> logits(devices);
  double weighted_accuracy = 0.0;
  for (uint32_t d = 0; d < devices; ++d) {
    Gemm(acts[d], head_w_[d], logits[d]);
    const uint32_t counted = CountLabeled(local_labels_[d]);
    EmbeddingMatrix grad;
    const double device_loss = SoftmaxCrossEntropy(logits[d], local_labels_[d], grad);
    const double share = static_cast<double>(counted) / total_labeled;
    result.loss += device_loss * share;
    weighted_accuracy += Accuracy(logits[d], local_labels_[d]) * share;
    // Rescale from per-device mean to the global mean.
    ScaleInPlace(grad, static_cast<float>(share));
    dlogits[d] = std::move(grad);
  }
  result.accuracy = weighted_accuracy;

  if (all_logits != nullptr) {
    *all_logits = EmbeddingMatrix::Zero(
        static_cast<uint32_t>(relation_->source.size()), num_classes_);
    for (uint32_t d = 0; d < devices; ++d) {
      const auto& locals = relation_->local_vertices[d];
      for (uint32_t i = 0; i < locals.size(); ++i) {
        std::copy(logits[d].Row(i), logits[d].Row(i) + num_classes_,
                  all_logits->Row(locals[i]));
      }
    }
  }
  if (!train) {
    return result;
  }

  // Backward through the head.
  std::vector<EmbeddingMatrix> dacts(devices);
  for (uint32_t d = 0; d < devices; ++d) {
    EmbeddingMatrix dw;
    GemmTransposeA(acts[d], dlogits[d], dw);
    AddInPlace(head_dw_[d], dw);
    GemmTransposeB(dlogits[d], head_w_[d], dacts[d]);
  }

  // Backward through the GNN layers, routing remote gradients home.
  for (uint32_t l = options_.num_layers; l-- > 0;) {
    std::vector<EmbeddingMatrix> dslots(devices);
    {
      DGCL_TSPAN1("trainer", "layer.bwd.compute", "layer", l);
      for (uint32_t d = 0; d < devices; ++d) {
        dslots[d] = layers_[d][l]->Backward(local_graphs_[d], dacts[d]);
      }
    }
    if (stale) {
      // cd-r: the delayed remote-gradient contributions are dropped; every
      // owner keeps the gradient its own compute produced for its local
      // rows, and no exchange runs.
      DGCL_TSPAN1("trainer", "layer.bwd.stale_local", "layer", l);
      for (uint32_t d = 0; d < devices; ++d) {
        dacts[d] = TrimRows(dslots[d], local_graphs_[d].num_compute);
      }
      continue;
    }
    DGCL_TSPAN1("trainer", "layer.bwd.allgather", "layer", l);
    DGCL_ASSIGN_OR_RETURN(dacts, engine_->Backward(dslots));
  }

  // Gradient synchronization (allreduce-sum) across replicas, then step.
  // Each device's parameter gradient is a *partial sum* over its local
  // vertices of the globally-normalized loss, so the reduce is a sum, not a
  // mean — summing reproduces the single-device gradient exactly.
  DGCL_TSPAN("trainer", "grad.sync");
  auto sync = [&](std::vector<EmbeddingMatrix*> replicas) -> Status {
    if (options_.use_ring_allreduce) {
      DGCL_ASSIGN_OR_RETURN(AllReduceStats stats, RingAllReduceSum(std::move(replicas)));
      (void)stats;
      return Status::Ok();
    }
    for (uint32_t d = 1; d < devices; ++d) {
      AddInPlace(*replicas[0], *replicas[d]);
    }
    for (uint32_t d = 1; d < devices; ++d) {
      *replicas[d] = *replicas[0];
    }
    return Status::Ok();
  };
  for (uint32_t l = 0; l < options_.num_layers; ++l) {
    const size_t grads_per_layer = layers_[0][l]->Grads().size();
    for (size_t g = 0; g < grads_per_layer; ++g) {
      std::vector<EmbeddingMatrix*> replicas;
      replicas.reserve(devices);
      for (uint32_t d = 0; d < devices; ++d) {
        replicas.push_back(layers_[d][l]->Grads()[g]);
      }
      DGCL_RETURN_IF_ERROR(sync(std::move(replicas)));
    }
    for (uint32_t d = 0; d < devices; ++d) {
      layers_[d][l]->Step(options_.learning_rate);
    }
  }
  {
    std::vector<EmbeddingMatrix*> replicas;
    replicas.reserve(devices);
    for (uint32_t d = 0; d < devices; ++d) {
      replicas.push_back(&head_dw_[d]);
    }
    DGCL_RETURN_IF_ERROR(sync(std::move(replicas)));
  }
  for (uint32_t d = 0; d < devices; ++d) {
    for (size_t i = 0; i < head_w_[d].data.size(); ++i) {
      head_w_[d].data[i] -= options_.learning_rate * head_dw_[d].data[i];
    }
    head_dw_[d] = EmbeddingMatrix::Zero(options_.hidden_dim, num_classes_);
  }
  return result;
}

Result<EpochResult> DistributedTrainer::TrainEpoch() { return TrainEpoch(EpochHooks{}); }

Result<EpochResult> DistributedTrainer::TrainEpoch(const EpochHooks& hooks) {
  Result<EpochResult> result = Pass(/*train=*/true, nullptr, hooks);
  if (result.ok()) {
    ++train_epochs_;  // only completed epochs advance the cd-r schedule
  }
  return result;
}

Result<EpochResult> DistributedTrainer::Evaluate() { return Pass(/*train=*/false, nullptr); }

ReplicaWeights DistributedTrainer::ExportReplica(uint32_t device) {
  DGCL_CHECK(device < layers_.size());
  ReplicaWeights weights;
  weights.layers.reserve(options_.num_layers);
  for (uint32_t l = 0; l < options_.num_layers; ++l) {
    std::vector<EmbeddingMatrix> params;
    for (EmbeddingMatrix* p : layers_[device][l]->Params()) {
      params.push_back(*p);
    }
    weights.layers.push_back(std::move(params));
  }
  weights.head = head_w_[device];
  return weights;
}

Status DistributedTrainer::ImportReplica(const ReplicaWeights& weights) {
  if (weights.layers.size() != options_.num_layers) {
    return Status::InvalidArgument("ImportReplica: layer count mismatch");
  }
  for (uint32_t d = 0; d < layers_.size(); ++d) {
    for (uint32_t l = 0; l < options_.num_layers; ++l) {
      std::vector<EmbeddingMatrix*> params = layers_[d][l]->Params();
      if (params.size() != weights.layers[l].size()) {
        return Status::InvalidArgument("ImportReplica: param count mismatch at layer " +
                                       std::to_string(l));
      }
      for (size_t g = 0; g < params.size(); ++g) {
        if (params[g]->rows != weights.layers[l][g].rows ||
            params[g]->dim != weights.layers[l][g].dim) {
          return Status::InvalidArgument("ImportReplica: shape mismatch at layer " +
                                         std::to_string(l));
        }
        *params[g] = weights.layers[l][g];
      }
    }
    if (head_w_[d].rows != weights.head.rows || head_w_[d].dim != weights.head.dim) {
      return Status::InvalidArgument("ImportReplica: head shape mismatch");
    }
    head_w_[d] = weights.head;
  }
  return Status::Ok();
}

Result<EmbeddingMatrix> DistributedTrainer::Logits() {
  EmbeddingMatrix logits;
  DGCL_ASSIGN_OR_RETURN(EpochResult unused, Pass(/*train=*/false, &logits));
  (void)unused;
  return logits;
}

}  // namespace dgcl
