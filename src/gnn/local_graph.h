// Per-device aggregation graph (the G_d(V_l ∪ V_r, E_d) of §4.1).
//
// After graph partitioning, each device sees a re-indexed graph over its
// *slots*: local vertices first, then its required remotes, matching the
// AllgatherEngine slot layout. Aggregation produces rows only for the local
// vertices, reading neighbor embeddings from any slot — which is exactly why
// the allgather must run before each layer's graph op.

#ifndef DGCL_GNN_LOCAL_GRAPH_H_
#define DGCL_GNN_LOCAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "comm/relation.h"
#include "graph/csr_graph.h"

namespace dgcl {

struct LocalGraph {
  uint32_t num_compute = 0;  // local vertices (rows produced by aggregation)
  uint32_t num_slots = 0;    // locals + remotes (rows readable)
  std::vector<uint64_t> offsets;     // num_compute + 1
  std::vector<uint32_t> nbr_slots;   // neighbor slot ids

  std::span<const uint32_t> Neighbors(uint32_t local_row) const {
    return std::span<const uint32_t>(nbr_slots.data() + offsets[local_row],
                                     nbr_slots.data() + offsets[local_row + 1]);
  }
};

// Device `d`'s re-indexed graph under `relation`. Every neighbor of a local
// vertex is either local or in the device's remote set, so this cannot fail
// once the relation is consistent with the graph it was built from.
LocalGraph BuildLocalGraph(const CsrGraph& graph, const CommRelation& relation, uint32_t device);

// Whole graph as a single device's local graph (single-device training).
LocalGraph FullLocalGraph(const CsrGraph& graph);

}  // namespace dgcl

#endif  // DGCL_GNN_LOCAL_GRAPH_H_
