// Minimal dense NN primitives over EmbeddingMatrix (CPU reference kernels).
//
// This is the "single-GPU GNN system" substrate of the reproduction: DGCL
// proper only moves embeddings around; these kernels do the aggregate-update
// math so end-to-end distributed training can be executed and checked against
// single-device training bit-for-bit (up to float associativity).

#ifndef DGCL_GNN_NN_H_
#define DGCL_GNN_NN_H_

#include <cstdint>

#include "common/rng.h"
#include "runtime/allgather_engine.h"

namespace dgcl {

// out = a * b. Shapes: a [n x k], b [k x m], out [n x m] (resized).
void Gemm(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out);
// out = a^T * b. Shapes: a [k x n], b [k x m], out [n x m].
void GemmTransposeA(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out);
// out = a * b^T. Shapes: a [n x k], b [m x k], out [n x m].
void GemmTransposeB(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out);

void AddInPlace(EmbeddingMatrix& a, const EmbeddingMatrix& b);        // a += b
void ScaleInPlace(EmbeddingMatrix& a, float s);                       // a *= s
void AddRowVectorInPlace(EmbeddingMatrix& a, const std::vector<float>& bias);

// ReLU forward in place; writes the activation mask (1.0/0.0) to `mask`.
void ReluInPlace(EmbeddingMatrix& a, EmbeddingMatrix& mask);
// grad *= mask.
void ReluBackwardInPlace(EmbeddingMatrix& grad, const EmbeddingMatrix& mask);

// Column sums of `a` (bias gradient).
std::vector<float> ColumnSums(const EmbeddingMatrix& a);

// Xavier-style N(0, 2/fan_in) initialization.
EmbeddingMatrix RandomWeights(uint32_t rows, uint32_t cols, Rng& rng);

// Softmax cross-entropy over rows; labels in [0, cols). Returns mean loss
// and writes dLogits (already divided by row count). Rows with label
// kInvalidId are skipped (masked vertices).
double SoftmaxCrossEntropy(const EmbeddingMatrix& logits, const std::vector<uint32_t>& labels,
                           EmbeddingMatrix& grad_logits);

// Argmax-accuracy of `logits` rows against labels (masked rows skipped).
double Accuracy(const EmbeddingMatrix& logits, const std::vector<uint32_t>& labels);

}  // namespace dgcl

#endif  // DGCL_GNN_NN_H_
