#include "gnn/layers.h"

#include <cmath>

#include "common/logging.h"

namespace dgcl {

EmbeddingMatrix AggregateMeanWithSelf(const LocalGraph& graph, const EmbeddingMatrix& slots) {
  DGCL_CHECK_EQ(slots.rows, graph.num_slots);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_compute, slots.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    float* orow = out.Row(i);
    const float* self = slots.Row(i);  // local vertex i occupies slot i
    auto nbrs = graph.Neighbors(i);
    for (uint32_t c = 0; c < slots.dim; ++c) {
      orow[c] = self[c];
    }
    for (uint32_t nbr : nbrs) {
      const float* nrow = slots.Row(nbr);
      for (uint32_t c = 0; c < slots.dim; ++c) {
        orow[c] += nrow[c];
      }
    }
    const float inv = 1.0f / (1.0f + nbrs.size());
    for (uint32_t c = 0; c < slots.dim; ++c) {
      orow[c] *= inv;
    }
  }
  return out;
}

EmbeddingMatrix AggregateMeanNeighbors(const LocalGraph& graph, const EmbeddingMatrix& slots) {
  DGCL_CHECK_EQ(slots.rows, graph.num_slots);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_compute, slots.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    auto nbrs = graph.Neighbors(i);
    if (nbrs.empty()) {
      continue;
    }
    float* orow = out.Row(i);
    for (uint32_t nbr : nbrs) {
      const float* nrow = slots.Row(nbr);
      for (uint32_t c = 0; c < slots.dim; ++c) {
        orow[c] += nrow[c];
      }
    }
    const float inv = 1.0f / nbrs.size();
    for (uint32_t c = 0; c < slots.dim; ++c) {
      orow[c] *= inv;
    }
  }
  return out;
}

EmbeddingMatrix AggregateSumNeighbors(const LocalGraph& graph, const EmbeddingMatrix& slots) {
  DGCL_CHECK_EQ(slots.rows, graph.num_slots);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_compute, slots.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    float* orow = out.Row(i);
    for (uint32_t nbr : graph.Neighbors(i)) {
      const float* nrow = slots.Row(nbr);
      for (uint32_t c = 0; c < slots.dim; ++c) {
        orow[c] += nrow[c];
      }
    }
  }
  return out;
}

EmbeddingMatrix ScatterMeanWithSelfBackward(const LocalGraph& graph,
                                            const EmbeddingMatrix& grad_agg) {
  DGCL_CHECK_EQ(grad_agg.rows, graph.num_compute);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_slots, grad_agg.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    const float* grow = grad_agg.Row(i);
    auto nbrs = graph.Neighbors(i);
    const float inv = 1.0f / (1.0f + nbrs.size());
    float* self = out.Row(i);
    for (uint32_t c = 0; c < grad_agg.dim; ++c) {
      self[c] += grow[c] * inv;
    }
    for (uint32_t nbr : nbrs) {
      float* nrow = out.Row(nbr);
      for (uint32_t c = 0; c < grad_agg.dim; ++c) {
        nrow[c] += grow[c] * inv;
      }
    }
  }
  return out;
}

EmbeddingMatrix ScatterMeanNeighborsBackward(const LocalGraph& graph,
                                             const EmbeddingMatrix& grad_agg) {
  DGCL_CHECK_EQ(grad_agg.rows, graph.num_compute);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_slots, grad_agg.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    auto nbrs = graph.Neighbors(i);
    if (nbrs.empty()) {
      continue;
    }
    const float* grow = grad_agg.Row(i);
    const float inv = 1.0f / nbrs.size();
    for (uint32_t nbr : nbrs) {
      float* nrow = out.Row(nbr);
      for (uint32_t c = 0; c < grad_agg.dim; ++c) {
        nrow[c] += grow[c] * inv;
      }
    }
  }
  return out;
}

EmbeddingMatrix ScatterSumNeighborsBackward(const LocalGraph& graph,
                                            const EmbeddingMatrix& grad_agg) {
  DGCL_CHECK_EQ(grad_agg.rows, graph.num_compute);
  EmbeddingMatrix out = EmbeddingMatrix::Zero(graph.num_slots, grad_agg.dim);
  for (uint32_t i = 0; i < graph.num_compute; ++i) {
    const float* grow = grad_agg.Row(i);
    for (uint32_t nbr : graph.Neighbors(i)) {
      float* nrow = out.Row(nbr);
      for (uint32_t c = 0; c < grad_agg.dim; ++c) {
        nrow[c] += grow[c];
      }
    }
  }
  return out;
}

namespace {

// Shared parameter container: weight + bias + their gradients. The bias is a
// 1-row matrix so it participates in cross-device gradient reduction through
// the same Params()/Grads() channel as the weights.
struct Linear {
  EmbeddingMatrix w;
  EmbeddingMatrix b;
  EmbeddingMatrix dw;
  EmbeddingMatrix db;

  Linear(uint32_t in, uint32_t out, Rng& rng)
      : w(RandomWeights(in, out, rng)),
        b(EmbeddingMatrix::Zero(1, out)),
        dw(EmbeddingMatrix::Zero(in, out)),
        db(EmbeddingMatrix::Zero(1, out)) {}

  // out = x * w + b
  EmbeddingMatrix Forward(const EmbeddingMatrix& x) const {
    EmbeddingMatrix out;
    Gemm(x, w, out);
    AddRowVectorInPlace(out, b.data);
    return out;
  }

  // Accumulates dw/db; returns dx.
  EmbeddingMatrix Backward(const EmbeddingMatrix& x, const EmbeddingMatrix& dout) {
    EmbeddingMatrix dw_now;
    GemmTransposeA(x, dout, dw_now);
    AddInPlace(dw, dw_now);
    std::vector<float> db_now = ColumnSums(dout);
    for (uint32_t c = 0; c < db_now.size(); ++c) {
      db.data[c] += db_now[c];
    }
    EmbeddingMatrix dx;
    GemmTransposeB(dout, w, dx);
    return dx;
  }

  void Step(float lr) {
    for (size_t i = 0; i < w.data.size(); ++i) {
      w.data[i] -= lr * dw.data[i];
    }
    for (size_t i = 0; i < b.data.size(); ++i) {
      b.data[i] -= lr * db.data[i];
    }
    dw = EmbeddingMatrix::Zero(w.rows, w.dim);
    db = EmbeddingMatrix::Zero(1, b.dim);
  }
};

class GcnLayer final : public GnnLayer {
 public:
  GcnLayer(uint32_t dim_in, uint32_t dim_out, Rng& rng) : linear_(dim_in, dim_out, rng) {}

  EmbeddingMatrix Forward(const LocalGraph& graph, const EmbeddingMatrix& slots) override {
    agg_ = AggregateMeanWithSelf(graph, slots);
    EmbeddingMatrix out = linear_.Forward(agg_);
    ReluInPlace(out, mask_);
    return out;
  }

  EmbeddingMatrix Backward(const LocalGraph& graph, const EmbeddingMatrix& grad_out) override {
    EmbeddingMatrix dz = grad_out;
    ReluBackwardInPlace(dz, mask_);
    EmbeddingMatrix dagg = linear_.Backward(agg_, dz);
    return ScatterMeanWithSelfBackward(graph, dagg);
  }

  void Step(float lr) override { linear_.Step(lr); }
  std::vector<EmbeddingMatrix*> Params() override { return {&linear_.w, &linear_.b}; }
  std::vector<EmbeddingMatrix*> Grads() override { return {&linear_.dw, &linear_.db}; }
  uint32_t dim_in() const override { return linear_.w.rows; }
  uint32_t dim_out() const override { return linear_.w.dim; }

 private:
  Linear linear_;
  EmbeddingMatrix agg_;
  EmbeddingMatrix mask_;
};

class CommNetLayer final : public GnnLayer {
 public:
  CommNetLayer(uint32_t dim_in, uint32_t dim_out, Rng& rng)
      : self_(dim_in, dim_out, rng), comm_(dim_in, dim_out, rng) {}

  EmbeddingMatrix Forward(const LocalGraph& graph, const EmbeddingMatrix& slots) override {
    // Cache the local rows (slot prefix) and the neighbor mean.
    locals_ = EmbeddingMatrix::Zero(graph.num_compute, slots.dim);
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      std::copy(slots.Row(i), slots.Row(i) + slots.dim, locals_.Row(i));
    }
    agg_ = AggregateMeanNeighbors(graph, slots);
    EmbeddingMatrix out = self_.Forward(locals_);
    EmbeddingMatrix comm_out = comm_.Forward(agg_);
    AddInPlace(out, comm_out);
    ReluInPlace(out, mask_);
    return out;
  }

  EmbeddingMatrix Backward(const LocalGraph& graph, const EmbeddingMatrix& grad_out) override {
    EmbeddingMatrix dz = grad_out;
    ReluBackwardInPlace(dz, mask_);
    EmbeddingMatrix dlocal = self_.Backward(locals_, dz);
    EmbeddingMatrix dagg = comm_.Backward(agg_, dz);
    EmbeddingMatrix dslots = ScatterMeanNeighborsBackward(graph, dagg);
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      float* row = dslots.Row(i);
      const float* lrow = dlocal.Row(i);
      for (uint32_t c = 0; c < dslots.dim; ++c) {
        row[c] += lrow[c];
      }
    }
    return dslots;
  }

  void Step(float lr) override {
    self_.Step(lr);
    comm_.Step(lr);
  }
  std::vector<EmbeddingMatrix*> Params() override { return {&self_.w, &self_.b, &comm_.w, &comm_.b}; }
  std::vector<EmbeddingMatrix*> Grads() override { return {&self_.dw, &self_.db, &comm_.dw, &comm_.db}; }
  uint32_t dim_in() const override { return self_.w.rows; }
  uint32_t dim_out() const override { return self_.w.dim; }

 private:
  Linear self_;
  Linear comm_;
  EmbeddingMatrix locals_;
  EmbeddingMatrix agg_;
  EmbeddingMatrix mask_;
};

class GinLayer final : public GnnLayer {
 public:
  GinLayer(uint32_t dim_in, uint32_t dim_out, Rng& rng)
      : mlp1_(dim_in, dim_out, rng), mlp2_(dim_out, dim_out, rng) {}

  EmbeddingMatrix Forward(const LocalGraph& graph, const EmbeddingMatrix& slots) override {
    sum_input_ = AggregateSumNeighbors(graph, slots);
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      float* row = sum_input_.Row(i);
      const float* self = slots.Row(i);
      for (uint32_t c = 0; c < sum_input_.dim; ++c) {
        row[c] += (1.0f + kEps) * self[c];
      }
    }
    hidden_ = mlp1_.Forward(sum_input_);
    ReluInPlace(hidden_, mask1_);
    EmbeddingMatrix out = mlp2_.Forward(hidden_);
    ReluInPlace(out, mask2_);
    return out;
  }

  EmbeddingMatrix Backward(const LocalGraph& graph, const EmbeddingMatrix& grad_out) override {
    EmbeddingMatrix dz2 = grad_out;
    ReluBackwardInPlace(dz2, mask2_);
    EmbeddingMatrix dhidden = mlp2_.Backward(hidden_, dz2);
    ReluBackwardInPlace(dhidden, mask1_);
    EmbeddingMatrix dsum = mlp1_.Backward(sum_input_, dhidden);
    EmbeddingMatrix dslots = ScatterSumNeighborsBackward(graph, dsum);
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      float* row = dslots.Row(i);
      const float* srow = dsum.Row(i);
      for (uint32_t c = 0; c < dslots.dim; ++c) {
        row[c] += (1.0f + kEps) * srow[c];
      }
    }
    return dslots;
  }

  void Step(float lr) override {
    mlp1_.Step(lr);
    mlp2_.Step(lr);
  }
  std::vector<EmbeddingMatrix*> Params() override { return {&mlp1_.w, &mlp1_.b, &mlp2_.w, &mlp2_.b}; }
  std::vector<EmbeddingMatrix*> Grads() override { return {&mlp1_.dw, &mlp1_.db, &mlp2_.dw, &mlp2_.db}; }
  uint32_t dim_in() const override { return mlp1_.w.rows; }
  uint32_t dim_out() const override { return mlp2_.w.dim; }

 private:
  static constexpr float kEps = 0.1f;

  Linear mlp1_;
  Linear mlp2_;
  EmbeddingMatrix sum_input_;
  EmbeddingMatrix hidden_;
  EmbeddingMatrix mask1_;
  EmbeddingMatrix mask2_;
};

// Single-head graph attention (Velickovic et al.; mentioned in the paper's
// introduction). For local vertex i with attention set J(i) = {i} ∪ N(i):
//   z_j   = W h_j
//   e_ij  = LeakyReLU(a_srcᵀ z_i + a_dstᵀ z_j)
//   α_i·  = softmax over J(i) of e_i·
//   h'_i  = ReLU(Σ_j α_ij z_j)
class GatLayer final : public GnnLayer {
 public:
  GatLayer(uint32_t dim_in, uint32_t dim_out, Rng& rng)
      : w_(RandomWeights(dim_in, dim_out, rng)),
        a_src_(RandomWeights(1, dim_out, rng)),
        a_dst_(RandomWeights(1, dim_out, rng)),
        dw_(EmbeddingMatrix::Zero(dim_in, dim_out)),
        da_src_(EmbeddingMatrix::Zero(1, dim_out)),
        da_dst_(EmbeddingMatrix::Zero(1, dim_out)) {}

  EmbeddingMatrix Forward(const LocalGraph& graph, const EmbeddingMatrix& slots) override {
    slots_in_ = slots;
    Gemm(slots, w_, z_);
    // Attention logits per slot.
    src_score_.assign(graph.num_slots, 0.0f);
    dst_score_.assign(graph.num_slots, 0.0f);
    for (uint32_t j = 0; j < graph.num_slots; ++j) {
      const float* zrow = z_.Row(j);
      float s = 0.0f;
      float t = 0.0f;
      for (uint32_t c = 0; c < z_.dim; ++c) {
        s += a_src_.data[c] * zrow[c];
        t += a_dst_.data[c] * zrow[c];
      }
      src_score_[j] = s;
      dst_score_[j] = t;
    }
    // Per-vertex softmax over {self} ∪ neighbors.
    alpha_.clear();
    lrelu_mask_.clear();
    EmbeddingMatrix pre = EmbeddingMatrix::Zero(graph.num_compute, z_.dim);
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      auto nbrs = graph.Neighbors(i);
      const size_t fan = nbrs.size() + 1;
      std::vector<float> logits(fan);
      std::vector<float> mask(fan);
      auto score = [&](size_t k) { return k == 0 ? i : nbrs[k - 1]; };
      float max_logit = -1e30f;
      for (size_t k = 0; k < fan; ++k) {
        const float raw = src_score_[i] + dst_score_[score(k)];
        mask[k] = raw > 0.0f ? 1.0f : kLeakySlope;
        logits[k] = raw > 0.0f ? raw : raw * kLeakySlope;
        max_logit = std::max(max_logit, logits[k]);
      }
      float denom = 0.0f;
      for (size_t k = 0; k < fan; ++k) {
        logits[k] = std::exp(logits[k] - max_logit);
        denom += logits[k];
      }
      float* prow = pre.Row(i);
      for (size_t k = 0; k < fan; ++k) {
        const float a = logits[k] / denom;
        alpha_.push_back(a);
        lrelu_mask_.push_back(mask[k]);
        const float* zrow = z_.Row(static_cast<uint32_t>(score(k)));
        for (uint32_t c = 0; c < z_.dim; ++c) {
          prow[c] += a * zrow[c];
        }
      }
    }
    EmbeddingMatrix out = pre;
    ReluInPlace(out, relu_mask_);
    return out;
  }

  EmbeddingMatrix Backward(const LocalGraph& graph, const EmbeddingMatrix& grad_out) override {
    EmbeddingMatrix dpre = grad_out;
    ReluBackwardInPlace(dpre, relu_mask_);
    EmbeddingMatrix dz = EmbeddingMatrix::Zero(graph.num_slots, z_.dim);
    std::vector<float> ds(graph.num_slots, 0.0f);  // grad of src_score per slot
    std::vector<float> dt(graph.num_slots, 0.0f);  // grad of dst_score per slot

    size_t cursor = 0;
    for (uint32_t i = 0; i < graph.num_compute; ++i) {
      auto nbrs = graph.Neighbors(i);
      const size_t fan = nbrs.size() + 1;
      auto slot_of = [&](size_t k) {
        return k == 0 ? i : nbrs[k - 1];
      };
      const float* drow = dpre.Row(i);
      // dα_ik = dpre_i · z_k; softmax backward needs the α-weighted mean.
      std::vector<float> dalpha(fan);
      float weighted = 0.0f;
      for (size_t k = 0; k < fan; ++k) {
        const float* zrow = z_.Row(static_cast<uint32_t>(slot_of(k)));
        float dot = 0.0f;
        for (uint32_t c = 0; c < z_.dim; ++c) {
          dot += drow[c] * zrow[c];
        }
        dalpha[k] = dot;
        weighted += alpha_[cursor + k] * dot;
      }
      for (size_t k = 0; k < fan; ++k) {
        const float a = alpha_[cursor + k];
        const uint32_t j = static_cast<uint32_t>(slot_of(k));
        // dz_j += α dpre_i
        float* dzrow = dz.Row(j);
        for (uint32_t c = 0; c < z_.dim; ++c) {
          dzrow[c] += a * drow[c];
        }
        // de through softmax and LeakyReLU.
        const float de = a * (dalpha[k] - weighted);
        const float dg = de * lrelu_mask_[cursor + k];
        ds[i] += dg;
        dt[j] += dg;
      }
      cursor += fan;
    }
    // s_j = a_srcᵀ z_j and t_j = a_dstᵀ z_j over all slots.
    for (uint32_t j = 0; j < graph.num_slots; ++j) {
      float* dzrow = dz.Row(j);
      const float* zrow = z_.Row(j);
      for (uint32_t c = 0; c < z_.dim; ++c) {
        dzrow[c] += ds[j] * a_src_.data[c] + dt[j] * a_dst_.data[c];
        da_src_.data[c] += ds[j] * zrow[c];
        da_dst_.data[c] += dt[j] * zrow[c];
      }
    }
    // z = slots * W.
    EmbeddingMatrix dw_now;
    GemmTransposeA(slots_in_, dz, dw_now);
    AddInPlace(dw_, dw_now);
    EmbeddingMatrix dslots;
    GemmTransposeB(dz, w_, dslots);
    return dslots;
  }

  void Step(float lr) override {
    for (size_t i = 0; i < w_.data.size(); ++i) {
      w_.data[i] -= lr * dw_.data[i];
    }
    for (size_t i = 0; i < a_src_.data.size(); ++i) {
      a_src_.data[i] -= lr * da_src_.data[i];
      a_dst_.data[i] -= lr * da_dst_.data[i];
    }
    dw_ = EmbeddingMatrix::Zero(w_.rows, w_.dim);
    da_src_ = EmbeddingMatrix::Zero(1, w_.dim);
    da_dst_ = EmbeddingMatrix::Zero(1, w_.dim);
  }

  std::vector<EmbeddingMatrix*> Params() override { return {&w_, &a_src_, &a_dst_}; }
  std::vector<EmbeddingMatrix*> Grads() override { return {&dw_, &da_src_, &da_dst_}; }
  uint32_t dim_in() const override { return w_.rows; }
  uint32_t dim_out() const override { return w_.dim; }

 private:
  static constexpr float kLeakySlope = 0.2f;

  EmbeddingMatrix w_;
  EmbeddingMatrix a_src_;
  EmbeddingMatrix a_dst_;
  EmbeddingMatrix dw_;
  EmbeddingMatrix da_src_;
  EmbeddingMatrix da_dst_;

  // Forward caches.
  EmbeddingMatrix slots_in_;
  EmbeddingMatrix z_;
  std::vector<float> src_score_;
  std::vector<float> dst_score_;
  std::vector<float> alpha_;       // flattened per (i, {self} ∪ N(i))
  std::vector<float> lrelu_mask_;  // LeakyReLU derivative per attention edge
  EmbeddingMatrix relu_mask_;
};

}  // namespace

std::unique_ptr<GnnLayer> MakeLayer(GnnModel model, uint32_t dim_in, uint32_t dim_out,
                                    Rng& rng) {
  switch (model) {
    case GnnModel::kGcn:
      return std::make_unique<GcnLayer>(dim_in, dim_out, rng);
    case GnnModel::kCommNet:
      return std::make_unique<CommNetLayer>(dim_in, dim_out, rng);
    case GnnModel::kGin:
      return std::make_unique<GinLayer>(dim_in, dim_out, rng);
    case GnnModel::kGat:
      return std::make_unique<GatLayer>(dim_in, dim_out, rng);
  }
  DGCL_LOG(kFatal) << "unknown GNN model";
  return nullptr;
}

EmbeddingMatrix InferenceForward(const LocalGraph& graph, const EmbeddingMatrix& inputs,
                                 std::span<const std::unique_ptr<GnnLayer>> layers) {
  DGCL_CHECK_EQ(graph.num_slots, graph.num_compute);
  DGCL_CHECK_EQ(inputs.rows, graph.num_slots);
  EmbeddingMatrix current = inputs;
  for (const std::unique_ptr<GnnLayer>& layer : layers) {
    current = layer->Forward(graph, current);
  }
  return current;
}

}  // namespace dgcl
