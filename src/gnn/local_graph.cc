#include "gnn/local_graph.h"

#include <unordered_map>

#include "common/logging.h"

namespace dgcl {

LocalGraph BuildLocalGraph(const CsrGraph& graph, const CommRelation& relation,
                           uint32_t device) {
  DGCL_CHECK_LT(device, relation.num_devices);
  const auto& locals = relation.local_vertices[device];
  const auto& remotes = relation.remote_vertices[device];
  std::unordered_map<VertexId, uint32_t> slot;
  slot.reserve(locals.size() + remotes.size());
  uint32_t next = 0;
  for (VertexId v : locals) {
    slot.emplace(v, next++);
  }
  for (VertexId v : remotes) {
    slot.emplace(v, next++);
  }

  LocalGraph lg;
  lg.num_compute = static_cast<uint32_t>(locals.size());
  lg.num_slots = next;
  lg.offsets.assign(locals.size() + 1, 0);
  for (size_t i = 0; i < locals.size(); ++i) {
    auto nbrs = graph.Neighbors(locals[i]);
    lg.offsets[i + 1] = lg.offsets[i] + nbrs.size();
    for (VertexId nbr : nbrs) {
      auto it = slot.find(nbr);
      DGCL_CHECK(it != slot.end()) << "neighbor neither local nor remote";
      lg.nbr_slots.push_back(it->second);
    }
  }
  return lg;
}

LocalGraph FullLocalGraph(const CsrGraph& graph) {
  LocalGraph lg;
  lg.num_compute = graph.num_vertices();
  lg.num_slots = graph.num_vertices();
  lg.offsets = graph.offsets();
  lg.nbr_slots = graph.targets();
  return lg;
}

}  // namespace dgcl
