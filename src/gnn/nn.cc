#include "gnn/nn.h"

#include <cmath>

#include "common/ids.h"
#include "common/logging.h"

namespace dgcl {

void Gemm(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out) {
  DGCL_CHECK_EQ(a.dim, b.rows);
  out = EmbeddingMatrix::Zero(a.rows, b.dim);
  for (uint32_t i = 0; i < a.rows; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (uint32_t k = 0; k < a.dim; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) {
        continue;
      }
      const float* brow = b.Row(k);
      for (uint32_t j = 0; j < b.dim; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

void GemmTransposeA(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out) {
  DGCL_CHECK_EQ(a.rows, b.rows);
  out = EmbeddingMatrix::Zero(a.dim, b.dim);
  for (uint32_t r = 0; r < a.rows; ++r) {
    const float* arow = a.Row(r);
    const float* brow = b.Row(r);
    for (uint32_t i = 0; i < a.dim; ++i) {
      const float ari = arow[i];
      if (ari == 0.0f) {
        continue;
      }
      float* orow = out.Row(i);
      for (uint32_t j = 0; j < b.dim; ++j) {
        orow[j] += ari * brow[j];
      }
    }
  }
}

void GemmTransposeB(const EmbeddingMatrix& a, const EmbeddingMatrix& b, EmbeddingMatrix& out) {
  DGCL_CHECK_EQ(a.dim, b.dim);
  out = EmbeddingMatrix::Zero(a.rows, b.rows);
  for (uint32_t i = 0; i < a.rows; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (uint32_t j = 0; j < b.rows; ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (uint32_t k = 0; k < a.dim; ++k) {
        acc += arow[k] * brow[k];
      }
      orow[j] = acc;
    }
  }
}

void AddInPlace(EmbeddingMatrix& a, const EmbeddingMatrix& b) {
  DGCL_CHECK_EQ(a.rows, b.rows);
  DGCL_CHECK_EQ(a.dim, b.dim);
  for (size_t i = 0; i < a.data.size(); ++i) {
    a.data[i] += b.data[i];
  }
}

void ScaleInPlace(EmbeddingMatrix& a, float s) {
  for (float& x : a.data) {
    x *= s;
  }
}

void AddRowVectorInPlace(EmbeddingMatrix& a, const std::vector<float>& bias) {
  DGCL_CHECK_EQ(a.dim, bias.size());
  for (uint32_t r = 0; r < a.rows; ++r) {
    float* row = a.Row(r);
    for (uint32_t c = 0; c < a.dim; ++c) {
      row[c] += bias[c];
    }
  }
}

void ReluInPlace(EmbeddingMatrix& a, EmbeddingMatrix& mask) {
  mask = EmbeddingMatrix::Zero(a.rows, a.dim);
  for (size_t i = 0; i < a.data.size(); ++i) {
    if (a.data[i] > 0.0f) {
      mask.data[i] = 1.0f;
    } else {
      a.data[i] = 0.0f;
    }
  }
}

void ReluBackwardInPlace(EmbeddingMatrix& grad, const EmbeddingMatrix& mask) {
  DGCL_CHECK_EQ(grad.data.size(), mask.data.size());
  for (size_t i = 0; i < grad.data.size(); ++i) {
    grad.data[i] *= mask.data[i];
  }
}

std::vector<float> ColumnSums(const EmbeddingMatrix& a) {
  std::vector<float> sums(a.dim, 0.0f);
  for (uint32_t r = 0; r < a.rows; ++r) {
    const float* row = a.Row(r);
    for (uint32_t c = 0; c < a.dim; ++c) {
      sums[c] += row[c];
    }
  }
  return sums;
}

EmbeddingMatrix RandomWeights(uint32_t rows, uint32_t cols, Rng& rng) {
  EmbeddingMatrix w = EmbeddingMatrix::Zero(rows, cols);
  const double stddev = std::sqrt(2.0 / rows);
  for (float& x : w.data) {
    x = static_cast<float>(rng.Normal() * stddev);
  }
  return w;
}

double SoftmaxCrossEntropy(const EmbeddingMatrix& logits, const std::vector<uint32_t>& labels,
                           EmbeddingMatrix& grad_logits) {
  DGCL_CHECK_EQ(logits.rows, labels.size());
  grad_logits = EmbeddingMatrix::Zero(logits.rows, logits.dim);
  double loss = 0.0;
  uint32_t counted = 0;
  for (uint32_t r = 0; r < logits.rows; ++r) {
    if (labels[r] == kInvalidId) {
      continue;
    }
    ++counted;
  }
  if (counted == 0) {
    return 0.0;
  }
  for (uint32_t r = 0; r < logits.rows; ++r) {
    if (labels[r] == kInvalidId) {
      continue;
    }
    const float* row = logits.Row(r);
    float max_logit = row[0];
    for (uint32_t c = 1; c < logits.dim; ++c) {
      max_logit = std::max(max_logit, row[c]);
    }
    double denom = 0.0;
    for (uint32_t c = 0; c < logits.dim; ++c) {
      denom += std::exp(static_cast<double>(row[c]) - max_logit);
    }
    const uint32_t y = labels[r];
    DGCL_CHECK_LT(y, logits.dim);
    loss += -(static_cast<double>(row[y]) - max_logit - std::log(denom));
    float* grad = grad_logits.Row(r);
    for (uint32_t c = 0; c < logits.dim; ++c) {
      const double p = std::exp(static_cast<double>(row[c]) - max_logit) / denom;
      grad[c] = static_cast<float>((p - (c == y ? 1.0 : 0.0)) / counted);
    }
  }
  return loss / counted;
}

double Accuracy(const EmbeddingMatrix& logits, const std::vector<uint32_t>& labels) {
  DGCL_CHECK_EQ(logits.rows, labels.size());
  uint32_t correct = 0;
  uint32_t counted = 0;
  for (uint32_t r = 0; r < logits.rows; ++r) {
    if (labels[r] == kInvalidId) {
      continue;
    }
    ++counted;
    const float* row = logits.Row(r);
    uint32_t best = 0;
    for (uint32_t c = 1; c < logits.dim; ++c) {
      if (row[c] > row[best]) {
        best = c;
      }
    }
    if (best == labels[r]) {
      ++correct;
    }
  }
  return counted == 0 ? 0.0 : static_cast<double>(correct) / counted;
}

}  // namespace dgcl
