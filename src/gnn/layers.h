// GNN layers with full forward/backward (the three models of §7).
//
// Each layer follows the aggregate-update pattern of Eq. (1):
//   GCN      h' = ReLU( mean(h_v, h_N(v)) W + b )
//   CommNet  h' = ReLU( h_v W_self + mean(h_N(v)) W_comm + b )
//   GIN      h' = MLP( (1+eps) h_v + sum(h_N(v)) ),  MLP = ReLU∘Linear twice
//
// Forward consumes a slot matrix (locals + remotes, post-allgather) and
// produces local rows; Backward consumes local-row gradients and produces a
// slot-matrix gradient whose remote rows must be routed back to their owners
// by the backward allgather.

#ifndef DGCL_GNN_LAYERS_H_
#define DGCL_GNN_LAYERS_H_

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gnn/local_graph.h"
#include "gnn/nn.h"
#include "sim/compute_model.h"

namespace dgcl {

class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  // `slots` has graph.num_slots rows; returns graph.num_compute rows.
  virtual EmbeddingMatrix Forward(const LocalGraph& graph, const EmbeddingMatrix& slots) = 0;

  // `grad_out` has num_compute rows; returns num_slots rows of input grads.
  // Accumulates parameter gradients internally.
  virtual EmbeddingMatrix Backward(const LocalGraph& graph, const EmbeddingMatrix& grad_out) = 0;

  // SGD step with the accumulated (externally averaged) gradients, then
  // clears them. `grads` must come from ExportGrads-compatible layers when
  // synchronizing across devices.
  virtual void Step(float lr) = 0;

  // Flat views of parameters and their gradients for cross-device averaging.
  virtual std::vector<EmbeddingMatrix*> Params() = 0;
  virtual std::vector<EmbeddingMatrix*> Grads() = 0;

  virtual uint32_t dim_in() const = 0;
  virtual uint32_t dim_out() const = 0;
};

// Factory: one layer of `model` mapping dim_in -> dim_out, weights drawn
// from `rng` (pass identically-seeded Rngs to replicate weights).
std::unique_ptr<GnnLayer> MakeLayer(GnnModel model, uint32_t dim_in, uint32_t dim_out, Rng& rng);

// Forward-only pass over a layer stack on a fully-local graph (num_slots ==
// num_compute, e.g. FullLocalGraph of a sampled mini-batch subgraph): each
// layer's output rows feed the next layer's slots directly, no allgather.
// Returns the last layer's rows. Layers still cache activations (Forward is
// non-const), so a stack must not be shared across threads — the serving
// tier gives each sampler worker its own replica (seeded identically).
EmbeddingMatrix InferenceForward(const LocalGraph& graph, const EmbeddingMatrix& inputs,
                                 std::span<const std::unique_ptr<GnnLayer>> layers);

// --- aggregation primitives (exposed for tests) ---

// out[i] = (h[i] + sum_{u in N(i)} h[u]) / (1 + deg(i)), rows = num_compute.
EmbeddingMatrix AggregateMeanWithSelf(const LocalGraph& graph, const EmbeddingMatrix& slots);
// out[i] = mean_{u in N(i)} h[u] (zero row when no neighbors).
EmbeddingMatrix AggregateMeanNeighbors(const LocalGraph& graph, const EmbeddingMatrix& slots);
// out[i] = sum_{u in N(i)} h[u].
EmbeddingMatrix AggregateSumNeighbors(const LocalGraph& graph, const EmbeddingMatrix& slots);

// Transposed scatter of the three aggregations: given d(out), produce
// d(slots). `include_self` and `normalize` select the variant.
EmbeddingMatrix ScatterMeanWithSelfBackward(const LocalGraph& graph,
                                            const EmbeddingMatrix& grad_agg);
EmbeddingMatrix ScatterMeanNeighborsBackward(const LocalGraph& graph,
                                             const EmbeddingMatrix& grad_agg);
EmbeddingMatrix ScatterSumNeighborsBackward(const LocalGraph& graph,
                                            const EmbeddingMatrix& grad_agg);

}  // namespace dgcl

#endif  // DGCL_GNN_LAYERS_H_
