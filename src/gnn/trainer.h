// Distributed full-graph GNN training (§2, §6.3).
//
// Execution per epoch, exactly the transfer-compute schedule of the paper:
// for each layer, run graphAllgather to materialize remote embeddings, do the
// graph aggregation + DNN update on local rows, and drop the remote rows
// before the next dense op. The backward pass routes remote-vertex gradients
// back to their owners through the same plan in reverse. Model weights are
// replicated and gradient-averaged across devices every step (the paper
// defers this to Horovod/DDP; GNN weights are small).
//
// Device math runs sequentially in the calling thread (the per-device model
// state is identical either way); the embedding exchange itself runs on the
// threaded AllgatherEngine with the decentralized flag protocol.

#ifndef DGCL_GNN_TRAINER_H_
#define DGCL_GNN_TRAINER_H_

#include <memory>
#include <vector>

#include "comm/relation.h"
#include "common/status.h"
#include "gnn/layers.h"
#include "gnn/local_graph.h"
#include "runtime/allgather_engine.h"
#include "runtime/recovery.h"

namespace dgcl {

struct TrainerOptions {
  GnnModel model = GnnModel::kGcn;
  uint32_t num_layers = 2;
  uint32_t hidden_dim = 16;
  float learning_rate = 0.5f;
  uint64_t weight_seed = 123;  // identical across devices (replicated model)
  // Synchronize gradients with the ring all-reduce (runtime/allreduce.h)
  // instead of a naive sequential sum. Same result up to float summation
  // order; this is what Horovod/DDP would do on real hardware (§6.3).
  bool use_ring_allreduce = false;

  // DistGNN-style cd-r delayed remote aggregation: cross-partition
  // allgathers run only every r-th training epoch; the r-1 epochs in
  // between reuse the remote slot rows cached at the last exchange (local
  // rows stay fresh) and skip the backward allgather, dropping the delayed
  // remote-gradient contributions. 1 (default) = fully synchronous — the
  // exact paper schedule. Evaluate/Logits always exchange fresh embeddings.
  uint32_t aggregate_every_r = 1;
};

struct EpochResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

// One model replica's weights, keyed by (layer, param) position. Because the
// model is replicated with identical seeds and synchronized steps, any
// device's replica is *the* model — this is what survives a recovery and is
// imported into the trainer rebuilt for the surviving topology.
struct ReplicaWeights {
  std::vector<std::vector<EmbeddingMatrix>> layers;  // [layer][param]
  EmbeddingMatrix head;
};

// Optional per-epoch recovery plumbing for TrainEpoch. With `checkpoints`
// set, the trainer snapshots the global activation matrix entering layer l
// (for every l >= 1 the store elects) *before* running that layer's
// allgather — keyed by global vertex id, so the snapshot is valid under any
// post-recovery layout. With `restore` also set, layers whose boundary is
// checkpointed rebuild their slot inputs straight from the snapshot instead
// of re-running the allgather: every layer still runs its local compute (so
// the backward caches stay exact), only the communication — the expensive
// part — is skipped.
struct EpochHooks {
  EmbeddingCheckpointStore* checkpoints = nullptr;
  bool restore = false;
};

// Single-replica model for sampled mini-batch training: the same layer
// stack + classification head as DistributedTrainer, but each Step runs
// forward/backward/SGD on one fully-local sampled block (num_slots ==
// num_compute, e.g. FullLocalGraph of an induced mini-batch subgraph)
// instead of the whole partitioned graph — no allgather, no replica sync.
// Weights round-trip through the same ReplicaWeights the recovery machinery
// checkpoints, so mini-batch epochs snapshot/restore exactly like full-graph
// ones (the serving-tier MiniBatchTrainer drives this; see
// service/minibatch_trainer.h).
class MiniBatchModel {
 public:
  // Same weight initialization as DistributedTrainer::Create with one
  // device: identically-seeded stacks produce identical replicas, so a
  // MiniBatchModel and a full-graph trainer with equal options start from
  // the same weights.
  static Result<MiniBatchModel> Create(uint32_t feature_dim, uint32_t num_classes,
                                       TrainerOptions options);

  // One SGD step on a sampled block. `inputs` has block.num_slots rows
  // (the sampled nodes' feature rows); `labels` has block.num_compute
  // entries, kInvalidId = unlabeled (masked). Returns loss/accuracy over
  // the block's labeled rows.
  Result<EpochResult> Step(const LocalGraph& block, const EmbeddingMatrix& inputs,
                           const std::vector<uint32_t>& labels);

  // Forward only; loss/accuracy over the block's labeled rows.
  Result<EpochResult> Evaluate(const LocalGraph& block, const EmbeddingMatrix& inputs,
                               const std::vector<uint32_t>& labels);

  // PR-5 checkpoint machinery: same shapes as DistributedTrainer's replicas.
  ReplicaWeights ExportReplica();
  Status ImportReplica(const ReplicaWeights& weights);

 private:
  MiniBatchModel() = default;

  Result<EpochResult> Pass(bool train, const LocalGraph& block, const EmbeddingMatrix& inputs,
                           const std::vector<uint32_t>& labels);

  TrainerOptions options_;
  uint32_t num_classes_ = 0;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  EmbeddingMatrix head_w_;
  EmbeddingMatrix head_dw_;
};

class DistributedTrainer {
 public:
  // `features`: one row per global vertex. `labels`: per global vertex, in
  // [0, num_classes) or kInvalidId for unlabeled. The relation/engine define
  // the device layout; all must outlive the trainer.
  static Result<DistributedTrainer> Create(const CsrGraph& graph, const CommRelation& relation,
                                           const AllgatherEngine& engine,
                                           const EmbeddingMatrix& features,
                                           const std::vector<uint32_t>& labels,
                                           uint32_t num_classes, TrainerOptions options);

  // One full forward + backward + synchronized SGD step over all vertices.
  Result<EpochResult> TrainEpoch();

  // TrainEpoch with activation checkpoint/restore plumbing (recovery path).
  Result<EpochResult> TrainEpoch(const EpochHooks& hooks);

  // Forward only; loss/accuracy over all labeled vertices.
  Result<EpochResult> Evaluate();

  // Final-layer logits for every global vertex (row = global vertex id).
  Result<EmbeddingMatrix> Logits();

  // Introspection (tests, replica-consistency checks).
  GnnLayer& layer(uint32_t device, uint32_t index) { return *layers_[device][index]; }
  const EmbeddingMatrix& head_weights(uint32_t device) const { return head_w_[device]; }

  // Snapshot of `device`'s replica weights (== every replica's: weights only
  // ever change inside a fully-completed synchronized step, so at any failure
  // point every replica still holds the epoch-start weights).
  ReplicaWeights ExportReplica(uint32_t device = 0);

  // Overwrites every replica with `weights`. Shapes must match the model.
  Status ImportReplica(const ReplicaWeights& weights);

 private:
  DistributedTrainer() = default;

  // Runs forward to logits per device; when `grads` is non-null also runs
  // backward and fills per-layer gradient averaging + step.
  Result<EpochResult> Pass(bool train, EmbeddingMatrix* all_logits,
                           const EpochHooks& hooks = {});

  const CommRelation* relation_ = nullptr;
  const AllgatherEngine* engine_ = nullptr;
  TrainerOptions options_;
  uint32_t num_classes_ = 0;

  std::vector<LocalGraph> local_graphs_;                  // per device
  std::vector<EmbeddingMatrix> local_features_;           // per device
  std::vector<std::vector<uint32_t>> local_labels_;       // per device
  // layers_[d][l]: layer l of device d's replica.
  std::vector<std::vector<std::unique_ptr<GnnLayer>>> layers_;
  // Classification head (dense, local rows only), replicated per device.
  std::vector<EmbeddingMatrix> head_w_;
  std::vector<EmbeddingMatrix> head_dw_;

  // cd-r state (aggregate_every_r > 1): completed training epochs, and the
  // remote slot rows [num_local, num_slots) cached per (layer, device) at
  // the last fresh exchange. Empty until the first fresh epoch populates it.
  uint64_t train_epochs_ = 0;
  std::vector<std::vector<EmbeddingMatrix>> stale_remote_;  // [layer][device]
};

}  // namespace dgcl

#endif  // DGCL_GNN_TRAINER_H_
