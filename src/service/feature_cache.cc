#include "service/feature_cache.h"

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dgcl {

// ---- LRU --------------------------------------------------------------------

void LruPolicy::OnInsert(VertexId v) {
  DGCL_CHECK(where_.find(v) == where_.end());
  order_.push_front(v);
  where_[v] = order_.begin();
}

void LruPolicy::OnAccess(VertexId v) {
  auto it = where_.find(v);
  DGCL_CHECK(it != where_.end());
  order_.splice(order_.begin(), order_, it->second);
}

VertexId LruPolicy::ChooseVictim() {
  DGCL_CHECK(!order_.empty());
  return order_.back();
}

void LruPolicy::OnErase(VertexId v) {
  auto it = where_.find(v);
  DGCL_CHECK(it != where_.end());
  order_.erase(it->second);
  where_.erase(it);
}

// ---- LFU --------------------------------------------------------------------

void LfuPolicy::OnInsert(VertexId v) {
  DGCL_CHECK(entries_.find(v) == entries_.end());
  Entry e{0, next_tick_++};
  entries_[v] = e;
  by_freq_[{e.freq, e.tick}] = v;
}

void LfuPolicy::OnAccess(VertexId v) {
  auto it = entries_.find(v);
  DGCL_CHECK(it != entries_.end());
  by_freq_.erase({it->second.freq, it->second.tick});
  ++it->second.freq;
  by_freq_[{it->second.freq, it->second.tick}] = v;
}

VertexId LfuPolicy::ChooseVictim() {
  DGCL_CHECK(!by_freq_.empty());
  return by_freq_.begin()->second;
}

void LfuPolicy::OnErase(VertexId v) {
  auto it = entries_.find(v);
  DGCL_CHECK(it != entries_.end());
  by_freq_.erase({it->second.freq, it->second.tick});
  entries_.erase(it);
}

Result<std::unique_ptr<EvictionPolicy>> MakeEvictionPolicy(const std::string& name) {
  if (name == "lru") {
    return std::unique_ptr<EvictionPolicy>(new LruPolicy());
  }
  if (name == "lfu") {
    return std::unique_ptr<EvictionPolicy>(new LfuPolicy());
  }
  // Same unknown-name contract as the planner/sampler registries: the error
  // lists every valid name.
  return Status::InvalidArgument("eviction policy \"" + name +
                                 "\" not registered (have: lfu, lru)");
}

// ---- FeatureCache -----------------------------------------------------------

FeatureCache::FeatureCache(size_t capacity_rows, std::unique_ptr<EvictionPolicy> policy)
    : capacity_(capacity_rows == 0 ? 1 : capacity_rows), policy_(std::move(policy)) {
  DGCL_CHECK(policy_ != nullptr);
}

bool FeatureCache::Lookup(VertexId v, std::vector<float>& row) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(v);
  if (it == rows_.end()) {
    ++stats_.misses;
    DGCL_TCOUNT("service", "cache.miss", 1);
    return false;
  }
  ++stats_.hits;
  DGCL_TCOUNT("service", "cache.hit", 1);
  policy_->OnAccess(v);
  row = it->second;
  return true;
}

void FeatureCache::Insert(VertexId v, std::vector<float> row) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(v);
  if (it != rows_.end()) {
    it->second = std::move(row);
    policy_->OnAccess(v);
    return;
  }
  if (rows_.size() >= capacity_) {
    const VertexId victim = policy_->ChooseVictim();
    policy_->OnErase(victim);
    rows_.erase(victim);
    ++stats_.evictions;
    DGCL_TCOUNT("service", "cache.evict", 1);
  }
  rows_.emplace(v, std::move(row));
  policy_->OnInsert(v);
}

size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dgcl
