#include "service/service.h"

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "partition/multilevel.h"
#include "planner/baselines.h"
#include "telemetry/trace.h"
#include "topology/presets.h"

namespace dgcl {

namespace {

// Worker poll granularity: short enough that Stop()/Close() is noticed
// promptly, long enough to not spin.
constexpr uint64_t kMaxPollMicros = 50'000;

DeviceMask FullAliveMask(uint32_t num_shards) {
  return num_shards >= 64 ? ~DeviceMask{0} : (DeviceMask{1} << num_shards) - 1;
}

}  // namespace

Status ServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > 16) {
    return Status::InvalidArgument("num_shards must be in [1, 16], got " +
                                   std::to_string(num_shards));
  }
  if (samplers_per_shard < 1) {
    return Status::InvalidArgument("samplers_per_shard must be >= 1");
  }
  DGCL_RETURN_IF_ERROR(replication.Validate());
  if (request_queue_capacity < 1 || response_queue_capacity < 1) {
    return Status::InvalidArgument("queue capacities must be >= 1");
  }
  if (request_deadline_micros == 0) {
    return Status::InvalidArgument("request_deadline_micros must be > 0");
  }
  if (sample.fanout < 1) {
    return Status::InvalidArgument("sample.fanout must be >= 1");
  }
  if (!SamplerRegistry::Global().Contains(sampler)) {
    return Status::InvalidArgument("unknown sampler \"" + sampler + "\"; registered samplers: " +
                                   SamplerRegistry::NamesForError());
  }
  DGCL_RETURN_IF_ERROR(fetch.Validate());
  if (partitioner != "multilevel" && partitioner != "hash") {
    return Status::InvalidArgument("unknown partitioner '" + partitioner +
                                   "' (want multilevel|hash)");
  }
  if (cache_capacity_rows < 1) {
    return Status::InvalidArgument("cache_capacity_rows must be >= 1");
  }
  if (cache_policy != "lru" && cache_policy != "lfu") {
    return Status::InvalidArgument("unknown cache_policy '" + cache_policy + "' (want lru|lfu)");
  }
  if (feature_dim < 1) {
    return Status::InvalidArgument("feature_dim must be >= 1");
  }
  if (num_layers < 1 || hidden_dim < 1) {
    return Status::InvalidArgument("num_layers and hidden_dim must be >= 1");
  }
  DGCL_RETURN_IF_ERROR(transport.Validate());
  DGCL_RETURN_IF_ERROR(faults.Validate());
  return Status::Ok();
}

Result<std::unique_ptr<GraphService>> GraphService::Create(const CsrGraph& graph,
                                                           ServiceOptions options) {
  return Create(graph, std::move(options), nullptr);
}

Result<std::unique_ptr<GraphService>> GraphService::Create(const CsrGraph& graph,
                                                           ServiceOptions options,
                                                           const EmbeddingMatrix* features) {
  DGCL_RETURN_IF_ERROR(options.Validate());
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }
  if (features != nullptr && (features->rows != graph.num_vertices() ||
                              features->dim != options.feature_dim)) {
    return Status::InvalidArgument(
        "injected features must be [num_vertices x feature_dim], got " +
        std::to_string(features->rows) + "x" + std::to_string(features->dim));
  }

  std::unique_ptr<GraphService> service(new GraphService());
  service->options_ = options;
  service->graph_ = &graph;

  if (options.partitioner == "hash") {
    HashPartitioner partitioner;
    DGCL_ASSIGN_OR_RETURN(service->partitioning_,
                          partitioner.Partition(graph, options.num_shards));
  } else {
    MultilevelPartitioner partitioner;
    DGCL_ASSIGN_OR_RETURN(service->partitioning_,
                          partitioner.Partition(graph, options.num_shards));
  }
  DGCL_ASSIGN_OR_RETURN(service->store_,
                        ShardedGraphStore::Build(graph, service->partitioning_));
  DGCL_ASSIGN_OR_RETURN(service->relation_,
                        BuildCommRelation(graph, service->partitioning_));
  service->topology_ = BuildPaperTopology(options.num_shards);

  // Remote-feature fetches are point-to-point row pulls, so the serving plan
  // is the P2P baseline over the relation; what matters is the per-pair
  // transport decision table the connections inherit from it.
  PeerToPeerPlanner planner;
  DGCL_ASSIGN_OR_RETURN(
      CommPlan plan,
      planner.Plan(service->relation_, service->topology_,
                   static_cast<double>(options.feature_dim) * sizeof(float)));
  service->plan_ = CompilePlan(plan, service->topology_);
  DGCL_ASSIGN_OR_RETURN(service->connections_,
                        ConnectionTable::Build(service->topology_, service->plan_,
                                               options.transport, options.faults, {}));
  service->connection_mutexes_.reserve(static_cast<size_t>(options.num_shards) *
                                       options.num_shards);
  for (uint32_t i = 0; i < options.num_shards * options.num_shards; ++i) {
    service->connection_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  // Feature store stand-in: every shard would hold its locals' rows; here
  // one read-only matrix plays all of them — the caller's, or rows generated
  // deterministically from feature_seed.
  if (features != nullptr) {
    service->features_ = *features;
  } else {
    service->features_.rows = graph.num_vertices();
    service->features_.dim = options.feature_dim;
    service->features_.data.resize(static_cast<size_t>(graph.num_vertices()) *
                                   options.feature_dim);
    Rng feature_rng(options.feature_seed);
    for (float& x : service->features_.data) {
      x = feature_rng.UniformFloat(-1.0f, 1.0f);
    }
  }
  service->fetch_batcher_ = std::make_unique<FetchBatcher>(
      options.num_shards, static_cast<uint64_t>(options.feature_dim) * sizeof(float),
      options.request_deadline_micros, options.fetch);

  DGCL_ASSIGN_OR_RETURN(std::unique_ptr<EvictionPolicy> policy,
                        MakeEvictionPolicy(options.cache_policy));
  service->cache_ =
      std::make_unique<FeatureCache>(options.cache_capacity_rows, std::move(policy));

  // Replica slices are copied out of the (now final) feature matrix, so
  // every replica of a shard answers local reads from byte-identical rows.
  DGCL_ASSIGN_OR_RETURN(
      service->replicas_,
      ReplicaSet::Build(service->store_, options.feature_dim,
                        service->features_.data.data(), options.replication));
  service->alive_.store(FullAliveMask(options.num_shards), std::memory_order_release);

  const size_t num_queues =
      static_cast<size_t>(options.num_shards) * options.replication.replicas;
  service->request_queues_.reserve(num_queues);
  for (size_t q = 0; q < num_queues; ++q) {
    service->request_queues_.push_back(
        std::make_unique<BoundedQueue<SampleRequest>>(options.request_queue_capacity));
  }
  service->responses_ =
      std::make_unique<BoundedQueue<SampleResponse>>(options.response_queue_capacity);

  // One shared instance per registered strategy (Sample is const +
  // thread-safe), with the per-strategy telemetry span name interned up
  // front so workers never intern on the hot path.
  for (const std::string& name : SamplerRegistry::Global().Names()) {
    DGCL_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                          SamplerRegistry::Global().Create(name, &service->store_));
    SamplerEntry entry;
    entry.sampler = std::move(sampler);
    entry.span = SamplerRegistry::InternedName("serve.sample." + name);
    service->samplers_.emplace(name, std::move(entry));
  }
  service->default_sampler_ = &service->samplers_.at(options.sampler);
  service->sync_layers_ = service->MakeLayerStack();
  return service;
}

GraphService::~GraphService() { Stop(); }

void GraphService::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true) ||
      stopping_.load(std::memory_order_acquire)) {
    return;
  }
  const uint32_t replicas = options_.replication.replicas;
  const size_t num_workers = static_cast<size_t>(options_.num_shards) * replicas *
                             options_.samplers_per_shard;
  workers_.reserve(num_workers);
  for (uint32_t shard = 0; shard < options_.num_shards; ++shard) {
    for (uint32_t replica = 0; replica < replicas; ++replica) {
      for (uint32_t i = 0; i < options_.samplers_per_shard; ++i) {
        workers_.push_back(
            Worker{std::thread(&GraphService::WorkerLoop, this, shard, replica)});
      }
    }
  }
}

void GraphService::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (auto& queue : request_queues_) {
    queue->Close();
  }
  for (Worker& worker : workers_) {
    if (worker.thread.joinable()) {
      worker.thread.join();
    }
  }
  workers_.clear();
  if (responses_ != nullptr) {
    responses_->Close();
  }
}

Status GraphService::Submit(SampleRequest request) {
  if (request.shard >= options_.num_shards) {
    return Status::OutOfRange("shard " + std::to_string(request.shard) + " >= num_shards " +
                              std::to_string(options_.num_shards));
  }
  request.submit_ns = telemetry::Telemetry::NowNs();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  bool shed = false;
  if (RouteToQueue(request, /*count_first_as_failover=*/false, &shed)) {
    return Status::Ok();
  }
  if (shed) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
    }
    DGCL_TCOUNT1("service", "request.shed", 1, "shard", request.shard);
    return Status::ResourceExhausted("shard " + std::to_string(request.shard) +
                                     " request queue is full");
  }
  // No live replica: accepted, fails asynchronously like the drain answers
  // pending requests.
  PushResponse(DeadHomeResponse(request));
  return Status::Ok();
}

bool GraphService::RouteToQueue(SampleRequest& request, bool count_first_as_failover,
                                bool* shed, uint64_t block_micros) {
  if (shed != nullptr) {
    *shed = false;
  }
  bool is_failover = count_first_as_failover;
  while (true) {
    Result<uint32_t> routed = replicas_->Route(request.shard);
    if (!routed.ok()) {
      return false;  // shard has no live replicas
    }
    const uint32_t replica = *routed;
    request.replica = replica;
    BoundedQueue<SampleRequest>& queue = *request_queues_[QueueIndex(request.shard, replica)];
    const bool pushed =
        block_micros > 0 ? queue.Push(request, block_micros) : queue.TryPush(request);
    if (pushed) {
      if (is_failover) {
        replicas_->CountFailover();
      }
      return true;
    }
    replicas_->Finish(request.shard, replica);
    if (queue.closed() || !replicas_->ReplicaAlive(request.shard, replica)) {
      // Lost the race with a kill between Route and push: retry on a
      // survivor (or fall out kUnavailable when none remain).
      is_failover = true;
      continue;
    }
    if (shed != nullptr) {
      *shed = true;  // alive replica, full queue: backpressure
    }
    return false;
  }
}

std::optional<SampleResponse> GraphService::PopResponse(uint64_t timeout_micros) {
  return responses_->Pop(timeout_micros);
}

SampleResponse GraphService::Serve(SampleRequest request) {
  request.submit_ns = telemetry::Telemetry::NowNs();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  SampleResponse response;
  if (request.shard >= options_.num_shards) {
    response.request_id = request.request_id;
    response.shard = request.shard;
    response.status = Status::OutOfRange("shard " + std::to_string(request.shard) +
                                         " >= num_shards " + std::to_string(options_.num_shards));
    return response;
  }
  // Route exactly like Submit so the sync path exercises (and load-accounts
  // on) the same replica selection; a dead shard leaves replica unset and
  // Process answers kUnavailable.
  Result<uint32_t> routed = replicas_->Route(request.shard);
  const uint32_t replica = routed.ok() ? *routed : kInvalidId;
  request.replica = replica;
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    response = Process(request, replica, sync_layers_);
  }
  if (routed.ok()) {
    replicas_->Finish(request.shard, replica);
  }
  CountOutcome(response.status);
  return response;
}

Status GraphService::KillShard(uint32_t shard) {
  if (shard >= options_.num_shards) {
    return Status::OutOfRange("shard " + std::to_string(shard) + " >= num_shards " +
                              std::to_string(options_.num_shards));
  }
  std::lock_guard<std::mutex> lock(kill_mutex_);
  uint32_t mask = replicas_->AliveReplicaMask(shard);
  if (mask == 0) {
    return Status::InvalidArgument("shard " + std::to_string(shard) + " is already dead");
  }
  // Atomicity pre-check: killing this shard's last replica would commit the
  // device death, which membership vetoes when it is the last shard alive.
  // Check up front so a doomed KillShard fails before killing ANY replica.
  const MembershipView view = replicas_->membership_view();
  if ((view.alive & ~(DeviceMask{1} << shard)) == 0) {
    return Status::FailedPrecondition("KillShard(" + std::to_string(shard) +
                                      ") would leave no shard alive");
  }
  while (mask != 0) {
    const uint32_t replica = static_cast<uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    DGCL_RETURN_IF_ERROR(KillReplicaLocked(shard, replica));
  }
  DGCL_TCOUNT1("service", "shard.killed", 1, "shard", shard);
  return Status::Ok();
}

Status GraphService::KillReplica(uint32_t shard, uint32_t replica) {
  if (shard >= options_.num_shards) {
    return Status::OutOfRange("shard " + std::to_string(shard) + " >= num_shards " +
                              std::to_string(options_.num_shards));
  }
  if (replica >= options_.replication.replicas) {
    return Status::OutOfRange("replica " + std::to_string(replica) + " >= replicas " +
                              std::to_string(options_.replication.replicas));
  }
  std::lock_guard<std::mutex> lock(kill_mutex_);
  DGCL_RETURN_IF_ERROR(KillReplicaLocked(shard, replica));
  if (!replicas_->ShardAlive(shard)) {
    // Killing the last replica IS a shard kill; keep the counter stream the
    // one KillShard emits so traces agree on shard deaths.
    DGCL_TCOUNT1("service", "shard.killed", 1, "shard", shard);
  }
  return Status::Ok();
}

Status GraphService::KillReplicaLocked(uint32_t shard, uint32_t replica) {
  // The membership commit is the atomic decision point: already-dead
  // replicas and no-survivor kills are rejected there before any state here
  // mutates.
  DGCL_ASSIGN_OR_RETURN(MembershipView view, replicas_->KillReplica(shard, replica));
  alive_.store(view.alive, std::memory_order_release);
  DGCL_TCOUNT1("service", "replica.killed", 1, "shard", shard);
  const bool survivors = replicas_->ShardAlive(shard);
  // Close the dead replica's queue (its workers drain what they already
  // popped, then exit) and hand its pending requests over: to survivors
  // while any remain — counted as failovers, never failed — or to
  // kUnavailable responses when this was the shard's last replica.
  BoundedQueue<SampleRequest>& queue = *request_queues_[QueueIndex(shard, replica)];
  queue.Close();
  while (std::optional<SampleRequest> pending = queue.TryPop()) {
    replicas_->Finish(shard, replica);
    if (!survivors) {
      PushResponse(DeadHomeResponse(*pending));
      continue;
    }
    bool shed = false;
    if (RouteToQueue(*pending, /*count_first_as_failover=*/true, &shed,
                     options_.request_deadline_micros)) {
      continue;
    }
    // Survivors exist but none took it within the deadline (only reachable
    // when their queues stay full that long, e.g. workers never started):
    // answer backpressure, not a false shard death.
    SampleResponse response;
    response.request_id = pending->request_id;
    response.shard = pending->shard;
    response.status = Status::ResourceExhausted(
        "shard " + std::to_string(shard) + " survivors could not absorb rerouted request");
    PushResponse(std::move(response));
  }
  return Status::Ok();
}

MembershipView GraphService::membership() const { return replicas_->membership_view(); }

ServiceStats GraphService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  const FetchBatcher::Stats fetch = fetch_batcher_->stats();
  out.fetch_messages = fetch.messages;
  out.fetch_rows = fetch.rows;
  out.fetch_bytes = fetch.bytes;
  out.fetch_coalesced = fetch.coalesced;
  const ReplicaSet::Stats replicas = replicas_->stats();
  out.failovers = replicas.failovers;
  out.replica_kills = replicas.replica_kills;
  return out;
}

void GraphService::WorkerLoop(uint32_t shard, uint32_t replica) {
  std::vector<std::unique_ptr<GnnLayer>> layers = MakeLayerStack();
  BoundedQueue<SampleRequest>& queue = *request_queues_[QueueIndex(shard, replica)];
  const uint64_t poll_micros = std::min<uint64_t>(options_.request_deadline_micros, kMaxPollMicros);
  while (true) {
    std::optional<SampleRequest> request = queue.Pop(poll_micros);
    if (!request) {
      if (queue.closed() || stopping_.load(std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    SampleResponse response = Process(*request, replica, layers);
    PushResponse(std::move(response));
    // Exactly one Finish per routed request: the kill drain Finishes what it
    // reroutes, workers Finish what they serve.
    replicas_->Finish(shard, replica);
  }
}

SampleResponse GraphService::Process(SampleRequest& request, uint32_t replica,
                                     std::vector<std::unique_ptr<GnnLayer>>& layers) {
  const uint64_t pop_ns = telemetry::Telemetry::NowNs();
  const uint64_t start_ns = request.submit_ns != 0 ? request.submit_ns : pop_ns;
  const uint32_t home = request.shard;

  SampleResponse response;
  response.request_id = request.request_id;
  response.shard = home;
  response.replica = replica;
  if (pop_ns > start_ns) {
    response.queue_seconds = static_cast<double>(pop_ns - start_ns) * 1e-9;
    if (telemetry::Telemetry::Enabled()) {
      telemetry::Telemetry::Get().RecorderForThisThread().RecordSpan(
          "service", "serve.queue", start_ns, pop_ns - start_ns, "shard", home);
    }
  }

  Status status;
  do {
    const DeviceMask alive = AliveMask();
    if (((alive >> home) & 1) == 0) {
      response.suspects.push_back(home);
      status = Status::Unavailable("home shard " + std::to_string(home) + " is dead");
      break;
    }

    // Resolve the strategy: the request's name wins, the service default
    // otherwise. Unknown names fail the request the way an unregistered
    // planner fails Init — actionable, listing what IS registered.
    const SamplerEntry* entry = default_sampler_;
    if (!request.sampler.empty()) {
      auto it = samplers_.find(request.sampler);
      if (it == samplers_.end()) {
        status = Status::InvalidArgument("sampler \"" + request.sampler +
                                         "\" not registered (have: " +
                                         SamplerRegistry::NamesForError() + ")");
        break;
      }
      entry = &it->second;
    }

    std::vector<VertexId> seeds = std::move(request.seeds);
    if (seeds.empty()) {
      seeds = SampleLocalNodes(store_.shard(home), request.num_seeds, request.sample.seed);
    }

    uint32_t dead_shard = kInvalidId;
    Result<SampleResult> sampled = [&]() -> Result<SampleResult> {
      DGCL_TSPAN1("service", entry->span, "shard", home);
      return entry->sampler->Sample(home, seeds, request.sample, alive, &dead_shard);
    }();
    if (!sampled.ok()) {
      if (dead_shard != kInvalidId) {
        response.suspects.push_back(dead_shard);
      }
      status = sampled.status();
      break;
    }
    response.nodes = std::move(sampled->nodes);

    EmbeddingMatrix slots;
    {
      DGCL_TSPAN2("service", "serve.features", "shard", home, "nodes", response.nodes.size());
      status = AssembleFeatures(home, replica, response.nodes, slots, response);
    }
    if (!status.ok()) {
      break;
    }

    if (request.run_inference) {
      DGCL_TSPAN2("service", "serve.infer", "shard", home, "nodes", response.nodes.size());
      CsrGraph subgraph = graph_->InducedSubgraph(response.nodes);
      LocalGraph local = FullLocalGraph(subgraph);
      response.embeddings = InferenceForward(local, slots, layers);
    }
    if (request.return_features) {
      response.features = std::move(slots);
    }
  } while (false);

  response.status = std::move(status);
  const uint64_t end_ns = telemetry::Telemetry::NowNs();
  response.latency_seconds = end_ns > start_ns ? static_cast<double>(end_ns - start_ns) * 1e-9 : 0.0;
  if (telemetry::Telemetry::Enabled()) {
    telemetry::Telemetry::Get().RecorderForThisThread().RecordSpan(
        "service", "serve.request", start_ns, end_ns - start_ns, "shard", home, "replica",
        replica, "ok", response.status.ok() ? 1 : 0);
  }
  return response;
}

Status GraphService::AssembleFeatures(uint32_t home, uint32_t replica,
                                      const std::vector<VertexId>& nodes,
                                      EmbeddingMatrix& slots, SampleResponse& response) {
  const uint32_t dim = options_.feature_dim;
  slots.rows = static_cast<uint32_t>(nodes.size());
  slots.dim = dim;
  slots.data.assign(nodes.size() * static_cast<size_t>(dim), 0.0f);

  // Local rows come out of the serving replica's own slice (byte-identical
  // to the global matrix by construction); the sync path with a dead home
  // has no replica and falls back to the global matrix.
  const ReplicaSlice* slice =
      replica < options_.replication.replicas ? &replicas_->slice(home, replica) : nullptr;

  std::vector<float> row(dim);
  // owner shard -> slot rows still needing its feature rows.
  std::map<uint32_t, std::vector<size_t>> missing_by_owner;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const VertexId v = nodes[i];
    const uint32_t owner = store_.OwnerOf(v);
    if (owner == home) {
      const float* src = slice != nullptr ? slice->RowOf(v) : nullptr;
      if (src == nullptr) {
        src = features_.Row(v);
      }
      std::copy_n(src, dim, slots.Row(static_cast<uint32_t>(i)));
      continue;
    }
    ++response.remote_rows;
    if (cache_->Lookup(v, row)) {
      ++response.cache_hits;
      std::copy_n(row.data(), dim, slots.Row(static_cast<uint32_t>(i)));
      continue;
    }
    ++response.cache_misses;
    missing_by_owner[owner].push_back(i);
  }

  const DeviceMask alive = AliveMask();
  for (const auto& [owner, slots_needed] : missing_by_owner) {
    if (((alive >> owner) & 1) == 0) {
      response.suspects.push_back(owner);
      return Status::Unavailable("feature owner shard " + std::to_string(owner) + " is dead");
    }
    // The fetch is priced on the pair's connection (transport selection,
    // faults, retry) when the P2P plan routed traffic owner->home; pairs the
    // relation never linked have no connection and the fetch is free wire-wise
    // (counted, so a trace shows how often sampling out-runs the plan). With
    // batching enabled the batcher may merge this call's rows into another
    // request's Transmit (fetch_batcher.h); either way exactly one member
    // puts the batch on the wire, under the pair's connection mutex.
    if (Connection* connection = connections_.FindMutable(owner, home)) {
      const Status transmitted =
          fetch_batcher_->Fetch(owner, home, slots_needed.size(), [&](uint64_t bytes) {
            std::mutex& transmit_mutex =
                *connection_mutexes_[static_cast<size_t>(owner) * options_.num_shards + home];
            std::lock_guard<std::mutex> lock(transmit_mutex);
            return connection->Transmit(bytes);
          });
      if (!transmitted.ok()) {
        response.suspects.push_back(owner);
        return transmitted;
      }
    } else {
      DGCL_TCOUNT1("service", "fetch.unplanned", 1, "owner", owner);
    }
    for (const size_t i : slots_needed) {
      const VertexId v = nodes[i];
      std::copy_n(features_.Row(v), dim, slots.Row(static_cast<uint32_t>(i)));
      cache_->Insert(v, std::vector<float>(features_.Row(v), features_.Row(v) + dim));
    }
  }
  return Status::Ok();
}

std::vector<std::unique_ptr<GnnLayer>> GraphService::MakeLayerStack() const {
  // Every stack is seeded identically, so all workers (and the sync path)
  // hold replica weights — inference output is a pure function of the
  // request, whichever worker serves it.
  Rng rng(options_.weight_seed);
  std::vector<std::unique_ptr<GnnLayer>> layers;
  layers.reserve(options_.num_layers);
  uint32_t dim_in = options_.feature_dim;
  for (uint32_t layer = 0; layer < options_.num_layers; ++layer) {
    layers.push_back(MakeLayer(options_.model, dim_in, options_.hidden_dim, rng));
    dim_in = options_.hidden_dim;
  }
  return layers;
}

std::vector<uint32_t> GraphService::DeadSuspects() const {
  const DeviceMask alive = AliveMask();
  std::vector<uint32_t> dead;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    if (((alive >> s) & 1) == 0) {
      dead.push_back(s);
    }
  }
  return dead;
}

SampleResponse GraphService::DeadHomeResponse(const SampleRequest& request) const {
  SampleResponse response;
  response.request_id = request.request_id;
  response.shard = request.shard;
  response.suspects.push_back(request.shard);
  response.status =
      Status::Unavailable("home shard " + std::to_string(request.shard) + " is dead");
  const uint64_t now_ns = telemetry::Telemetry::NowNs();
  if (request.submit_ns != 0 && now_ns > request.submit_ns) {
    response.latency_seconds = static_cast<double>(now_ns - request.submit_ns) * 1e-9;
  }
  return response;
}

void GraphService::CountOutcome(const Status& status) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (status.ok()) {
    ++stats_.completed;
  } else if (status.code() == StatusCode::kUnavailable) {
    ++stats_.unavailable;
  }
}

bool GraphService::PushResponse(SampleResponse response) {
  CountOutcome(response.status);
  if (!responses_->Push(std::move(response), options_.request_deadline_micros)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.responses_dropped;
    return false;
  }
  return true;
}

}  // namespace dgcl
