// GraphService: the request-driven serving tier over the DGCL stack.
//
// Turns the batch-training machinery into a traffic-serving system (the
// DistDGL architecture, scaled to this reproduction): a request names a home
// shard and seed vertices; a sampler worker of that shard's pool pops it
// from a bounded queue, draws a deterministic fanout-capped k-hop sample
// (service/sampler.h over the sharded store), assembles the sampled nodes'
// feature rows — local rows read directly, remote rows through the feature
// cache, cache misses priced on the engine's per-pair Connection objects
// (the same transport decision table and fault injection the trainer uses) —
// and optionally runs a mini-batch GNN forward over the induced subgraph
// (gnn/layers.h InferenceForward). Responses flow back through one bounded
// MPMC response queue.
//
// Request lifecycle (every phase a "service" telemetry span, so
// `dgcl_trace summarize --serving` reports serving percentiles the way
// `--waits` reports coordination waits):
//
//   Submit --> [shard request queue] --> worker pop        (serve.queue)
//          --> k-hop sample over the store                 (serve.sample)
//          --> feature assembly via cache + connections    (serve.features)
//          --> optional mini-batch forward                 (serve.infer)
//          --> [response queue] --> PopResponse            (serve.request = total)
//
// Read scaling (replica_set.h): every shard runs R read replicas, each with
// its own request queue, sampler pool, and copy of the shard's serving data
// (ReplicaSlice). Submit routes a request to one replica per the configured
// policy (round-robin / least-loaded / primary-only); a response carries the
// serving replica. KillReplica folds one replica away — its queued requests
// are rerouted to survivors (counted as failovers), never failed — and the
// shard keeps serving until its LAST replica dies, which commits the
// device-level membership epoch exactly like KillShard (which itself now
// kills all R replicas).
//
// Failure semantics reuse the PR-5 membership machinery: exhausting a
// shard's replicas commits a membership epoch (ReplicaMembershipService),
// closes and drains the dead shard's queues, and every request that touches
// the dead shard — queued on it, routed to it later, or sampling/fetching
// across it — completes with kUnavailable naming the shard as suspect,
// within one request deadline, never a hang. Backpressure is explicit:
// Submit returns kResourceExhausted when the routed replica's queue is full
// (the open-loop generator counts these as shed).
//
// Determinism: the sampled node set and inference output for a request are
// pure functions of the request (see sampler.h); pool width, queue order,
// replica count, routing policy, and which replica serves affect only
// latency and cache hit patterns, not payloads — responses are byte-
// identical to the R=1 run under any kill schedule that leaves a survivor
// (replica_conformance_test pins this).

#ifndef DGCL_SERVICE_SERVICE_H_
#define DGCL_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gnn/layers.h"
#include "runtime/recovery.h"
#include "runtime/transport.h"
#include "service/feature_cache.h"
#include "service/fetch_batcher.h"
#include "service/graph_shard.h"
#include "service/replica_set.h"
#include "service/request_queue.h"
#include "service/sampler.h"
#include "service/sampler_registry.h"
#include "topology/topology.h"

namespace dgcl {

struct ServiceOptions {
  // Shards = devices of the serving topology (BuildPaperTopology), so the
  // transport decision table stays meaningful. 1..16.
  uint32_t num_shards = 4;
  uint32_t samplers_per_shard = 2;  // per replica
  // Read replicas per shard and the routing policy across them
  // (replica_set.h). replicas = 1 keeps the pre-replica behavior.
  ReplicationOptions replication;
  size_t request_queue_capacity = 64;  // per replica; full queue = backpressure
  size_t response_queue_capacity = 4096;
  // Deadline budget for a request end to end; also bounds worker poll waits
  // and response-queue pushes, so a stalled consumer cannot wedge a worker.
  uint64_t request_deadline_micros = 2'000'000;

  // Per-request defaults (a request's own SampleKHopOptions win when set).
  SampleKHopOptions sample;

  // Default sampling strategy, resolved through SamplerRegistry::Global()
  // ("uniform", "weighted", "random-walk", or any runtime-registered name).
  // A request's own SampleRequest::sampler wins when non-empty.
  std::string sampler = "uniform";

  // Cross-request batching of remote feature fetches (fetch_batcher.h).
  FetchBatchOptions fetch;

  // "multilevel" (METIS-substitute, the serving default) or "hash".
  std::string partitioner = "multilevel";

  // Feature cache in front of remote-row fetches.
  size_t cache_capacity_rows = 4096;
  std::string cache_policy = "lru";  // "lru" | "lfu"

  // Node features are generated deterministically at Create (stand-in for a
  // real feature store, like the dataset generators elsewhere).
  uint32_t feature_dim = 32;
  uint64_t feature_seed = 29;

  // Mini-batch inference stack (feature_dim -> hidden_dim -> ... per layer).
  GnnModel model = GnnModel::kGcn;
  uint32_t num_layers = 2;
  uint32_t hidden_dim = 16;
  uint64_t weight_seed = 31;

  // Wire emulation / fault injection for remote-row fetches, same knobs as
  // the training engine.
  TransportPolicy transport;
  FaultInjection faults;

  uint64_t seed = 0x5eed;  // LocalNode + default sampling seed

  Status Validate() const;
};

struct SampleRequest {
  uint64_t request_id = 0;
  uint32_t shard = 0;             // home shard
  // Seed vertices; empty => LocalNode-sample `num_seeds` locals of the home
  // shard (seeded by sample.seed, so still deterministic).
  std::vector<VertexId> seeds;
  uint32_t num_seeds = 16;
  SampleKHopOptions sample;       // per-request seed/hops/fanout
  // Sampling strategy for this request; empty = ServiceOptions::sampler.
  // Unknown names fail the request with kInvalidArgument listing the
  // registered strategies.
  std::string sampler;
  bool run_inference = false;
  // Return the assembled feature rows for the sampled nodes (the training
  // path: MiniBatchTrainer consumes them as the mini-batch inputs).
  bool return_features = false;
  uint64_t submit_ns = 0;         // stamped by Submit/Serve
  // Serving replica, stamped by the router at Submit/Serve; requests
  // rerouted off a dying replica are re-stamped. Callers leave it unset.
  uint32_t replica = kInvalidId;
};

struct SampleResponse {
  uint64_t request_id = 0;
  uint32_t shard = 0;
  uint32_t replica = kInvalidId;      // replica that served the request
  Status status;                      // Ok / kUnavailable / kOutOfRange
  std::vector<uint32_t> suspects;     // dead shards implicated on kUnavailable
  std::vector<VertexId> nodes;        // sampled set, ascending global ids
  uint64_t cache_hits = 0;            // this request's remote-row cache hits
  uint64_t cache_misses = 0;
  uint64_t remote_rows = 0;           // rows needed from non-home shards
  double queue_seconds = 0.0;         // submit -> worker pop
  double latency_seconds = 0.0;       // submit -> response ready
  EmbeddingMatrix embeddings;         // run_inference: last-layer rows for `nodes`
  EmbeddingMatrix features;           // return_features: input rows for `nodes`
};

// Aggregate counters, readable at any time.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t shed = 0;         // rejected by backpressure (kResourceExhausted)
  uint64_t completed = 0;    // responses pushed with OK status
  uint64_t unavailable = 0;  // responses pushed with kUnavailable
  uint64_t responses_dropped = 0;  // response queue full past deadline
  // Replica routing/failover accounting (ReplicaSet::Stats, copied in by
  // stats()):
  uint64_t failovers = 0;      // requests rerouted off a dying replica
  uint64_t replica_kills = 0;  // committed replica deaths (KillReplica + KillShard)
  // Remote-fetch wire accounting (FetchBatcher::Stats, copied in by stats()):
  uint64_t fetch_messages = 0;   // Transmits issued for remote feature rows
  uint64_t fetch_rows = 0;       // rows those Transmits carried
  uint64_t fetch_bytes = 0;      // bytes on wire incl. per-message header
  uint64_t fetch_coalesced = 0;  // fetches that rode another fetch's Transmit
};

class GraphService {
 public:
  // The graph must outlive the service. Partitions, builds the store, the
  // connection table (P2P plan over the serving relation), the cache, and
  // one sampler per registered strategy; does not start workers — call
  // Start().
  static Result<std::unique_ptr<GraphService>> Create(const CsrGraph& graph,
                                                      ServiceOptions options);
  // Same, but serve `features` (one row per vertex, dim must equal
  // options.feature_dim) instead of generating rows from feature_seed — the
  // training path feeds label-correlated features this way. `features` must
  // be non-null and, like the graph, outlive the call (rows are copied).
  static Result<std::unique_ptr<GraphService>> Create(const CsrGraph& graph,
                                                      ServiceOptions options,
                                                      const EmbeddingMatrix* features);
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  // Spawns the per-shard sampler pools. Idempotent.
  void Start();
  // Closes every queue and joins all workers. Idempotent; ~GraphService
  // calls it.
  void Stop();

  // Non-blocking: routes the request to its home shard's queue.
  //  * kOutOfRange    — bad shard id (request not accepted)
  //  * kResourceExhausted — queue full (backpressure; request not accepted)
  //  * Ok             — accepted; a response WILL appear on the response
  //                     queue, kUnavailable when the home shard is dead.
  Status Submit(SampleRequest request);

  // Pops one response; nullopt after `timeout_micros`.
  std::optional<SampleResponse> PopResponse(uint64_t timeout_micros);

  // Synchronous path (no queues, calling thread does the work): for tests
  // and single-request callers. Start() not required.
  SampleResponse Serve(SampleRequest request);

  // Kills every remaining replica of the shard: commits shard death through
  // the membership epochs, closes the shard's queues and fails everything
  // pending on them with kUnavailable (suspect = `shard`). Requests in
  // flight on its workers and later Submits to it also resolve to
  // kUnavailable. Fails when the shard is already dead or it is the last
  // one alive.
  Status KillShard(uint32_t shard);

  // Kills one replica. While survivors remain the shard keeps serving: the
  // dead replica's queued requests are rerouted to survivors (counted as
  // failovers in stats()), in-flight ones complete, and future Submits
  // route around it. Killing the last replica is KillShard for that shard.
  // Fails when the replica is already dead or it is the last replica of the
  // last alive shard.
  Status KillReplica(uint32_t shard, uint32_t replica);

  const ShardedGraphStore& store() const { return store_; }
  const ReplicaSet& replicas() const { return *replicas_; }
  const FeatureCache& cache() const { return *cache_; }
  const CommRelation& relation() const { return relation_; }
  // The full feature matrix (row = global vertex id) — read-only; the
  // mini-batch trainer evaluates against it.
  const EmbeddingMatrix& features() const { return features_; }
  MembershipView membership() const;
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  GraphService() = default;

  struct Worker {
    std::thread thread;
  };

  void WorkerLoop(uint32_t shard, uint32_t replica);
  // Serves one request on the calling thread. `replica` is the serving
  // replica (local reads go to its slice); `layers` is that thread's
  // private inference stack.
  SampleResponse Process(SampleRequest& request, uint32_t replica,
                         std::vector<std::unique_ptr<GnnLayer>>& layers);
  // Feature assembly: local rows from the serving replica's slice, remote
  // rows via cache + connection-table fetch. Fails kUnavailable on a dead
  // owner.
  Status AssembleFeatures(uint32_t home, uint32_t replica, const std::vector<VertexId>& nodes,
                          EmbeddingMatrix& slots, SampleResponse& response);
  std::vector<std::unique_ptr<GnnLayer>> MakeLayerStack() const;
  DeviceMask AliveMask() const { return alive_.load(std::memory_order_acquire); }
  std::vector<uint32_t> DeadSuspects() const;
  // kUnavailable response for a request whose home shard is dead.
  SampleResponse DeadHomeResponse(const SampleRequest& request) const;
  // Kills one replica with kill_mutex_ held: commits the death, closes the
  // replica's queue, and either reroutes its pending requests to survivors
  // (failover) or — when it was the shard's last replica — fails them and
  // everything else still queued on the shard with kUnavailable.
  Status KillReplicaLocked(uint32_t shard, uint32_t replica);
  // Routes `request` onto an alive replica's queue, rerouting across
  // replicas that die mid-push. Counts a successful route as a failover when
  // it was a reroute (or count_first_as_failover, the drain path). False when
  // no replica could take it: `shed` distinguishes a full queue
  // (backpressure) from a dead shard (caller answers kUnavailable).
  // block_micros > 0 waits that long for queue room instead of TryPush —
  // the drain path uses it so rerouted requests are never dropped.
  bool RouteToQueue(SampleRequest& request, bool count_first_as_failover, bool* shed,
                    uint64_t block_micros = 0);
  size_t QueueIndex(uint32_t shard, uint32_t replica) const {
    return static_cast<size_t>(shard) * options_.replication.replicas + replica;
  }
  void CountOutcome(const Status& status);
  // Counts the outcome and enqueues; false when the response queue stayed
  // full past the deadline (counted as dropped).
  bool PushResponse(SampleResponse response);

  ServiceOptions options_;
  const CsrGraph* graph_ = nullptr;
  Partitioning partitioning_;
  ShardedGraphStore store_;
  CommRelation relation_;
  Topology topology_;
  CompiledPlan plan_;
  ConnectionTable connections_;
  // Serializes Transmit per connection (the engine's single-sender-per-pass
  // contract, upheld here across concurrent sampler workers).
  std::vector<std::unique_ptr<std::mutex>> connection_mutexes_;
  // One instance per registered strategy, instantiated at Create and shared
  // by every worker (Sample is const + thread-safe). `span` is the interned
  // per-strategy telemetry span name ("serve.sample.<strategy>").
  struct SamplerEntry {
    std::unique_ptr<Sampler> sampler;
    const char* span = nullptr;
  };
  std::map<std::string, SamplerEntry> samplers_;
  // samplers_[options_.sampler]; resolved once at Create.
  const SamplerEntry* default_sampler_ = nullptr;
  std::unique_ptr<FetchBatcher> fetch_batcher_;
  std::unique_ptr<FeatureCache> cache_;
  EmbeddingMatrix features_;  // [num_vertices x feature_dim], read-only

  // Replica slices, routing, and the membership epochs (replica-aware; the
  // device-level view is derived from replica exhaustion).
  std::unique_ptr<ReplicaSet> replicas_;
  // Serializes kill + queue-handoff sequences (KillShard / KillReplica).
  std::mutex kill_mutex_;
  std::atomic<DeviceMask> alive_{0};

  // One queue per (shard, replica): request_queues_[QueueIndex(s, r)].
  std::vector<std::unique_ptr<BoundedQueue<SampleRequest>>> request_queues_;
  std::unique_ptr<BoundedQueue<SampleResponse>> responses_;
  std::vector<Worker> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Sync-path layer stack (Serve), guarded: Serve may race with itself.
  std::mutex sync_mutex_;
  std::vector<std::unique_ptr<GnnLayer>> sync_layers_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_SERVICE_H_
