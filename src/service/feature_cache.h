// Feature/embedding cache fronting remote-feature fetches (§3 option (1),
// made real).
//
// The epoch simulator's Method::kDgclCache prices the idealized version of
// this cache — every remote layer-0 feature pinned locally. The serving tier
// needs the real thing: a bounded row cache in front of the remote-fetch
// path whose *measured* hit rate feeds back into that estimate
// (EpochOptions::cache_hit_rate). Eviction is pluggable behind one
// interface; LRU (recency, the GraphMix default) and LFU (frequency, better
// for power-law access skew where hub vertices are resampled constantly)
// ship built in, and the conformance contract both must satisfy is tested in
// service_test.cc.
//
// Thread model: the cache is shared by every sampler worker; one mutex
// guards map + policy (row copies happen under the lock — rows are small,
// feature_dim floats). Hits and misses are DGCL_TCOUNT'd under the
// "service" category so a trace shows the hit rate the bench reports.

#ifndef DGCL_SERVICE_FEATURE_CACHE_H_
#define DGCL_SERVICE_FEATURE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace dgcl {

// Eviction bookkeeping for one cache. Implementations are NOT thread-safe;
// FeatureCache calls them under its lock. The contract (conformance-tested):
//  * OnInsert(v) registers a resident key (v was not resident).
//  * OnAccess(v) records a hit on a resident key.
//  * ChooseVictim() names a resident key to evict (cache erases it and then
//    calls OnErase). Deterministic: ties broken by oldest insertion.
//  * OnErase(v) forgets a resident key.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual void OnInsert(VertexId v) = 0;
  virtual void OnAccess(VertexId v) = 0;
  virtual VertexId ChooseVictim() = 0;  // precondition: at least one resident key
  virtual void OnErase(VertexId v) = 0;
  virtual const char* name() const = 0;
};

// Least-recently-used: victim is the key untouched the longest.
class LruPolicy final : public EvictionPolicy {
 public:
  void OnInsert(VertexId v) override;
  void OnAccess(VertexId v) override;
  VertexId ChooseVictim() override;
  void OnErase(VertexId v) override;
  const char* name() const override { return "lru"; }

 private:
  std::list<VertexId> order_;  // front = most recent
  std::unordered_map<VertexId, std::list<VertexId>::iterator> where_;
};

// Least-frequently-used with FIFO tie-break: victim is the key with the
// fewest accesses since insertion; among equals, the earliest inserted.
class LfuPolicy final : public EvictionPolicy {
 public:
  void OnInsert(VertexId v) override;
  void OnAccess(VertexId v) override;
  VertexId ChooseVictim() override;
  void OnErase(VertexId v) override;
  const char* name() const override { return "lfu"; }

 private:
  struct Entry {
    uint64_t freq = 0;
    uint64_t tick = 0;  // insertion order, the tie-break
  };
  // (freq, tick) -> v, ordered so begin() is the victim.
  std::map<std::pair<uint64_t, uint64_t>, VertexId> by_freq_;
  std::unordered_map<VertexId, Entry> entries_;
  uint64_t next_tick_ = 0;
};

// "lru" | "lfu"; error on anything else.
Result<std::unique_ptr<EvictionPolicy>> MakeEvictionPolicy(const std::string& name);

// Bounded cache of feature rows keyed by global vertex id.
class FeatureCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  // `capacity_rows` > 0; the cache never holds more rows than that.
  FeatureCache(size_t capacity_rows, std::unique_ptr<EvictionPolicy> policy);

  // Copies v's row into `row` and returns true on a hit; false (row
  // untouched) on a miss. Both outcomes are counted.
  bool Lookup(VertexId v, std::vector<float>& row);

  // Inserts (or refreshes) v's row, evicting per policy when full.
  void Insert(VertexId v, std::vector<float> row);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;
  const char* policy_name() const { return policy_->name(); }

 private:
  const size_t capacity_;
  std::unique_ptr<EvictionPolicy> policy_;
  mutable std::mutex mutex_;
  std::unordered_map<VertexId, std::vector<float>> rows_;
  Stats stats_;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_FEATURE_CACHE_H_
