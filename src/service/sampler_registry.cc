#include "service/sampler_registry.h"

#include <set>
#include <utility>

namespace dgcl {

SamplerRegistry& SamplerRegistry::Global() {
  static SamplerRegistry* registry = [] {
    auto* r = new SamplerRegistry();
    auto must = [r](const std::string& name, SamplerFactory factory) {
      Status s = r->Register(name, std::move(factory));
      (void)s;
    };
    must("uniform", [](const ShardedGraphStore* store) -> std::unique_ptr<Sampler> {
      return std::make_unique<NeighborSampler>(store);
    });
    must("weighted", [](const ShardedGraphStore* store) -> std::unique_ptr<Sampler> {
      return std::make_unique<WeightedNeighborSampler>(store);
    });
    must("random-walk", [](const ShardedGraphStore* store) -> std::unique_ptr<Sampler> {
      return std::make_unique<RandomWalkSampler>(store);
    });
    return r;
  }();
  return *registry;
}

Status SamplerRegistry::Register(const std::string& name, SamplerFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("sampler name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("sampler factory must not be null");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("sampler \"" + name + "\" already registered");
  }
  return Status::Ok();
}

bool SamplerRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

Result<std::unique_ptr<Sampler>> SamplerRegistry::Create(const std::string& name,
                                                         const ShardedGraphStore* store) const {
  SamplerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string names;
      for (const auto& [n, f] : factories_) {
        names += names.empty() ? n : ", " + n;
      }
      return Status::NotFound("sampler \"" + name + "\" not registered (have: " + names + ")");
    }
    factory = it->second;
  }
  std::unique_ptr<Sampler> sampler = factory(store);
  if (sampler == nullptr) {
    return Status::Internal("sampler factory for \"" + name + "\" returned null");
  }
  return sampler;
}

std::vector<std::string> SamplerRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::string SamplerRegistry::NamesForError() {
  std::string names;
  for (const std::string& n : Global().Names()) {
    names += names.empty() ? n : ", " + n;
  }
  return names;
}

const char* SamplerRegistry::InternedName(const std::string& s) {
  static std::mutex intern_mutex;
  static std::set<std::string>* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(intern_mutex);
  return interned->insert(s).first->c_str();
}

}  // namespace dgcl
