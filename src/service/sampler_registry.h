// Sampler strategy registry: the sampling strategy is data, not code.
//
// Mirror of the planner registry (src/planner/registry.h) for the serving
// tier: every mini-batch sampling strategy is registered by name in the
// process-wide SamplerRegistry and selected with ServiceOptions::sampler or
// per request with SampleRequest::sampler, instead of instantiating a
// concrete sampler class. Built-ins: "uniform", "weighted", "random-walk"
// (service/sampler.h). GraphService resolves strategies through this
// registry at Create, so a new strategy becomes servable (and shows up in
// `dgcl_plan --list-samplers`) by registering one factory.
//
// Registered factories must produce samplers that honor the determinism
// contract in sampler.h — Sample is const, thread-safe, and a pure function
// of (graph, seeds, options) — because the service shares one instance per
// strategy across every worker (sampler_conformance_test is parameterized
// over this registry and checks exactly that).

#ifndef DGCL_SERVICE_SAMPLER_REGISTRY_H_
#define DGCL_SERVICE_SAMPLER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/sampler.h"

namespace dgcl {

// The store is the service's sharded store; it outlives the sampler.
using SamplerFactory = std::function<std::unique_ptr<Sampler>(const ShardedGraphStore*)>;

class SamplerRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in strategies:
  // uniform, weighted, random-walk.
  static SamplerRegistry& Global();

  // Fails with kInvalidArgument on duplicate or empty names and null
  // factories.
  Status Register(const std::string& name, SamplerFactory factory);

  bool Contains(const std::string& name) const;

  // Instantiates the named strategy over `store`. Unknown names fail with
  // kNotFound listing every registered name (the planner-registry error
  // contract).
  Result<std::unique_ptr<Sampler>> Create(const std::string& name,
                                          const ShardedGraphStore* store) const;

  // Registered strategy names, ascending.
  std::vector<std::string> Names() const;

  // Registered names joined with ", " — the spelling every unknown-name
  // error message uses.
  static std::string NamesForError();

  // A static-lifetime copy of `s` (interned, never freed) — for telemetry
  // event names derived from runtime strategy names (serve.sample.<name>),
  // which the lock-free trace ring stores as raw pointers.
  static const char* InternedName(const std::string& s);

 private:
  SamplerRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, SamplerFactory> factories_;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_SAMPLER_REGISTRY_H_
