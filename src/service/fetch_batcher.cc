#include "service/fetch_batcher.h"

#include <chrono>

#include "telemetry/trace.h"

namespace dgcl {

Status FetchBatchOptions::Validate() const {
  if (enabled && window_micros == 0) {
    return Status::InvalidArgument("fetch.window_micros must be > 0 when batching is enabled");
  }
  if (enabled && max_rows == 0) {
    return Status::InvalidArgument("fetch.max_rows must be > 0 when batching is enabled");
  }
  return Status::Ok();
}

FetchBatcher::FetchBatcher(uint32_t num_shards, uint64_t row_bytes, uint64_t deadline_micros,
                           FetchBatchOptions options)
    : num_shards_(num_shards),
      row_bytes_(row_bytes),
      deadline_micros_(deadline_micros),
      options_(options) {
  channels_.reserve(static_cast<size_t>(num_shards) * num_shards);
  for (uint32_t i = 0; i < num_shards * num_shards; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
}

Status FetchBatcher::Fetch(uint32_t owner, uint32_t home, size_t rows,
                           const std::function<Status(uint64_t bytes)>& transmit) {
  if (rows == 0) {
    return Status::Ok();
  }
  auto account = [&](size_t batch_rows) {
    const uint64_t wire = options_.header_bytes + batch_rows * row_bytes_;
    messages_.fetch_add(1, std::memory_order_relaxed);
    rows_.fetch_add(batch_rows, std::memory_order_relaxed);
    bytes_.fetch_add(wire, std::memory_order_relaxed);
    return wire;
  };
  if (!options_.enabled) {
    return transmit(account(rows));
  }

  Channel& ch = channel(owner, home);
  std::unique_lock<std::mutex> lock(ch.mutex);
  std::shared_ptr<Batch> batch = ch.open;
  const bool leader = batch == nullptr;
  if (leader) {
    batch = std::make_shared<Batch>();
    batch->rows = rows;
    ch.open = batch;
  } else {
    batch->rows += rows;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    // Every join wakes the leader: it either flushes (batch full) or restarts
    // its arrival-gap clock.
    ch.cv.notify_all();
  }

  if (leader) {
    // Hold the batch open for joiners until it fills, the hard window cap
    // expires, or — with arrival-gap close — no new rows arrive for one gap.
    const auto flush_by =
        std::chrono::steady_clock::now() + std::chrono::microseconds(options_.window_micros);
    if (options_.close_gap_micros == 0) {
      ch.cv.wait_until(lock, flush_by, [&] { return batch->rows >= options_.max_rows; });
    } else {
      size_t seen_rows = batch->rows;
      while (batch->rows < options_.max_rows) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= flush_by) {
          break;
        }
        const auto gap_by = now + std::chrono::microseconds(options_.close_gap_micros);
        ch.cv.wait_until(lock, gap_by < flush_by ? gap_by : flush_by, [&] {
          return batch->rows >= options_.max_rows || batch->rows != seen_rows;
        });
        if (batch->rows == seen_rows) {
          break;  // one full gap with no arrivals: close the batch
        }
        seen_rows = batch->rows;
      }
    }
    // Close the batch: later arrivals start a fresh one (possibly while this
    // Transmit is still on the wire; the connection mutex inside `transmit`
    // serializes the wire itself).
    if (ch.open == batch) {
      ch.open = nullptr;
    }
    const size_t batch_rows = batch->rows;
    lock.unlock();
    const Status status = transmit(account(batch_rows));
    DGCL_TCOUNT1("service", "fetch.batch.flush", 1, "owner", owner);
    DGCL_TCOUNT1("service", "fetch.batch.rows", static_cast<int64_t>(batch_rows), "owner", owner);
    lock.lock();
    batch->status = status;
    batch->done = true;
    ch.cv.notify_all();
    return status;
  }

  // Joiner: wait for the leader to publish the batch outcome. Bounded by the
  // request deadline so a wedged leader cannot hang a sampler worker.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(deadline_micros_);
  if (!ch.cv.wait_until(lock, deadline, [&] { return batch->done; })) {
    return Status::DeadlineExceeded("batched fetch from shard " + std::to_string(owner) +
                                    " missed the request deadline");
  }
  return batch->status;
}

FetchBatcher::Stats FetchBatcher::stats() const {
  Stats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dgcl
