#include "service/replica_set.h"

#include <bit>
#include <limits>

namespace dgcl {

Status ReplicationOptions::Validate() const {
  if (replicas < 1 || replicas > 8) {
    return Status::InvalidArgument("replication.replicas must be in [1, 8], got " +
                                   std::to_string(replicas));
  }
  if (routing != "round-robin" && routing != "least-loaded" && routing != "primary-only") {
    return Status::InvalidArgument("unknown replication.routing '" + routing +
                                   "' (want round-robin|least-loaded|primary-only)");
  }
  return Status::Ok();
}

Result<std::unique_ptr<ReplicaSet>> ReplicaSet::Build(const ShardedGraphStore& store,
                                                      uint32_t feature_dim,
                                                      const float* features,
                                                      ReplicationOptions options) {
  DGCL_RETURN_IF_ERROR(options.Validate());
  if (features == nullptr) {
    return Status::InvalidArgument("ReplicaSet::Build needs the feature matrix");
  }
  std::unique_ptr<ReplicaSet> set(new ReplicaSet());
  set->num_shards_ = store.num_shards();
  set->options_ = options;
  const uint32_t R = options.replicas;
  const size_t cells = static_cast<size_t>(set->num_shards_) * R;
  set->slices_.reserve(cells);
  for (uint32_t s = 0; s < set->num_shards_; ++s) {
    for (uint32_t r = 0; r < R; ++r) {
      set->slices_.push_back(MakeReplicaSlice(store.shard(s), r, feature_dim, features));
    }
  }
  set->membership_ = std::make_unique<ReplicaMembershipService>(set->num_shards_, R);
  set->alive_masks_ = std::vector<std::atomic<uint32_t>>(set->num_shards_);
  const uint32_t full = R >= 32 ? ~uint32_t{0} : (uint32_t{1} << R) - 1;
  for (auto& mask : set->alive_masks_) {
    mask.store(full, std::memory_order_release);
  }
  set->cursors_ = std::vector<std::atomic<uint64_t>>(set->num_shards_);
  set->in_flight_ = std::vector<std::atomic<uint64_t>>(cells);
  set->routed_ = std::vector<std::atomic<uint64_t>>(cells);
  return set;
}

bool ReplicaSet::ReplicaAlive(uint32_t shard, uint32_t replica) const {
  if (shard >= num_shards_ || replica >= options_.replicas) {
    return false;
  }
  return (alive_masks_[shard].load(std::memory_order_acquire) >> replica) & 1;
}

uint32_t ReplicaSet::AliveReplicas(uint32_t shard) const {
  return static_cast<uint32_t>(std::popcount(AliveReplicaMask(shard)));
}

uint32_t ReplicaSet::AliveReplicaMask(uint32_t shard) const {
  return shard < num_shards_ ? alive_masks_[shard].load(std::memory_order_acquire) : 0;
}

Result<uint32_t> ReplicaSet::Route(uint32_t shard) {
  if (shard >= num_shards_) {
    return Status::OutOfRange("shard " + std::to_string(shard) + " >= num_shards " +
                              std::to_string(num_shards_));
  }
  const uint32_t mask = alive_masks_[shard].load(std::memory_order_acquire);
  if (mask == 0) {
    return Status::Unavailable("shard " + std::to_string(shard) + " has no live replicas");
  }
  uint32_t chosen = kInvalidId;
  if (options_.routing == "primary-only") {
    chosen = static_cast<uint32_t>(std::countr_zero(mask));  // lowest alive index
  } else if (options_.routing == "least-loaded") {
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (uint32_t r = 0; r < options_.replicas; ++r) {
      if (!((mask >> r) & 1)) {
        continue;
      }
      const uint64_t load = in_flight_[Index(shard, r)].load(std::memory_order_relaxed);
      if (load < best) {
        best = load;
        chosen = r;
      }
    }
  } else {  // round-robin
    const uint32_t alive = static_cast<uint32_t>(std::popcount(mask));
    uint32_t pick = static_cast<uint32_t>(
        cursors_[shard].fetch_add(1, std::memory_order_relaxed) % alive);
    for (uint32_t r = 0; r < options_.replicas; ++r) {
      if (!((mask >> r) & 1)) {
        continue;
      }
      if (pick == 0) {
        chosen = r;
        break;
      }
      --pick;
    }
  }
  if (chosen == kInvalidId) {
    return Status::Unavailable("shard " + std::to_string(shard) + " has no live replicas");
  }
  routed_[Index(shard, chosen)].fetch_add(1, std::memory_order_relaxed);
  in_flight_[Index(shard, chosen)].fetch_add(1, std::memory_order_relaxed);
  return chosen;
}

void ReplicaSet::Finish(uint32_t shard, uint32_t replica) {
  if (shard >= num_shards_ || replica >= options_.replicas) {
    return;
  }
  in_flight_[Index(shard, replica)].fetch_sub(1, std::memory_order_relaxed);
}

Result<MembershipView> ReplicaSet::KillReplica(uint32_t shard, uint32_t replica) {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  DGCL_ASSIGN_OR_RETURN(MembershipView view, membership_->CommitReplicaFailure(shard, replica));
  alive_masks_[shard].store(membership_->AliveReplicaMask(shard), std::memory_order_release);
  replica_kills_.fetch_add(1, std::memory_order_relaxed);
  if (membership_->AliveReplicas(shard) == 0) {
    last_replica_deaths_.fetch_add(1, std::memory_order_relaxed);
  }
  return view;
}

MembershipView ReplicaSet::membership_view() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return membership_->view();
}

uint64_t ReplicaSet::replica_epoch() const {
  std::lock_guard<std::mutex> lock(membership_mutex_);
  return membership_->replica_epoch();
}

ReplicaSet::Stats ReplicaSet::stats() const {
  Stats s;
  s.replicas_per_shard = options_.replicas;
  s.routed.reserve(routed_.size());
  for (const auto& counter : routed_) {
    s.routed.push_back(counter.load(std::memory_order_relaxed));
  }
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.replica_kills = replica_kills_.load(std::memory_order_relaxed);
  s.last_replica_deaths = last_replica_deaths_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dgcl
