// Cross-request batching of remote feature-row fetches.
//
// Without batching, every request that misses the cache issues its own
// Transmit per owner shard, so concurrent requests hammer the same
// (owner, home) connection with many small messages, each paying the
// per-message wire cost (latency injection, retry state, and the
// `header_bytes` request envelope). FetchBatcher coalesces: the first
// fetcher to arrive at an idle (owner, home) channel becomes the batch
// *leader* and holds the batch open; fetchers arriving while it is open join
// the batch instead of transmitting themselves. The leader flushes when the
// arrival gap closes the batch (no new rows for `close_gap_micros` — so an
// idle channel never pays the whole window, see FetchBatchOptions), when the
// hard `window_micros` cap expires, or when the batch hits `max_rows`; it
// then issues ONE Transmit for the whole batch (header + all rows) over the
// pair's connection, still priced by the transport decision table and fault
// injection like every other transfer, and publishes the outcome to every
// joiner. p99 under load and bytes-on-wire both win (bench_minibatch
// records the two curves; EXPERIMENTS.md has the table).
//
// Concurrency contract (TSan-gated via scripts/check_sanitizers.sh): all
// channel state is guarded by the per-channel mutex; joiners block on the
// channel condvar until their batch's `done` flag is set by the leader, with
// every wait deadline-bounded so a wedged leader cannot hang a worker
// forever. One leader transmits at a time per *batch*; a new batch may start
// accumulating while the previous leader is still on the wire — the
// connection's own transmit mutex (owned by the caller-provided transmit
// function) serializes the wire itself.
//
// Disabled mode (enabled = false, the default) degrades to one Transmit per
// Fetch call through the same code path, so message/row/byte accounting is
// identical in shape and the bench compares like with like.

#ifndef DGCL_SERVICE_FETCH_BATCHER_H_
#define DGCL_SERVICE_FETCH_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace dgcl {

struct FetchBatchOptions {
  // Coalesce concurrent fetches per (owner, home) pair. Off by default: the
  // window trades a bounded latency add on idle channels for a large p99 and
  // bytes win under load, so the caller opts in.
  bool enabled = false;
  // Hard cap on how long a batch leader holds the batch open for joiners.
  uint64_t window_micros = 200;
  // Arrival-gap close: the leader flushes as soon as no new rows have
  // arrived for this long, instead of sitting out the full window — an idle
  // channel pays ~one gap of latency, not one window (the 500µs-window
  // latency cliff in BENCH_minibatch.json was exactly that fixed hold).
  // 0 = legacy behavior: hold the batch open for the whole window.
  uint64_t close_gap_micros = 50;
  // A batch reaching this many rows flushes immediately.
  size_t max_rows = 256;
  // Per-Transmit request envelope (row keys, request ids) — the fixed
  // per-message cost batching amortizes.
  uint64_t header_bytes = 64;

  Status Validate() const;
};

class FetchBatcher {
 public:
  struct Stats {
    uint64_t messages = 0;   // Transmits issued
    uint64_t rows = 0;       // feature rows carried by them
    uint64_t bytes = 0;      // bytes on wire incl. per-message header
    uint64_t coalesced = 0;  // Fetch calls that rode another call's Transmit
  };

  // `row_bytes` is the wire size of one feature row. `deadline_micros`
  // bounds every internal wait.
  FetchBatcher(uint32_t num_shards, uint64_t row_bytes, uint64_t deadline_micros,
               FetchBatchOptions options);

  FetchBatcher(const FetchBatcher&) = delete;
  FetchBatcher& operator=(const FetchBatcher&) = delete;

  // Puts `rows` feature rows from `owner` on the wire toward `home`, batched
  // with whatever else is outstanding for that pair. Blocks until the batch
  // carrying them is transmitted; returns that Transmit's status (every
  // batch member sees the same status — a retry-exhausted kUnavailable fails
  // the whole batch, exactly like the unbatched fetch it replaces).
  // `transmit(bytes)` is invoked by exactly one member (the leader) and must
  // serialize the wire itself (the service wraps Connection::Transmit in the
  // pair's connection mutex).
  Status Fetch(uint32_t owner, uint32_t home, size_t rows,
               const std::function<Status(uint64_t bytes)>& transmit);

  Stats stats() const;
  const FetchBatchOptions& options() const { return options_; }

 private:
  struct Batch {
    size_t rows = 0;
    bool done = false;
    Status status;
  };
  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::shared_ptr<Batch> open;  // batch accepting joiners; null when idle
  };

  Channel& channel(uint32_t owner, uint32_t home) {
    return *channels_[static_cast<size_t>(owner) * num_shards_ + home];
  }

  uint32_t num_shards_;
  uint64_t row_bytes_;
  uint64_t deadline_micros_;
  FetchBatchOptions options_;
  std::vector<std::unique_ptr<Channel>> channels_;

  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_FETCH_BATCHER_H_
