// Seeded, deterministic samplers over the sharded store.
//
// Two samplers, mirroring the GraphMix/DistDGL split:
//  * LocalNode — uniform local vertices of one shard (mini-batch seed
//    selection; every training step starts here).
//  * NeighborSampler — GraphSAGE-style fanout-capped k-hop expansion from
//    the seeds, walking shard boundaries through the store's ownership map.
//
// The determinism contract (sampler_determinism_test, mirroring
// plan_determinism_test's): the sampled set is a pure function of
// (graph, seeds, options.seed) — NOT of the sampler-pool width, queue order,
// or which worker thread picks the request up. It holds because every
// random choice is drawn from an Rng keyed by MixSeed(seed, hop, vertex)
// (graph/khop.h), never from shared mutable RNG state. With every shard
// alive, NeighborSampler::Sample is byte-identical to the single-machine
// SampleKHop over the same graph.
//
// A frontier vertex owned by a dead shard cannot be expanded (its adjacency
// lives there); Sample fails with kUnavailable naming that shard as the
// suspect, which the service surfaces in the response.

#ifndef DGCL_SERVICE_SAMPLER_H_
#define DGCL_SERVICE_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "comm/relation.h"
#include "common/status.h"
#include "graph/khop.h"
#include "service/graph_shard.h"

namespace dgcl {

// `count` distinct local vertices of `shard`, ascending global ids, drawn
// uniformly without replacement from Rng(MixSeed(seed, shard.id(), 0)).
// count >= num_local returns all locals.
std::vector<VertexId> SampleLocalNodes(const GraphShard& shard, uint32_t count, uint64_t seed);

struct SampleResult {
  std::vector<VertexId> nodes;    // sampled set, ascending global ids
  uint64_t remote_expansions = 0; // frontier expansions owned by another shard
  DeviceMask shards_touched = 0;  // every shard that owned an expanded vertex
};

class NeighborSampler {
 public:
  explicit NeighborSampler(const ShardedGraphStore* store) : store_(store) {}

  // Fanout-capped k-hop sample from `seeds`, as served by `home_shard`.
  // `alive` is the live-shard mask (bit s = shard s alive); expanding a
  // vertex owned by a dead shard returns kUnavailable with the shard named
  // in the message (and in `*dead_shard` when non-null). All-alive output
  // equals SampleKHop(graph, seeds, opts).
  Result<SampleResult> Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                              const SampleKHopOptions& options, DeviceMask alive,
                              uint32_t* dead_shard = nullptr) const;

  const ShardedGraphStore& store() const { return *store_; }

 private:
  const ShardedGraphStore* store_;  // not owned; outlives the sampler
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_SAMPLER_H_
