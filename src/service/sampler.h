// Seeded, deterministic samplers over the sharded store.
//
// The sampler layer is a strategy family (mirroring the planner family in
// src/planner/): every strategy derives from `Sampler` and is registered by
// name in the process-wide SamplerRegistry (service/sampler_registry.h).
// Built-ins, following the GraphMix/DistDGL split:
//  * SampleLocalNodes — uniform local vertices of one shard (mini-batch seed
//    selection; every training step starts here).
//  * "uniform" (NeighborSampler) — GraphSAGE-style fanout-capped k-hop
//    expansion from the seeds, uniform without replacement per frontier
//    vertex, walking shard boundaries through the store's ownership map.
//  * "weighted" (WeightedNeighborSampler) — same frontier walk, but each
//    vertex keeps its fanout neighbors degree-biased (importance sampling
//    toward hubs; the graph carries no edge weights, so a neighbor's weight
//    is its degree).
//  * "random-walk" (RandomWalkSampler) — `fanout` independent uniform random
//    walks of `hops` steps from every seed; the sampled set is the union of
//    the visited vertices.
//
// The determinism contract (sampler_determinism_test + the registry-wide
// sampler_conformance_test, mirroring plan_determinism_test's): the sampled
// set is a pure function of (graph, seeds, options.seed) per strategy — NOT
// of the sampler-pool width, queue order, or which worker thread picks the
// request up. It holds because every random choice is drawn from an Rng
// keyed by the counter-hashed MixSeed (graph/khop.h) — (seed, hop, vertex)
// for the frontier strategies, (seed, start, walk) for walks — never from
// shared mutable RNG state. With every shard alive, NeighborSampler::Sample
// is byte-identical to the single-machine SampleKHop over the same graph.
//
// A frontier vertex owned by a dead shard cannot be expanded (its adjacency
// lives there); Sample fails with kUnavailable naming that shard as the
// suspect, which the service surfaces in the response. Random walks apply
// the same rule to every vertex they step through.

#ifndef DGCL_SERVICE_SAMPLER_H_
#define DGCL_SERVICE_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "comm/relation.h"
#include "common/status.h"
#include "graph/khop.h"
#include "service/graph_shard.h"

namespace dgcl {

// `count` distinct local vertices of `shard`, ascending global ids, drawn
// uniformly without replacement from Rng(MixSeed(seed, shard.id(), 0)).
// count >= num_local returns all locals.
std::vector<VertexId> SampleLocalNodes(const GraphShard& shard, uint32_t count, uint64_t seed);

struct SampleResult {
  std::vector<VertexId> nodes;    // sampled set, ascending global ids
  uint64_t remote_expansions = 0; // frontier expansions owned by another shard
  DeviceMask shards_touched = 0;  // every shard that owned an expanded vertex
};

// Strategy interface. Implementations are stateless over a const store, so
// one instance is shared by every worker of a service (Sample is const and
// must be thread-safe).
class Sampler {
 public:
  virtual ~Sampler() = default;

  // Sample from `seeds`, as served by `home_shard`. `alive` is the
  // live-shard mask (bit s = shard s alive); expanding a vertex owned by a
  // dead shard returns kUnavailable with the shard named in the message
  // (and in `*dead_shard` when non-null).
  virtual Result<SampleResult> Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                                      const SampleKHopOptions& options, DeviceMask alive,
                                      uint32_t* dead_shard = nullptr) const = 0;

  // The registered strategy name ("uniform", "weighted", "random-walk", ...).
  virtual const char* name() const = 0;

  const ShardedGraphStore& store() const { return *store_; }

 protected:
  explicit Sampler(const ShardedGraphStore* store) : store_(store) {}

  const ShardedGraphStore* store_;  // not owned; outlives the sampler
};

// "uniform": fanout-capped k-hop, uniform per frontier vertex. All-alive
// output equals SampleKHop(graph, seeds, opts) byte for byte.
class NeighborSampler : public Sampler {
 public:
  explicit NeighborSampler(const ShardedGraphStore* store) : Sampler(store) {}

  Result<SampleResult> Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                              const SampleKHopOptions& options, DeviceMask alive,
                              uint32_t* dead_shard = nullptr) const override;
  const char* name() const override { return "uniform"; }
};

// "weighted": fanout-capped k-hop with degree-biased neighbor choice
// (SampleNeighborsWeighted). Same frontier walk and failure semantics as
// "uniform"; only the per-vertex pick differs.
class WeightedNeighborSampler : public Sampler {
 public:
  explicit WeightedNeighborSampler(const ShardedGraphStore* store) : Sampler(store) {}

  Result<SampleResult> Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                              const SampleKHopOptions& options, DeviceMask alive,
                              uint32_t* dead_shard = nullptr) const override;
  const char* name() const override { return "weighted"; }
};

// "random-walk": options.fanout walks of options.hops steps from each seed;
// nodes = union of visited vertices, ascending. Every vertex a walk steps
// *from* needs its owner alive (its adjacency lives there), mirroring the
// frontier strategies' dead-shard rule.
class RandomWalkSampler : public Sampler {
 public:
  explicit RandomWalkSampler(const ShardedGraphStore* store) : Sampler(store) {}

  Result<SampleResult> Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                              const SampleKHopOptions& options, DeviceMask alive,
                              uint32_t* dead_shard = nullptr) const override;
  const char* name() const override { return "random-walk"; }
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_SAMPLER_H_
