// Shard replicas for read scaling, with replica-aware routing and failover.
//
// The serving tier (service.h) shards the graph once; before this layer each
// shard was a single home — one KillShard turned it kUnavailable and read
// throughput was capped by one sampler pool per shard. Following DistDGL's
// read-replication, a ReplicaSet gives every shard R routable read replicas:
// each holds its own copy of the shard's CSR slice index and feature rows
// (ReplicaSlice, graph_shard.h), runs its own sampler pool, and is a
// first-class liveness unit — KillReplica folds one replica away, and the
// shard stays serving until its *last* replica dies (at which point the
// device-level membership epoch commits, exactly like a whole-shard kill).
//
// Routing policies (ServiceOptions::replication.routing):
//  * "round-robin"  — per-shard atomic cursor over the alive replicas; the
//                     default, spreads reads evenly.
//  * "least-loaded" — alive replica with the fewest in-flight requests
//                     (routed minus finished), lowest index on ties.
//  * "primary-only" — lowest alive index; replicas 1..R-1 are pure failover
//                     capacity (the classic primary/standby shape).
//
// Why routing cannot change payloads: every response is a pure function of
// (request, graph) — the samplers draw from counter-hashed seeds and every
// replica's slice is a byte-identical copy — so the byte-identity contract
// the conformance tests pin (replica_conformance_test) holds for every
// policy and every kill schedule that leaves a survivor. Routing decides
// latency and liveness, never bytes.
//
// Concurrency: Route/Finish/alive checks are lock-free (atomics); kill
// commits take the internal mutex and go through the PR-5 epoch machinery
// (ReplicaMembershipService, runtime/recovery.h). The service serializes
// kill + queue-handoff sequences with its own kill mutex on top.

#ifndef DGCL_SERVICE_REPLICA_SET_H_
#define DGCL_SERVICE_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/recovery.h"
#include "service/graph_shard.h"

namespace dgcl {

struct ReplicationOptions {
  // Read replicas per shard (R). 1 = the pre-replica behavior: one home per
  // shard, KillShard is the only failure unit.
  uint32_t replicas = 1;
  // "round-robin" | "least-loaded" | "primary-only".
  std::string routing = "round-robin";

  Status Validate() const;
};

class ReplicaSet {
 public:
  struct Stats {
    uint32_t replicas_per_shard = 1;
    std::vector<uint64_t> routed;      // [shard * R + r] requests routed there
    uint64_t failovers = 0;            // requests rerouted off a dying replica
    uint64_t replica_kills = 0;        // committed replica deaths
    uint64_t last_replica_deaths = 0;  // kills that exhausted a shard
  };

  // Materializes R replica slices per shard from the global feature matrix
  // (`features` = num_vertices rows of `feature_dim` floats) and arms the
  // replica membership. The store must outlive the set.
  static Result<std::unique_ptr<ReplicaSet>> Build(const ShardedGraphStore& store,
                                                   uint32_t feature_dim, const float* features,
                                                   ReplicationOptions options);

  uint32_t num_shards() const { return num_shards_; }
  uint32_t replicas_per_shard() const { return options_.replicas; }
  const ReplicationOptions& options() const { return options_; }

  // Picks an alive replica of `shard` per the configured policy and counts
  // it as routed + in flight. kUnavailable naming the shard when its last
  // replica is gone. Thread-safe, lock-free.
  Result<uint32_t> Route(uint32_t shard);

  // Marks one routed request finished (its response was produced or it was
  // handed to another replica). Exactly one Finish per successful Route.
  void Finish(uint32_t shard, uint32_t replica);

  bool ShardAlive(uint32_t shard) const { return AliveReplicaMask(shard) != 0; }
  bool ReplicaAlive(uint32_t shard, uint32_t replica) const;
  uint32_t AliveReplicas(uint32_t shard) const;
  uint32_t AliveReplicaMask(uint32_t shard) const;

  // Commits replica (shard, replica) dead through the membership epochs and
  // returns the device-level view after the commit (the caller refreshes its
  // alive mask from it). Killing a shard's last replica commits the shard
  // dead; the last replica of the last alive shard cannot be killed.
  Result<MembershipView> KillReplica(uint32_t shard, uint32_t replica);

  // Device-level membership (epoch + shard alive mask).
  MembershipView membership_view() const;
  uint64_t replica_epoch() const;

  // Counts a rerouted request (a failover) — the service calls this when a
  // dead replica's queue is drained onto survivors or a Submit loses the
  // race with a kill and re-routes.
  void CountFailover(uint64_t n = 1) { failovers_.fetch_add(n, std::memory_order_relaxed); }

  const ReplicaSlice& slice(uint32_t shard, uint32_t replica) const {
    return slices_[Index(shard, replica)];
  }
  // In-flight requests currently routed to (shard, replica).
  uint64_t InFlight(uint32_t shard, uint32_t replica) const {
    return in_flight_[Index(shard, replica)].load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  ReplicaSet() = default;

  size_t Index(uint32_t shard, uint32_t replica) const {
    return static_cast<size_t>(shard) * options_.replicas + replica;
  }

  uint32_t num_shards_ = 0;
  ReplicationOptions options_;
  std::vector<ReplicaSlice> slices_;  // [shard * R + r]

  // Commit path: membership under the mutex, mask mirrored into atomics for
  // the lock-free route path.
  mutable std::mutex membership_mutex_;
  std::unique_ptr<ReplicaMembershipService> membership_;
  std::vector<std::atomic<uint32_t>> alive_masks_;  // per shard

  std::vector<std::atomic<uint64_t>> cursors_;    // per shard, round-robin
  std::vector<std::atomic<uint64_t>> in_flight_;  // per (shard, replica)
  std::vector<std::atomic<uint64_t>> routed_;     // per (shard, replica)
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> replica_kills_{0};
  std::atomic<uint64_t> last_replica_deaths_{0};
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_REPLICA_SET_H_
