// Sampled mini-batch training driven by the serving tier.
//
// Closes the DistDGL-style loop the service left open: instead of serving
// inference only, the GraphService's sampler family now feeds a trainer. One
// epoch = `batches_per_epoch` mini-batches; batch b of epoch e is sampled by
// home shard (b mod num_shards) with a per-batch seed mixed as
// MixSeed(sample.seed, epoch, b) — the whole training schedule is a pure
// function of the options, like every other sampled artifact (the strategy
// is whatever `sampler` names in the SamplerRegistry; empty = the service
// default). The sampled nodes' feature rows ride back on the response
// (SampleRequest::return_features), which also exercises the remote-fetch
// path — cache, connection pricing, and cross-request batching — under
// training load, and the MiniBatchModel (gnn/trainer.h) runs
// forward/backward/SGD on the induced block.
//
// Epoch boundaries reuse the PR-5 checkpoint machinery: after every
// completed epoch the model's ReplicaWeights are snapshotted; a mid-epoch
// failure (e.g. a shard died under the sampler — the same kUnavailable
// fail-fast the inference path has) leaves the model partially stepped, and
// RestoreCheckpoint rewinds it to the epoch boundary so the retried epoch
// reproduces a fresh one exactly.
//
// The acceptance contract (minibatch_trainer_test): on the community-graph
// fixture, the mini-batch loss trajectory must close most of the gap the
// full-graph DistributedTrainer closes, and recovery-restored epochs must be
// byte-identical to never-failed ones.

#ifndef DGCL_SERVICE_MINIBATCH_TRAINER_H_
#define DGCL_SERVICE_MINIBATCH_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gnn/trainer.h"
#include "service/service.h"

namespace dgcl {

struct MiniBatchTrainerOptions {
  // Model/optimizer knobs; weight_seed makes the starting replica identical
  // to a full-graph trainer created with the same options.
  TrainerOptions trainer;
  uint32_t batch_seeds = 32;       // seed vertices per mini-batch
  uint32_t batches_per_epoch = 8;  // home shards rotate round-robin
  // Sampling strategy name (SamplerRegistry); empty = the service default.
  std::string sampler;
  // hops/fanout per batch; `seed` is the base of the per-(epoch, batch)
  // schedule, not used directly.
  SampleKHopOptions sample;

  Status Validate() const;
};

class MiniBatchTrainer {
 public:
  // `service` must outlive the trainer (Start() not required — batches go
  // through the synchronous Serve path). `labels` has one entry per global
  // vertex, kInvalidId = unlabeled.
  static Result<std::unique_ptr<MiniBatchTrainer>> Create(GraphService* service,
                                                          std::vector<uint32_t> labels,
                                                          uint32_t num_classes,
                                                          MiniBatchTrainerOptions options);

  // Runs one epoch of sampled mini-batch SGD. Returns the labeled-row-
  // weighted mean loss/accuracy over the epoch's batches, and snapshots the
  // epoch-boundary checkpoint on success. A replica dying mid-epoch while
  // survivors remain is ridden through: the batch retries once on a
  // survivor and reproduces byte-identically (counted in ride_throughs()),
  // no rewind. On real failure (shard dead, deadline) the model may be
  // partially stepped — call RestoreCheckpoint before retrying.
  Result<EpochResult> TrainEpoch();

  // Full-graph evaluation of the current weights over the service's feature
  // matrix (the measuring stick the loss-trajectory test compares against
  // full-graph training).
  Result<EpochResult> Evaluate();

  // Last epoch-boundary weights (the initial weights before any epoch).
  const ReplicaWeights& checkpoint() const { return checkpoint_; }
  // Rewinds the model to `checkpoint()`.
  Status RestoreCheckpoint();

  uint64_t epochs() const { return epochs_; }
  // Batches that hit a dying replica and were retried on a survivor.
  uint64_t ride_throughs() const { return ride_throughs_; }

 private:
  explicit MiniBatchTrainer(MiniBatchModel model) : model_(std::move(model)) {}

  GraphService* service_ = nullptr;
  std::vector<uint32_t> labels_;
  MiniBatchTrainerOptions options_;
  MiniBatchModel model_;
  ReplicaWeights checkpoint_;
  uint64_t epochs_ = 0;
  uint64_t ride_throughs_ = 0;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_MINIBATCH_TRAINER_H_
