// Bounded MPMC queue with backpressure — the request/response channel of the
// graph service tier.
//
// Design goals, in order:
//  * Backpressure is explicit: TryPush fails (rather than blocks) when the
//    queue is full, so an open-loop load generator sees shed requests
//    instead of silently serializing, and Push takes a deadline so a
//    producer can never hang on a stalled consumer.
//  * Shutdown is a first-class state: Close() wakes every waiter; pending
//    items stay poppable (the service drains a killed shard's queue to fail
//    its requests with kUnavailable instead of dropping them on the floor).
//  * Simplicity over throughput: one mutex and two condition variables. The
//    per-request work (k-hop sampling + feature assembly) dwarfs queue
//    costs at this reproduction's scale, and the mutex keeps the structure
//    trivially TSan-clean (scripts/check_sanitizers.sh gates it).

#ifndef DGCL_SERVICE_REQUEST_QUEUE_H_
#define DGCL_SERVICE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dgcl {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking enqueue; false when full or closed (the backpressure
  // signal). Item is untouched on failure.
  bool TryPush(T& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }
  bool TryPush(T&& item) {
    T moved = std::move(item);
    return TryPush(moved);
  }

  // Blocking enqueue with a deadline: false when the queue stayed full for
  // `timeout_micros` or was closed while waiting.
  bool Push(T item, uint64_t timeout_micros) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_micros);
    if (!not_full_.wait_until(lock, deadline,
                              [&] { return closed_ || items_.size() < capacity_; })) {
      return false;
    }
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocking dequeue with a deadline. nullopt on timeout, or when the queue
  // is closed *and* drained (pending items of a closed queue still pop).
  std::optional<T> Pop(uint64_t timeout_micros) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_micros);
    if (!not_empty_.wait_until(lock, deadline, [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking dequeue; nullopt when empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Rejects new pushes and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_REQUEST_QUEUE_H_
