#include "service/sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace dgcl {

namespace {

// The per-vertex neighbor pick is the only difference between the frontier
// strategies; SampleNeighbors / SampleNeighborsWeighted share this signature.
using NeighborPick = std::vector<VertexId> (*)(const CsrGraph&, VertexId, uint32_t, uint64_t,
                                               uint32_t);

// Mirrors SampleKHop (graph/khop.cc) exactly, with ownership resolution on
// every expansion — keep the hop numbering and visit order in lockstep or
// the all-alive byte-identity contract (uniform vs SampleKHop) breaks.
Result<SampleResult> FrontierSample(const ShardedGraphStore& store, uint32_t home_shard,
                                    std::span<const VertexId> seeds,
                                    const SampleKHopOptions& options, DeviceMask alive,
                                    uint32_t* dead_shard, NeighborPick pick) {
  const CsrGraph& graph = store.graph();
  SampleResult result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier;
  for (VertexId s : seeds) {
    if (s >= graph.num_vertices()) {
      return Status::OutOfRange("sample seed " + std::to_string(s) + " >= num_vertices");
    }
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
      result.nodes.push_back(s);
    }
  }
  std::sort(frontier.begin(), frontier.end());
  std::vector<VertexId> next;
  for (uint32_t hop = 0; hop < options.hops && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      const uint32_t owner = store.OwnerOf(v);
      if (((alive >> owner) & 1) == 0) {
        if (dead_shard != nullptr) {
          *dead_shard = owner;
        }
        return Status::Unavailable("shard " + std::to_string(owner) +
                                   " is dead; cannot expand vertex " + std::to_string(v));
      }
      result.shards_touched |= DeviceMask{1} << owner;
      if (owner != home_shard) {
        ++result.remote_expansions;
      }
      for (VertexId nbr : pick(graph, v, options.fanout, options.seed, hop)) {
        if (!visited[nbr]) {
          visited[nbr] = 1;
          next.push_back(nbr);
          result.nodes.push_back(nbr);
        }
      }
    }
    std::sort(next.begin(), next.end());
    std::swap(frontier, next);
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace

std::vector<VertexId> SampleLocalNodes(const GraphShard& shard, uint32_t count, uint64_t seed) {
  const std::vector<VertexId>& locals = shard.local_vertices();
  const uint64_t n = locals.size();
  if (count >= n) {
    return locals;
  }
  Rng rng(MixSeed(seed, shard.id(), 0));
  std::unordered_map<uint64_t, uint64_t> swapped;
  std::vector<VertexId> chosen;
  chosen.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t j = i + rng.UniformInt(n - i);
    auto at = [&](uint64_t k) {
      auto it = swapped.find(k);
      return it == swapped.end() ? k : it->second;
    };
    const uint64_t pick = at(j);
    swapped[j] = at(i);
    chosen.push_back(locals[pick]);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Result<SampleResult> NeighborSampler::Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                                             const SampleKHopOptions& options, DeviceMask alive,
                                             uint32_t* dead_shard) const {
  return FrontierSample(*store_, home_shard, seeds, options, alive, dead_shard, &SampleNeighbors);
}

Result<SampleResult> WeightedNeighborSampler::Sample(uint32_t home_shard,
                                                     std::span<const VertexId> seeds,
                                                     const SampleKHopOptions& options,
                                                     DeviceMask alive,
                                                     uint32_t* dead_shard) const {
  return FrontierSample(*store_, home_shard, seeds, options, alive, dead_shard,
                        &SampleNeighborsWeighted);
}

Result<SampleResult> RandomWalkSampler::Sample(uint32_t home_shard,
                                               std::span<const VertexId> seeds,
                                               const SampleKHopOptions& options, DeviceMask alive,
                                               uint32_t* dead_shard) const {
  const CsrGraph& graph = store_->graph();
  SampleResult result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> starts;
  for (VertexId s : seeds) {
    if (s >= graph.num_vertices()) {
      return Status::OutOfRange("sample seed " + std::to_string(s) + " >= num_vertices");
    }
    if (!visited[s]) {
      visited[s] = 1;
      starts.push_back(s);
      result.nodes.push_back(s);
    }
  }
  // Walks are keyed by (seed, start, walk index), so they are independent of
  // each other and of visit order; iterating starts ascending only pins which
  // dead shard is reported first.
  std::sort(starts.begin(), starts.end());
  for (VertexId start : starts) {
    for (uint32_t walk = 0; walk < options.fanout; ++walk) {
      const std::vector<VertexId> path =
          SampleRandomWalk(graph, start, options.hops, options.seed, walk);
      // Every vertex the walk read adjacency for needs its owner alive: each
      // step position, plus the dead end itself when the walk stopped early.
      const bool completed = path.size() == static_cast<size_t>(options.hops) + 1;
      const size_t expanded = completed ? path.size() - 1 : path.size();
      for (size_t i = 0; i < expanded; ++i) {
        const uint32_t owner = store_->OwnerOf(path[i]);
        if (((alive >> owner) & 1) == 0) {
          if (dead_shard != nullptr) {
            *dead_shard = owner;
          }
          return Status::Unavailable("shard " + std::to_string(owner) +
                                     " is dead; cannot expand vertex " + std::to_string(path[i]));
        }
        result.shards_touched |= DeviceMask{1} << owner;
        if (owner != home_shard) {
          ++result.remote_expansions;
        }
      }
      for (VertexId v : path) {
        if (!visited[v]) {
          visited[v] = 1;
          result.nodes.push_back(v);
        }
      }
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace dgcl
