#include "service/sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace dgcl {

std::vector<VertexId> SampleLocalNodes(const GraphShard& shard, uint32_t count, uint64_t seed) {
  const std::vector<VertexId>& locals = shard.local_vertices();
  const uint64_t n = locals.size();
  if (count >= n) {
    return locals;
  }
  Rng rng(MixSeed(seed, shard.id(), 0));
  std::unordered_map<uint64_t, uint64_t> swapped;
  std::vector<VertexId> chosen;
  chosen.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t j = i + rng.UniformInt(n - i);
    auto at = [&](uint64_t k) {
      auto it = swapped.find(k);
      return it == swapped.end() ? k : it->second;
    };
    const uint64_t pick = at(j);
    swapped[j] = at(i);
    chosen.push_back(locals[pick]);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Result<SampleResult> NeighborSampler::Sample(uint32_t home_shard, std::span<const VertexId> seeds,
                                             const SampleKHopOptions& options, DeviceMask alive,
                                             uint32_t* dead_shard) const {
  const CsrGraph& graph = store_->graph();
  SampleResult result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier;
  for (VertexId s : seeds) {
    if (s >= graph.num_vertices()) {
      return Status::OutOfRange("sample seed " + std::to_string(s) + " >= num_vertices");
    }
    if (!visited[s]) {
      visited[s] = 1;
      frontier.push_back(s);
      result.nodes.push_back(s);
    }
  }
  std::sort(frontier.begin(), frontier.end());
  std::vector<VertexId> next;
  // Mirrors SampleKHop (graph/khop.cc) exactly, with ownership resolution on
  // every expansion — keep the hop numbering and visit order in lockstep or
  // the all-alive byte-identity contract breaks.
  for (uint32_t hop = 0; hop < options.hops && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      const uint32_t owner = store_->OwnerOf(v);
      if (((alive >> owner) & 1) == 0) {
        if (dead_shard != nullptr) {
          *dead_shard = owner;
        }
        return Status::Unavailable("shard " + std::to_string(owner) +
                                   " is dead; cannot expand vertex " + std::to_string(v));
      }
      result.shards_touched |= DeviceMask{1} << owner;
      if (owner != home_shard) {
        ++result.remote_expansions;
      }
      for (VertexId nbr : SampleNeighbors(graph, v, options.fanout, options.seed, hop)) {
        if (!visited[nbr]) {
          visited[nbr] = 1;
          next.push_back(nbr);
          result.nodes.push_back(nbr);
        }
      }
    }
    std::sort(next.begin(), next.end());
    std::swap(frontier, next);
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace dgcl
