#include "service/graph_shard.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace dgcl {

GraphShard::GraphShard(uint32_t id, const CsrGraph* graph, std::vector<VertexId> locals)
    : id_(id), graph_(graph), locals_(std::move(locals)) {
  DGCL_CHECK(std::is_sorted(locals_.begin(), locals_.end()));
}

uint32_t GraphShard::LocalRank(VertexId global) const {
  auto it = std::lower_bound(locals_.begin(), locals_.end(), global);
  if (it == locals_.end() || *it != global) {
    return kInvalidId;
  }
  return static_cast<uint32_t>(it - locals_.begin());
}

uint64_t GraphShard::CountRemoteEdges(const Partitioning& partitioning) const {
  uint64_t remote = 0;
  for (VertexId v : locals_) {
    for (VertexId nbr : graph_->Neighbors(v)) {
      if (partitioning.assignment[nbr] != id_) {
        ++remote;
      }
    }
  }
  return remote;
}

const float* ReplicaSlice::RowOf(VertexId global) const {
  auto it = std::lower_bound(locals.begin(), locals.end(), global);
  if (it == locals.end() || *it != global) {
    return nullptr;
  }
  return rows.data() + static_cast<size_t>(it - locals.begin()) * dim;
}

ReplicaSlice MakeReplicaSlice(const GraphShard& shard, uint32_t replica, uint32_t dim,
                              const float* features) {
  ReplicaSlice slice;
  slice.shard = shard.id();
  slice.replica = replica;
  slice.dim = dim;
  slice.locals = shard.local_vertices();
  slice.rows.resize(slice.locals.size() * static_cast<size_t>(dim));
  for (size_t i = 0; i < slice.locals.size(); ++i) {
    const float* src = features + static_cast<size_t>(slice.locals[i]) * dim;
    std::copy_n(src, dim, slice.rows.data() + i * static_cast<size_t>(dim));
  }
  return slice;
}

Result<ShardedGraphStore> ShardedGraphStore::Build(const CsrGraph& graph,
                                                   const Partitioning& partitioning) {
  DGCL_RETURN_IF_ERROR(ValidatePartitioning(graph, partitioning));
  ShardedGraphStore store;
  store.graph_ = &graph;
  store.partitioning_ = partitioning;
  std::vector<std::vector<VertexId>> members(partitioning.num_parts);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    members[partitioning.assignment[v]].push_back(v);  // ascending by construction
  }
  store.shards_.reserve(partitioning.num_parts);
  for (uint32_t p = 0; p < partitioning.num_parts; ++p) {
    store.shards_.emplace_back(p, &graph, std::move(members[p]));
  }
  return store;
}

ShardedGraphStore::Resolved ShardedGraphStore::Resolve(VertexId v) const {
  Resolved r;
  if (v >= graph_->num_vertices()) {
    return r;
  }
  r.shard = partitioning_.assignment[v];
  r.local = shards_[r.shard].LocalRank(v);
  return r;
}

std::string ShardedGraphStore::DebugString() const {
  std::ostringstream os;
  os << "ShardedGraphStore{" << num_shards() << " shards:";
  for (const GraphShard& s : shards_) {
    os << " [" << s.id() << "]=" << s.num_local();
  }
  os << "}";
  return os.str();
}

}  // namespace dgcl
