// Sharded graph store: the partitioner's output reinterpreted as a serving
// layout (the DistDGL architecture at this reproduction's scale).
//
// Training-side DGCL partitions the graph once and bakes the layout into a
// communication plan; the serving tier instead keeps the partitioning online
// as a *store*: each shard owns the vertices of one part, answers global→
// local resolution, and exposes its locals' adjacency. A sampler walking a
// neighborhood crosses shard boundaries through OwnerOf — the remote-
// neighbor indirection that the service prices via the engine's connection
// table (see service.h) and that a dead shard turns into kUnavailable.
//
// All shards share one in-memory CsrGraph (this is a single-process
// reproduction; the paper's NIC transport is already emulated elsewhere).
// What is honest about the sharding is the *information boundary*: every
// lookup goes through shard-local indices and the ownership map, so the
// structure ports to a real RPC split without changing callers.

#ifndef DGCL_SERVICE_GRAPH_SHARD_H_
#define DGCL_SERVICE_GRAPH_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "graph/csr_graph.h"
#include "partition/partitioner.h"

namespace dgcl {

// One shard: the local vertex set of a part plus its resolution index.
class GraphShard {
 public:
  GraphShard(uint32_t id, const CsrGraph* graph, std::vector<VertexId> locals);

  uint32_t id() const { return id_; }
  // Owned global ids, ascending.
  const std::vector<VertexId>& local_vertices() const { return locals_; }
  uint32_t num_local() const { return static_cast<uint32_t>(locals_.size()); }

  bool Owns(VertexId global) const { return LocalRank(global) != kInvalidId; }

  // Dense local id in [0, num_local()) for an owned global id; kInvalidId
  // otherwise. Binary search over the sorted locals — O(log n), no per-shard
  // hash of the global id space.
  uint32_t LocalRank(VertexId global) const;

  // Global id of a local rank. Precondition: rank < num_local().
  VertexId GlobalOf(uint32_t rank) const { return locals_[rank]; }

  // Neighbors (global ids, ascending) of an owned vertex.
  std::span<const VertexId> Neighbors(VertexId global) const { return graph_->Neighbors(global); }

  // Directed edges from this shard's locals whose target is owned elsewhere
  // (the shard's remote frontier size; sizing signal for the feature cache).
  uint64_t CountRemoteEdges(const Partitioning& partitioning) const;

 private:
  uint32_t id_ = 0;
  const CsrGraph* graph_ = nullptr;  // not owned; outlives the shard
  std::vector<VertexId> locals_;     // ascending
};

// One read replica's copy of a shard's serving data: the shard's local
// vertex ids (its CSR slice index) and their feature rows, materialized per
// replica so every replica answers local reads from its own storage — the
// information boundary a real multi-server deployment would have. Replicas
// of a shard are byte-identical copies by construction, which is what lets
// the router pick any of them without perturbing response payloads.
struct ReplicaSlice {
  uint32_t shard = 0;
  uint32_t replica = 0;
  uint32_t dim = 0;
  std::vector<VertexId> locals;  // == the shard's locals, ascending
  std::vector<float> rows;       // locals.size() * dim; row i = features of locals[i]

  // Feature row of an owned global id; nullptr when this shard does not own
  // it. Binary search over the sorted locals, like GraphShard::LocalRank.
  const float* RowOf(VertexId global) const;

  uint64_t BytesHeld() const {
    return rows.size() * sizeof(float) + locals.size() * sizeof(VertexId);
  }
};

// Materializes replica `replica` of `shard` by copying its locals' rows out
// of the global feature matrix (`features` has one dim-wide row per global
// vertex id, densely packed).
ReplicaSlice MakeReplicaSlice(const GraphShard& shard, uint32_t replica, uint32_t dim,
                              const float* features);

// The full store: every shard plus the global ownership map.
class ShardedGraphStore {
 public:
  // Empty store; only Build produces a usable one.
  ShardedGraphStore() = default;

  // Fails when the partitioning does not cover the graph. The graph must
  // outlive the store.
  static Result<ShardedGraphStore> Build(const CsrGraph& graph, const Partitioning& partitioning);

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const GraphShard& shard(uint32_t id) const { return shards_[id]; }
  const CsrGraph& graph() const { return *graph_; }
  const Partitioning& partitioning() const { return partitioning_; }

  // Owning shard of a global vertex id. Precondition: v < num_vertices.
  uint32_t OwnerOf(VertexId v) const { return partitioning_.assignment[v]; }

  // (owner shard, local rank) resolution; kInvalidId pair when out of range.
  struct Resolved {
    uint32_t shard = kInvalidId;
    uint32_t local = kInvalidId;
  };
  Resolved Resolve(VertexId v) const;

  std::string DebugString() const;

 private:
  const CsrGraph* graph_ = nullptr;
  Partitioning partitioning_;
  std::vector<GraphShard> shards_;
};

}  // namespace dgcl

#endif  // DGCL_SERVICE_GRAPH_SHARD_H_
