#include "service/minibatch_trainer.h"

#include <utility>

#include "common/ids.h"
#include "gnn/local_graph.h"
#include "graph/khop.h"
#include "telemetry/trace.h"

namespace dgcl {

Status MiniBatchTrainerOptions::Validate() const {
  if (batch_seeds == 0) {
    return Status::InvalidArgument("batch_seeds must be >= 1");
  }
  if (batches_per_epoch == 0) {
    return Status::InvalidArgument("batches_per_epoch must be >= 1");
  }
  if (sample.fanout == 0) {
    return Status::InvalidArgument("sample.fanout must be >= 1");
  }
  if (!sampler.empty() && !SamplerRegistry::Global().Contains(sampler)) {
    return Status::InvalidArgument("unknown sampler \"" + sampler + "\"; registered samplers: " +
                                   SamplerRegistry::NamesForError());
  }
  return Status::Ok();
}

Result<std::unique_ptr<MiniBatchTrainer>> MiniBatchTrainer::Create(
    GraphService* service, std::vector<uint32_t> labels, uint32_t num_classes,
    MiniBatchTrainerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("MiniBatchTrainer needs a service");
  }
  DGCL_RETURN_IF_ERROR(options.Validate());
  if (labels.size() != service->store().graph().num_vertices()) {
    return Status::InvalidArgument("labels must cover every vertex");
  }
  DGCL_ASSIGN_OR_RETURN(
      MiniBatchModel model,
      MiniBatchModel::Create(service->options().feature_dim, num_classes, options.trainer));
  std::unique_ptr<MiniBatchTrainer> trainer(new MiniBatchTrainer(std::move(model)));
  trainer->service_ = service;
  trainer->labels_ = std::move(labels);
  trainer->options_ = std::move(options);
  trainer->checkpoint_ = trainer->model_.ExportReplica();
  return trainer;
}

Result<EpochResult> MiniBatchTrainer::TrainEpoch() {
  DGCL_TSPAN2("service", "train.epoch", "epoch", epochs_, "batches",
              options_.batches_per_epoch);
  const CsrGraph& graph = service_->store().graph();
  const uint32_t num_shards = service_->options().num_shards;
  double loss = 0.0;
  double accuracy = 0.0;
  uint64_t total_labeled = 0;
  for (uint32_t b = 0; b < options_.batches_per_epoch; ++b) {
    const uint32_t home = b % num_shards;
    auto make_request = [&] {
      SampleRequest request;
      request.request_id = epochs_ * options_.batches_per_epoch + b;
      request.shard = home;
      request.num_seeds = options_.batch_seeds;
      request.sample = options_.sample;
      // The per-batch seed schedule: a pure function of (base seed, epoch,
      // batch), so every epoch visits fresh mini-batches and a retried epoch
      // re-samples the very same ones.
      request.sample.seed = MixSeed(options_.sample.seed, epochs_, b);
      request.sampler = options_.sampler;
      request.return_features = true;
      return request;
    };
    SampleResponse response = service_->Serve(make_request());
    if (response.status.code() == StatusCode::kUnavailable &&
        service_->replicas().ShardAlive(home)) {
      // A replica died under this batch but survivors remain: the batch is a
      // pure function of the request, so one retry on a survivor reproduces
      // it byte-identically — the epoch continues, no checkpoint rewind.
      ++ride_throughs_;
      DGCL_TCOUNT1("service", "train.ride_through", 1, "shard", home);
      response = service_->Serve(make_request());
    }
    if (!response.status.ok()) {
      return response.status;
    }
    std::vector<uint32_t> batch_labels;
    batch_labels.reserve(response.nodes.size());
    uint64_t labeled = 0;
    for (VertexId v : response.nodes) {
      batch_labels.push_back(labels_[v]);
      if (labels_[v] != kInvalidId) {
        ++labeled;
      }
    }
    if (labeled == 0) {
      continue;  // fully-unlabeled batch: nothing to step on
    }
    CsrGraph subgraph = graph.InducedSubgraph(response.nodes);
    LocalGraph block = FullLocalGraph(subgraph);
    EpochResult step;
    {
      DGCL_TSPAN2("service", "train.step", "shard", b % num_shards, "nodes",
                  response.nodes.size());
      DGCL_ASSIGN_OR_RETURN(step, model_.Step(block, response.features, batch_labels));
    }
    loss += step.loss * static_cast<double>(labeled);
    accuracy += step.accuracy * static_cast<double>(labeled);
    total_labeled += labeled;
  }
  if (total_labeled == 0) {
    return Status::FailedPrecondition("no labeled vertices sampled this epoch");
  }
  ++epochs_;
  checkpoint_ = model_.ExportReplica();
  EpochResult result;
  result.loss = loss / static_cast<double>(total_labeled);
  result.accuracy = accuracy / static_cast<double>(total_labeled);
  return result;
}

Result<EpochResult> MiniBatchTrainer::Evaluate() {
  LocalGraph block = FullLocalGraph(service_->store().graph());
  return model_.Evaluate(block, service_->features(), labels_);
}

Status MiniBatchTrainer::RestoreCheckpoint() { return model_.ImportReplica(checkpoint_); }

}  // namespace dgcl
