#include "sim/epoch_sim.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/timer.h"
#include "graph/khop.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "planner/baselines.h"
#include "planner/cost_model.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "sim/swap_model.h"
#include "common/thread_pool.h"
#include "telemetry/trace.h"

namespace dgcl {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kDgcl:
      return "DGCL";
    case Method::kPeerToPeer:
      return "Peer-to-peer";
    case Method::kSwap:
      return "Swap";
    case Method::kReplication:
      return "Replication";
    case Method::kDgclR:
      return "DGCL-R";
    case Method::kDgclCache:
      return "DGCL+cache";
  }
  return "?";
}

namespace {

// Sum of degrees of `vertices` in `graph` — the edges a device touches when
// aggregating for those vertices.
uint64_t IncidentEdges(const CsrGraph& graph, std::span<const VertexId> vertices) {
  uint64_t edges = 0;
  for (VertexId v : vertices) {
    edges += graph.Degree(v);
  }
  return edges;
}

}  // namespace

Result<EpochSimulator> EpochSimulator::Create(const Dataset& dataset, const Topology& topo,
                                              EpochOptions options) {
  if (topo.num_devices() == 0) {
    return Status::InvalidArgument("empty topology");
  }
  if (options.num_layers == 0) {
    return Status::InvalidArgument("num_layers must be positive");
  }
  if (!(options.cache_hit_rate >= 0.0 && options.cache_hit_rate <= 1.0)) {
    return Status::InvalidArgument("cache_hit_rate must be in [0, 1], got " +
                                   std::to_string(options.cache_hit_rate));
  }
  if (!(options.fetch_batch_bytes_factor > 0.0 && options.fetch_batch_bytes_factor <= 1.0)) {
    return Status::InvalidArgument("fetch_batch_bytes_factor must be in (0, 1], got " +
                                   std::to_string(options.fetch_batch_bytes_factor));
  }
  EpochSimulator sim;
  sim.dataset_ = &dataset;
  sim.topo_ = &topo;
  options.memory.inverse_scale = 1;  // we scale footprints up instead
  sim.options_ = options;
  MultilevelPartitioner partitioner;
  DGCL_ASSIGN_OR_RETURN(sim.partitioning_,
                        PartitionForTopology(dataset.graph, topo, partitioner));
  DGCL_ASSIGN_OR_RETURN(sim.relation_, BuildCommRelation(dataset.graph, sim.partitioning_));
  return sim;
}

double EpochSimulator::DeviceComputeSeconds(uint64_t vertices, uint64_t edges) const {
  const uint64_t scale = options_.inverse_scale;
  return EpochComputeSeconds(options_.gnn, vertices * scale, edges * scale,
                             dataset_->feature_dim, dataset_->hidden_dim, options_.num_layers,
                             options_.compute);
}

double EpochSimulator::MaxComputeSeconds() const {
  double max_seconds = 0.0;
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    const auto& local = relation_.local_vertices[d];
    max_seconds = std::max(
        max_seconds, DeviceComputeSeconds(local.size(), IncidentEdges(dataset_->graph, local)));
  }
  return max_seconds;
}

Status EpochSimulator::CheckMemory(uint64_t stored_vertices, uint64_t stored_edges) const {
  const uint64_t scale = options_.inverse_scale;
  const double footprint =
      TrainingFootprintBytes(stored_vertices * scale, stored_edges * scale,
                             dataset_->feature_dim, dataset_->hidden_dim, options_.num_layers);
  if (WouldOom(footprint, options_.memory)) {
    return Status::ResourceExhausted("device footprint " + std::to_string(footprint / 1e9) +
                                     " GB exceeds capacity");
  }
  return Status::Ok();
}

Result<double> EpochSimulator::SimulateAllgatherSeconds(Planner& planner, uint32_t dim,
                                                        double volume_fraction,
                                                        double* estimated_seconds,
                                                        NetworkSimResult* net_result,
                                                        PassDirection direction,
                                                        bool non_atomic) const {
  const double bytes_per_unit =
      static_cast<double>(dim) * 4.0 * options_.inverse_scale * volume_fraction;
  DGCL_ASSIGN_OR_RETURN(CommPlan plan, planner.Plan(relation_, *topo_, bytes_per_unit));
  CompiledPlan compiled = CompilePlan(plan, *topo_);
  if (direction == PassDirection::kBackward) {
    AssignBackwardSubstages(compiled);
  }
  NetworkSimOptions net = options_.net;
  net.bytes_per_unit = bytes_per_unit;
  net.non_atomic = non_atomic;
  NetworkSimResult result = SimulateTransfer(compiled, *topo_, net, direction);
  if (estimated_seconds != nullptr) {
    *estimated_seconds = EvaluatePlanCost(plan, *topo_, bytes_per_unit);
  }
  if (net_result != nullptr) {
    *net_result = result;
  }
  return result.total_seconds;
}

Result<telemetry::CostAuditReport> EpochSimulator::AuditAllgather(uint32_t dim) const {
  const double bytes_per_unit = static_cast<double>(dim) * 4.0 * options_.inverse_scale;
  CommClasses classes = BuildCommClasses(relation_);
  SpstPlanner planner;
  DGCL_ASSIGN_OR_RETURN(ClassPlan class_plan,
                        planner.PlanClasses(classes, *topo_, bytes_per_unit));
  const std::vector<double> predicted =
      ReplayClassPlanStageSeconds(class_plan, *topo_, bytes_per_unit);
  CompiledPlan compiled = CompilePlan(class_plan, classes, *topo_);
  NetworkSimOptions net = options_.net;
  net.bytes_per_unit = bytes_per_unit;
  const NetworkSimResult result = SimulateTransfer(compiled, *topo_, net);
  return telemetry::AuditStageCosts(predicted, result.stage_seconds);
}

Result<telemetry::CostAuditReport> EpochSimulator::AuditAllgatherFromEngine(
    uint32_t dim, double time_scale) const {
  // No inverse_scale here: the engine moves the actual bytes of a dim-wide
  // embedding, so the prediction must price exactly those bytes.
  const double bytes_per_unit = static_cast<double>(dim) * 4.0;
  CommClasses classes = BuildCommClasses(relation_);
  SpstPlanner planner;
  DGCL_ASSIGN_OR_RETURN(ClassPlan class_plan,
                        planner.PlanClasses(classes, *topo_, bytes_per_unit));
  const std::vector<double> predicted =
      ReplayClassPlanStageSeconds(class_plan, *topo_, bytes_per_unit);
  CompiledPlan compiled = CompilePlan(class_plan, classes, *topo_);

  EngineOptions engine_options;
  engine_options.transport.emulate_bandwidth = true;
  engine_options.transport.bandwidth_time_scale = time_scale;
  DGCL_ASSIGN_OR_RETURN(AllgatherEngine engine,
                        AllgatherEngine::Create(relation_, std::move(compiled), *topo_,
                                                engine_options));

  std::vector<EmbeddingMatrix> local;
  local.reserve(relation_.num_devices);
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    local.push_back(EmbeddingMatrix::Zero(
        static_cast<uint32_t>(relation_.local_vertices[d].size()), dim));
  }

  telemetry::Telemetry& telemetry = telemetry::Telemetry::Get();
  const bool was_enabled = telemetry::Telemetry::Enabled();
  if (!was_enabled) {
    telemetry.SetEnabled(true);
  }
  const uint64_t pass_start_ns = telemetry::Telemetry::NowNs();
  Result<std::vector<EmbeddingMatrix>> out = engine.Forward(local);
  telemetry::Trace trace = telemetry.Collect();
  if (!was_enabled) {
    telemetry.SetEnabled(false);
  }
  DGCL_RETURN_IF_ERROR(out.status());

  // Only this pass's stage spans: earlier passes (or the caller's own
  // instrumented work) may share the recorders.
  telemetry::Trace pass_trace;
  for (telemetry::TraceEvent& ev : trace.events) {
    if (ev.start_ns >= pass_start_ns && ev.name == "fwd.stage") {
      pass_trace.events.push_back(std::move(ev));
    }
  }
  std::vector<double> observed =
      telemetry::ObservedStageSecondsFromTrace(pass_trace, "fwd.stage");
  for (double& seconds : observed) {
    seconds /= time_scale;
  }
  return telemetry::AuditStageCosts(predicted, observed);
}

Result<telemetry::OverlapAuditReport> EpochSimulator::AuditOverlapFromEngine(
    uint32_t dim, double time_scale, uint32_t num_chunks, double consume_gbps) const {
  if (num_chunks < 2) {
    return Status::InvalidArgument("overlap audit needs num_chunks >= 2 (1 is barrier mode)");
  }
  if (consume_gbps <= 0.0) {
    return Status::InvalidArgument("consume_gbps must be positive");
  }
  // Same planning setup as AuditAllgatherFromEngine: the engine moves the
  // actual bytes of a dim-wide embedding, no inverse_scale.
  const double bytes_per_unit = static_cast<double>(dim) * 4.0;
  CommClasses classes = BuildCommClasses(relation_);
  SpstPlanner planner;
  DGCL_ASSIGN_OR_RETURN(ClassPlan class_plan,
                        planner.PlanClasses(classes, *topo_, bytes_per_unit));
  CompiledPlan compiled = CompilePlan(class_plan, classes, *topo_);

  std::vector<EmbeddingMatrix> local;
  local.reserve(relation_.num_devices);
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    local.push_back(EmbeddingMatrix::Zero(
        static_cast<uint32_t>(relation_.local_vertices[d].size()), dim));
  }

  telemetry::Telemetry& telemetry = telemetry::Telemetry::Get();
  const bool was_enabled = telemetry::Telemetry::Enabled();
  if (!was_enabled) {
    telemetry.SetEnabled(true);
  }

  // Runs one forward pass on a fresh engine and keeps only that pass's trace.
  auto run_pass = [&](const EngineOptions& engine_options, const ChunkConsumer* consumer,
                      telemetry::Trace* pass_trace) -> Result<std::vector<EmbeddingMatrix>> {
    CompiledPlan plan_copy = compiled;
    DGCL_ASSIGN_OR_RETURN(AllgatherEngine engine,
                          AllgatherEngine::Create(relation_, std::move(plan_copy), *topo_,
                                                  engine_options));
    const uint64_t pass_start_ns = telemetry::Telemetry::NowNs();
    Result<std::vector<EmbeddingMatrix>> out =
        consumer != nullptr ? engine.Forward(local, *consumer) : engine.Forward(local);
    telemetry::Trace trace = telemetry.Collect();
    pass_trace->events.clear();
    for (telemetry::TraceEvent& ev : trace.events) {
      if (ev.start_ns >= pass_start_ns) {
        pass_trace->events.push_back(std::move(ev));
      }
    }
    return out;
  };

  EngineOptions barrier_options;
  barrier_options.transport.emulate_bandwidth = true;
  barrier_options.transport.bandwidth_time_scale = time_scale;
  telemetry::Trace barrier_trace;
  Result<std::vector<EmbeddingMatrix>> barrier_out =
      run_pass(barrier_options, nullptr, &barrier_trace);

  EngineOptions overlap_options = barrier_options;
  overlap_options.overlap.num_chunks = num_chunks;
  overlap_options.overlap.double_buffer = true;
  overlap_options.overlap.consume_policy = ConsumePolicy::kEager;
  // Emulated aggregate compute: the consumer drains each chunk's rows at
  // consume_gbps, stretched by time_scale exactly like the emulated wire, so
  // the hidden/exposed split reflects a consumer that does real per-chunk
  // work rather than an instant no-op.
  const ChunkConsumer consumer = [time_scale, consume_gbps](const ChunkArrival& a) {
    const double bytes = static_cast<double>(a.row_end - a.row_begin) *
                         static_cast<double>(a.dim) * sizeof(float);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(bytes / (consume_gbps * 1e9) * time_scale));
  };
  telemetry::Trace overlap_trace;
  Result<std::vector<EmbeddingMatrix>> overlap_out =
      run_pass(overlap_options, &consumer, &overlap_trace);

  if (!was_enabled) {
    telemetry.SetEnabled(false);
  }
  DGCL_RETURN_IF_ERROR(barrier_out.status());
  DGCL_RETURN_IF_ERROR(overlap_out.status());

  // The overlap contract is bitwise equivalence; the audit self-checks it.
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    if ((*barrier_out)[d].data != (*overlap_out)[d].data) {
      return Status::Internal("overlapped pass diverged bitwise from barrier pass on device " +
                              std::to_string(d));
    }
  }

  std::vector<double> barrier_seconds =
      telemetry::ObservedStageSecondsFromTrace(barrier_trace, "fwd.stage");
  std::vector<double> overlapped_seconds =
      telemetry::ObservedStageSecondsFromTrace(overlap_trace, "fwd.stage");
  std::vector<double> exposed_seconds =
      telemetry::ExposedWaitSecondsFromTrace(overlap_trace, "fwd.wait.chunk");
  for (std::vector<double>* series : {&barrier_seconds, &overlapped_seconds, &exposed_seconds}) {
    for (double& seconds : *series) {
      seconds /= time_scale;
    }
  }
  return telemetry::AuditOverlapCosts(barrier_seconds, overlapped_seconds, exposed_seconds);
}

Result<EpochReport> EpochSimulator::SimulatePlanned(Method method) const {
  DGCL_TSPAN1("sim", "epoch.planned", "method", static_cast<uint64_t>(method));
  SpstPlanner spst;
  PeerToPeerPlanner p2p;
  Planner& planner = method == Method::kPeerToPeer ? static_cast<Planner&>(p2p)
                                                   : static_cast<Planner&>(spst);
  const bool cache_features = method == Method::kDgclCache;
  EpochReport report;

  // Memory: each device stores its locals plus received remotes. The feature
  // cache pins the remotes' input features permanently — same stored-vertex
  // count, the footprint model already charges features for every stored
  // vertex, so only the layer count matters here.
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    const uint64_t stored =
        relation_.local_vertices[d].size() + relation_.remote_vertices[d].size();
    const uint64_t edges = IncidentEdges(dataset_->graph, relation_.local_vertices[d]);
    if (Status s = CheckMemory(stored, edges); !s.ok()) {
      report.oom = true;
      report.oom_detail = s.message();
      return report;
    }
  }

  // Plan once at the feature dimension; the same plan serves every layer
  // (§5.1: the optimal plan is feature-dimension independent).
  const double feature_bytes =
      static_cast<double>(dataset_->feature_dim) * 4.0 * options_.inverse_scale;
  WallTimer plan_timer;
  DGCL_ASSIGN_OR_RETURN(CommPlan plan, planner.Plan(relation_, *topo_, feature_bytes));
  report.plan_wall_seconds = plan_timer.ElapsedSeconds();
  CompiledPlan forward_plan = CompilePlan(plan, *topo_);
  report.plan_table_bytes = forward_plan.TableBytes();
  CompiledPlan backward_plan = forward_plan;
  AssignBackwardSubstages(backward_plan);

  auto transfer_seconds = [&](uint32_t dim, PassDirection direction) {
    NetworkSimOptions net = options_.net;
    net.bytes_per_unit = static_cast<double>(dim) * 4.0 * options_.inverse_scale;
    const CompiledPlan& cp =
        direction == PassDirection::kForward ? forward_plan : backward_plan;
    return SimulateTransfer(cp, *topo_, net, direction).total_seconds;
  };

  const uint32_t hidden = dataset_->hidden_dim;
  const double feature_pass = transfer_seconds(dataset_->feature_dim, PassDirection::kForward);
  report.simulated_allgather_ms = feature_pass * 1e3;
  report.estimated_allgather_ms = EvaluatePlanCost(plan, *topo_, feature_bytes) * 1e3;
  // With the feature cache, layer 1 reads remote inputs locally and skips
  // the hit-rate share of the feature-width allgather (all of it at the
  // idealized default hit rate of 1.0; the serving tier's measured rate can
  // be plugged in via EpochOptions::cache_hit_rate). The miss share that IS
  // paid shrinks further by the measured fetch-batching bytes ratio.
  const double miss_share =
      (1.0 - options_.cache_hit_rate) * options_.fetch_batch_bytes_factor;
  double comm_seconds = cache_features ? miss_share * feature_pass : feature_pass;
  for (uint32_t layer = 1; layer < options_.num_layers; ++layer) {
    comm_seconds += transfer_seconds(hidden, PassDirection::kForward);
    comm_seconds += transfer_seconds(hidden, PassDirection::kBackward);
  }
  report.comm_ms = comm_seconds * 1e3;
  report.compute_ms = MaxComputeSeconds() * 1e3;

  const uint64_t hidden_dims = 2ull * (options_.num_layers - 1) * hidden;
  if (cache_features) {
    // Fractional hit rates need double math; the cast truncates like the
    // integer division below, so hit_rate == 1.0 matches it bit for bit.
    const double feature_dims = miss_share * dataset_->feature_dim;
    report.avg_comm_bytes_per_gpu = static_cast<uint64_t>(
        static_cast<double>(relation_.TotalTransfers()) * (feature_dims + hidden_dims) * 4.0 *
        options_.inverse_scale / relation_.num_devices);
  } else {
    const uint64_t epoch_dims = dataset_->feature_dim + hidden_dims;
    report.avg_comm_bytes_per_gpu = relation_.TotalTransfers() * epoch_dims * 4ull *
                                    options_.inverse_scale / relation_.num_devices;
  }
  return report;
}

Result<EpochReport> EpochSimulator::SimulateSwap() const {
  EpochReport report;
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    const uint64_t stored =
        relation_.local_vertices[d].size() + relation_.remote_vertices[d].size();
    const uint64_t edges = IncidentEdges(dataset_->graph, relation_.local_vertices[d]);
    if (Status s = CheckMemory(stored, edges); !s.ok()) {
      report.oom = true;
      report.oom_detail = s.message();
      return report;
    }
  }
  auto exchange_seconds = [&](uint32_t dim) -> Result<double> {
    SwapOptions swap;
    swap.bytes_per_unit = static_cast<double>(dim) * 4.0 * options_.inverse_scale;
    return SwapExchangeSeconds(relation_, *topo_, swap);
  };
  DGCL_ASSIGN_OR_RETURN(double feature_exchange, exchange_seconds(dataset_->feature_dim));
  DGCL_ASSIGN_OR_RETURN(double hidden_exchange, exchange_seconds(dataset_->hidden_dim));
  const double comm_seconds =
      feature_exchange + 2.0 * (options_.num_layers - 1) * hidden_exchange;
  report.comm_ms = comm_seconds * 1e3;
  report.simulated_allgather_ms = feature_exchange * 1e3;
  report.compute_ms = MaxComputeSeconds() * 1e3;
  return report;
}

Result<EpochReport> EpochSimulator::SimulateReplication() const {
  EpochReport report;
  const CsrGraph& graph = dataset_->graph;
  const uint32_t layers = options_.num_layers;
  uint64_t total_stored = 0;
  double max_compute = 0.0;
  for (uint32_t d = 0; d < relation_.num_devices; ++d) {
    const auto& local = relation_.local_vertices[d];
    // set_k = vertices within k hops of the locals.
    std::vector<std::vector<VertexId>> sets;
    sets.push_back(local);
    for (uint32_t k = 1; k <= layers; ++k) {
      sets.push_back(ExpandKHop(graph, local, k));
    }
    total_stored += sets[layers].size();
    // Layer l (1-based) computes embeddings for every vertex within
    // (layers - l) hops: deeper layers need fewer replicas.
    double device_seconds = 0.0;
    for (uint32_t l = 1; l <= layers; ++l) {
      const auto& set = sets[layers - l];
      const uint32_t dim_in = l == 1 ? dataset_->feature_dim : dataset_->hidden_dim;
      const uint64_t scale = options_.inverse_scale;
      device_seconds += LayerForwardSeconds(options_.gnn, set.size() * scale,
                                            IncidentEdges(graph, set) * scale, dim_in,
                                            dataset_->hidden_dim, options_.compute);
    }
    device_seconds *= 1.0 + options_.compute.backward_factor;
    max_compute = std::max(max_compute, device_seconds);

    const uint64_t stored_edges = IncidentEdges(graph, sets[layers - 1]);
    if (Status s = CheckMemory(sets[layers].size(), stored_edges); !s.ok()) {
      report.oom = true;
      report.oom_detail = s.message();
      report.replication_factor =
          graph.num_vertices() == 0
              ? 0.0
              : static_cast<double>(total_stored) / graph.num_vertices();
      return report;
    }
  }
  report.comm_ms = 0.0;
  report.compute_ms = max_compute * 1e3;
  report.replication_factor =
      graph.num_vertices() == 0 ? 0.0
                                : static_cast<double>(total_stored) / graph.num_vertices();
  return report;
}

Result<EpochReport> EpochSimulator::SimulateDgclR() const {
  auto machine_groups = GroupDevicesByMachine(*topo_);
  if (machine_groups.size() <= 1) {
    return SimulatePlanned(Method::kDgcl);
  }
  if (options_.machine_topology == nullptr) {
    return Status::InvalidArgument("kDgclR on a multi-machine cluster needs machine_topology");
  }
  const Topology& machine_topo = *options_.machine_topology;
  if (machine_topo.num_devices() != machine_groups.front().size()) {
    return Status::InvalidArgument("machine_topology device count mismatch");
  }

  const CsrGraph& graph = dataset_->graph;
  const uint32_t layers = options_.num_layers;
  EpochReport report;

  // The machines are planned and simulated independently — fan them out on
  // the shared pool with one result slot per machine, then fold the slots in
  // machine order (so the first OOM reported matches the serial walk).
  struct MachineResult {
    Status status = Status::Ok();
    std::string oom_detail;  // non-empty = this machine OOMs
    uint64_t stored = 0;
    double comm_seconds = 0.0;
    double compute_seconds = 0.0;
  };
  std::vector<MachineResult> results(machine_groups.size());
  ThreadPool::Shared().ParallelFor(machine_groups.size(), [&](uint64_t g) {
    DGCL_TSPAN1("sim", "dgclr.machine", "machine", g);
    const auto& group = machine_groups[g];
    MachineResult& res = results[g];
    // The machine's vertices: everything its devices own.
    std::vector<VertexId> machine_vertices;
    for (uint32_t d : group) {
      const auto& local = relation_.local_vertices[d];
      machine_vertices.insert(machine_vertices.end(), local.begin(), local.end());
    }
    std::sort(machine_vertices.begin(), machine_vertices.end());
    // Replicate the K-hop closure so no cross-machine traffic is needed.
    std::vector<VertexId> expanded = ExpandKHop(graph, machine_vertices, layers);
    res.stored = expanded.size();
    CsrGraph sub = graph.InducedSubgraph(expanded);

    // Non-overlapping partitioning of the expanded set across this
    // machine's GPUs, then DGCL planning on the machine topology.
    MultilevelPartitioner partitioner;
    Result<Partitioning> local_parts = partitioner.Partition(sub, machine_topo.num_devices());
    if (!local_parts.ok()) {
      res.status = local_parts.status();
      return;
    }
    Result<CommRelation> local_rel = BuildCommRelation(sub, *local_parts);
    if (!local_rel.ok()) {
      res.status = local_rel.status();
      return;
    }

    for (uint32_t d = 0; d < local_rel->num_devices; ++d) {
      const auto& local = local_rel->local_vertices[d];
      res.compute_seconds = std::max(
          res.compute_seconds, DeviceComputeSeconds(local.size(), IncidentEdges(sub, local)));
      const uint64_t stored = local.size() + local_rel->remote_vertices[d].size();
      if (Status s = CheckMemory(stored, IncidentEdges(sub, local)); !s.ok()) {
        res.oom_detail = s.message();
        return;
      }
    }

    SpstPlanner spst;
    const double feature_bytes =
        static_cast<double>(dataset_->feature_dim) * 4.0 * options_.inverse_scale;
    Result<CommPlan> plan = spst.Plan(*local_rel, machine_topo, feature_bytes);
    if (!plan.ok()) {
      res.status = plan.status();
      return;
    }
    CompiledPlan forward_plan = CompilePlan(*plan, machine_topo);
    CompiledPlan backward_plan = forward_plan;
    AssignBackwardSubstages(backward_plan);
    auto transfer_seconds = [&](uint32_t dim, PassDirection direction) {
      NetworkSimOptions net = options_.net;
      net.bytes_per_unit = static_cast<double>(dim) * 4.0 * options_.inverse_scale;
      const CompiledPlan& cp =
          direction == PassDirection::kForward ? forward_plan : backward_plan;
      return SimulateTransfer(cp, machine_topo, net, direction).total_seconds;
    };
    res.comm_seconds = transfer_seconds(dataset_->feature_dim, PassDirection::kForward);
    for (uint32_t layer = 1; layer < layers; ++layer) {
      res.comm_seconds += transfer_seconds(dataset_->hidden_dim, PassDirection::kForward);
      res.comm_seconds += transfer_seconds(dataset_->hidden_dim, PassDirection::kBackward);
    }
  });

  uint64_t total_stored = 0;
  double max_comm = 0.0;
  double max_compute = 0.0;
  for (const MachineResult& res : results) {
    DGCL_RETURN_IF_ERROR(res.status);
    total_stored += res.stored;
    max_compute = std::max(max_compute, res.compute_seconds);
    if (!res.oom_detail.empty()) {
      report.oom = true;
      report.oom_detail = res.oom_detail;
      return report;
    }
    max_comm = std::max(max_comm, res.comm_seconds);
  }

  report.comm_ms = max_comm * 1e3;
  report.compute_ms = max_compute * 1e3;
  report.replication_factor =
      graph.num_vertices() == 0 ? 1.0
                                : static_cast<double>(total_stored) / graph.num_vertices();
  return report;
}

Result<EpochReport> EpochSimulator::Simulate(Method method) const {
  DGCL_TSPAN1("sim", "epoch.simulate", "method", static_cast<uint64_t>(method));
  switch (method) {
    case Method::kDgcl:
    case Method::kPeerToPeer:
    case Method::kDgclCache:
      return SimulatePlanned(method);
    case Method::kSwap:
      return SimulateSwap();
    case Method::kReplication:
      return SimulateReplication();
    case Method::kDgclR:
      return SimulateDgclR();
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace dgcl
