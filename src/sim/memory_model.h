// Per-device GPU memory model, used to reproduce the paper's OOM results
// (Replication runs out of memory on Com-Orkut and Wiki-Talk, Figure 7).
//
// Because the stand-in graphs are scale-reduced by `inverse_scale`, device
// memory capacity is reduced by the same factor, keeping footprint/capacity
// ratios — and therefore OOM verdicts — faithful to the full-size runs.

#ifndef DGCL_SIM_MEMORY_MODEL_H_
#define DGCL_SIM_MEMORY_MODEL_H_

#include <cstdint>

namespace dgcl {

struct MemoryModelParams {
  double device_capacity_bytes = 16.0 * (1ull << 30);  // V100 16 GB
  uint32_t inverse_scale = 1;  // graph scale reduction factor

  double EffectiveCapacity() const { return device_capacity_bytes / inverse_scale; }
};

// Training footprint of one device storing `stored_vertices` vertices (local
// plus any replicas) and `stored_edges` incident edges, for a `num_layers`
// GNN with the given dimensions. Counts graph structure, input features,
// per-layer activations and their gradients, and an Adam-free SGD state.
double TrainingFootprintBytes(uint64_t stored_vertices, uint64_t stored_edges,
                              uint32_t feature_dim, uint32_t hidden_dim, uint32_t num_layers);

inline bool WouldOom(double footprint_bytes, const MemoryModelParams& params) {
  return footprint_bytes > params.EffectiveCapacity();
}

}  // namespace dgcl

#endif  // DGCL_SIM_MEMORY_MODEL_H_
