// The Swap baseline (NeuGraph-style embedding exchange through CPU memory).
//
// After every layer each device dumps its local embeddings to host memory
// over PCIe, then loads the embeddings it needs (its locals plus remotes)
// back. All devices under one PCIe switch share that switch's host uplink,
// which is why Swap collapses on large graphs (§7.1). The chain-transfer
// optimization of NeuGraph overlaps the dump and load directions (PCIe is
// full duplex), so a layer exchange costs max(dump, load) instead of the sum.

#ifndef DGCL_SIM_SWAP_MODEL_H_
#define DGCL_SIM_SWAP_MODEL_H_

#include "comm/relation.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

struct SwapOptions {
  double bytes_per_unit = 1024.0;
  bool chain_transfer = true;   // NeuGraph's pipelined dump/load overlap
  // Fraction of the exposed transfer time hidden by NeuGraph's chunked
  // streaming (transfers of chunk k overlap the processing of chunk k-1);
  // only applies with chain_transfer.
  double pipeline_overlap = 0.35;
  double per_pass_latency_s = 2e-4;
};

// Seconds for one layer's embedding exchange via host memory. Fails when the
// topology spans multiple machines (NeuGraph is single-machine; the paper
// omits Swap from 16-GPU results for the same reason).
Result<double> SwapExchangeSeconds(const CommRelation& relation, const Topology& topo,
                                   const SwapOptions& options);

}  // namespace dgcl

#endif  // DGCL_SIM_SWAP_MODEL_H_
