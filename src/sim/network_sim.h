// Discrete-event network simulator: the stand-in for the paper's multi-GPU
// testbed (see DESIGN.md, "Hardware substitutions").
//
// Executes a compiled plan stage by stage. Within a stage all transfer ops
// are concurrent flows; bandwidth on every physical connection is shared
// max-min fairly among the flows crossing it, and flows re-negotiate rates
// whenever one completes (progressive filling). This is deliberately *finer*
// than the planner's cost model — the cost model assumes a stage is one big
// batch at full contention, the simulator lets early finishers release
// bandwidth and charges per-op startup latency — which is what makes the
// Figure 10 estimate-vs-actual comparison meaningful.

#ifndef DGCL_SIM_NETWORK_SIM_H_
#define DGCL_SIM_NETWORK_SIM_H_

#include <cstdint>
#include <vector>

#include "comm/compiled_plan.h"
#include "topology/topology.h"

namespace dgcl {

enum class PassDirection : uint8_t { kForward, kBackward };

struct NetworkSimOptions {
  double bytes_per_unit = 1024.0;     // embedding bytes (dim * sizeof(float))
  double per_op_latency_s = 20e-6;    // fixed startup cost per transfer op
  // Backward pass only: with non_atomic=true, sub-stages within a stage run
  // sequentially so gradient aggregation is conflict-free (§6.2); with
  // false, everything in a stage runs concurrently but aggregation pays the
  // atomic-reduction penalty below.
  bool non_atomic = true;
  double atomic_overhead_factor = 1.35;
  // Mirror of the runtime's FaultInjection for the NIC path (transport.h),
  // in expectation rather than per-draw: flows whose route crosses an
  // IB/Ethernet hop pay `nic_extra_latency_s` once per op and carry
  // 1 / (1 - nic_drop_rate) times their volume (the mean retransmission
  // count of a Bernoulli-dropped wire). Lets the simulator predict what a
  // faulted engine run will measure.
  double nic_extra_latency_s = 0.0;
  double nic_drop_rate = 0.0;  // in [0, 1)
  // Mirror of FaultInjection::dead_device: a device that stops participating
  // mid-epoch. The first stage with an op touching it never completes —
  // survivors detect the death after `failure_detect_s` (the simulator's
  // stand-in for TransportPolicy::wait_timeout_micros) and the pass reports
  // completed = false at that stage. Lets the simulator predict the detect
  // phase of a recovery's MTTR.
  uint32_t dead_device = kInvalidId;
  double failure_detect_s = 0.0;
  // Mirror of EngineOptions::overlap.num_chunks: within a stage, chunk c of
  // every op flows concurrently and chunk c+1 starts once round c's flags
  // are up (the engine publishes a per-op flag per chunk; senders stream
  // chunks back-to-back, so rounds model the arrival fronts a chunked
  // receiver can start consuming at). 1 keeps the single-shot stage.
  uint32_t num_chunks = 1;
};

struct NetworkSimResult {
  double total_seconds = 0.0;
  std::vector<double> stage_seconds;       // per stage
  std::vector<double> conn_busy_seconds;   // per physical connection
  uint64_t total_bytes = 0;
  // Death mirror: false when NetworkSimOptions::dead_device aborted the pass
  // at `failed_stage` (total_seconds then ends with the detection wait).
  bool completed = true;
  uint32_t failed_stage = kInvalidId;
  // Chunk-arrival expectations: stage_chunk_seconds[stage][c] is the
  // cumulative flow time within the stage after which every op's chunk c has
  // arrived (per-op latency and fault latency excluded — they are charged
  // once per stage in stage_seconds). One entry per chunk
  // (NetworkSimOptions::num_chunks); empty for stages a death skipped.
  std::vector<std::vector<double>> stage_chunk_seconds;

  // Busy time summed over connections of a link type (Table 2 / Table 7).
  double TypeBusySeconds(const Topology& topo, LinkType type) const;
};

// Runs the plan. In the backward pass stages execute in reverse order and
// every op's traffic flows dst -> src over the reverse link (falling back to
// the forward link's hops if no reverse link exists).
NetworkSimResult SimulateTransfer(const CompiledPlan& plan, const Topology& topo,
                                  const NetworkSimOptions& options,
                                  PassDirection direction = PassDirection::kForward);

// A single standalone flow set (used by micro benches, e.g. the Table 3
// contention probe): flows[i] transfers `bytes[i]` over link `links[i]`,
// all concurrently. Returns per-flow completion seconds.
std::vector<double> SimulateConcurrentFlows(const Topology& topo,
                                            const std::vector<LinkId>& links,
                                            const std::vector<double>& bytes);

}  // namespace dgcl

#endif  // DGCL_SIM_NETWORK_SIM_H_
