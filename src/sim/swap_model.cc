#include "sim/swap_model.h"

#include <algorithm>
#include <map>

namespace dgcl {

Result<double> SwapExchangeSeconds(const CommRelation& relation, const Topology& topo,
                                   const SwapOptions& options) {
  if (relation.num_devices != topo.num_devices()) {
    return Status::InvalidArgument("relation/topology device count mismatch");
  }
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    if (topo.device(d).machine != 0) {
      return Status::FailedPrecondition("swap requires a single machine (NeuGraph design)");
    }
  }
  const double pcie_bytes_per_s = LinkTypeBandwidthGBps(LinkType::kPcie) * 1e9;

  // Aggregate dump (device -> host) and load (host -> device) volumes per
  // PCIe switch; the switch-to-host uplink is the shared bottleneck.
  std::map<uint32_t, double> dump_bytes;
  std::map<uint32_t, double> load_bytes;
  double max_gpu_lane_seconds = 0.0;
  for (DeviceId d = 0; d < topo.num_devices(); ++d) {
    const uint32_t sw = topo.device(d).pcie_switch;
    const double dump = relation.local_vertices[d].size() * options.bytes_per_unit;
    const double load = (relation.local_vertices[d].size() + relation.remote_vertices[d].size()) *
                        options.bytes_per_unit;
    dump_bytes[sw] += dump;
    load_bytes[sw] += load;
    // A device's own PCIe lanes bound its private traffic too.
    const double lane_seconds = options.chain_transfer
                                    ? std::max(dump, load) / pcie_bytes_per_s
                                    : (dump + load) / pcie_bytes_per_s;
    max_gpu_lane_seconds = std::max(max_gpu_lane_seconds, lane_seconds);
  }
  double max_switch_seconds = 0.0;
  for (const auto& [sw, dump] : dump_bytes) {
    const double load = load_bytes[sw];
    const double seconds = options.chain_transfer
                               ? std::max(dump, load) / pcie_bytes_per_s
                               : (dump + load) / pcie_bytes_per_s;
    max_switch_seconds = std::max(max_switch_seconds, seconds);
  }
  double exposed = std::max(max_switch_seconds, max_gpu_lane_seconds);
  if (options.chain_transfer) {
    exposed *= 1.0 - options.pipeline_overlap;
  }
  return exposed + options.per_pass_latency_s;
}

}  // namespace dgcl
