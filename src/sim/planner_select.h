// Cost-model-driven strategy auto-selection ("auto" in PlannerOptions).
//
// Planning is cheap next to training, so "auto" simply plans the workload
// with every registered strategy, prices each candidate, and commits the
// winner. Selection is by the planner cost model (ClassPlan::
// planned_cost_seconds — the same t(S) objective SPST optimizes, so the
// comparison is apples-to-apples); the finer discrete-event NetworkSim time
// is recorded per candidate alongside it, both in the returned
// SelectionReport and as telemetry counters
// ("planner" category, "auto.<strategy>.cost_us" / "auto.<strategy>.sim_us")
// so dgcl_trace can surface why a strategy won after the fact.
//
// Lives in sim/ (not planner/) because scoring needs NetworkSim; the planner
// layer stays below the simulator in the dependency order.

#ifndef DGCL_SIM_PLANNER_SELECT_H_
#define DGCL_SIM_PLANNER_SELECT_H_

#include <string>
#include <vector>

#include "comm/plan.h"
#include "planner/registry.h"
#include "sim/network_sim.h"

namespace dgcl {

// One strategy's scores from an auto-selection round (or the single entry of
// a forced-strategy round).
struct PlannerCandidateScore {
  std::string strategy;
  bool planned = false;  // false: the strategy cannot plan this workload
  std::string error;     // planner failure message when !planned
  double planned_cost_seconds = 0.0;  // cost model t(S) — the ranking key
  double simulated_seconds = 0.0;     // NetworkSim forward-pass time
  uint32_t num_stages = 0;
  uint64_t total_traffic = 0;  // (vertex, link-hop) traversals
  bool selected = false;
};

struct SelectionReport {
  std::string selected_strategy;  // empty when nothing could plan
  std::vector<PlannerCandidateScore> candidates;  // registry order

  // Human-readable score table (one line per candidate, winner starred).
  std::string Table() const;
};

// Plans `classes` with the strategy picked by `options`:
//  * a forced strategy resolves through PlannerRegistry and plans directly
//    (the report then holds that one candidate);
//  * "auto" plans with every registered strategy and commits the cost-model
//    winner (ties break toward the lexicographically first name — registry
//    order — so selection is deterministic).
// `report` (optional) receives the per-candidate scores either way. Fails if
// the chosen strategy cannot plan the workload; under "auto", strategies
// that fail (e.g. p2p on a topology without full direct connectivity) are
// recorded in the report and skipped, and the call fails only when *no*
// strategy can plan.
Result<ClassPlan> PlanWithStrategy(const PlannerOptions& options, const CommClasses& classes,
                                   const Topology& topo, double bytes_per_unit,
                                   SelectionReport* report = nullptr);

}  // namespace dgcl

#endif  // DGCL_SIM_PLANNER_SELECT_H_
