// End-to-end per-epoch simulation for the paper's evaluation (§7).
//
// Combines graph partitioning, communication planning, the network simulator
// and the compute/memory models to produce per-epoch and communication times
// for each training method:
//
//   kDgcl        — SPST-planned embedding passing (the paper's system)
//   kPeerToPeer  — direct-link transfers (ROC/Lux style)
//   kSwap        — staging through CPU memory (NeuGraph style)
//   kReplication — K-hop replication, zero communication, extra compute/memory
//   kDgclR       — replication across machines + DGCL within each machine
//
// All reported numbers are *full-size equivalents*: the stand-in graphs are
// scale-reduced by `inverse_scale`, so volumes and compute work are scaled
// back up by the same factor before timing (per-op latencies are not scaled).

#ifndef DGCL_SIM_EPOCH_SIM_H_
#define DGCL_SIM_EPOCH_SIM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "comm/compiled_plan.h"
#include "comm/relation.h"
#include "graph/generators.h"
#include "partition/partitioner.h"
#include "planner/planner.h"
#include "sim/compute_model.h"
#include "sim/memory_model.h"
#include "sim/network_sim.h"
#include "telemetry/cost_audit.h"
#include "topology/topology.h"

namespace dgcl {

//   kDgclCache   — DGCL plus the §3 option (1): the layer-0 features of the
//                  remote neighbors are cached on each device, eliminating
//                  the first (widest) allgather at extra memory cost.
enum class Method : uint8_t { kDgcl, kPeerToPeer, kSwap, kReplication, kDgclR, kDgclCache };

const char* MethodName(Method method);

struct EpochOptions {
  GnnModel gnn = GnnModel::kGcn;
  uint32_t num_layers = 2;
  uint32_t inverse_scale = 1;
  ComputeModelParams compute;
  MemoryModelParams memory;  // capacity checked against full-size footprints
  NetworkSimOptions net;     // bytes_per_unit is overridden per layer
  // Per-machine topology for kDgclR planning on multi-machine clusters
  // (e.g. the 8-GPU preset when the cluster is 2x8). Ignored otherwise.
  const Topology* machine_topology = nullptr;
  // Method::kDgclCache only: fraction of remote layer-0 feature reads served
  // by the feature cache. 1.0 (the default) is the idealized pinned-remotes
  // cache the paper's option (1) describes; the serving tier's FeatureCache
  // measures the real value under a bounded cache (bench_serving reports it,
  // EXPERIMENTS.md records it) and this knob feeds it back into the
  // simulation: a (1 - hit_rate) share of the feature-width allgather is
  // still paid. Must be in [0, 1].
  double cache_hit_rate = 1.0;
  // Method::kDgclCache only: measured bytes-on-wire ratio of batched vs
  // unbatched remote feature fetches (bench_minibatch's BENCH_minibatch.json
  // reports it). Cross-request batching amortizes the per-message envelope,
  // so the cache-miss share of the feature-width allgather shrinks by this
  // factor. 1.0 (default) = no batching. Must be in (0, 1].
  double fetch_batch_bytes_factor = 1.0;
};

struct EpochReport {
  bool oom = false;
  std::string oom_detail;
  double comm_ms = 0.0;
  double compute_ms = 0.0;
  double replication_factor = 1.0;
  // SPST/P2P only: planner cost-model estimate of one forward allgather at
  // the feature dimension, and its simulated time (Figure 10's two axes).
  double estimated_allgather_ms = 0.0;
  double simulated_allgather_ms = 0.0;
  uint64_t plan_table_bytes = 0;  // send/recv table footprint (Figure 11)
  double plan_wall_seconds = 0.0; // planning time (Table 8)
  uint64_t avg_comm_bytes_per_gpu = 0;  // full-size equivalent (Figure 2)

  double EpochMs() const { return comm_ms + compute_ms; }
};

// Caches the partitioning and communication relation for one
// (dataset, topology) pair so method comparisons reuse identical inputs.
class EpochSimulator {
 public:
  // Partitions with the multilevel (METIS-substitute) partitioner,
  // hierarchically when `topo` spans machines. Fails on invalid inputs.
  static Result<EpochSimulator> Create(const Dataset& dataset, const Topology& topo,
                                       EpochOptions options);

  Result<EpochReport> Simulate(Method method) const;

  // One forward graphAllgather (embedding dimension `dim`) under `planner`,
  // reporting simulated seconds; also fills cost-model estimate and the
  // compiled plan's table bytes when the out-params are non-null.
  // `volume_fraction` scales every transfer's size (Figure 10 sweeps it).
  Result<double> SimulateAllgatherSeconds(Planner& planner, uint32_t dim,
                                          double volume_fraction = 1.0,
                                          double* estimated_seconds = nullptr,
                                          NetworkSimResult* net_result = nullptr,
                                          PassDirection direction = PassDirection::kForward,
                                          bool non_atomic = true) const;

  // Fig-10-style per-stage accuracy audit of the SPST cost model: plans one
  // forward allgather at embedding dimension `dim`, prices every stage with
  // the cost model (ReplayClassPlanStageSeconds) and joins that against the
  // network simulator's per-stage times.
  Result<telemetry::CostAuditReport> AuditAllgather(uint32_t dim) const;

  // Wall-clock calibration audit: plans one forward allgather at `dim`, then
  // actually RUNS it on the threaded engine with bandwidth emulation
  // (TransportPolicy::emulate_bandwidth: every transmit waits
  // bytes / bottleneck_bandwidth * time_scale of wall time), records a
  // telemetry trace of the pass and joins the cost model's per-stage
  // predictions against the observed per-stage wall times — the max
  // "fwd.stage" span per stage (CostAudit::ObservedStageSecondsFromTrace),
  // divided back by `time_scale`. This audits the cost model against a real
  // engine trace, waits and coordination included, not against the network
  // simulator. `time_scale` > 1 stretches emulated time above scheduler
  // noise (µs-scale transfers are hard to time faithfully). Telemetry is
  // enabled for the duration of the call if it was off.
  Result<telemetry::CostAuditReport> AuditAllgatherFromEngine(uint32_t dim,
                                                              double time_scale = 1.0) const;

  // Hidden-vs-exposed communication audit of the chunked/overlapped engine
  // mode (EngineOptions::overlap). Plans one forward allgather at `dim` and
  // runs it TWICE on the threaded engine with bandwidth emulation: once in
  // barrier mode (num_chunks == 1 — every communication second is exposed
  // stage wall time) and once chunked (`num_chunks`, double-buffered, eager
  // consumption) with a per-chunk consumer that emulates aggregate compute
  // draining each chunk's rows at `consume_gbps` (scaled by `time_scale`,
  // like the emulated wire). The joined report shows, per stage, how much of
  // the barrier-mode communication time the consumer actually sat exposed in
  // chunk waits and how much now hides under consumption
  // (telemetry::AuditOverlapCosts). The two runs' outputs are compared
  // bitwise — a mismatch fails the audit. Telemetry is enabled for the
  // duration of the call if it was off.
  Result<telemetry::OverlapAuditReport> AuditOverlapFromEngine(uint32_t dim,
                                                               double time_scale = 1.0,
                                                               uint32_t num_chunks = 4,
                                                               double consume_gbps = 8.0) const;

  const CommRelation& relation() const { return relation_; }
  const Partitioning& partitioning() const { return partitioning_; }
  const Dataset& dataset() const { return *dataset_; }
  const Topology& topology() const { return *topo_; }
  const EpochOptions& options() const { return options_; }

 private:
  EpochSimulator() = default;

  Result<EpochReport> SimulatePlanned(Method method) const;  // kDgcl / kPeerToPeer
  Result<EpochReport> SimulateSwap() const;
  Result<EpochReport> SimulateReplication() const;
  Result<EpochReport> SimulateDgclR() const;

  // Full-size-equivalent compute seconds for a device with the given counts.
  double DeviceComputeSeconds(uint64_t vertices, uint64_t edges) const;
  // Max compute seconds across devices for non-replicated methods.
  double MaxComputeSeconds() const;
  Status CheckMemory(uint64_t stored_vertices, uint64_t stored_edges) const;

  const Dataset* dataset_ = nullptr;
  const Topology* topo_ = nullptr;
  EpochOptions options_;
  Partitioning partitioning_;
  CommRelation relation_;
};

}  // namespace dgcl

#endif  // DGCL_SIM_EPOCH_SIM_H_
