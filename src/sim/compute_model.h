// Analytic GNN compute-time model.
//
// The evaluation machine has no GPUs, so per-epoch *computation* time is
// modeled from first principles instead of measured: a layer's work is the
// sparse aggregate (SpMM over the local edges) plus the dense update (GEMM
// over the local vertices), with per-model multipliers for CommNet's second
// projection and GIN's MLP. Effective throughputs are calibrated to a V100
// so compute/communication ratios land in the paper's regime; EXPERIMENTS.md
// records the constants.

#ifndef DGCL_SIM_COMPUTE_MODEL_H_
#define DGCL_SIM_COMPUTE_MODEL_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace dgcl {

enum class GnnModel : uint8_t { kGcn, kCommNet, kGin, kGat };

const char* GnnModelName(GnnModel model);

struct ComputeModelParams {
  // Effective dense GEMM throughput (FLOP/s) of one device.
  double dense_flops = 7e12;
  // Effective sparse aggregation throughput (FLOP/s); SpMM is memory bound,
  // far below dense peak.
  double sparse_flops = 1.1e12;
  // Fixed per-layer kernel-launch / framework overhead (seconds).
  double layer_overhead_s = 3e-4;
  // backward = backward_factor * forward (classic 2x, so epoch = 3x fwd).
  double backward_factor = 2.0;
};

// Forward seconds for one GNN layer on one device owning `vertices` vertices
// and `edges` incident edges, mapping dim_in -> dim_out embeddings.
double LayerForwardSeconds(GnnModel model, uint64_t vertices, uint64_t edges, uint32_t dim_in,
                           uint32_t dim_out, const ComputeModelParams& params = {});

// Forward + backward seconds for a full K-layer pass on one device.
// Layer 1 maps feature_dim -> hidden_dim, later layers hidden -> hidden.
double EpochComputeSeconds(GnnModel model, uint64_t vertices, uint64_t edges,
                           uint32_t feature_dim, uint32_t hidden_dim, uint32_t num_layers,
                           const ComputeModelParams& params = {});

}  // namespace dgcl

#endif  // DGCL_SIM_COMPUTE_MODEL_H_
