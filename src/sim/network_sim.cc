#include "sim/network_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "runtime/allgather_engine.h"  // ChunkRows: the engine's chunk-split rule
#include "telemetry/trace.h"

namespace dgcl {
namespace {

struct Flow {
  std::vector<ConnId> hops;
  double bytes_left = 0.0;
  double rate = 0.0;              // bytes/s, renegotiated on every event
  double completion_time = -1.0;  // filled when done

  bool Active() const { return bytes_left > 1e-9; }
};

// Max-min fair rates via progressive filling over the active flows.
void AssignMaxMinRates(std::vector<Flow>& flows, const Topology& topo) {
  const uint32_t num_conns = topo.num_connections();
  std::vector<double> capacity(num_conns);  // remaining bytes/s
  std::vector<uint32_t> unfrozen_count(num_conns, 0);
  for (ConnId c = 0; c < num_conns; ++c) {
    capacity[c] = topo.connection(c).bandwidth_gbps * 1e9;
  }
  std::vector<uint32_t> unfrozen;
  for (uint32_t i = 0; i < flows.size(); ++i) {
    flows[i].rate = 0.0;
    if (flows[i].Active()) {
      unfrozen.push_back(i);
      for (ConnId c : flows[i].hops) {
        ++unfrozen_count[c];
      }
    }
  }
  while (!unfrozen.empty()) {
    // The next saturating connection determines the common rate increment.
    double fair = std::numeric_limits<double>::infinity();
    for (ConnId c = 0; c < num_conns; ++c) {
      if (unfrozen_count[c] > 0) {
        fair = std::min(fair, capacity[c] / unfrozen_count[c]);
      }
    }
    DGCL_CHECK(std::isfinite(fair));
    std::vector<uint32_t> still_unfrozen;
    bool froze_any = false;
    for (uint32_t i : unfrozen) {
      bool saturated = false;
      for (ConnId c : flows[i].hops) {
        if (capacity[c] / unfrozen_count[c] <= fair * (1.0 + 1e-9)) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        flows[i].rate = fair;
        froze_any = true;
        for (ConnId c : flows[i].hops) {
          capacity[c] -= fair;
          --unfrozen_count[c];
        }
      } else {
        still_unfrozen.push_back(i);
      }
    }
    DGCL_CHECK(froze_any);
    unfrozen = std::move(still_unfrozen);
  }
}

// Runs the flow set to completion; returns the makespan and accumulates
// per-connection busy time. Per-flow completion times go to `completions`
// when non-null.
double RunFlows(std::vector<Flow>& flows, const Topology& topo,
                std::vector<double>* conn_busy, std::vector<double>* completions) {
  double now = 0.0;
  auto any_left = [&flows]() {
    for (const Flow& f : flows) {
      if (f.Active()) {
        return true;
      }
    }
    return false;
  };
  while (any_left()) {
    AssignMaxMinRates(flows, topo);
    double dt = std::numeric_limits<double>::infinity();
    for (const Flow& f : flows) {
      if (f.Active() && f.rate > 0.0) {
        dt = std::min(dt, f.bytes_left / f.rate);
      }
    }
    DGCL_CHECK(std::isfinite(dt));
    std::vector<uint8_t> conn_active;
    if (conn_busy != nullptr) {
      conn_active.assign(conn_busy->size(), 0);
    }
    for (Flow& f : flows) {
      if (!f.Active()) {
        continue;
      }
      if (conn_busy != nullptr) {
        for (ConnId c : f.hops) {
          conn_active[c] = 1;
        }
      }
      f.bytes_left -= f.rate * dt;
      if (f.bytes_left <= 1e-9) {
        f.bytes_left = 0.0;
        f.completion_time = now + dt;
      }
    }
    if (conn_busy != nullptr) {
      for (ConnId c = 0; c < conn_active.size(); ++c) {
        if (conn_active[c]) {
          (*conn_busy)[c] += dt;
        }
      }
    }
    now += dt;
  }
  if (completions != nullptr) {
    completions->clear();
    for (const Flow& f : flows) {
      completions->push_back(f.completion_time < 0.0 ? 0.0 : f.completion_time);
    }
  }
  return now;
}

// Hops an op's traffic traverses for the given direction.
std::vector<ConnId> OpHops(const TransferOp& op, const Topology& topo,
                           PassDirection direction) {
  if (direction == PassDirection::kForward) {
    return topo.link(op.link).hops;
  }
  LinkId reverse = topo.LinkBetween(op.dst, op.src);
  if (reverse != kInvalidId) {
    return topo.link(reverse).hops;
  }
  return topo.link(op.link).hops;  // symmetric-medium approximation
}

bool CrossesNic(const std::vector<ConnId>& hops, const Topology& topo) {
  for (ConnId c : hops) {
    const LinkType t = topo.connection(c).type;
    if (t == LinkType::kInfiniBand || t == LinkType::kEthernet) {
      return true;
    }
  }
  return false;
}

}  // namespace

double NetworkSimResult::TypeBusySeconds(const Topology& topo, LinkType type) const {
  double total = 0.0;
  for (ConnId c = 0; c < conn_busy_seconds.size(); ++c) {
    if (topo.connection(c).type == type) {
      total = std::max(total, conn_busy_seconds[c]);
    }
  }
  return total;
}

NetworkSimResult SimulateTransfer(const CompiledPlan& plan, const Topology& topo,
                                  const NetworkSimOptions& options, PassDirection direction) {
  DGCL_TSPAN2("sim", direction == PassDirection::kBackward ? "sim.bwd.transfer"
                                                           : "sim.fwd.transfer",
              "ops", plan.ops.size(), "stages", plan.num_stages);
  DGCL_CHECK(options.nic_drop_rate >= 0.0 && options.nic_drop_rate < 1.0);
  NetworkSimResult result;
  result.conn_busy_seconds.assign(topo.num_connections(), 0.0);
  result.stage_seconds.assign(plan.num_stages, 0.0);
  result.stage_chunk_seconds.assign(plan.num_stages, {});

  // Stages always serialize. Within a stage all ops are concurrent flows;
  // in the non-atomic backward pass (§6.2) the ops aggregating at the same
  // device are chained by sub-stage — different devices' chains overlap.
  std::map<uint32_t, std::vector<const TransferOp*>> stage_map;
  for (const TransferOp& op : plan.ops) {
    stage_map[op.stage].push_back(&op);
  }
  // Execution order matters once a death can cut the pass short: the
  // backward pass runs the stages in reverse.
  std::vector<std::pair<uint32_t, const std::vector<const TransferOp*>*>> stages;
  stages.reserve(stage_map.size());
  for (const auto& [stage, ops] : stage_map) {
    stages.emplace_back(stage, &ops);
  }
  const bool backward = direction == PassDirection::kBackward;
  if (backward) {
    std::reverse(stages.begin(), stages.end());
  }
  for (const auto& [stage, ops_ptr] : stages) {
    const std::vector<const TransferOp*>& ops = *ops_ptr;
    if (options.dead_device != kInvalidId) {
      // Death mirror: the first executed stage with an op touching the dead
      // device never completes — survivors sit out the detection wait and
      // the pass aborts, exactly what the engine's deadline-bounded waits do.
      bool touches_dead = false;
      for (const TransferOp* op : ops) {
        if (op->src == options.dead_device || op->dst == options.dead_device) {
          touches_dead = true;
          break;
        }
      }
      if (touches_dead) {
        result.stage_seconds[stage] += options.failure_detect_s;
        result.total_seconds += options.failure_detect_s;
        result.completed = false;
        result.failed_stage = stage;
        break;
      }
    }
    // Backward aggregation cost model (§6.2, Table 9): with atomic
    // reductions every received gradient byte pays the atomic penalty; with
    // the non-atomic sub-stage split the receive tables are partitioned so
    // peers still stream concurrently and only a flag synchronization per
    // extra sub-stage is added.
    double volume_factor = 1.0;
    uint32_t substage_rounds = 1;
    if (backward) {
      if (options.non_atomic) {
        for (const TransferOp* op : ops) {
          substage_rounds = std::max(substage_rounds, op->substage + 1);
        }
      } else {
        volume_factor = options.atomic_overhead_factor;
      }
    }
    const double nic_volume_factor =
        options.nic_drop_rate > 0.0 ? 1.0 / (1.0 - options.nic_drop_rate) : 1.0;
    double fault_latency = 0.0;
    std::vector<std::vector<ConnId>> hops(ops.size());
    std::vector<double> volume(ops.size());  // full-op bytes, factors applied
    for (size_t i = 0; i < ops.size(); ++i) {
      hops[i] = OpHops(*ops[i], topo, direction);
      double op_volume_factor = volume_factor;
      if ((options.nic_extra_latency_s > 0.0 || options.nic_drop_rate > 0.0) &&
          CrossesNic(hops[i], topo)) {
        op_volume_factor *= nic_volume_factor;
        fault_latency = std::max(fault_latency, options.nic_extra_latency_s);
      }
      volume[i] = static_cast<double>(ops[i]->vertices.size()) *
                  options.bytes_per_unit * op_volume_factor;
      result.total_bytes +=
          static_cast<uint64_t>(ops[i]->vertices.size() * options.bytes_per_unit);
    }
    const uint32_t num_chunks = std::max<uint32_t>(options.num_chunks, 1);
    double flow_time = 0.0;
    std::vector<double>& arrivals = result.stage_chunk_seconds[stage];
    if (num_chunks == 1) {
      std::vector<Flow> flows(ops.size());
      for (size_t i = 0; i < ops.size(); ++i) {
        flows[i].hops = hops[i];
        flows[i].bytes_left = volume[i];
      }
      flow_time = RunFlows(flows, topo, &result.conn_busy_seconds, nullptr);
      arrivals.assign(1, flow_time);
    } else {
      // Chunk rounds mirror the engine's per-chunk flag publishes: chunk c
      // of every op flows concurrently, chunk c+1 starts once round c's
      // flags are up. Round boundaries re-synchronize the progressive
      // filling, so a chunked stage is never faster than the single-shot
      // stage — the honest cost of finer-grained flags. Chunk row splits use
      // the engine's ChunkRows rule so simulated arrival fronts line up with
      // the flags a real chunked receiver consumes at.
      for (uint32_t c = 0; c < num_chunks; ++c) {
        std::vector<Flow> flows(ops.size());
        for (size_t i = 0; i < ops.size(); ++i) {
          const auto [row_begin, row_end] = ChunkRows(ops[i]->vertices.size(), num_chunks, c);
          const double share = ops[i]->vertices.empty()
                                   ? 0.0
                                   : static_cast<double>(row_end - row_begin) /
                                         static_cast<double>(ops[i]->vertices.size());
          flows[i].hops = hops[i];
          flows[i].bytes_left = volume[i] * share;
        }
        flow_time += RunFlows(flows, topo, &result.conn_busy_seconds, nullptr);
        arrivals.push_back(flow_time);
      }
    }
    double stage_time = flow_time + options.per_op_latency_s * substage_rounds + fault_latency;
    result.stage_seconds[stage] += stage_time;
    result.total_seconds += stage_time;
  }
  if (telemetry::Telemetry::Enabled()) {
    // Simulated occupancy, exported as counter series: per-stage wall time
    // and per-hop busy time tagged by the hop's link type.
    const bool bwd = direction == PassDirection::kBackward;
    for (uint32_t k = 0; k < result.stage_seconds.size(); ++k) {
      telemetry::Counter("sim", bwd ? "sim.bwd.stage_seconds" : "sim.fwd.stage_seconds",
                         result.stage_seconds[k], "stage", k);
    }
    for (ConnId c = 0; c < result.conn_busy_seconds.size(); ++c) {
      if (result.conn_busy_seconds[c] > 0.0) {
        telemetry::Counter(LinkTypeName(topo.connection(c).type), "sim.conn_busy_seconds",
                           result.conn_busy_seconds[c], "conn", c);
      }
    }
  }
  return result;
}

std::vector<double> SimulateConcurrentFlows(const Topology& topo,
                                            const std::vector<LinkId>& links,
                                            const std::vector<double>& bytes) {
  DGCL_CHECK_EQ(links.size(), bytes.size());
  std::vector<Flow> flows(links.size());
  for (size_t i = 0; i < links.size(); ++i) {
    flows[i].hops = topo.link(links[i]).hops;
    flows[i].bytes_left = bytes[i];
  }
  std::vector<double> completions;
  RunFlows(flows, topo, nullptr, &completions);
  return completions;
}

}  // namespace dgcl
