#include "sim/compute_model.h"

#include "common/logging.h"

namespace dgcl {

const char* GnnModelName(GnnModel model) {
  switch (model) {
    case GnnModel::kGcn:
      return "GCN";
    case GnnModel::kCommNet:
      return "CommNet";
    case GnnModel::kGin:
      return "GIN";
    case GnnModel::kGat:
      return "GAT";
  }
  return "?";
}

double LayerForwardSeconds(GnnModel model, uint64_t vertices, uint64_t edges, uint32_t dim_in,
                           uint32_t dim_out, const ComputeModelParams& params) {
  // Aggregate: one multiply-add per edge per input dimension.
  const double spmm_flops = 2.0 * static_cast<double>(edges) * dim_in;
  // Update: dense projection(s) over the local vertices.
  double gemm_flops = 2.0 * static_cast<double>(vertices) * dim_in * dim_out;
  switch (model) {
    case GnnModel::kGcn:
      break;  // single projection
    case GnnModel::kCommNet:
      gemm_flops *= 2.0;  // separate projections of h and the aggregate
      break;
    case GnnModel::kGin:
      // 2-layer MLP on (1+eps)h + aggregate: dim_in->dim_out->dim_out.
      gemm_flops = 2.0 * static_cast<double>(vertices) *
                   (static_cast<double>(dim_in) * dim_out +
                    static_cast<double>(dim_out) * dim_out);
      break;
    case GnnModel::kGat:
      // Projection plus per-edge attention scoring, softmax and weighting:
      // roughly 6 extra flops per edge per output dimension.
      gemm_flops = 2.0 * static_cast<double>(vertices) * dim_in * dim_out;
      return (spmm_flops + 6.0 * static_cast<double>(edges) * dim_out) / params.sparse_flops +
             gemm_flops / params.dense_flops + params.layer_overhead_s;
  }
  return spmm_flops / params.sparse_flops + gemm_flops / params.dense_flops +
         params.layer_overhead_s;
}

double EpochComputeSeconds(GnnModel model, uint64_t vertices, uint64_t edges,
                           uint32_t feature_dim, uint32_t hidden_dim, uint32_t num_layers,
                           const ComputeModelParams& params) {
  DGCL_CHECK_GE(num_layers, 1u);
  double forward = 0.0;
  for (uint32_t layer = 0; layer < num_layers; ++layer) {
    const uint32_t dim_in = layer == 0 ? feature_dim : hidden_dim;
    forward += LayerForwardSeconds(model, vertices, edges, dim_in, hidden_dim, params);
  }
  return forward * (1.0 + params.backward_factor);
}

}  // namespace dgcl
