#include "sim/planner_select.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "comm/compiled_plan.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

uint64_t ClassPlanTraffic(const ClassPlan& plan) {
  uint64_t traffic = 0;
  for (const ClassTree& tree : plan.trees) {
    traffic += static_cast<uint64_t>(tree.edges.size()) * tree.count;
  }
  return traffic;
}

// Plans with one strategy and fills in its scorecard; returns the plan so
// the winner does not have to be re-planned.
Result<ClassPlan> ScoreCandidate(const std::string& strategy, const PlannerOptions& options,
                                 const CommClasses& classes, const Topology& topo,
                                 double bytes_per_unit, PlannerCandidateScore& score) {
  score.strategy = strategy;
  auto planner = PlannerRegistry::Global().Create(strategy, options);
  if (!planner.ok()) {
    score.error = planner.status().message();
    return planner.status();
  }
  Result<ClassPlan> plan = (*planner)->PlanClasses(classes, topo, bytes_per_unit);
  if (!plan.ok()) {
    score.error = plan.status().message();
    return plan.status();
  }
  score.planned = true;
  score.planned_cost_seconds = plan->planned_cost_seconds;
  score.num_stages = plan->NumStages();
  score.total_traffic = ClassPlanTraffic(*plan);
  CompiledPlan compiled = CompilePlan(*plan, classes, topo);
  NetworkSimOptions sim;
  sim.bytes_per_unit = bytes_per_unit;
  score.simulated_seconds = SimulateTransfer(compiled, topo, sim).total_seconds;
  DGCL_TCOUNT("planner", PlannerRegistry::InternedName("auto." + strategy + ".cost_us"),
              score.planned_cost_seconds * 1e6);
  DGCL_TCOUNT("planner", PlannerRegistry::InternedName("auto." + strategy + ".sim_us"),
              score.simulated_seconds * 1e6);
  return plan;
}

}  // namespace

std::string SelectionReport::Table() const {
  std::string out =
      "  strategy        cost-model    simulated  stages      traffic\n";
  char line[160];
  for (const PlannerCandidateScore& c : candidates) {
    if (!c.planned) {
      std::snprintf(line, sizeof(line), "  %-16s  unplannable: %s\n", c.strategy.c_str(),
                    c.error.c_str());
    } else {
      std::snprintf(line, sizeof(line), "%c %-16s %9.3f ms %9.3f ms %7u %12" PRIu64 "\n",
                    c.selected ? '*' : ' ', c.strategy.c_str(),
                    c.planned_cost_seconds * 1e3, c.simulated_seconds * 1e3, c.num_stages,
                    c.total_traffic);
    }
    out += line;
  }
  return out;
}

Result<ClassPlan> PlanWithStrategy(const PlannerOptions& options, const CommClasses& classes,
                                   const Topology& topo, double bytes_per_unit,
                                   SelectionReport* report) {
  SelectionReport local;
  SelectionReport& rep = report != nullptr ? *report : local;
  rep = SelectionReport{};

  if (!options.IsAuto()) {
    rep.candidates.emplace_back();
    Result<ClassPlan> plan =
        ScoreCandidate(options.strategy, options, classes, topo, bytes_per_unit,
                       rep.candidates.back());
    if (plan.ok()) {
      rep.candidates.back().selected = true;
      rep.selected_strategy = options.strategy;
    }
    return plan;
  }

  const std::vector<std::string> names = PlannerRegistry::Global().Names();
  DGCL_TSPAN1("planner", "auto_select", "candidates", names.size());
  Result<ClassPlan> best = Status::FailedPrecondition("no registered planner strategies");
  size_t best_index = 0;
  for (const std::string& name : names) {
    rep.candidates.emplace_back();
    PlannerCandidateScore& score = rep.candidates.back();
    Result<ClassPlan> plan =
        ScoreCandidate(name, options, classes, topo, bytes_per_unit, score);
    if (!plan.ok()) {
      continue;  // recorded in the report; auto skips unplannable strategies
    }
    if (!best.ok() || score.planned_cost_seconds <
                          rep.candidates[best_index].planned_cost_seconds) {
      best = std::move(plan);
      best_index = rep.candidates.size() - 1;
    }
  }
  if (!best.ok()) {
    std::string errors;
    for (const PlannerCandidateScore& c : rep.candidates) {
      errors += "\n  " + c.strategy + ": " + c.error;
    }
    return Status::FailedPrecondition("auto-select: no strategy can plan this workload:" +
                                      errors);
  }
  rep.candidates[best_index].selected = true;
  rep.selected_strategy = rep.candidates[best_index].strategy;
  DGCL_TCOUNT("planner",
              PlannerRegistry::InternedName("auto.selected." + rep.selected_strategy), 1);
  return best;
}

}  // namespace dgcl
