#include "sim/memory_model.h"

namespace dgcl {

double TrainingFootprintBytes(uint64_t stored_vertices, uint64_t stored_edges,
                              uint32_t feature_dim, uint32_t hidden_dim, uint32_t num_layers) {
  const double v = static_cast<double>(stored_vertices);
  const double e = static_cast<double>(stored_edges);
  // CSR structure: 8-byte offsets amortized + 4-byte targets.
  const double graph_bytes = e * 4.0 + v * 8.0;
  // Input features (kept for the backward pass).
  const double feature_bytes = v * feature_dim * 4.0;
  // Per layer: forward activations, the aggregate buffer, gradients of both,
  // and kernel workspace — five hidden-width copies per stored vertex.
  const double activation_bytes = v * hidden_dim * 4.0 * 5.0 * num_layers;
  // Communication staging buffers etc. — small fixed fraction.
  const double overhead = 0.05 * (feature_bytes + activation_bytes);
  return graph_bytes + feature_bytes + activation_bytes + overhead;
}

}  // namespace dgcl
