// Plan compilation: per-vertex trees -> executable transfer tuples (§6.1).
//
// The runtime consumes (d_i, d_j, stage, send/recv table) tuples: all vertex
// embeddings crossing the same link in the same stage are batched into one
// transfer. In the backward pass stages run in reverse with the tables
// swapped (gradients flow opposite to embeddings); sub-stage splitting makes
// gradient aggregation conflict-free (non-atomic, §6.2).

#ifndef DGCL_COMM_COMPILED_PLAN_H_
#define DGCL_COMM_COMPILED_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/plan.h"
#include "comm/relation.h"
#include "topology/topology.h"

namespace dgcl {

// One batched transfer: `vertices` holds global vertex ids whose embeddings
// cross `link` at `stage` (the send table; the receive table is identical by
// construction — both sides index the same global ids).
struct TransferOp {
  LinkId link = kInvalidId;
  DeviceId src = 0;
  DeviceId dst = 0;
  uint32_t stage = 0;
  uint32_t substage = 0;  // backward-pass sub-stage (0 when unsplit)
  std::vector<VertexId> vertices;
};

struct CompiledPlan {
  uint32_t num_devices = 0;
  uint32_t num_stages = 0;
  std::vector<TransferOp> ops;  // sorted by (stage, link)

  // Provenance: registry name of the strategy whose ClassPlan compiled into
  // this (empty for per-vertex CommPlan compilation or legacy plan files).
  std::string planner_name;

  // Indices into `ops` per device, for runtime scheduling.
  std::vector<std::vector<uint32_t>> ops_by_src;  // per device
  std::vector<std::vector<uint32_t>> ops_by_dst;  // per device

  // Bytes needed to store all send/receive tables (vertex ids, both sides) —
  // the decentralized-coordination memory overhead of Figure 11.
  uint64_t TableBytes() const;

  // Maximum backward sub-stage count across (device, stage) groups.
  uint32_t MaxSubstages() const;
};

// Groups the plan's per-vertex tree edges into batched transfer ops.
CompiledPlan CompilePlan(const CommPlan& plan, const Topology& topo);

// Same, but straight from a class plan: each class tree's edges contribute
// the chunk's vertex ids to the (stage, link) group. Produces byte-identical
// tables to CompilePlan(ExpandClassPlan(plan, classes), topo) without
// materializing the per-vertex trees.
CompiledPlan CompilePlan(const ClassPlan& plan, const CommClasses& classes,
                         const Topology& topo);

// Assigns backward sub-stages (§6.2): within each (receiving device, stage)
// group, two ops that both carry a given vertex must land in different
// sub-stages so its gradient is never written by two peers concurrently.
// In-place; preserves op order.
void AssignBackwardSubstages(CompiledPlan& plan);

// Checks execution causality and delivery of a compiled plan:
//  * a device only sends a vertex at stage k if it owns it or received it in
//    an earlier stage;
//  * after all stages every device holds all its required remote vertices.
// Returns per-device count of extra (forwarded but not needed) vertices via
// `forwarded_extras` when non-null.
Status ValidateCompiledPlan(const CompiledPlan& plan, const CommRelation& relation,
                            const Topology& topo,
                            std::vector<uint64_t>* forwarded_extras = nullptr);

}  // namespace dgcl

#endif  // DGCL_COMM_COMPILED_PLAN_H_
