#include "comm/plan_stats.h"

#include <bit>
#include <sstream>
#include <unordered_set>

namespace dgcl {

PlanStats ComputePlanStats(const CommPlan& plan, const CommRelation& relation,
                           const Topology& topo) {
  PlanStats stats;
  stats.stages = plan.NumStages();
  // Track, per device, vertices it receives vs vertices it needs, to count
  // forwarding extras.
  std::vector<std::unordered_set<VertexId>> received(relation.num_devices);
  for (const CommTree& tree : plan.trees) {
    ++stats.trees;
    stats.naive_transfers += std::popcount(relation.dest_mask[tree.vertex]);
    for (const TreeEdge& e : tree.edges) {
      ++stats.tree_edges;
      if (e.stage > 0) {
        ++stats.relayed_edges;
      }
      const Link& link = topo.link(e.link);
      received[link.dst].insert(tree.vertex);
      for (ConnId hop : link.hops) {
        stats.traffic_by_type[topo.connection(hop).type] += 1;
      }
    }
  }
  for (uint32_t d = 0; d < relation.num_devices; ++d) {
    for (VertexId v : received[d]) {
      if (((relation.dest_mask[v] >> d) & 1) == 0) {
        ++stats.forwarded_extras;
      }
    }
  }
  return stats;
}

double PlanStats::FusionRatio() const {
  return naive_transfers == 0 ? 1.0
                              : static_cast<double>(tree_edges) / naive_transfers;
}

double PlanStats::NvLinkShare() const {
  uint64_t nv = 0;
  uint64_t total = 0;
  for (const auto& [type, units] : traffic_by_type) {
    total += units;
    if (type == LinkType::kNvLink1 || type == LinkType::kNvLink2) {
      nv += units;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(nv) / total;
}

std::string PlanStats::ToString() const {
  std::ostringstream out;
  out << "trees=" << trees << " edges=" << tree_edges << " (naive " << naive_transfers
      << ", fusion ratio " << FusionRatio() << ") stages=" << stages
      << " relayed=" << relayed_edges << " forwarded_extras=" << forwarded_extras
      << " nvlink_share=" << NvLinkShare();
  return out.str();
}

}  // namespace dgcl
