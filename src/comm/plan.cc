#include "comm/plan.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace dgcl {

uint32_t CommTree::MaxStage() const {
  uint32_t max_stage = 0;
  for (const TreeEdge& e : edges) {
    max_stage = std::max(max_stage, e.stage);
  }
  return max_stage;
}

uint32_t CommPlan::NumStages() const {
  uint32_t stages = 0;
  for (const CommTree& tree : trees) {
    if (!tree.edges.empty()) {
      stages = std::max(stages, tree.MaxStage() + 1);
    }
  }
  return stages;
}

uint32_t ClassTree::MaxStage() const {
  uint32_t max_stage = 0;
  for (const TreeEdge& e : edges) {
    max_stage = std::max(max_stage, e.stage);
  }
  return max_stage;
}

uint32_t ClassPlan::NumStages() const {
  uint32_t stages = 0;
  for (const ClassTree& tree : trees) {
    if (!tree.edges.empty()) {
      stages = std::max(stages, tree.MaxStage() + 1);
    }
  }
  return stages;
}

CommPlan ExpandClassPlan(const ClassPlan& plan, const CommClasses& classes) {
  CommPlan out;
  out.num_devices = plan.num_devices;
  uint64_t total = 0;
  for (const ClassTree& tree : plan.trees) {
    total += tree.count;
  }
  out.trees.reserve(total);
  for (const ClassTree& tree : plan.trees) {
    DGCL_CHECK_LT(tree.class_id, classes.classes.size());
    const CommClass& cls = classes.classes[tree.class_id];
    DGCL_CHECK(tree.first + tree.count <= cls.vertices.size());
    for (uint32_t i = 0; i < tree.count; ++i) {
      CommTree per_vertex;
      per_vertex.vertex = cls.vertices[tree.first + i];
      per_vertex.edges = tree.edges;
      out.trees.push_back(std::move(per_vertex));
    }
  }
  std::sort(out.trees.begin(), out.trees.end(),
            [](const CommTree& a, const CommTree& b) { return a.vertex < b.vertex; });
  return out;
}

Status ValidatePlan(const CommPlan& plan, const CommRelation& relation, const Topology& topo) {
  if (plan.num_devices != relation.num_devices) {
    return Status::InvalidArgument("device count mismatch");
  }
  std::vector<uint8_t> expected(relation.dest_mask.size(), 0);
  for (const CommTree& tree : plan.trees) {
    if (tree.vertex >= relation.dest_mask.size()) {
      return Status::OutOfRange("tree for unknown vertex");
    }
    if (expected[tree.vertex]) {
      return Status::InvalidArgument("duplicate tree for vertex");
    }
    expected[tree.vertex] = 1;

    const uint32_t source = relation.source[tree.vertex];
    // depth[d] = depth of device d in the tree, kInvalidId if absent.
    std::vector<uint32_t> depth(plan.num_devices, kInvalidId);
    depth[source] = 0;
    DeviceMask covered = 0;
    for (const TreeEdge& e : tree.edges) {
      if (e.link >= topo.num_links()) {
        return Status::OutOfRange("tree edge with unknown link");
      }
      const Link& link = topo.link(e.link);
      if (depth[link.src] == kInvalidId) {
        return Status::InvalidArgument("tree edge from device not yet in tree");
      }
      if (depth[link.dst] != kInvalidId) {
        return Status::InvalidArgument("tree enters a device twice");
      }
      if (e.stage != depth[link.src]) {
        return Status::InvalidArgument("edge stage does not match tree depth");
      }
      depth[link.dst] = depth[link.src] + 1;
      covered |= DeviceMask{1} << link.dst;
    }
    const DeviceMask needed = relation.dest_mask[tree.vertex];
    if ((covered & needed) != needed) {
      return Status::InvalidArgument("tree does not cover all destinations");
    }
  }
  for (VertexId v = 0; v < relation.dest_mask.size(); ++v) {
    if (relation.dest_mask[v] != 0 && !expected[v]) {
      return Status::InvalidArgument("missing tree for vertex with destinations");
    }
  }
  return Status::Ok();
}

std::vector<std::vector<uint64_t>> PlanHopLoads(const CommPlan& plan, const Topology& topo) {
  const uint32_t stages = plan.NumStages();
  std::vector<std::vector<uint64_t>> loads(
      stages, std::vector<uint64_t>(topo.num_connections(), 0));
  for (const CommTree& tree : plan.trees) {
    for (const TreeEdge& e : tree.edges) {
      for (ConnId hop : topo.link(e.link).hops) {
        ++loads[e.stage][hop];
      }
    }
  }
  return loads;
}

uint64_t PlanTotalTraffic(const CommPlan& plan) {
  uint64_t total = 0;
  for (const CommTree& tree : plan.trees) {
    total += tree.edges.size();
  }
  return total;
}

std::string PlanSummary(const CommPlan& plan, const Topology& topo) {
  std::ostringstream out;
  out << "plan: " << plan.trees.size() << " trees, " << plan.NumStages() << " stages, "
      << PlanTotalTraffic(plan) << " link traversals\n";
  // Per-stage, per-link-type traffic.
  auto loads = PlanHopLoads(plan, topo);
  for (uint32_t k = 0; k < loads.size(); ++k) {
    uint64_t stage_total = 0;
    for (uint64_t l : loads[k]) {
      stage_total += l;
    }
    out << "  stage " << k << ": " << stage_total << " hop traversals\n";
  }
  return out.str();
}

}  // namespace dgcl
