#include "comm/plan.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace dgcl {

uint32_t CommTree::MaxStage() const {
  uint32_t max_stage = 0;
  for (const TreeEdge& e : edges) {
    max_stage = std::max(max_stage, e.stage);
  }
  return max_stage;
}

uint32_t CommPlan::NumStages() const {
  uint32_t stages = 0;
  for (const CommTree& tree : trees) {
    if (!tree.edges.empty()) {
      stages = std::max(stages, tree.MaxStage() + 1);
    }
  }
  return stages;
}

uint32_t ClassTree::MaxStage() const {
  uint32_t max_stage = 0;
  for (const TreeEdge& e : edges) {
    max_stage = std::max(max_stage, e.stage);
  }
  return max_stage;
}

uint32_t ClassPlan::NumStages() const {
  uint32_t stages = 0;
  for (const ClassTree& tree : trees) {
    if (!tree.edges.empty()) {
      stages = std::max(stages, tree.MaxStage() + 1);
    }
  }
  return stages;
}

CommPlan ExpandClassPlan(const ClassPlan& plan, const CommClasses& classes) {
  CommPlan out;
  out.num_devices = plan.num_devices;
  // Prefix-sum the per-tree expansion offsets so every class tree owns a
  // disjoint slot range of the output — the expansion then fans out on the
  // shared pool with slot-indexed writes (deterministic regardless of claim
  // order), and the final sort by vertex fixes the global order either way.
  std::vector<uint64_t> offsets(plan.trees.size() + 1, 0);
  for (size_t t = 0; t < plan.trees.size(); ++t) {
    DGCL_CHECK_LT(plan.trees[t].class_id, classes.classes.size());
    const CommClass& cls = classes.classes[plan.trees[t].class_id];
    DGCL_CHECK(plan.trees[t].first + plan.trees[t].count <= cls.vertices.size());
    offsets[t + 1] = offsets[t] + plan.trees[t].count;
  }
  out.trees.resize(offsets.back());
  auto expand_tree = [&](uint64_t t) {
    const ClassTree& tree = plan.trees[t];
    const CommClass& cls = classes.classes[tree.class_id];
    for (uint32_t i = 0; i < tree.count; ++i) {
      CommTree& per_vertex = out.trees[offsets[t] + i];
      per_vertex.vertex = cls.vertices[tree.first + i];
      per_vertex.edges = tree.edges;
    }
  };
  constexpr uint64_t kSerialThreshold = uint64_t{1} << 14;
  ThreadPool& pool = ThreadPool::Shared();
  if (offsets.back() < kSerialThreshold || pool.num_threads() <= 1) {
    for (uint64_t t = 0; t < plan.trees.size(); ++t) {
      expand_tree(t);
    }
  } else {
    pool.ParallelFor(plan.trees.size(), expand_tree);
  }
  std::sort(out.trees.begin(), out.trees.end(),
            [](const CommTree& a, const CommTree& b) { return a.vertex < b.vertex; });
  return out;
}

Status ValidatePlan(const CommPlan& plan, const CommRelation& relation, const Topology& topo) {
  if (plan.num_devices != relation.num_devices) {
    return Status::InvalidArgument("device count mismatch");
  }
  std::vector<uint8_t> expected(relation.dest_mask.size(), 0);
  for (const CommTree& tree : plan.trees) {
    if (tree.vertex >= relation.dest_mask.size()) {
      return Status::OutOfRange("tree for unknown vertex");
    }
    if (expected[tree.vertex]) {
      return Status::InvalidArgument("duplicate tree for vertex");
    }
    expected[tree.vertex] = 1;

    const uint32_t source = relation.source[tree.vertex];
    // depth[d] = depth of device d in the tree, kInvalidId if absent.
    std::vector<uint32_t> depth(plan.num_devices, kInvalidId);
    depth[source] = 0;
    DeviceMask covered = 0;
    for (const TreeEdge& e : tree.edges) {
      if (e.link >= topo.num_links()) {
        return Status::OutOfRange("tree edge with unknown link");
      }
      const Link& link = topo.link(e.link);
      if (depth[link.src] == kInvalidId) {
        return Status::InvalidArgument("tree edge from device not yet in tree");
      }
      if (depth[link.dst] != kInvalidId) {
        return Status::InvalidArgument("tree enters a device twice");
      }
      if (e.stage != depth[link.src]) {
        return Status::InvalidArgument("edge stage does not match tree depth");
      }
      depth[link.dst] = depth[link.src] + 1;
      covered |= DeviceMask{1} << link.dst;
    }
    const DeviceMask needed = relation.dest_mask[tree.vertex];
    if ((covered & needed) != needed) {
      return Status::InvalidArgument("tree does not cover all destinations");
    }
  }
  for (VertexId v = 0; v < relation.dest_mask.size(); ++v) {
    if (relation.dest_mask[v] != 0 && !expected[v]) {
      return Status::InvalidArgument("missing tree for vertex with destinations");
    }
  }
  return Status::Ok();
}

std::vector<std::vector<uint64_t>> PlanHopLoads(const CommPlan& plan, const Topology& topo) {
  const uint32_t stages = plan.NumStages();
  std::vector<std::vector<uint64_t>> loads(
      stages, std::vector<uint64_t>(topo.num_connections(), 0));
  for (const CommTree& tree : plan.trees) {
    for (const TreeEdge& e : tree.edges) {
      for (ConnId hop : topo.link(e.link).hops) {
        ++loads[e.stage][hop];
      }
    }
  }
  return loads;
}

uint64_t PlanTotalTraffic(const CommPlan& plan) {
  uint64_t total = 0;
  for (const CommTree& tree : plan.trees) {
    total += tree.edges.size();
  }
  return total;
}

std::string PlanSummary(const CommPlan& plan, const Topology& topo) {
  std::ostringstream out;
  out << "plan: " << plan.trees.size() << " trees, " << plan.NumStages() << " stages, "
      << PlanTotalTraffic(plan) << " link traversals\n";
  // Per-stage, per-link-type traffic.
  auto loads = PlanHopLoads(plan, topo);
  for (uint32_t k = 0; k < loads.size(); ++k) {
    uint64_t stage_total = 0;
    for (uint64_t l : loads[k]) {
      stage_total += l;
    }
    out << "  stage " << k << ": " << stage_total << " hop traversals\n";
  }
  return out.str();
}

}  // namespace dgcl
