// Communication relation: who needs which vertex embeddings (§4.1).
//
// From a graph and its partitioning we derive, per vertex u, the source
// device s_u (owner of u's partition) and the destination set D_u (devices
// owning a neighbor of u). The per-pair tables V_ij of the paper are the
// grouping of this per-vertex relation by (source, destination).
//
// Destination sets are stored as 64-bit masks, capping the device count at 64
// (the paper notes |V'| < 100 for typical deployments; all experiments use
// at most 16).

#ifndef DGCL_COMM_RELATION_H_
#define DGCL_COMM_RELATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "partition/partitioner.h"

namespace dgcl {

using DeviceMask = uint64_t;

inline constexpr uint32_t kMaxDevices = 64;

struct CommRelation {
  uint32_t num_devices = 0;
  std::vector<uint32_t> source;      // per vertex: owner device
  std::vector<DeviceMask> dest_mask; // per vertex: remote devices needing it

  // Per device: owned vertices, ascending global ids.
  std::vector<std::vector<VertexId>> local_vertices;
  // Per device: remote vertices it needs (neighbors owned elsewhere), ascending.
  std::vector<std::vector<VertexId>> remote_vertices;

  // Number of (vertex, destination) transfer obligations.
  uint64_t TotalTransfers() const;

  // V_ij sizes: volumes[i][j] = number of vertices i must send to j.
  std::vector<std::vector<uint64_t>> PairVolumes() const;

  // Vertices with a non-empty destination set (the planner's work list).
  std::vector<VertexId> VerticesWithDestinations() const;
};

// A destination-set equivalence class: every vertex owned by `source` whose
// destination set is exactly `mask`. All members share the same feasible
// strategies, so the planner can grow one tree for the whole class and commit
// `weight` vertex units to the cost model in one shot — millions of vertices
// collapse into at most (num_devices × distinct masks) classes.
struct CommClass {
  uint32_t source = 0;
  DeviceMask mask = 0;
  std::vector<VertexId> vertices;  // members, ascending global ids
  uint64_t weight = 0;             // == vertices.size(): units of traffic
};

// The grouped view of a CommRelation. Classes are ordered by (source, mask)
// ascending, so the grouping is deterministic for a given relation.
struct CommClasses {
  uint32_t num_devices = 0;
  std::vector<CommClass> classes;

  // Sum of class weights == number of vertices with destinations.
  uint64_t TotalWeight() const;
};

// Groups the relation's vertices into destination-set equivalence classes.
// Vertices with an empty destination set are skipped (they need no plan).
CommClasses BuildCommClasses(const CommRelation& relation);

// Fails if the partitioning is invalid or has more than kMaxDevices parts.
Result<CommRelation> BuildCommRelation(const CsrGraph& graph, const Partitioning& partitioning);

}  // namespace dgcl

#endif  // DGCL_COMM_RELATION_H_
