#include "comm/plan_dump.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace dgcl {

std::string VertexTreeToDot(const CommPlan& plan, const Topology& topo, VertexId v) {
  std::ostringstream out;
  out << "digraph vertex_" << v << " {\n";
  out << "  rankdir=LR;\n";
  const CommTree* tree = nullptr;
  for (const CommTree& t : plan.trees) {
    if (t.vertex == v) {
      tree = &t;
      break;
    }
  }
  if (tree != nullptr) {
    for (const TreeEdge& e : tree->edges) {
      const Link& link = topo.link(e.link);
      // Label with the stage and the slowest hop's medium.
      double min_bw = 1e30;
      const char* medium = "?";
      for (ConnId hop : link.hops) {
        if (topo.connection(hop).bandwidth_gbps < min_bw) {
          min_bw = topo.connection(hop).bandwidth_gbps;
          medium = LinkTypeName(topo.connection(hop).type);
        }
      }
      out << "  \"" << topo.device(link.src).name << "\" -> \"" << topo.device(link.dst).name
          << "\" [label=\"stage " << e.stage << " / " << medium << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string StageGantt(const CompiledPlan& plan, const Topology& topo, uint32_t width) {
  // loads[stage][conn] in vertex units.
  std::map<uint32_t, std::map<ConnId, uint64_t>> loads;
  uint64_t max_load = 1;
  for (const TransferOp& op : plan.ops) {
    for (ConnId hop : topo.link(op.link).hops) {
      uint64_t& cell = loads[op.stage][hop];
      cell += op.vertices.size();
      max_load = std::max(max_load, cell);
    }
  }
  std::ostringstream out;
  out << "stage Gantt (bar = vertex-units on a connection, max " << max_load << ")\n";
  for (const auto& [stage, conns] : loads) {
    out << "stage " << stage << ":\n";
    for (const auto& [conn, units] : conns) {
      const uint32_t bar =
          std::max<uint32_t>(1, static_cast<uint32_t>(units * width / max_load));
      out << "  " << topo.connection(conn).name;
      const size_t pad = topo.connection(conn).name.size() < 24
                             ? 24 - topo.connection(conn).name.size()
                             : 1;
      out << std::string(pad, ' ') << std::string(bar, '#') << " " << units << "\n";
    }
  }
  return out.str();
}

}  // namespace dgcl
