#include "comm/relation.h"

#include <bit>
#include <map>
#include <utility>

namespace dgcl {

Result<CommRelation> BuildCommRelation(const CsrGraph& graph, const Partitioning& partitioning) {
  DGCL_RETURN_IF_ERROR(ValidatePartitioning(graph, partitioning));
  if (partitioning.num_parts > kMaxDevices) {
    return Status::InvalidArgument("more than kMaxDevices parts");
  }
  CommRelation rel;
  rel.num_devices = partitioning.num_parts;
  rel.source = partitioning.assignment;
  rel.dest_mask.assign(graph.num_vertices(), 0);
  rel.local_vertices.resize(rel.num_devices);
  rel.remote_vertices.resize(rel.num_devices);

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    rel.local_vertices[rel.source[v]].push_back(v);
    for (VertexId nbr : graph.Neighbors(v)) {
      uint32_t nbr_part = partitioning.assignment[nbr];
      if (nbr_part != rel.source[v]) {
        // v's embedding is needed by nbr's device.
        rel.dest_mask[v] |= DeviceMask{1} << nbr_part;
      }
    }
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    DeviceMask mask = rel.dest_mask[v];
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      rel.remote_vertices[d].push_back(v);
    }
  }
  return rel;
}

uint64_t CommRelation::TotalTransfers() const {
  uint64_t total = 0;
  for (DeviceMask mask : dest_mask) {
    total += static_cast<uint64_t>(std::popcount(mask));
  }
  return total;
}

std::vector<std::vector<uint64_t>> CommRelation::PairVolumes() const {
  std::vector<std::vector<uint64_t>> volumes(num_devices,
                                             std::vector<uint64_t>(num_devices, 0));
  for (VertexId v = 0; v < source.size(); ++v) {
    DeviceMask mask = dest_mask[v];
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      ++volumes[source[v]][d];
    }
  }
  return volumes;
}

uint64_t CommClasses::TotalWeight() const {
  uint64_t total = 0;
  for (const CommClass& c : classes) {
    total += c.weight;
  }
  return total;
}

CommClasses BuildCommClasses(const CommRelation& relation) {
  CommClasses out;
  out.num_devices = relation.num_devices;
  // std::map keys give the deterministic (source, mask) ascending order;
  // vertices arrive ascending because v is scanned in id order.
  std::map<std::pair<uint32_t, DeviceMask>, std::vector<VertexId>> groups;
  for (VertexId v = 0; v < relation.dest_mask.size(); ++v) {
    if (relation.dest_mask[v] != 0) {
      groups[{relation.source[v], relation.dest_mask[v]}].push_back(v);
    }
  }
  out.classes.reserve(groups.size());
  for (auto& [key, vertices] : groups) {
    CommClass c;
    c.source = key.first;
    c.mask = key.second;
    c.weight = vertices.size();
    c.vertices = std::move(vertices);
    out.classes.push_back(std::move(c));
  }
  return out;
}

std::vector<VertexId> CommRelation::VerticesWithDestinations() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < dest_mask.size(); ++v) {
    if (dest_mask[v] != 0) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace dgcl
