#include "comm/relation.h"

#include <bit>
#include <map>
#include <utility>

#include "common/thread_pool.h"

namespace dgcl {

Result<CommRelation> BuildCommRelation(const CsrGraph& graph, const Partitioning& partitioning) {
  DGCL_RETURN_IF_ERROR(ValidatePartitioning(graph, partitioning));
  if (partitioning.num_parts > kMaxDevices) {
    return Status::InvalidArgument("more than kMaxDevices parts");
  }
  CommRelation rel;
  rel.num_devices = partitioning.num_parts;
  rel.source = partitioning.assignment;
  rel.dest_mask.assign(graph.num_vertices(), 0);
  rel.local_vertices.resize(rel.num_devices);
  rel.remote_vertices.resize(rel.num_devices);

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    rel.local_vertices[rel.source[v]].push_back(v);
    for (VertexId nbr : graph.Neighbors(v)) {
      uint32_t nbr_part = partitioning.assignment[nbr];
      if (nbr_part != rel.source[v]) {
        // v's embedding is needed by nbr's device.
        rel.dest_mask[v] |= DeviceMask{1} << nbr_part;
      }
    }
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    DeviceMask mask = rel.dest_mask[v];
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      rel.remote_vertices[d].push_back(v);
    }
  }
  return rel;
}

uint64_t CommRelation::TotalTransfers() const {
  uint64_t total = 0;
  for (DeviceMask mask : dest_mask) {
    total += static_cast<uint64_t>(std::popcount(mask));
  }
  return total;
}

std::vector<std::vector<uint64_t>> CommRelation::PairVolumes() const {
  std::vector<std::vector<uint64_t>> volumes(num_devices,
                                             std::vector<uint64_t>(num_devices, 0));
  for (VertexId v = 0; v < source.size(); ++v) {
    DeviceMask mask = dest_mask[v];
    while (mask != 0) {
      uint32_t d = static_cast<uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      ++volumes[source[v]][d];
    }
  }
  return volumes;
}

uint64_t CommClasses::TotalWeight() const {
  uint64_t total = 0;
  for (const CommClass& c : classes) {
    total += c.weight;
  }
  return total;
}

CommClasses BuildCommClasses(const CommRelation& relation) {
  CommClasses out;
  out.num_devices = relation.num_devices;
  // std::map keys give the deterministic (source, mask) ascending order;
  // vertices arrive ascending because v is scanned in id order. Above the
  // serial threshold the scan shards into contiguous vertex ranges on the
  // shared pool: each shard's local map holds ascending vertices, and
  // merging the shards in range order preserves the global ascending order
  // — the result is bit-identical to the serial scan.
  using Groups = std::map<std::pair<uint32_t, DeviceMask>, std::vector<VertexId>>;
  Groups groups;
  const size_t n = relation.dest_mask.size();
  constexpr size_t kSerialThreshold = size_t{1} << 14;
  ThreadPool& pool = ThreadPool::Shared();
  if (n < kSerialThreshold || pool.num_threads() <= 1) {
    for (VertexId v = 0; v < n; ++v) {
      if (relation.dest_mask[v] != 0) {
        groups[{relation.source[v], relation.dest_mask[v]}].push_back(v);
      }
    }
  } else {
    const size_t num_shards = std::min<size_t>(pool.num_threads() + 1, n);
    std::vector<Groups> shard_groups(num_shards);
    pool.ParallelFor(num_shards, [&](uint64_t shard) {
      const VertexId begin = static_cast<VertexId>(n * shard / num_shards);
      const VertexId end = static_cast<VertexId>(n * (shard + 1) / num_shards);
      Groups& local = shard_groups[shard];
      for (VertexId v = begin; v < end; ++v) {
        if (relation.dest_mask[v] != 0) {
          local[{relation.source[v], relation.dest_mask[v]}].push_back(v);
        }
      }
    });
    for (Groups& shard : shard_groups) {
      for (auto& [key, vertices] : shard) {
        auto& merged = groups[key];
        if (merged.empty()) {
          merged = std::move(vertices);
        } else {
          merged.insert(merged.end(), vertices.begin(), vertices.end());
        }
      }
    }
  }
  out.classes.reserve(groups.size());
  for (auto& [key, vertices] : groups) {
    CommClass c;
    c.source = key.first;
    c.mask = key.second;
    c.weight = vertices.size();
    c.vertices = std::move(vertices);
    out.classes.push_back(std::move(c));
  }
  return out;
}

std::vector<VertexId> CommRelation::VerticesWithDestinations() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < dest_mask.size(); ++v) {
    if (dest_mask[v] != 0) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace dgcl
