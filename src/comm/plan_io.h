// Compiled-plan serialization.
//
// Planning runs once before training (§4.1) and the same tuples are reused
// for every layer and epoch; persisting them lets a cluster restart training
// without re-running SPST. The binary format records a fingerprint of the
// topology (device/link/connection counts) so a plan cannot be loaded
// against a different cluster shape.

#ifndef DGCL_COMM_PLAN_IO_H_
#define DGCL_COMM_PLAN_IO_H_

#include <string>

#include "comm/compiled_plan.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

Status SaveCompiledPlan(const CompiledPlan& plan, const Topology& topo,
                        const std::string& path);

// Verifies the topology fingerprint and rebuilds the per-device indices.
Result<CompiledPlan> LoadCompiledPlan(const Topology& topo, const std::string& path);

}  // namespace dgcl

#endif  // DGCL_COMM_PLAN_IO_H_
