#include "comm/plan_io.h"

#include <cstring>
#include <fstream>

namespace dgcl {
namespace {

constexpr char kMagic[8] = {'D', 'G', 'C', 'L', 'P', '1', 0, 0};

// Optional trailer after the op table carrying the plan's planner provenance.
// It is written only for non-default strategies, so plan files produced by
// the default SPST planner are byte-identical to the pre-trailer format (the
// golden corpus stays valid); a file without a trailer loads as "spst".
constexpr char kPlannerTrailerMagic[4] = {'P', 'L', 'N', 'R'};

struct Header {
  char magic[8];
  uint32_t num_devices = 0;
  uint32_t num_links = 0;        // topology fingerprint
  uint32_t num_connections = 0;  // topology fingerprint
  uint32_t num_stages = 0;
  uint64_t num_ops = 0;
};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveCompiledPlan(const CompiledPlan& plan, const Topology& topo,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_devices = plan.num_devices;
  header.num_links = topo.num_links();
  header.num_connections = topo.num_connections();
  header.num_stages = plan.num_stages;
  header.num_ops = plan.ops.size();
  WritePod(out, header);
  for (const TransferOp& op : plan.ops) {
    WritePod(out, op.link);
    WritePod(out, op.stage);
    WritePod(out, op.substage);
    WritePod(out, static_cast<uint64_t>(op.vertices.size()));
    out.write(reinterpret_cast<const char*>(op.vertices.data()),
              static_cast<std::streamsize>(op.vertices.size() * sizeof(VertexId)));
  }
  if (!plan.planner_name.empty() && plan.planner_name != "spst") {
    out.write(kPlannerTrailerMagic, sizeof(kPlannerTrailerMagic));
    WritePod(out, static_cast<uint32_t>(plan.planner_name.size()));
    out.write(plan.planner_name.data(),
              static_cast<std::streamsize>(plan.planner_name.size()));
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

Result<CompiledPlan> LoadCompiledPlan(const Topology& topo, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  Header header;
  if (!ReadPod(in, header) || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a DGCL plan file");
  }
  if (header.num_devices != topo.num_devices() || header.num_links != topo.num_links() ||
      header.num_connections != topo.num_connections()) {
    return Status::FailedPrecondition(path + ": plan was built for a different topology");
  }
  CompiledPlan plan;
  plan.num_devices = header.num_devices;
  plan.num_stages = header.num_stages;
  plan.ops.reserve(header.num_ops);
  for (uint64_t i = 0; i < header.num_ops; ++i) {
    TransferOp op;
    uint64_t count = 0;
    if (!ReadPod(in, op.link) || !ReadPod(in, op.stage) || !ReadPod(in, op.substage) ||
        !ReadPod(in, count)) {
      return Status::InvalidArgument(path + ": truncated op header");
    }
    if (op.link >= topo.num_links() || op.stage >= header.num_stages) {
      return Status::InvalidArgument(path + ": op references invalid link/stage");
    }
    op.src = topo.link(op.link).src;
    op.dst = topo.link(op.link).dst;
    op.vertices.resize(count);
    in.read(reinterpret_cast<char*>(op.vertices.data()),
            static_cast<std::streamsize>(count * sizeof(VertexId)));
    if (!in) {
      return Status::InvalidArgument(path + ": truncated vertex table");
    }
    plan.ops.push_back(std::move(op));
  }
  plan.planner_name = "spst";  // trailer-less files predate provenance
  char trailer_magic[4];
  if (in.read(trailer_magic, sizeof(trailer_magic)) &&
      std::memcmp(trailer_magic, kPlannerTrailerMagic, sizeof(kPlannerTrailerMagic)) == 0) {
    uint32_t len = 0;
    if (!ReadPod(in, len) || len > 256) {
      return Status::InvalidArgument(path + ": corrupt planner trailer");
    }
    std::string name(len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(len));
    if (!in) {
      return Status::InvalidArgument(path + ": truncated planner trailer");
    }
    plan.planner_name = std::move(name);
  }
  plan.ops_by_src.resize(plan.num_devices);
  plan.ops_by_dst.resize(plan.num_devices);
  for (uint32_t i = 0; i < plan.ops.size(); ++i) {
    plan.ops_by_src[plan.ops[i].src].push_back(i);
    plan.ops_by_dst[plan.ops[i].dst].push_back(i);
  }
  return plan;
}

}  // namespace dgcl
