// Communication plans: per-vertex strategies and their union (§5.1).
//
// The feasible strategy for a vertex u is a tree in the topology rooted at
// the source device s_u and containing every destination in D_u. A plan is
// the union of one tree per vertex; transfers are staged — an edge at tree
// depth k executes in stage k (0-based here; the paper counts from 1).

#ifndef DGCL_COMM_PLAN_H_
#define DGCL_COMM_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "comm/relation.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

struct TreeEdge {
  LinkId link = kInvalidId;
  uint32_t stage = 0;  // == depth of the edge's child in the tree
};

// One vertex's communication strategy.
struct CommTree {
  VertexId vertex = 0;
  std::vector<TreeEdge> edges;  // ordered so a parent edge precedes children

  uint32_t MaxStage() const;
};

struct CommPlan {
  uint32_t num_devices = 0;
  std::vector<CommTree> trees;  // one per vertex with destinations

  uint32_t NumStages() const;
};

// One tree shared by a contiguous chunk of an equivalence class: it covers
// classes[class_id].vertices[first, first + count) and every edge carries
// `count` vertex units. A class larger than the planner's chunk bound is
// split into several ClassTrees whose ranges partition the vertex list.
struct ClassTree {
  uint32_t class_id = 0;
  uint32_t first = 0;
  uint32_t count = 0;
  std::vector<TreeEdge> edges;  // ordered so a parent edge precedes children

  uint32_t MaxStage() const;
};

// A plan over destination-set equivalence classes (batched SPST). The
// runtime never sees this form: it is either expanded to the per-vertex
// CommPlan or compiled directly into the same send/recv tables.
struct ClassPlan {
  uint32_t num_devices = 0;
  std::vector<ClassTree> trees;

  // t(S) under the planner's cost model, as accounted while planning.
  // Replaying the trees through a fresh CostModel (ReplayClassPlanCost)
  // reproduces this bit-for-bit — a planner accounting invariant the
  // property tests rely on. 0 when the plan is empty.
  double planned_cost_seconds = 0.0;

  // Provenance: the registry name of the strategy that produced this plan
  // ("spst", "p2p", ...). Carried through CompilePlan and plan_io so a saved
  // plan records how it was made; empty means unknown/legacy.
  std::string planner_name;

  uint32_t NumStages() const;
};

// Expands class trees into the per-vertex plan: every vertex of a chunk gets
// a copy of the chunk's tree. Trees come out ordered by vertex id.
CommPlan ExpandClassPlan(const ClassPlan& plan, const CommClasses& classes);

// Verifies the plan against the relation and topology:
//  * every tree's edges form a connected tree rooted at source(u), with edge
//    stages equal to child depth and each device entered at most once;
//  * every destination of u appears in the tree;
//  * every edge refers to an existing topology link.
Status ValidatePlan(const CommPlan& plan, const CommRelation& relation, const Topology& topo);

// Aggregate per-(stage, connection) traffic of a plan, in vertex units.
// result[stage][conn] = number of vertex embeddings crossing `conn` there.
std::vector<std::vector<uint64_t>> PlanHopLoads(const CommPlan& plan, const Topology& topo);

// Total (vertex, link-hop) traversals: the plan's raw traffic volume.
uint64_t PlanTotalTraffic(const CommPlan& plan);

std::string PlanSummary(const CommPlan& plan, const Topology& topo);

}  // namespace dgcl

#endif  // DGCL_COMM_PLAN_H_
