// Human-readable plan introspection.
//
// Two views that make communication plans debuggable:
//  * VertexTreeToDot — one vertex's communication tree as Graphviz DOT,
//    edges labeled with their stage and the link's bottleneck medium;
//  * StageGantt — a text Gantt chart of a compiled plan: per stage, the
//    traffic each physical connection carries, bars scaled to the busiest.

#ifndef DGCL_COMM_PLAN_DUMP_H_
#define DGCL_COMM_PLAN_DUMP_H_

#include <string>

#include "comm/compiled_plan.h"
#include "comm/plan.h"
#include "topology/topology.h"

namespace dgcl {

// DOT digraph of vertex `v`'s tree in `plan`; empty-graph DOT when the plan
// has no tree for v (i.e. v has no remote destinations).
std::string VertexTreeToDot(const CommPlan& plan, const Topology& topo, VertexId v);

// Text Gantt: one section per stage, one bar per active connection, bar
// length proportional to that connection's vertex-units (max `width` chars).
std::string StageGantt(const CompiledPlan& plan, const Topology& topo, uint32_t width = 40);

}  // namespace dgcl

#endif  // DGCL_COMM_PLAN_DUMP_H_
