#include "comm/compiled_plan.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace dgcl {
namespace {

// (stage, link) -> vertex ids crossing there; shared by both compile paths.
using TransferGroups = std::map<std::pair<uint32_t, LinkId>, std::vector<VertexId>>;

constexpr size_t kCompileSerialThreshold = size_t{1} << 12;

// Builds TransferGroups over [0, n) tree indices: serial below the
// threshold, otherwise sharded into contiguous ranges on the shared pool
// with shard-local maps merged in shard order. GroupsToPlan sorts every
// group's vertices afterwards, so the merge order cannot affect the output
// — the parallel path is bit-identical to the serial scan.
template <typename AppendTree>
TransferGroups BuildTransferGroups(size_t n, const AppendTree& append_tree) {
  TransferGroups groups;
  ThreadPool& pool = ThreadPool::Shared();
  if (n < kCompileSerialThreshold || pool.num_threads() <= 1) {
    for (size_t t = 0; t < n; ++t) {
      append_tree(groups, t);
    }
    return groups;
  }
  const size_t num_shards = std::min<size_t>(pool.num_threads() + 1, n);
  std::vector<TransferGroups> shard_groups(num_shards);
  pool.ParallelFor(num_shards, [&](uint64_t shard) {
    TransferGroups& local = shard_groups[shard];
    const size_t begin = n * shard / num_shards;
    const size_t end = n * (shard + 1) / num_shards;
    for (size_t t = begin; t < end; ++t) {
      append_tree(local, t);
    }
  });
  for (TransferGroups& shard : shard_groups) {
    for (auto& [key, vertices] : shard) {
      auto& merged = groups[key];
      if (merged.empty()) {
        merged = std::move(vertices);
      } else {
        merged.insert(merged.end(), vertices.begin(), vertices.end());
      }
    }
  }
  return groups;
}

CompiledPlan GroupsToPlan(TransferGroups& groups, uint32_t num_devices, uint32_t num_stages,
                          const Topology& topo) {
  CompiledPlan out;
  out.num_devices = num_devices;
  out.num_stages = num_stages;
  out.ops.reserve(groups.size());
  for (auto& [key, vertices] : groups) {
    std::sort(vertices.begin(), vertices.end());
    TransferOp op;
    op.stage = key.first;
    op.link = key.second;
    op.src = topo.link(key.second).src;
    op.dst = topo.link(key.second).dst;
    op.vertices = std::move(vertices);
    out.ops.push_back(std::move(op));
  }

  out.ops_by_src.resize(out.num_devices);
  out.ops_by_dst.resize(out.num_devices);
  for (uint32_t i = 0; i < out.ops.size(); ++i) {
    out.ops_by_src[out.ops[i].src].push_back(i);
    out.ops_by_dst[out.ops[i].dst].push_back(i);
  }
  return out;
}

}  // namespace

CompiledPlan CompilePlan(const CommPlan& plan, const Topology& topo) {
  TransferGroups groups =
      BuildTransferGroups(plan.trees.size(), [&](TransferGroups& out, size_t t) {
        const CommTree& tree = plan.trees[t];
        for (const TreeEdge& e : tree.edges) {
          out[{e.stage, e.link}].push_back(tree.vertex);
        }
      });
  return GroupsToPlan(groups, plan.num_devices, plan.NumStages(), topo);
}

CompiledPlan CompilePlan(const ClassPlan& plan, const CommClasses& classes,
                         const Topology& topo) {
  TransferGroups groups =
      BuildTransferGroups(plan.trees.size(), [&](TransferGroups& out, size_t t) {
        const ClassTree& tree = plan.trees[t];
        DGCL_CHECK_LT(tree.class_id, classes.classes.size());
        const CommClass& cls = classes.classes[tree.class_id];
        DGCL_CHECK(tree.first + tree.count <= cls.vertices.size());
        const auto chunk_begin = cls.vertices.begin() + tree.first;
        const auto chunk_end = chunk_begin + tree.count;
        for (const TreeEdge& e : tree.edges) {
          auto& vertices = out[{e.stage, e.link}];
          vertices.insert(vertices.end(), chunk_begin, chunk_end);
        }
      });
  CompiledPlan compiled = GroupsToPlan(groups, plan.num_devices, plan.NumStages(), topo);
  compiled.planner_name = plan.planner_name;
  return compiled;
}

uint64_t CompiledPlan::TableBytes() const {
  uint64_t ids = 0;
  for (const TransferOp& op : ops) {
    ids += op.vertices.size();
  }
  // Send table on the sender plus receive table on the receiver.
  return 2 * ids * sizeof(VertexId);
}

uint32_t CompiledPlan::MaxSubstages() const {
  uint32_t max_sub = 0;
  for (const TransferOp& op : ops) {
    max_sub = std::max(max_sub, op.substage + 1);
  }
  return max_sub;
}

void AssignBackwardSubstages(CompiledPlan& plan) {
  // Backward: op (src -> dst, stage) carries gradients dst -> src, so the
  // *src* device aggregates. Per §6.2, each op's table is *partitioned*
  // across sub-stages such that, within a (receiving device, stage,
  // sub-stage), every vertex receives a gradient from at most one peer —
  // peers still stream concurrently inside a sub-stage, so the split costs
  // almost nothing while removing the need for atomic reductions.
  //
  // The k-th op (in deterministic order) carrying vertex v within a
  // (src, stage) group puts v's gradient in sub-stage k.
  std::map<std::pair<DeviceId, uint32_t>, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < plan.ops.size(); ++i) {
    groups[{plan.ops[i].src, plan.ops[i].stage}].push_back(i);
  }
  std::vector<TransferOp> split_ops;
  split_ops.reserve(plan.ops.size());
  for (auto& [key, op_ids] : groups) {
    (void)key;
    std::unordered_map<VertexId, uint32_t> next_substage;
    for (uint32_t op_id : op_ids) {
      const TransferOp& op = plan.ops[op_id];
      std::map<uint32_t, std::vector<VertexId>> parts;
      for (VertexId v : op.vertices) {
        parts[next_substage[v]++].push_back(v);
      }
      for (auto& [substage, vertices] : parts) {
        TransferOp sub = op;
        sub.substage = substage;
        sub.vertices = std::move(vertices);
        split_ops.push_back(std::move(sub));
      }
    }
  }
  std::sort(split_ops.begin(), split_ops.end(),
            [](const TransferOp& a, const TransferOp& b) {
              return std::tie(a.stage, a.link, a.substage) <
                     std::tie(b.stage, b.link, b.substage);
            });
  plan.ops = std::move(split_ops);
  for (auto& ids : plan.ops_by_src) {
    ids.clear();
  }
  for (auto& ids : plan.ops_by_dst) {
    ids.clear();
  }
  for (uint32_t i = 0; i < plan.ops.size(); ++i) {
    plan.ops_by_src[plan.ops[i].src].push_back(i);
    plan.ops_by_dst[plan.ops[i].dst].push_back(i);
  }
}

Status ValidateCompiledPlan(const CompiledPlan& plan, const CommRelation& relation,
                            const Topology& topo,
                            std::vector<uint64_t>* forwarded_extras) {
  if (plan.num_devices != relation.num_devices) {
    return Status::InvalidArgument("device count mismatch");
  }
  // held[d] = set of vertices device d has after the stages executed so far.
  std::vector<std::unordered_set<VertexId>> held(plan.num_devices);
  for (uint32_t d = 0; d < plan.num_devices; ++d) {
    held[d].insert(relation.local_vertices[d].begin(), relation.local_vertices[d].end());
  }
  // Ops must be executed stage by stage.
  std::vector<std::vector<const TransferOp*>> by_stage(plan.num_stages);
  for (const TransferOp& op : plan.ops) {
    if (op.link >= topo.num_links() || topo.link(op.link).src != op.src ||
        topo.link(op.link).dst != op.dst) {
      return Status::InvalidArgument("op link/endpoint mismatch");
    }
    if (op.stage >= plan.num_stages) {
      return Status::OutOfRange("op stage out of range");
    }
    by_stage[op.stage].push_back(&op);
  }
  for (uint32_t k = 0; k < plan.num_stages; ++k) {
    // Sends of stage k see holdings from stages < k only.
    std::vector<std::pair<DeviceId, VertexId>> arrivals;
    for (const TransferOp* op : by_stage[k]) {
      for (VertexId v : op->vertices) {
        if (!held[op->src].contains(v)) {
          return Status::FailedPrecondition("device sends a vertex it does not hold");
        }
        arrivals.emplace_back(op->dst, v);
      }
    }
    for (const auto& [dst, v] : arrivals) {
      held[dst].insert(v);
    }
  }
  if (forwarded_extras != nullptr) {
    forwarded_extras->assign(plan.num_devices, 0);
  }
  for (uint32_t d = 0; d < plan.num_devices; ++d) {
    for (VertexId v : relation.remote_vertices[d]) {
      if (!held[d].contains(v)) {
        return Status::Internal("required remote vertex not delivered");
      }
    }
    if (forwarded_extras != nullptr) {
      const uint64_t required =
          relation.local_vertices[d].size() + relation.remote_vertices[d].size();
      (*forwarded_extras)[d] = held[d].size() - required;
    }
  }
  return Status::Ok();
}

}  // namespace dgcl
