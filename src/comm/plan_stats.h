// Aggregate statistics over a communication plan.
//
// Quantifies the §5 design goals so plans can be compared numerically:
//  * fusion: how much the per-vertex trees save over naive fan-out
//    (tree edges vs source-to-destination pairs);
//  * fast-link utilization: share of traffic bytes per link medium;
//  * relaying: transfers that ride through an intermediate device, and the
//    extra buffer slots forwarding costs.

#ifndef DGCL_COMM_PLAN_STATS_H_
#define DGCL_COMM_PLAN_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "comm/plan.h"
#include "comm/relation.h"
#include "topology/topology.h"

namespace dgcl {

struct PlanStats {
  uint64_t trees = 0;            // vertices with destinations
  uint64_t tree_edges = 0;       // actual transfers
  uint64_t naive_transfers = 0;  // sum over vertices of |D_u| (P2P volume)
  uint32_t stages = 0;
  uint64_t relayed_edges = 0;    // edges deeper than stage 0
  uint64_t forwarded_extras = 0; // vertices buffered on non-destination devices
  // Vertex-units crossing each medium (per physical hop, so multi-hop links
  // count once per hop).
  std::map<LinkType, uint64_t> traffic_by_type;

  // tree_edges / naive_transfers: < 1 when multi-destination trees fuse
  // transfers, > 1 when relaying adds hops. 1.0 for pure peer-to-peer.
  double FusionRatio() const;

  // Fraction of hop traffic on NVLink media.
  double NvLinkShare() const;

  std::string ToString() const;
};

PlanStats ComputePlanStats(const CommPlan& plan, const CommRelation& relation,
                           const Topology& topo);

}  // namespace dgcl

#endif  // DGCL_COMM_PLAN_STATS_H_
