#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>

namespace dgcl {
namespace telemetry {
namespace {

// Word layout of one ring slot. Pointers and doubles travel as uint64_t bits;
// kind and tid share the meta word.
enum SlotWord : size_t {
  kWordName = 0,
  kWordCategory = 1,
  kWordMeta = 2,  // kind (low 8 bits) | tid << 8
  kWordStart = 3,
  kWordDur = 4,
  kWordValue = 5,  // double bits
  kWordKey0 = 6,
  kWordVal0 = 7,
  kWordKey1 = 8,
  kWordVal1 = 9,
  kWordKey2 = 10,
  kWordVal2 = 11,
};

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

uint64_t PtrBits(const char* p) { return reinterpret_cast<uint64_t>(p); }
const char* BitsPtr(uint64_t b) { return reinterpret_cast<const char*>(b); }

double BitsToDouble(uint64_t b) {
  double d;
  static_assert(sizeof(d) == sizeof(b));
  __builtin_memcpy(&d, &b, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t b;
  __builtin_memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace

TraceRecorder::TraceRecorder(uint32_t tid, size_t capacity)
    : tid_(tid), capacity_(RoundUpPow2(capacity)) {
  words_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_ * kWordsPerEvent);
  for (size_t i = 0; i < capacity_ * kWordsPerEvent; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

void TraceRecorder::Push(const char* category, const char* name, TraceEventKind kind,
                         uint64_t start_ns, uint64_t dur_ns, uint64_t value_bits,
                         const char* key0, uint64_t val0, const char* key1, uint64_t val1,
                         const char* key2, uint64_t val2) {
  const uint64_t index = head_.load(std::memory_order_relaxed);
  // Announce the overwrite before touching the slot: a concurrent Drain that
  // reads any of the words below is guaranteed to also see this reserve_
  // value (its acquire fence pairs with this release fence) and discards the
  // slot's previous occupant, event index - capacity.
  reserve_.store(index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic<uint64_t>* slot = &words_[(index & (capacity_ - 1)) * kWordsPerEvent];
  slot[kWordName].store(PtrBits(name), std::memory_order_relaxed);
  slot[kWordCategory].store(PtrBits(category), std::memory_order_relaxed);
  slot[kWordMeta].store(static_cast<uint64_t>(kind) | (static_cast<uint64_t>(tid_) << 8),
                        std::memory_order_relaxed);
  slot[kWordStart].store(start_ns, std::memory_order_relaxed);
  slot[kWordDur].store(dur_ns, std::memory_order_relaxed);
  slot[kWordValue].store(value_bits, std::memory_order_relaxed);
  slot[kWordKey0].store(PtrBits(key0), std::memory_order_relaxed);
  slot[kWordVal0].store(val0, std::memory_order_relaxed);
  slot[kWordKey1].store(PtrBits(key1), std::memory_order_relaxed);
  slot[kWordVal1].store(val1, std::memory_order_relaxed);
  slot[kWordKey2].store(PtrBits(key2), std::memory_order_relaxed);
  slot[kWordVal2].store(val2, std::memory_order_relaxed);
  // Publish: a reader that observes head > index sees every word above.
  head_.store(index + 1, std::memory_order_release);
}

void TraceRecorder::RecordSpan(const char* category, const char* name, uint64_t start_ns,
                               uint64_t dur_ns, const char* key0, uint64_t val0,
                               const char* key1, uint64_t val1, const char* key2,
                               uint64_t val2) {
  Push(category, name, TraceEventKind::kSpan, start_ns, dur_ns, 0, key0, val0, key1, val1, key2,
       val2);
}

void TraceRecorder::RecordCounter(const char* category, const char* name, uint64_t ts_ns,
                                  double value, const char* key0, uint64_t val0) {
  Push(category, name, TraceEventKind::kCounter, ts_ns, 0, DoubleToBits(value), key0, val0,
       nullptr, 0, nullptr, 0);
}

void TraceRecorder::RecordInstant(const char* category, const char* name, uint64_t ts_ns) {
  Push(category, name, TraceEventKind::kInstant, ts_ns, 0, 0, nullptr, 0, nullptr, 0, nullptr, 0);
}

uint64_t TraceRecorder::dropped() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  return head > capacity_ ? head - capacity_ : 0;
}

void TraceRecorder::Drain(std::vector<TraceEvent>& out) const {
  // Snapshot-and-validate: copy candidate slots, then re-read the writer's
  // reserve cursor and keep only indices whose slot no overwrite can have
  // touched (index >= reserve_after - capacity). The writer advances
  // reserve_ (release fence) before scribbling a slot, so if the copy below
  // read even one word of an in-progress overwrite, the acquire fence
  // guarantees the subsequent reserve_ load observes that advance and the
  // torn entry is discarded — never emitted.
  const uint64_t head_before = head_.load(std::memory_order_acquire);
  const uint64_t first =
      head_before > capacity_ ? head_before - capacity_ : 0;

  struct RawEvent {
    uint64_t index;
    uint64_t words[kWordsPerEvent];
  };
  std::vector<RawEvent> raw;
  raw.reserve(head_before - first);
  for (uint64_t index = first; index < head_before; ++index) {
    RawEvent e;
    e.index = index;
    const std::atomic<uint64_t>* slot = &words_[(index & (capacity_ - 1)) * kWordsPerEvent];
    for (size_t w = 0; w < kWordsPerEvent; ++w) {
      e.words[w] = slot[w].load(std::memory_order_relaxed);
    }
    raw.push_back(e);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t reserve_after = reserve_.load(std::memory_order_relaxed);
  const uint64_t still_valid_from =
      reserve_after > capacity_ ? reserve_after - capacity_ : 0;

  for (const RawEvent& e : raw) {
    if (e.index < still_valid_from) continue;  // possibly overwritten mid-copy
    TraceEvent ev;
    const char* name = BitsPtr(e.words[kWordName]);
    const char* category = BitsPtr(e.words[kWordCategory]);
    ev.name = name != nullptr ? name : "";
    ev.category = category != nullptr ? category : "";
    ev.kind = static_cast<TraceEventKind>(e.words[kWordMeta] & 0xff);
    ev.tid = static_cast<uint32_t>(e.words[kWordMeta] >> 8);
    ev.start_ns = e.words[kWordStart];
    ev.dur_ns = e.words[kWordDur];
    ev.value = BitsToDouble(e.words[kWordValue]);
    const char* key0 = BitsPtr(e.words[kWordKey0]);
    const char* key1 = BitsPtr(e.words[kWordKey1]);
    const char* key2 = BitsPtr(e.words[kWordKey2]);
    if (key0 != nullptr) {
      ev.arg_key[0] = key0;
      ev.arg_val[0] = e.words[kWordVal0];
    }
    if (key1 != nullptr) {
      ev.arg_key[1] = key1;
      ev.arg_val[1] = e.words[kWordVal1];
    }
    if (key2 != nullptr) {
      ev.arg_key[2] = key2;
      ev.arg_val[2] = e.words[kWordVal2];
    }
    out.push_back(std::move(ev));
  }
}

Telemetry& Telemetry::Get() {
  static Telemetry* instance = new Telemetry();  // leaked: outlives all threads
  return *instance;
}

void Telemetry::SetRecorderCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity < 8 ? 8 : capacity;
}

size_t Telemetry::recorder_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

TraceRecorder& Telemetry::RecorderForThisThread() {
  // Cache the recorder per thread, revalidated against the Reset()
  // generation so stale pointers are never dereferenced after a Reset.
  thread_local TraceRecorder* cached = nullptr;
  thread_local uint64_t cached_generation = ~uint64_t{0};
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cached != nullptr && cached_generation == generation) return *cached;

  std::lock_guard<std::mutex> lock(mutex_);
  recorders_.push_back(std::make_unique<TraceRecorder>(
      static_cast<uint32_t>(recorders_.size() + 1), capacity_));
  cached = recorders_.back().get();
  cached_generation = generation_.load(std::memory_order_relaxed);
  return *cached;
}

Trace Telemetry::Collect() const {
  Trace trace;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& recorder : recorders_) {
    recorder->Drain(trace.events);
    trace.dropped_events += recorder->dropped();
  }
  std::sort(trace.events.begin(), trace.events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.tid < b.tid;
  });
  return trace;
}

void Telemetry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  recorders_.clear();
}

uint64_t Telemetry::NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace telemetry
}  // namespace dgcl
