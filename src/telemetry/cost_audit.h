// Cost-model accuracy auditing (Figure 10 of the paper, per stage).
//
// The planner prices every stage of a ClassPlan with the link-speed cost
// model; the runtime/simulator then observes what each stage actually took.
// CostAudit joins the two series and reports per-stage predicted-vs-observed
// ratios — the reproduction's running answer to the paper's "is the cost
// model accurate enough to plan with?" question.
//
// The audit is a pure join: callers supply the predicted seconds (e.g.
// ReplayClassPlanStageSeconds over a ClassPlan) and the observed seconds
// (simulated stage times, or per-stage span durations extracted from a
// recorded Trace via ObservedStageSecondsFromTrace). Keeping it data-in/
// data-out lets the telemetry library sit below the planner in the link
// graph while the planner stays instrumentable.

#ifndef DGCL_TELEMETRY_COST_AUDIT_H_
#define DGCL_TELEMETRY_COST_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace dgcl {
namespace telemetry {

struct CostAuditRow {
  uint32_t stage = 0;
  double predicted_seconds = 0.0;
  double observed_seconds = 0.0;
  // observed / predicted; 0 when the prediction is zero and so is the
  // observation, +inf never (guarded to 0 with a flag instead).
  double ratio = 0.0;
  bool ratio_defined = false;
};

struct CostAuditReport {
  std::vector<CostAuditRow> rows;  // one per stage, stage index ascending
  double predicted_total_seconds = 0.0;
  double observed_total_seconds = 0.0;
  // Mean and worst |ratio - 1| over rows with a defined ratio — the headline
  // accuracy numbers (paper reports <10% error on real hardware).
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;

  std::string ToString(const std::string& title = "") const;
};

// Joins per-stage predicted and observed times. The series may have
// different lengths (a stage the runtime never entered, or trailing
// zero-cost stages); missing entries are treated as 0.
CostAuditReport AuditStageCosts(const std::vector<double>& predicted_seconds,
                                const std::vector<double>& observed_seconds);

// Extracts observed per-stage seconds from a recorded trace: for every span
// whose name is `span_name` and that carries an integer arg `stage_arg`, the
// stage's observed time is the MAX span duration over that stage (devices
// run stages in parallel; the slowest device defines the stage wall time).
std::vector<double> ObservedStageSecondsFromTrace(const Trace& trace,
                                                  const std::string& span_name = "stage",
                                                  const std::string& stage_arg = "stage");

// Hidden-vs-exposed communication audit for the chunked/overlapped engine
// mode (EngineOptions::overlap). Per stage it joins three series:
//   barrier_comm_seconds    stage wall time under barrier (num_chunks == 1)
//                           execution — all of it is exposed by definition;
//   overlapped_wall_seconds the same stage's wall time under chunked
//                           execution (chunk consumption included);
//   exposed_wait_seconds    the time a chunked consumer actually sat blocked
//                           in chunk-flag waits (ExposedWaitSecondsFromTrace).
// hidden = max(0, barrier - exposed): communication that used to be exposed
// stage wall time and now proceeds underneath chunk consumption.
struct OverlapAuditRow {
  uint32_t stage = 0;
  double barrier_comm_seconds = 0.0;
  double overlapped_wall_seconds = 0.0;
  double exposed_wait_seconds = 0.0;
  double hidden_seconds = 0.0;
};

struct OverlapAuditReport {
  std::vector<OverlapAuditRow> rows;  // one per stage, stage index ascending
  double barrier_total_seconds = 0.0;
  double overlapped_total_seconds = 0.0;
  double exposed_total_seconds = 0.0;
  double hidden_total_seconds = 0.0;

  std::string ToString(const std::string& title = "") const;
};

// Joins the three per-stage series; missing entries are treated as 0 (same
// length-mismatch contract as AuditStageCosts).
OverlapAuditReport AuditOverlapCosts(const std::vector<double>& barrier_comm_seconds,
                                     const std::vector<double>& overlapped_wall_seconds,
                                     const std::vector<double>& exposed_wait_seconds);

// Extracts per-stage exposed wait time from a recorded trace: durations of
// `span_name` spans carrying an integer `stage_arg` are SUMMED per (thread,
// stage) — one consumer blocks many times per stage — then the MAX over
// threads is taken per stage (consumers run in parallel; the most-blocked
// one bounds the stage's exposed time).
std::vector<double> ExposedWaitSecondsFromTrace(const Trace& trace,
                                                const std::string& span_name = "fwd.wait.chunk",
                                                const std::string& stage_arg = "stage");

}  // namespace telemetry
}  // namespace dgcl

#endif  // DGCL_TELEMETRY_COST_AUDIT_H_
