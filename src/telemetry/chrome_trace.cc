#include "telemetry/chrome_trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/table_printer.h"

namespace dgcl {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

void AppendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendMicros(std::string& out, uint64_t ns) {
  // Microseconds with nanosecond decimals, kept integral-exact by printing
  // from the integer value instead of a double division.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact double round-trip
  out += buf;
}

}  // namespace

std::string TraceToChromeJson(const Trace& trace) {
  std::string out;
  out.reserve(trace.events.size() * 160 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : trace.events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    switch (ev.kind) {
      case TraceEventKind::kSpan:
        out += "X";
        break;
      case TraceEventKind::kCounter:
        out += "C";
        break;
      case TraceEventKind::kInstant:
        out += "i";
        break;
    }
    out += "\",\"name\":";
    AppendJsonString(out, ev.name);
    out += ",\"cat\":";
    AppendJsonString(out, ev.category.empty() ? "dgcl" : ev.category);
    out += ",\"ts\":";
    AppendMicros(out, ev.start_ns);
    if (ev.kind == TraceEventKind::kSpan) {
      out += ",\"dur\":";
      AppendMicros(out, ev.dur_ns);
    }
    if (ev.kind == TraceEventKind::kInstant) {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(ev.tid);
    // Reserved args start_ns/dur_ns/value carry the exact integers across the
    // µs round-trip; the importer strips them back out of the user args.
    out += ",\"args\":{\"start_ns\":";
    out += std::to_string(ev.start_ns);
    if (ev.kind == TraceEventKind::kSpan) {
      out += ",\"dur_ns\":";
      out += std::to_string(ev.dur_ns);
    }
    if (ev.kind == TraceEventKind::kCounter) {
      out += ",\"value\":";
      AppendDouble(out, ev.value);
    }
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      if (ev.arg_key[i].empty()) continue;
      out += ",";
      AppendJsonString(out, ev.arg_key[i]);
      out += ":";
      out += std::to_string(ev.arg_val[i]);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Import: minimal JSON parser (objects, arrays, strings, numbers, literals)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  uint64_t number_u64 = 0;  // exact when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    DGCL_RETURN_IF_ERROR(ParseValue(v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("chrome-trace JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::Ok();
  }

  Status ParseValue(JsonValue& out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = true;
      pos_ += 4;
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = false;
      pos_ += 5;
      return Status::Ok();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    DGCL_RETURN_IF_ERROR(Expect('{'));
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      std::string key;
      DGCL_RETURN_IF_ERROR(ParseString(key));
      DGCL_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      DGCL_RETURN_IF_ERROR(ParseValue(value));
      out.object.emplace_back(std::move(key), std::move(value));
      if (Consume('}')) return Status::Ok();
      DGCL_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    DGCL_RETURN_IF_ERROR(Expect('['));
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      DGCL_RETURN_IF_ERROR(ParseValue(value));
      out.array.push_back(std::move(value));
      if (Consume(']')) return Status::Ok();
      DGCL_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseString(std::string& out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Error("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // ASCII only (the exporter never emits more); others map to '?'.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    out.is_integer = integral && token[0] != '-';
    if (out.is_integer) {
      out.number_u64 = std::strtoull(token.c_str(), nullptr, 10);
    }
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

uint64_t NumberAsU64(const JsonValue& v) {
  if (v.is_integer) return v.number_u64;
  return v.number <= 0 ? 0 : static_cast<uint64_t>(v.number + 0.5);
}

// ts/dur are microseconds with up to three decimals; convert back to integer
// nanoseconds (used only when the exact *_ns args are absent).
uint64_t MicrosFieldToNs(const JsonValue& v) {
  if (v.is_integer) return v.number_u64 * 1000;
  const double ns = v.number * 1000.0;
  return ns <= 0 ? 0 : static_cast<uint64_t>(ns + 0.5);
}

}  // namespace

Result<Trace> ChromeJsonToTrace(const std::string& json) {
  JsonParser parser(json);
  DGCL_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());

  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.Find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("chrome-trace JSON has no traceEvents array");
    }
  } else {
    return Status::InvalidArgument("chrome-trace JSON root must be an object or array");
  }

  Trace trace;
  trace.events.reserve(events->array.size());
  for (const JsonValue& e : events->array) {
    if (e.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("traceEvents entry is not an object");
    }
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) continue;  // metadata rows etc.
    TraceEvent ev;
    if (ph->string == "X") {
      ev.kind = TraceEventKind::kSpan;
    } else if (ph->string == "C") {
      ev.kind = TraceEventKind::kCounter;
    } else if (ph->string == "i" || ph->string == "I") {
      ev.kind = TraceEventKind::kInstant;
    } else {
      continue;  // unsupported phase (B/E pairs, metadata, flows)
    }
    if (const JsonValue* name = e.Find("name"); name != nullptr) ev.name = name->string;
    if (const JsonValue* cat = e.Find("cat"); cat != nullptr) ev.category = cat->string;
    if (const JsonValue* tid = e.Find("tid");
        tid != nullptr && tid->type == JsonValue::Type::kNumber) {
      ev.tid = static_cast<uint32_t>(NumberAsU64(*tid));
    }
    if (const JsonValue* ts = e.Find("ts"); ts != nullptr && ts->type == JsonValue::Type::kNumber) {
      ev.start_ns = MicrosFieldToNs(*ts);
    }
    if (const JsonValue* dur = e.Find("dur");
        dur != nullptr && dur->type == JsonValue::Type::kNumber) {
      ev.dur_ns = MicrosFieldToNs(*dur);
    }
    if (const JsonValue* args = e.Find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      size_t user_arg = 0;
      for (const auto& [key, value] : args->object) {
        if (value.type != JsonValue::Type::kNumber) continue;
        if (key == "start_ns") {
          ev.start_ns = NumberAsU64(value);
        } else if (key == "dur_ns") {
          ev.dur_ns = NumberAsU64(value);
        } else if (key == "value") {
          ev.value = value.number;
        } else if (user_arg < ev.arg_key.size()) {
          ev.arg_key[user_arg] = key;
          ev.arg_val[user_arg] = NumberAsU64(value);
          ++user_arg;
        }
      }
    }
    trace.events.push_back(std::move(ev));
  }
  std::sort(trace.events.begin(), trace.events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.tid < b.tid;
  });
  return trace;
}

Status WriteChromeTrace(const Trace& trace, const std::string& path) {
  // Write-then-rename keeps partially written traces from being mistaken for
  // complete ones (same discipline as WriteJsonRecords in bench_util).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open trace file for writing: " + tmp);
    }
    out << TraceToChromeJson(trace);
    if (!out) {
      return Status::Internal("short write to trace file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename trace file into place: " + path);
  }
  return Status::Ok();
}

Result<Trace> ReadChromeTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ChromeJsonToTrace(buffer.str());
}

Trace MergeTraces(const std::vector<Trace>& traces) {
  Trace merged;
  for (const Trace& t : traces) {
    merged.events.insert(merged.events.end(), t.events.begin(), t.events.end());
    merged.dropped_events += t.dropped_events;
  }
  std::sort(merged.events.begin(), merged.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return merged;
}

std::vector<TraceSummaryRow> SummarizeTrace(const Trace& trace) {
  std::map<std::pair<std::string, std::string>, TraceSummaryRow> rows;
  for (const TraceEvent& ev : trace.events) {
    TraceSummaryRow& row = rows[{ev.category, ev.name}];
    if (row.count == 0) {
      row.category = ev.category;
      row.name = ev.name;
      row.kind = ev.kind;
    }
    ++row.count;
    if (ev.kind == TraceEventKind::kSpan) {
      row.total_dur_ns += ev.dur_ns;
      row.max_dur_ns = std::max(row.max_dur_ns, ev.dur_ns);
    } else if (ev.kind == TraceEventKind::kCounter) {
      row.value_sum += ev.value;
      row.value_max = std::max(row.value_max, ev.value);
    }
  }
  std::vector<TraceSummaryRow> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const TraceSummaryRow& a, const TraceSummaryRow& b) {
    if (a.category != b.category) return a.category < b.category;
    if (a.total_dur_ns != b.total_dur_ns) return a.total_dur_ns > b.total_dur_ns;
    if (a.value_sum != b.value_sum) return a.value_sum > b.value_sum;
    return a.name < b.name;
  });
  return out;
}

std::string RenderTraceSummary(const Trace& trace, const std::string& title) {
  TablePrinter table({"Category", "Name", "Kind", "Count", "Total ms", "Max ms", "Sum", "Max"});
  for (const TraceSummaryRow& row : SummarizeTrace(trace)) {
    const bool span = row.kind == TraceEventKind::kSpan;
    table.AddRow({row.category, row.name,
                  span ? "span" : (row.kind == TraceEventKind::kCounter ? "counter" : "instant"),
                  TablePrinter::FmtInt(static_cast<long long>(row.count)),
                  span ? TablePrinter::Fmt(row.total_dur_ns / 1e6, 3) : "-",
                  span ? TablePrinter::Fmt(row.max_dur_ns / 1e6, 3) : "-",
                  span ? "-" : TablePrinter::Fmt(row.value_sum, 3),
                  span ? "-" : TablePrinter::Fmt(row.value_max, 3)});
  }
  std::string rendered =
      table.Render(title.empty() ? "Trace summary (" + std::to_string(trace.events.size()) +
                                       " events)"
                                 : title);
  if (trace.dropped_events > 0) {
    rendered += "  [" + std::to_string(trace.dropped_events) +
                " events dropped to ring wraparound]\n";
  }
  return rendered;
}

}  // namespace telemetry
}  // namespace dgcl
