// Low-overhead tracing and metrics (the observability layer of the stack).
//
// The paper's methodology is measurement-first: profiled link speeds
// (Table 1), per-link-type traffic breakdowns (Table 2) and a cost model
// validated against observed times (Figure 10). This subsystem gives the
// reproduction the same visibility at runtime: per-thread lock-free
// ring-buffer recorders collect scoped spans and named counters with
// steady-clock timestamps, a process-wide registry merges them into a
// Trace, and exporters (chrome_trace.h) turn the result into Chrome-trace/
// Perfetto JSON or a compact text summary.
//
// Design rules:
//  * The record path is lock-free and allocation-free: a single-writer ring
//    of fixed-width slots per thread, published with one release store. All
//    slot words are relaxed atomics, so a concurrent Collect() is data-race
//    free (TSan-clean); entries that may have been overwritten mid-read are
//    discarded, never torn.
//  * Recording is double-gated: compile-time via DGCL_TELEMETRY_ENABLED
//    (the DGCL_TSPAN*/DGCL_TCOUNT* macros expand to nothing when 0, so
//    instrumented paths cost literally zero) and runtime via
//    Telemetry::SetEnabled (one relaxed atomic load when compiled in).
//  * Name/category/arg-key strings must have static lifetime (string
//    literals or interned tables like LinkTypeName); the ring stores raw
//    pointers.
//  * The ring keeps the *last* capacity events per thread; older events are
//    dropped and counted, never blocked on — tracing may slow the traced
//    code, never stall it.

#ifndef DGCL_TELEMETRY_TRACE_H_
#define DGCL_TELEMETRY_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dgcl {
namespace telemetry {

enum class TraceEventKind : uint8_t { kSpan = 0, kCounter = 1, kInstant = 2 };

// A collected (owning) trace event. The in-ring representation is a packed
// word array; Collect()/ReadChromeTrace materialize this form.
struct TraceEvent {
  std::string name;
  std::string category;
  TraceEventKind kind = TraceEventKind::kSpan;
  uint32_t tid = 0;        // telemetry thread id (registration order, from 1)
  uint64_t start_ns = 0;   // steady-clock
  uint64_t dur_ns = 0;     // spans only
  double value = 0.0;      // counters only
  // Up to three integer args ("bytes", "stage", "peer", ...). Empty key = unset.
  std::array<std::string, 3> arg_key;
  std::array<uint64_t, 3> arg_val = {0, 0, 0};

  bool operator==(const TraceEvent&) const = default;
};

// A merged recording: events from all threads, sorted by (start_ns, tid).
struct Trace {
  std::vector<TraceEvent> events;
  uint64_t dropped_events = 0;  // ring overwrites across all recorders
};

// Per-thread single-writer ring buffer. Record* may only be called from the
// owning thread; Drain may be called from any thread concurrently with the
// writer (entries at risk of overwrite are discarded, see header comment).
class TraceRecorder {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  TraceRecorder(uint32_t tid, size_t capacity);

  void RecordSpan(const char* category, const char* name, uint64_t start_ns, uint64_t dur_ns,
                  const char* key0 = nullptr, uint64_t val0 = 0, const char* key1 = nullptr,
                  uint64_t val1 = 0, const char* key2 = nullptr, uint64_t val2 = 0);
  void RecordCounter(const char* category, const char* name, uint64_t ts_ns, double value,
                     const char* key0 = nullptr, uint64_t val0 = 0);
  void RecordInstant(const char* category, const char* name, uint64_t ts_ns);

  // Appends the currently retrievable events (oldest first) to `out`.
  void Drain(std::vector<TraceEvent>& out) const;

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return capacity_; }
  // Total events ever recorded / lost to ring wraparound, as of now.
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const;

 private:
  void Push(const char* category, const char* name, TraceEventKind kind, uint64_t start_ns,
            uint64_t dur_ns, uint64_t value_bits, const char* key0, uint64_t val0,
            const char* key1, uint64_t val1, const char* key2, uint64_t val2);

  static constexpr size_t kWordsPerEvent = 12;

  uint32_t tid_;
  size_t capacity_;  // power of two
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  // Seqlock pair: reserve_ advances (with a release fence) BEFORE a slot's
  // words are overwritten, head_ after. A reader that copied any word of an
  // in-progress overwrite is guaranteed (fence synchronization) to observe
  // the advanced reserve_ and discards the entry; see Drain.
  std::atomic<uint64_t> reserve_{0};
  std::atomic<uint64_t> head_{0};  // next event index; published with release
};

// Process-wide registry: hands each thread its recorder, merges them into a
// Trace, and owns the global enable flag. Recorders outlive their threads
// (pool workers may exit before collection) and are only reclaimed by
// Reset().
class Telemetry {
 public:
  static Telemetry& Get();

  // Runtime gate. Record paths are no-ops while disabled (one relaxed load).
  static bool Enabled() { return Get().enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Ring capacity (events) for recorders created after the call.
  void SetRecorderCapacity(size_t capacity);
  size_t recorder_capacity() const;

  // The calling thread's recorder, created and registered on first use.
  // Stable until Reset().
  TraceRecorder& RecorderForThisThread();

  // Merges all recorders into one sorted trace. Safe concurrently with
  // recording (in-flight entries may be missed or dropped, never torn).
  Trace Collect() const;

  // Drops every recorder and its events. Not safe concurrently with
  // recording; intended for test isolation and between bench repetitions.
  void Reset();

  // Steady-clock timestamp used for every event.
  static uint64_t NowNs();

 private:
  Telemetry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> generation_{0};  // bumped by Reset; invalidates caches
  size_t capacity_ = 1 << 16;
};

// RAII span: captures the start time at construction and records on
// destruction. Inert (and free of clock reads) when telemetry is disabled at
// runtime. All strings must have static lifetime.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name, const char* key0 = nullptr,
             uint64_t val0 = 0, const char* key1 = nullptr, uint64_t val1 = 0,
             const char* key2 = nullptr, uint64_t val2 = 0)
      : active_(Telemetry::Enabled()) {
    if (active_) {
      category_ = category;
      name_ = name;
      key0_ = key0;
      val0_ = val0;
      key1_ = key1;
      val1_ = val1;
      key2_ = key2;
      val2_ = val2;
      start_ns_ = Telemetry::NowNs();
    }
  }

  ~ScopedSpan() {
    if (active_) {
      const uint64_t end_ns = Telemetry::NowNs();
      Telemetry::Get().RecorderForThisThread().RecordSpan(
          category_, name_, start_ns_, end_ns - start_ns_, key0_, val0_, key1_, val1_, key2_,
          val2_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  const char* key0_ = nullptr;
  uint64_t val0_ = 0;
  const char* key1_ = nullptr;
  uint64_t val1_ = 0;
  const char* key2_ = nullptr;
  uint64_t val2_ = 0;
  uint64_t start_ns_ = 0;
};

inline void Counter(const char* category, const char* name, double value,
                    const char* key0 = nullptr, uint64_t val0 = 0) {
  if (Telemetry::Enabled()) {
    Telemetry::Get().RecorderForThisThread().RecordCounter(category, name, Telemetry::NowNs(),
                                                           value, key0, val0);
  }
}

}  // namespace telemetry
}  // namespace dgcl

// Compile-time gate: -DDGCL_TELEMETRY_ENABLED=0 (CMake option DGCL_TELEMETRY
// OFF) turns every instrumentation macro into nothing — argument expressions
// are not even evaluated. The telemetry library itself always compiles.
#ifndef DGCL_TELEMETRY_ENABLED
#define DGCL_TELEMETRY_ENABLED 1
#endif

#define DGCL_TELEMETRY_CONCAT_INNER_(a, b) a##b
#define DGCL_TELEMETRY_CONCAT_(a, b) DGCL_TELEMETRY_CONCAT_INNER_(a, b)

#if DGCL_TELEMETRY_ENABLED
// Scoped span over the rest of the enclosing block.
#define DGCL_TSPAN(cat, name) \
  ::dgcl::telemetry::ScopedSpan DGCL_TELEMETRY_CONCAT_(_dgcl_tspan_, __LINE__)(cat, name)
#define DGCL_TSPAN1(cat, name, k0, v0)                                       \
  ::dgcl::telemetry::ScopedSpan DGCL_TELEMETRY_CONCAT_(_dgcl_tspan_, __LINE__)( \
      cat, name, k0, static_cast<uint64_t>(v0))
#define DGCL_TSPAN2(cat, name, k0, v0, k1, v1)                               \
  ::dgcl::telemetry::ScopedSpan DGCL_TELEMETRY_CONCAT_(_dgcl_tspan_, __LINE__)( \
      cat, name, k0, static_cast<uint64_t>(v0), k1, static_cast<uint64_t>(v1))
#define DGCL_TSPAN3(cat, name, k0, v0, k1, v1, k2, v2)                          \
  ::dgcl::telemetry::ScopedSpan DGCL_TELEMETRY_CONCAT_(_dgcl_tspan_, __LINE__)( \
      cat, name, k0, static_cast<uint64_t>(v0), k1, static_cast<uint64_t>(v1),  \
      k2, static_cast<uint64_t>(v2))
// Named counter sample (a gauge; the exporter keeps every sample).
#define DGCL_TCOUNT(cat, name, value) \
  ::dgcl::telemetry::Counter(cat, name, static_cast<double>(value))
#define DGCL_TCOUNT1(cat, name, value, k0, v0)                          \
  ::dgcl::telemetry::Counter(cat, name, static_cast<double>(value), k0, \
                             static_cast<uint64_t>(v0))
#else
#define DGCL_TSPAN(cat, name) \
  do {                        \
  } while (0)
#define DGCL_TSPAN1(cat, name, k0, v0) \
  do {                                 \
  } while (0)
#define DGCL_TSPAN2(cat, name, k0, v0, k1, v1) \
  do {                                         \
  } while (0)
#define DGCL_TSPAN3(cat, name, k0, v0, k1, v1, k2, v2) \
  do {                                                 \
  } while (0)
#define DGCL_TCOUNT(cat, name, value) \
  do {                                \
  } while (0)
#define DGCL_TCOUNT1(cat, name, value, k0, v0) \
  do {                                         \
  } while (0)
#endif

#endif  // DGCL_TELEMETRY_TRACE_H_
