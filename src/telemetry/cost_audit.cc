#include "telemetry/cost_audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/table_printer.h"

namespace dgcl {
namespace telemetry {

CostAuditReport AuditStageCosts(const std::vector<double>& predicted_seconds,
                                const std::vector<double>& observed_seconds) {
  CostAuditReport report;
  const size_t stages = std::max(predicted_seconds.size(), observed_seconds.size());
  report.rows.reserve(stages);
  double error_sum = 0.0;
  size_t error_count = 0;
  for (size_t s = 0; s < stages; ++s) {
    CostAuditRow row;
    row.stage = static_cast<uint32_t>(s);
    row.predicted_seconds = s < predicted_seconds.size() ? predicted_seconds[s] : 0.0;
    row.observed_seconds = s < observed_seconds.size() ? observed_seconds[s] : 0.0;
    if (row.predicted_seconds > 0.0) {
      row.ratio = row.observed_seconds / row.predicted_seconds;
      row.ratio_defined = true;
      const double err = std::abs(row.ratio - 1.0);
      error_sum += err;
      ++error_count;
      report.max_abs_error = std::max(report.max_abs_error, err);
    }
    report.predicted_total_seconds += row.predicted_seconds;
    report.observed_total_seconds += row.observed_seconds;
    report.rows.push_back(row);
  }
  if (error_count > 0) {
    report.mean_abs_error = error_sum / static_cast<double>(error_count);
  }
  return report;
}

std::vector<double> ObservedStageSecondsFromTrace(const Trace& trace,
                                                  const std::string& span_name,
                                                  const std::string& stage_arg) {
  std::vector<double> observed;
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind != TraceEventKind::kSpan || ev.name != span_name) continue;
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      if (ev.arg_key[i] != stage_arg) continue;
      const size_t stage = static_cast<size_t>(ev.arg_val[i]);
      if (observed.size() <= stage) observed.resize(stage + 1, 0.0);
      observed[stage] = std::max(observed[stage], ev.dur_ns / 1e9);
      break;
    }
  }
  return observed;
}

OverlapAuditReport AuditOverlapCosts(const std::vector<double>& barrier_comm_seconds,
                                     const std::vector<double>& overlapped_wall_seconds,
                                     const std::vector<double>& exposed_wait_seconds) {
  OverlapAuditReport report;
  const size_t stages = std::max({barrier_comm_seconds.size(), overlapped_wall_seconds.size(),
                                  exposed_wait_seconds.size()});
  report.rows.reserve(stages);
  for (size_t s = 0; s < stages; ++s) {
    OverlapAuditRow row;
    row.stage = static_cast<uint32_t>(s);
    row.barrier_comm_seconds = s < barrier_comm_seconds.size() ? barrier_comm_seconds[s] : 0.0;
    row.overlapped_wall_seconds =
        s < overlapped_wall_seconds.size() ? overlapped_wall_seconds[s] : 0.0;
    row.exposed_wait_seconds = s < exposed_wait_seconds.size() ? exposed_wait_seconds[s] : 0.0;
    row.hidden_seconds = std::max(0.0, row.barrier_comm_seconds - row.exposed_wait_seconds);
    report.barrier_total_seconds += row.barrier_comm_seconds;
    report.overlapped_total_seconds += row.overlapped_wall_seconds;
    report.exposed_total_seconds += row.exposed_wait_seconds;
    report.hidden_total_seconds += row.hidden_seconds;
    report.rows.push_back(row);
  }
  return report;
}

std::vector<double> ExposedWaitSecondsFromTrace(const Trace& trace,
                                                const std::string& span_name,
                                                const std::string& stage_arg) {
  // (tid, stage) -> summed wait seconds, then max over tids per stage.
  std::map<std::pair<uint32_t, size_t>, double> per_thread;
  size_t num_stages = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind != TraceEventKind::kSpan || ev.name != span_name) continue;
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      if (ev.arg_key[i] != stage_arg) continue;
      const size_t stage = static_cast<size_t>(ev.arg_val[i]);
      per_thread[{ev.tid, stage}] += ev.dur_ns / 1e9;
      num_stages = std::max(num_stages, stage + 1);
      break;
    }
  }
  std::vector<double> exposed(num_stages, 0.0);
  for (const auto& [key, seconds] : per_thread) {
    exposed[key.second] = std::max(exposed[key.second], seconds);
  }
  return exposed;
}

std::string OverlapAuditReport::ToString(const std::string& title) const {
  TablePrinter table({"Stage", "Barrier ms", "Overlapped ms", "Exposed ms", "Hidden ms"});
  for (const OverlapAuditRow& row : rows) {
    table.AddRow({TablePrinter::FmtInt(row.stage),
                  TablePrinter::Fmt(row.barrier_comm_seconds * 1e3, 4),
                  TablePrinter::Fmt(row.overlapped_wall_seconds * 1e3, 4),
                  TablePrinter::Fmt(row.exposed_wait_seconds * 1e3, 4),
                  TablePrinter::Fmt(row.hidden_seconds * 1e3, 4)});
  }
  table.AddRow({"total", TablePrinter::Fmt(barrier_total_seconds * 1e3, 4),
                TablePrinter::Fmt(overlapped_total_seconds * 1e3, 4),
                TablePrinter::Fmt(exposed_total_seconds * 1e3, 4),
                TablePrinter::Fmt(hidden_total_seconds * 1e3, 4)});
  std::string rendered =
      table.Render(title.empty() ? "OverlapAudit: hidden vs exposed communication" : title);
  if (barrier_total_seconds > 0.0) {
    rendered += "  hidden fraction = " +
                TablePrinter::Fmt(hidden_total_seconds / barrier_total_seconds, 4) + "\n";
  }
  return rendered;
}

std::string CostAuditReport::ToString(const std::string& title) const {
  TablePrinter table({"Stage", "Predicted ms", "Observed ms", "Obs/Pred"});
  for (const CostAuditRow& row : rows) {
    table.AddRow({TablePrinter::FmtInt(row.stage), TablePrinter::Fmt(row.predicted_seconds * 1e3, 4),
                  TablePrinter::Fmt(row.observed_seconds * 1e3, 4),
                  row.ratio_defined ? TablePrinter::Fmt(row.ratio, 3) : "-"});
  }
  table.AddRow({"total", TablePrinter::Fmt(predicted_total_seconds * 1e3, 4),
                TablePrinter::Fmt(observed_total_seconds * 1e3, 4),
                predicted_total_seconds > 0.0
                    ? TablePrinter::Fmt(observed_total_seconds / predicted_total_seconds, 3)
                    : "-"});
  std::string rendered =
      table.Render(title.empty() ? "CostAudit: predicted vs observed per stage" : title);
  rendered += "  mean |obs/pred - 1| = " + TablePrinter::Fmt(mean_abs_error, 4) +
              ", max = " + TablePrinter::Fmt(max_abs_error, 4) + "\n";
  return rendered;
}

}  // namespace telemetry
}  // namespace dgcl
