// Chrome-trace (Perfetto legacy JSON) export/import and text summaries.
//
// The export follows the Trace Event Format used by chrome://tracing and
// ui.perfetto.dev: a top-level {"traceEvents": [...]} object whose entries
// are complete events ("ph":"X", microsecond "ts"/"dur") for spans and
// counter events ("ph":"C"). Span args carry the recorded integer tags plus
// the originating steady-clock nanoseconds so a reimport reconstructs the
// Trace exactly (timestamps survive the µs round-trip bit-exactly because
// "ts" is printed with three decimals = integer nanoseconds).
//
// The importer is a minimal recursive-descent JSON parser scoped to what the
// exporter (or a hand-written test fixture) emits — objects, arrays,
// strings with \-escapes, and numbers. It exists so dgcl_trace can merge and
// summarize trace files without a JSON dependency.

#ifndef DGCL_TELEMETRY_CHROME_TRACE_H_
#define DGCL_TELEMETRY_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace telemetry {

// Serializes the trace as Chrome-trace JSON.
std::string TraceToChromeJson(const Trace& trace);

// Parses Chrome-trace JSON produced by TraceToChromeJson (or any subset of
// the format limited to "X"/"C"/"i" phases). Events are re-sorted by
// (start_ns, tid).
Result<Trace> ChromeJsonToTrace(const std::string& json);

// File variants.
Status WriteChromeTrace(const Trace& trace, const std::string& path);
Result<Trace> ReadChromeTrace(const std::string& path);

// Concatenates traces (re-sorted, dropped counts summed).
Trace MergeTraces(const std::vector<Trace>& traces);

// Aggregated statistics for one (category, name) span or counter series.
struct TraceSummaryRow {
  std::string category;
  std::string name;
  TraceEventKind kind = TraceEventKind::kSpan;
  uint64_t count = 0;
  uint64_t total_dur_ns = 0;  // spans
  uint64_t max_dur_ns = 0;    // spans
  double value_sum = 0.0;     // counters
  double value_max = 0.0;     // counters
};

// Per-(category, name) aggregation, sorted by category then descending total
// duration (spans) / descending value sum (counters).
std::vector<TraceSummaryRow> SummarizeTrace(const Trace& trace);

// Renders SummarizeTrace as a fixed-width table ("" title = default).
std::string RenderTraceSummary(const Trace& trace, const std::string& title = "");

}  // namespace telemetry
}  // namespace dgcl

#endif  // DGCL_TELEMETRY_CHROME_TRACE_H_
