// Communication-topology model: devices, physical connections, logical links.
//
// Mirrors §4/§5.1 of the paper. A *device* is a compute worker (simulated
// GPU). A *physical connection* is a contention domain with a bandwidth: one
// direction of an NVLink, a GPU's PCIe lanes, a QPI interconnect, an IB NIC.
// A *logical link* connects an ordered device pair and traverses one or more
// physical hops (e.g. GPU1->GPU5 = PCIe-up, QPI, PCIe-down); concurrent
// transfers whose links share a hop contend for that hop's bandwidth.
//
// The planner's topology graph D(V', E') of the paper is exactly
// (devices, links) here.

#ifndef DGCL_TOPOLOGY_TOPOLOGY_H_
#define DGCL_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace dgcl {

using DeviceId = uint32_t;
using ConnId = uint32_t;
using LinkId = uint32_t;

// Physical-medium kinds, with the paper's measured speeds (Table 1).
enum class LinkType : uint8_t { kNvLink2, kNvLink1, kPcie, kQpi, kInfiniBand, kEthernet };

// Measured unidirectional bandwidth in GB/s for a link type (paper Table 1).
double LinkTypeBandwidthGBps(LinkType type);
const char* LinkTypeName(LinkType type);

struct Device {
  std::string name;
  uint32_t machine = 0;
  uint32_t socket = 0;       // CPU socket within the machine
  uint32_t pcie_switch = 0;  // global PCIe switch id
};

// One direction of a physical medium; the unit of bandwidth contention.
struct PhysicalConnection {
  std::string name;
  LinkType type = LinkType::kPcie;
  double bandwidth_gbps = 0.0;
};

// An ordered device pair plus the physical hops its traffic traverses.
struct Link {
  DeviceId src = 0;
  DeviceId dst = 0;
  std::vector<ConnId> hops;
};

class Topology {
 public:
  DeviceId AddDevice(Device device);
  ConnId AddConnection(PhysicalConnection conn);
  // Fails if a link for (src, dst) already exists or ids are out of range.
  Result<LinkId> AddLink(DeviceId src, DeviceId dst, std::vector<ConnId> hops);

  uint32_t num_devices() const { return static_cast<uint32_t>(devices_.size()); }
  uint32_t num_connections() const { return static_cast<uint32_t>(connections_.size()); }
  uint32_t num_links() const { return static_cast<uint32_t>(links_.size()); }

  const Device& device(DeviceId id) const { return devices_[id]; }
  const PhysicalConnection& connection(ConnId id) const { return connections_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }
  std::span<const Link> links() const { return links_; }

  // kInvalidId when no link is defined for the ordered pair.
  LinkId LinkBetween(DeviceId src, DeviceId dst) const;

  // Link ids with the given source device.
  std::span<const LinkId> LinksFrom(DeviceId src) const;

  // The slowest hop's bandwidth: an upper bound on the link's throughput.
  double LinkBottleneckGBps(LinkId id) const;

  // True when every ordered device pair (i != j) has a link.
  bool IsFullyConnected() const;

  // Multi-line human-readable dump (devices, connections, links).
  std::string ToString() const;

 private:
  std::vector<Device> devices_;
  std::vector<PhysicalConnection> connections_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> links_from_;       // per source device
  std::vector<std::vector<LinkId>> link_index_;       // [src][dst] -> LinkId
};

}  // namespace dgcl

#endif  // DGCL_TOPOLOGY_TOPOLOGY_H_
