#include "topology/topology.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace dgcl {

double LinkTypeBandwidthGBps(LinkType type) {
  // Paper Table 1, unidirectional GB/s.
  switch (type) {
    case LinkType::kNvLink2:
      return 48.35;
    case LinkType::kNvLink1:
      return 24.22;
    case LinkType::kPcie:
      return 11.13;
    case LinkType::kQpi:
      return 9.56;
    case LinkType::kInfiniBand:
      return 6.37;
    case LinkType::kEthernet:
      return 3.12;
  }
  return 0.0;
}

const char* LinkTypeName(LinkType type) {
  switch (type) {
    case LinkType::kNvLink2:
      return "NV2";
    case LinkType::kNvLink1:
      return "NV1";
    case LinkType::kPcie:
      return "PCIe";
    case LinkType::kQpi:
      return "QPI";
    case LinkType::kInfiniBand:
      return "IB";
    case LinkType::kEthernet:
      return "Eth";
  }
  return "?";
}

DeviceId Topology::AddDevice(Device device) {
  devices_.push_back(std::move(device));
  links_from_.emplace_back();
  for (auto& row : link_index_) {
    row.push_back(kInvalidId);
  }
  link_index_.emplace_back(devices_.size(), kInvalidId);
  return static_cast<DeviceId>(devices_.size() - 1);
}

ConnId Topology::AddConnection(PhysicalConnection conn) {
  if (conn.bandwidth_gbps <= 0.0) {
    conn.bandwidth_gbps = LinkTypeBandwidthGBps(conn.type);
  }
  connections_.push_back(std::move(conn));
  return static_cast<ConnId>(connections_.size() - 1);
}

Result<LinkId> Topology::AddLink(DeviceId src, DeviceId dst, std::vector<ConnId> hops) {
  if (src >= devices_.size() || dst >= devices_.size()) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (src == dst) {
    return Status::InvalidArgument("self link");
  }
  if (hops.empty()) {
    return Status::InvalidArgument("link must have at least one physical hop");
  }
  for (ConnId hop : hops) {
    if (hop >= connections_.size()) {
      return Status::InvalidArgument("hop id out of range");
    }
  }
  if (link_index_[src][dst] != kInvalidId) {
    return Status::FailedPrecondition("link already defined for device pair");
  }
  Link link;
  link.src = src;
  link.dst = dst;
  link.hops = std::move(hops);
  links_.push_back(std::move(link));
  LinkId id = static_cast<LinkId>(links_.size() - 1);
  links_from_[src].push_back(id);
  link_index_[src][dst] = id;
  return id;
}

LinkId Topology::LinkBetween(DeviceId src, DeviceId dst) const {
  if (src >= devices_.size() || dst >= devices_.size()) {
    return kInvalidId;
  }
  return link_index_[src][dst];
}

std::span<const LinkId> Topology::LinksFrom(DeviceId src) const {
  DGCL_CHECK_LT(src, devices_.size());
  return links_from_[src];
}

double Topology::LinkBottleneckGBps(LinkId id) const {
  DGCL_CHECK_LT(id, links_.size());
  double min_bw = std::numeric_limits<double>::infinity();
  for (ConnId hop : links_[id].hops) {
    min_bw = std::min(min_bw, connections_[hop].bandwidth_gbps);
  }
  return min_bw;
}

bool Topology::IsFullyConnected() const {
  for (DeviceId i = 0; i < devices_.size(); ++i) {
    for (DeviceId j = 0; j < devices_.size(); ++j) {
      if (i != j && link_index_[i][j] == kInvalidId) {
        return false;
      }
    }
  }
  return true;
}

std::string Topology::ToString() const {
  std::ostringstream out;
  out << "Topology: " << devices_.size() << " devices, " << connections_.size()
      << " physical connections, " << links_.size() << " links\n";
  for (DeviceId d = 0; d < devices_.size(); ++d) {
    out << "  device " << d << " " << devices_[d].name << " machine=" << devices_[d].machine
        << " socket=" << devices_[d].socket << " switch=" << devices_[d].pcie_switch << "\n";
  }
  for (const Link& link : links_) {
    out << "  link " << devices_[link.src].name << " -> " << devices_[link.dst].name << " via";
    for (ConnId hop : link.hops) {
      out << " " << connections_[hop].name << "(" << LinkTypeName(connections_[hop].type) << ","
          << connections_[hop].bandwidth_gbps << "GB/s)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dgcl
