// Preset topologies matching the paper's two hardware configurations (§7):
//
//  * Default: servers with 8 V100s wired like an NVIDIA DGX-1 (Figure 3):
//    two CPU sockets, one PCIe switch complex per socket hosting 4 GPUs, an
//    NVLink hybrid cube mesh, QPI between the sockets and one IB NIC per
//    machine (GPU RDMA). Two such servers form the 16-GPU configuration.
//  * Second: one server with 8 1080-Ti GPUs connected only via PCIe/QPI.
//
// The exact NV1/NV2 placement on a DGX-1 varies by revision; we use the
// canonical hybrid cube mesh (each 4-GPU quad fully connected, NV2 on the
// quad diagonals, NV1 across quads) which preserves the property the paper
// relies on: every GPU pair is within two NVLink hops.

#ifndef DGCL_TOPOLOGY_PRESETS_H_
#define DGCL_TOPOLOGY_PRESETS_H_

#include "topology/topology.h"

namespace dgcl {

struct MachineConfig {
  uint32_t num_gpus = 8;                       // 1..8 (1..16 with nvswitch)
  bool nvlink = true;                          // hybrid cube mesh when true
  // DGX-2-style NVSwitch fabric: every GPU has a full-bandwidth NV2 port
  // into a central crossbar, so all pairs are two NV2 hops apart and there
  // are no slow intra-machine paths. Overrides `nvlink`.
  bool nvswitch = false;
  LinkType nic = LinkType::kInfiniBand;        // cross-machine NIC medium
  // NICs per machine (Figure 3 shows four). The paper's measurements used a
  // single shared IB card (nics = 1, the default); more NICs shard the
  // cross-machine traffic by GPU group.
  uint32_t nics_per_machine = 1;
};

// One machine; GPUs 0..3 are on socket 0, 4..7 on socket 1.
Topology BuildSingleMachine(const MachineConfig& config);

// `num_machines` identical machines connected through their NICs.
Topology BuildCluster(uint32_t num_machines, const MachineConfig& config);

// The topology used by the paper's experiments for a given GPU count:
// 1-8 GPUs on one machine, 9-16 split across two machines.
Topology BuildPaperTopology(uint32_t num_gpus, bool nvlink = true);

}  // namespace dgcl

#endif  // DGCL_TOPOLOGY_PRESETS_H_
