#include "topology/presets.h"

#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace dgcl {
namespace {

struct MachineConns {
  std::vector<ConnId> gpu_tx;  // per GPU: its PCIe lanes, GPU -> switch
  std::vector<ConnId> gpu_rx;  // per GPU: switch -> GPU
  std::vector<ConnId> sw_up_tx;   // per PCIe switch (2 GPUs each): switch -> CPU
  std::vector<ConnId> sw_up_rx;   // per PCIe switch: CPU -> switch
  ConnId qpi_fwd = kInvalidId;    // socket0 -> socket1
  ConnId qpi_rev = kInvalidId;
  std::vector<ConnId> nic_tx;     // per NIC: machine -> fabric
  std::vector<ConnId> nic_rx;
  // NVLink connection per (ordered GPU pair) within the machine.
  std::map<std::pair<uint32_t, uint32_t>, ConnId> nvlink;
  // NVSwitch fabric ports per GPU (empty unless config.nvswitch).
  std::vector<ConnId> nvswitch_up;    // GPU -> crossbar
  std::vector<ConnId> nvswitch_down;  // crossbar -> GPU
};

std::string Name(const std::string& prefix, uint32_t machine, const std::string& suffix) {
  return prefix + std::to_string(machine) + "." + suffix;
}

// Hybrid cube mesh NVLink pairs for up to 8 GPUs (local ids). Returns
// (a, b, is_nv2) unordered pairs that exist among the first `num_gpus` GPUs.
std::vector<std::tuple<uint32_t, uint32_t, bool>> NvLinkPairs(uint32_t num_gpus) {
  static constexpr struct {
    uint32_t a, b;
    bool nv2;
  } kPairs[] = {
      // quad 0 (fully connected; NV2 on the diagonals)
      {0, 1, false}, {0, 2, false}, {0, 3, true}, {1, 2, true}, {1, 3, false}, {2, 3, false},
      // quad 1
      {4, 5, false}, {4, 6, false}, {4, 7, true}, {5, 6, true}, {5, 7, false}, {6, 7, false},
      // cross-quad
      {0, 4, false}, {1, 5, false}, {2, 6, false}, {3, 7, false},
  };
  std::vector<std::tuple<uint32_t, uint32_t, bool>> out;
  for (const auto& p : kPairs) {
    if (p.a < num_gpus && p.b < num_gpus) {
      out.emplace_back(p.a, p.b, p.nv2);
    }
  }
  return out;
}

// Adds one machine's devices and connections; returns the connection handles.
MachineConns AddMachine(Topology& topo, uint32_t machine, const MachineConfig& config,
                        std::vector<DeviceId>& device_ids) {
  DGCL_CHECK_GE(config.num_gpus, 1u);
  DGCL_CHECK_LE(config.num_gpus, config.nvswitch ? 16u : 8u);
  MachineConns conns;
  // DGX-1: 4 GPUs per socket; DGX-2 (nvswitch): 8 per socket, up to 16 GPUs.
  const uint32_t gpus_per_socket = config.nvswitch ? 8 : 4;
  const uint32_t num_sockets = config.num_gpus > gpus_per_socket ? 2 : 1;
  // One PLX switch per GPU pair.
  const uint32_t num_switches = (config.num_gpus + 1) / 2;

  for (uint32_t g = 0; g < config.num_gpus; ++g) {
    const uint32_t socket = g / gpus_per_socket;
    Device dev;
    dev.name = "m" + std::to_string(machine) + ".gpu" + std::to_string(g);
    dev.machine = machine;
    dev.socket = socket;
    dev.pcie_switch = machine * 8 + g / 2;
    device_ids.push_back(topo.AddDevice(dev));
    conns.gpu_tx.push_back(topo.AddConnection(
        {Name("m", machine, "gpu" + std::to_string(g) + ".pcie.tx"), LinkType::kPcie, 0.0}));
    conns.gpu_rx.push_back(topo.AddConnection(
        {Name("m", machine, "gpu" + std::to_string(g) + ".pcie.rx"), LinkType::kPcie, 0.0}));
  }
  for (uint32_t s = 0; s < num_switches; ++s) {
    conns.sw_up_tx.push_back(topo.AddConnection(
        {Name("m", machine, "sw" + std::to_string(s) + ".up.tx"), LinkType::kPcie, 0.0}));
    conns.sw_up_rx.push_back(topo.AddConnection(
        {Name("m", machine, "sw" + std::to_string(s) + ".up.rx"), LinkType::kPcie, 0.0}));
  }
  if (num_sockets == 2) {
    conns.qpi_fwd = topo.AddConnection({Name("m", machine, "qpi.fwd"), LinkType::kQpi, 0.0});
    conns.qpi_rev = topo.AddConnection({Name("m", machine, "qpi.rev"), LinkType::kQpi, 0.0});
  }
  for (uint32_t n = 0; n < std::max(1u, config.nics_per_machine); ++n) {
    conns.nic_tx.push_back(topo.AddConnection(
        {Name("m", machine, "nic" + std::to_string(n) + ".tx"), config.nic, 0.0}));
    conns.nic_rx.push_back(topo.AddConnection(
        {Name("m", machine, "nic" + std::to_string(n) + ".rx"), config.nic, 0.0}));
  }

  if (config.nvswitch) {
    for (uint32_t g = 0; g < config.num_gpus; ++g) {
      conns.nvswitch_up.push_back(topo.AddConnection(
          {Name("m", machine, "nvsw.gpu" + std::to_string(g) + ".up"), LinkType::kNvLink2,
           0.0}));
      conns.nvswitch_down.push_back(topo.AddConnection(
          {Name("m", machine, "nvsw.gpu" + std::to_string(g) + ".down"), LinkType::kNvLink2,
           0.0}));
    }
  } else if (config.nvlink) {
    for (const auto& [a, b, nv2] : NvLinkPairs(config.num_gpus)) {
      LinkType type = nv2 ? LinkType::kNvLink2 : LinkType::kNvLink1;
      std::string base =
          Name("m", machine, "nv" + std::to_string(a) + "-" + std::to_string(b));
      conns.nvlink[{a, b}] = topo.AddConnection({base + ".fwd", type, 0.0});
      conns.nvlink[{b, a}] = topo.AddConnection({base + ".rev", type, 0.0});
    }
  }
  return conns;
}

// Adds the default route between two GPUs of the same machine.
void AddIntraMachineLink(Topology& topo, const MachineConns& conns,
                         std::span<const DeviceId> gpus, uint32_t i, uint32_t j) {
  std::vector<ConnId> hops;
  auto nv = conns.nvlink.find({i, j});
  if (!conns.nvswitch_up.empty()) {
    // NVSwitch crossbar: every pair is GPU -> switch -> GPU at NV2 speed.
    hops = {conns.nvswitch_up[i], conns.nvswitch_down[j]};
  } else if (nv != conns.nvlink.end()) {
    hops = {nv->second};
  } else {
    const Device& di = topo.device(gpus[i]);
    const Device& dj = topo.device(gpus[j]);
    const uint32_t sw_i = i / 2;
    const uint32_t sw_j = j / 2;
    if (sw_i == sw_j) {
      // Peer-to-peer inside one PCIe switch.
      hops = {conns.gpu_tx[i], conns.gpu_rx[j]};
    } else if (di.socket == dj.socket) {
      // Switch-to-switch through the host bridge of the socket.
      hops = {conns.gpu_tx[i], conns.sw_up_tx[sw_i], conns.sw_up_rx[sw_j], conns.gpu_rx[j]};
    } else {
      // PCIe - QPI - PCIe.
      ConnId qpi = di.socket < dj.socket ? conns.qpi_fwd : conns.qpi_rev;
      hops = {conns.gpu_tx[i], conns.sw_up_tx[sw_i], qpi, conns.sw_up_rx[sw_j],
              conns.gpu_rx[j]};
    }
  }
  auto link = topo.AddLink(gpus[i], gpus[j], std::move(hops));
  DGCL_CHECK(link.ok());
}

}  // namespace

Topology BuildSingleMachine(const MachineConfig& config) {
  return BuildCluster(1, config);
}

Topology BuildCluster(uint32_t num_machines, const MachineConfig& config) {
  DGCL_CHECK_GE(num_machines, 1u);
  Topology topo;
  std::vector<MachineConns> machine_conns;
  std::vector<std::vector<DeviceId>> machine_gpus(num_machines);
  for (uint32_t m = 0; m < num_machines; ++m) {
    machine_conns.push_back(AddMachine(topo, m, config, machine_gpus[m]));
  }
  // Intra-machine links.
  for (uint32_t m = 0; m < num_machines; ++m) {
    for (uint32_t i = 0; i < config.num_gpus; ++i) {
      for (uint32_t j = 0; j < config.num_gpus; ++j) {
        if (i != j) {
          AddIntraMachineLink(topo, machine_conns[m], machine_gpus[m], i, j);
        }
      }
    }
  }
  // Cross-machine links: GPU RDMA through the machine NICs (all GPUs of a
  // machine share its NIC, as in the paper's configuration).
  for (uint32_t ma = 0; ma < num_machines; ++ma) {
    for (uint32_t mb = 0; mb < num_machines; ++mb) {
      if (ma == mb) {
        continue;
      }
      const uint32_t nics = static_cast<uint32_t>(machine_conns[ma].nic_tx.size());
      for (uint32_t i = 0; i < config.num_gpus; ++i) {
        for (uint32_t j = 0; j < config.num_gpus; ++j) {
          // GPUs are sharded across the machine's NICs by contiguous groups
          // (a NIC serves the GPUs under its PCIe switch region).
          const uint32_t nic_i = i * nics / config.num_gpus;
          const uint32_t nic_j = j * nics / config.num_gpus;
          std::vector<ConnId> hops = {machine_conns[ma].gpu_tx[i],
                                      machine_conns[ma].nic_tx[nic_i],
                                      machine_conns[mb].nic_rx[nic_j],
                                      machine_conns[mb].gpu_rx[j]};
          auto link = topo.AddLink(machine_gpus[ma][i], machine_gpus[mb][j], std::move(hops));
          DGCL_CHECK(link.ok());
        }
      }
    }
  }
  return topo;
}

Topology BuildPaperTopology(uint32_t num_gpus, bool nvlink) {
  DGCL_CHECK_GE(num_gpus, 1u);
  DGCL_CHECK_LE(num_gpus, 16u);
  MachineConfig config;
  config.nvlink = nvlink;
  if (num_gpus <= 8) {
    config.num_gpus = num_gpus;
    return BuildSingleMachine(config);
  }
  DGCL_CHECK_EQ(num_gpus % 2, 0u);
  config.num_gpus = num_gpus / 2;
  return BuildCluster(2, config);
}

}  // namespace dgcl
