// Ring all-reduce for model-gradient synchronization.
//
// The paper delegates model synchronization to Horovod / PyTorch DDP (§6.3,
// "the model size is usually small for GNNs"); this is the corresponding
// substrate: the classic bandwidth-optimal ring algorithm — N-1 scatter-
// reduce steps followed by N-1 allgather steps over chunked buffers — plus a
// helper that prices one synchronization round on a topology.
//
// The reduction is performed chunk-by-chunk in exact ring order, so results
// are deterministic and byte-identical across runs (though float summation
// order differs from a naive sequential sum, as it would on real hardware).

#ifndef DGCL_RUNTIME_ALLREDUCE_H_
#define DGCL_RUNTIME_ALLREDUCE_H_

#include <vector>

#include "common/status.h"
#include "runtime/allgather_engine.h"
#include "topology/topology.h"

namespace dgcl {

struct AllReduceStats {
  uint32_t steps = 0;          // 2 * (N - 1)
  uint64_t bytes_per_device = 0;  // total bytes each device sends
};

// Sums the replicas elementwise with the ring schedule and writes the result
// back into every replica. All replicas must have identical shapes; null
// pointers are rejected. Returns the transfer statistics.
Result<AllReduceStats> RingAllReduceSum(std::vector<EmbeddingMatrix*> replicas);

// Seconds one ring all-reduce of `bytes_per_device` takes on `topo`, using
// ring order 0 -> 1 -> ... -> N-1 -> 0 and the slowest ring link per step
// (each of the 2(N-1) steps moves bytes/N per device simultaneously).
Result<double> RingAllReduceSeconds(const Topology& topo, uint64_t bytes_per_device);

}  // namespace dgcl

#endif  // DGCL_RUNTIME_ALLREDUCE_H_
