#include "runtime/transport.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"

namespace dgcl {
namespace {

// SplitMix64: the per-connection fault stream. Counter-hashed (not stateful)
// so draws depend only on (seed, pair, sequence, salt) — deterministic under
// any thread schedule.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Hash01(uint64_t seed, uint64_t a, uint64_t b, uint64_t salt) {
  const uint64_t h = Mix64(seed ^ Mix64(a ^ Mix64(b ^ salt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

// Waits `ns` of wall clock. Short waits spin on the steady clock (sleep_for
// granularity is tens of microseconds); longer ones sleep so an emulated
// transfer releases the core to the other device threads.
void PreciseWait(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  if (ns >= 50'000) {
    std::this_thread::sleep_until(deadline);
    return;
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

}  // namespace

const char* TransportName(Transport transport) {
  switch (transport) {
    case Transport::kCudaVirtualMemory:
      return "cuda-vm";
    case Transport::kPinnedHostMemory:
      return "pinned-host";
    case Transport::kNic:
      return "nic";
  }
  return "?";
}

Transport SelectTransport(const Topology& topo, DeviceId src, DeviceId dst) {
  DGCL_CHECK_LT(src, topo.num_devices());
  DGCL_CHECK_LT(dst, topo.num_devices());
  const Device& a = topo.device(src);
  const Device& b = topo.device(dst);
  if (a.machine != b.machine) {
    return Transport::kNic;
  }
  if (a.socket != b.socket) {
    return Transport::kPinnedHostMemory;
  }
  return Transport::kCudaVirtualMemory;
}

Transport ResolveTransport(const Topology& topo, DeviceId src, DeviceId dst,
                           std::span<const TransportOverride> overrides) {
  Transport t = SelectTransport(topo, src, dst);
  for (const TransportOverride& o : overrides) {
    if (o.src == src && o.dst == dst) {
      t = o.transport;
    }
  }
  return t;
}

Status ValidateTransportOverrides(const Topology& topo,
                                  std::span<const TransportOverride> overrides) {
  for (const TransportOverride& o : overrides) {
    if (o.src >= topo.num_devices() || o.dst >= topo.num_devices()) {
      return Status::InvalidArgument("transport override references device out of range");
    }
    if (o.src == o.dst) {
      return Status::InvalidArgument("transport override for a device with itself");
    }
    if (topo.device(o.src).machine != topo.device(o.dst).machine &&
        o.transport != Transport::kNic) {
      return Status::InvalidArgument(
          "cross-machine pair cannot be forced onto a shared-memory transport");
    }
  }
  return Status::Ok();
}

Status FaultInjection::Validate() const {
  if (!(drop_rate >= 0.0 && drop_rate <= 1.0)) {
    return Status::InvalidArgument("fault drop_rate must be in [0, 1]");
  }
  if (latency_micros > 10'000'000 || jitter_micros > 10'000'000) {
    return Status::InvalidArgument("injected latency/jitter above 10 s is surely a typo");
  }
  return Status::Ok();
}

Status TransportPolicy::Validate() const {
  if (backoff_max_micros < backoff_base_micros) {
    return Status::InvalidArgument("backoff_max_micros below backoff_base_micros");
  }
  if (!(bandwidth_time_scale > 0.0) || !std::isfinite(bandwidth_time_scale)) {
    return Status::InvalidArgument("bandwidth_time_scale must be positive and finite");
  }
  return Status::Ok();
}

Connection::Connection(DeviceId src, DeviceId dst, Transport transport, LinkId link,
                       double bottleneck_gbps, const TransportPolicy& policy,
                       const FaultInjection& faults)
    : src_(src),
      dst_(dst),
      transport_(transport),
      link_(link),
      bottleneck_gbps_(bottleneck_gbps),
      policy_(policy),
      faults_(faults),
      faults_apply_(faults.all_transports || transport == Transport::kNic) {}

Status Connection::Transmit(uint64_t bytes) {
  const bool faulty = faults_apply_ && (faults_.latency_micros > 0 || faults_.jitter_micros > 0 ||
                                        faults_.drop_rate > 0.0);
  const bool emulate = policy_.emulate_bandwidth && bottleneck_gbps_ > 0.0;
  if (!faulty && !emulate) {
    // The in-process shared-memory fast path: the payload copy is the wire.
    transmits_.fetch_add(1, std::memory_order_relaxed);
    attempts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  const uint64_t pair_key = (static_cast<uint64_t>(src_) << 32) | dst_;
  const uint64_t seq = transmits_.load(std::memory_order_relaxed);
  uint64_t wire_ns = 0;
  if (emulate) {
    wire_ns = static_cast<uint64_t>(static_cast<double>(bytes) / (bottleneck_gbps_ * 1e9) *
                                    policy_.bandwidth_time_scale * 1e9);
  }
  for (uint32_t attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t backoff = std::min<uint64_t>(
          static_cast<uint64_t>(policy_.backoff_base_micros) << (attempt - 1),
          policy_.backoff_max_micros);
      PreciseWait(backoff * 1000);
    }
    uint64_t attempt_ns = wire_ns;
    if (faulty) {
      attempt_ns += static_cast<uint64_t>(faults_.latency_micros) * 1000;
      if (faults_.jitter_micros > 0) {
        attempt_ns += static_cast<uint64_t>(
            Hash01(faults_.seed, pair_key, seq * 64 + attempt, /*salt=*/1) *
            (static_cast<double>(faults_.jitter_micros) * 1000.0));
      }
    }
    PreciseWait(attempt_ns);
    emulated_wait_ns_.fetch_add(attempt_ns, std::memory_order_relaxed);
    if (faulty && faults_.drop_rate > 0.0 &&
        Hash01(faults_.seed, pair_key, seq * 64 + attempt, /*salt=*/2) < faults_.drop_rate) {
      drops_injected_.fetch_add(1, std::memory_order_relaxed);
      continue;  // dropped on the emulated wire; back off and resend
    }
    transmits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  return Status::Unavailable("transmit " + std::string(name()) + " " + std::to_string(src_) +
                             "->" + std::to_string(dst_) + " dropped " +
                             std::to_string(policy_.max_retries + 1) +
                             " attempts; retries exhausted");
}

Connection::Stats Connection::stats() const {
  Stats s;
  s.transmits = transmits_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.drops_injected = drops_injected_.load(std::memory_order_relaxed);
  s.emulated_wait_ns = emulated_wait_ns_.load(std::memory_order_relaxed);
  return s;
}

Result<ConnectionTable> ConnectionTable::Build(const Topology& topo, const CompiledPlan& plan,
                                               const TransportPolicy& policy,
                                               const FaultInjection& faults,
                                               std::span<const TransportOverride> overrides) {
  DGCL_RETURN_IF_ERROR(policy.Validate());
  DGCL_RETURN_IF_ERROR(faults.Validate());
  DGCL_RETURN_IF_ERROR(ValidateTransportOverrides(topo, overrides));
  if (faults.dead_device != kInvalidId && faults.dead_device >= topo.num_devices()) {
    return Status::InvalidArgument("dead_device out of range");
  }

  ConnectionTable table;
  table.op_conn_.assign(plan.ops.size(), 0);
  table.op_slot_.assign(plan.ops.size(), 0);

  // Deterministic connection order: sorted ordered pairs.
  std::vector<std::pair<DeviceId, DeviceId>> pairs;
  for (const TransferOp& op : plan.ops) {
    pairs.emplace_back(op.src, op.dst);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  for (const auto& [src, dst] : pairs) {
    const LinkId link = topo.LinkBetween(src, dst);
    const Transport transport = ResolveTransport(topo, src, dst, overrides);
    const double gbps = link == kInvalidId ? 0.0 : topo.LinkBottleneckGBps(link);
    table.connections_.push_back(
        std::make_unique<Connection>(src, dst, transport, link, gbps, policy, faults));
  }
  for (uint32_t i = 0; i < plan.ops.size(); ++i) {
    const TransferOp& op = plan.ops[i];
    const auto it = std::lower_bound(pairs.begin(), pairs.end(), std::make_pair(op.src, op.dst));
    const uint32_t conn = static_cast<uint32_t>(it - pairs.begin());
    Connection& c = *table.connections_[conn];
    table.op_conn_[i] = conn;
    table.op_slot_[i] = static_cast<uint32_t>(c.op_ids_.size());
    c.op_ids_.push_back(i);
    c.op_units_.push_back(op.vertices.size());
  }
  for (auto& c : table.connections_) {
    c->staging_.resize(c->op_ids_.size());
  }
  return table;
}

void ConnectionTable::PrepareBuffers(uint32_t dim) {
  for (auto& c : connections_) {
    for (size_t i = 0; i < c->op_units_.size(); ++i) {
      c->staging_[i].resize(c->op_units_[i] * static_cast<size_t>(dim));
    }
  }
}

const Connection* ConnectionTable::Find(DeviceId src, DeviceId dst) const {
  const auto it = std::lower_bound(
      connections_.begin(), connections_.end(), std::make_pair(src, dst),
      [](const std::unique_ptr<Connection>& c, const std::pair<DeviceId, DeviceId>& key) {
        return std::make_pair(c->src(), c->dst()) < key;
      });
  if (it == connections_.end() || (*it)->src() != src || (*it)->dst() != dst) {
    return nullptr;
  }
  return it->get();
}

Connection* ConnectionTable::FindMutable(DeviceId src, DeviceId dst) {
  return const_cast<Connection*>(static_cast<const ConnectionTable*>(this)->Find(src, dst));
}

}  // namespace dgcl
