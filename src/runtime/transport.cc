#include "runtime/transport.h"

#include "common/logging.h"

namespace dgcl {

const char* TransportName(Transport transport) {
  switch (transport) {
    case Transport::kCudaVirtualMemory:
      return "cuda-vm";
    case Transport::kPinnedHostMemory:
      return "pinned-host";
    case Transport::kNic:
      return "nic";
  }
  return "?";
}

Transport SelectTransport(const Topology& topo, DeviceId src, DeviceId dst) {
  DGCL_CHECK_LT(src, topo.num_devices());
  DGCL_CHECK_LT(dst, topo.num_devices());
  const Device& a = topo.device(src);
  const Device& b = topo.device(dst);
  if (a.machine != b.machine) {
    return Transport::kNic;
  }
  if (a.socket != b.socket) {
    return Transport::kPinnedHostMemory;
  }
  return Transport::kCudaVirtualMemory;
}

}  // namespace dgcl
