#include "runtime/recovery.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>
#include <utility>

#include "common/ids.h"

namespace dgcl {
namespace {

DeviceMask FullMask(uint32_t num_devices) {
  if (num_devices >= kMaxDevices) {
    return ~DeviceMask{0};
  }
  return (DeviceMask{1} << num_devices) - 1;
}

// Least-loaded candidate, lowest id on ties, for deterministic reassignment.
uint32_t LeastLoaded(const std::vector<uint64_t>& load, DeviceMask candidates) {
  uint32_t best = kInvalidId;
  uint64_t best_load = std::numeric_limits<uint64_t>::max();
  for (uint32_t d = 0; d < load.size(); ++d) {
    if (!((candidates >> d) & 1)) {
      continue;
    }
    if (load[d] < best_load) {
      best = d;
      best_load = load[d];
    }
  }
  return best;
}

}  // namespace

Status RecoveryOptions::Validate() const {
  if (enabled && max_recoveries == 0) {
    return Status::InvalidArgument("RecoveryOptions: enabled with max_recoveries == 0");
  }
  return Status::Ok();
}

bool IsRecoverableFailure(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kUnavailable;
}

uint32_t MembershipView::NumAlive() const { return static_cast<uint32_t>(std::popcount(alive)); }

std::vector<uint32_t> MembershipView::DeadDevices(uint32_t num_devices) const {
  std::vector<uint32_t> dead;
  for (uint32_t d = 0; d < num_devices; ++d) {
    if (!IsAlive(d)) {
      dead.push_back(d);
    }
  }
  return dead;
}

MembershipService::MembershipService(uint32_t num_devices, uint64_t starting_epoch)
    : num_devices_(num_devices) {
  view_.epoch = starting_epoch;
  view_.alive = FullMask(num_devices);
}

Result<MembershipView> MembershipService::CommitFailure(DeviceMask suspects) {
  const DeviceMask effective = suspects & view_.alive;
  if (effective == 0) {
    return Status::InvalidArgument(
        "MembershipService::CommitFailure: no currently-alive device among suspects");
  }
  if (effective == view_.alive) {
    return Status::FailedPrecondition(
        "MembershipService::CommitFailure: commit would leave no survivor");
  }
  view_.alive &= ~effective;
  ++view_.epoch;
  return view_;
}

ReplicaMembershipService::ReplicaMembershipService(uint32_t num_devices,
                                                   uint32_t replicas_per_device)
    : devices_(num_devices),
      replicas_per_device_(replicas_per_device == 0 ? 1 : replicas_per_device) {
  const uint32_t full = replicas_per_device_ >= 32
                            ? ~uint32_t{0}
                            : (uint32_t{1} << replicas_per_device_) - 1;
  alive_replicas_.assign(num_devices, full);
}

bool ReplicaMembershipService::IsReplicaAlive(uint32_t device, uint32_t replica) const {
  if (device >= alive_replicas_.size() || replica >= replicas_per_device_) {
    return false;
  }
  return (alive_replicas_[device] >> replica) & 1;
}

uint32_t ReplicaMembershipService::AliveReplicas(uint32_t device) const {
  if (device >= alive_replicas_.size()) {
    return 0;
  }
  return static_cast<uint32_t>(std::popcount(alive_replicas_[device]));
}

uint32_t ReplicaMembershipService::AliveReplicaMask(uint32_t device) const {
  return device < alive_replicas_.size() ? alive_replicas_[device] : 0;
}

Result<MembershipView> ReplicaMembershipService::CommitReplicaFailure(uint32_t device,
                                                                      uint32_t replica) {
  if (device >= alive_replicas_.size() || replica >= replicas_per_device_) {
    return Status::OutOfRange("CommitReplicaFailure: replica (" + std::to_string(device) +
                              ", " + std::to_string(replica) + ") out of range");
  }
  if (!IsReplicaAlive(device, replica)) {
    return Status::InvalidArgument("CommitReplicaFailure: replica (" + std::to_string(device) +
                                   ", " + std::to_string(replica) + ") is already dead");
  }
  if (AliveReplicas(device) == 1) {
    // Last replica: the device dies with it. Commit the device FIRST so its
    // failure rules (at least one device must survive) can veto the replica
    // kill without leaving the views inconsistent.
    DGCL_RETURN_IF_ERROR(devices_.CommitFailure(DeviceMask{1} << device).status());
  }
  alive_replicas_[device] &= ~(uint32_t{1} << replica);
  ++replica_epoch_;
  return devices_.view();
}

Result<SurvivingTopology> BuildSurvivingTopology(const Topology& topo,
                                                 const MembershipView& view) {
  const uint32_t n = topo.num_devices();
  if (view.alive == 0) {
    return Status::InvalidArgument("BuildSurvivingTopology: empty membership");
  }
  if ((view.alive & ~FullMask(n)) != 0) {
    return Status::InvalidArgument("BuildSurvivingTopology: membership names devices outside topology");
  }

  SurvivingTopology out;
  out.old_to_new.assign(n, kInvalidId);
  for (uint32_t d = 0; d < n; ++d) {
    if (!view.IsAlive(d)) {
      continue;
    }
    out.old_to_new[d] = out.topology.AddDevice(topo.device(d));
    out.new_to_old.push_back(d);
  }
  // Physical contention domains survive a dead endpoint (a dead GPU does not
  // remove a bus), so connection ids — and thus link hop lists — are stable.
  for (uint32_t c = 0; c < topo.num_connections(); ++c) {
    out.topology.AddConnection(topo.connection(c));
  }
  for (const Link& link : topo.links()) {
    const uint32_t src = out.old_to_new[link.src];
    const uint32_t dst = out.old_to_new[link.dst];
    if (src == kInvalidId || dst == kInvalidId) {
      continue;
    }
    DGCL_ASSIGN_OR_RETURN(LinkId id, out.topology.AddLink(src, dst, link.hops));
    (void)id;
  }
  return out;
}

Result<Partitioning> IncrementalRepartition(const CommClasses& classes,
                                            const Partitioning& partitioning,
                                            const MembershipView& view,
                                            RepartitionStats* stats) {
  const uint32_t n = partitioning.num_parts;
  if (classes.num_devices != n) {
    return Status::InvalidArgument("IncrementalRepartition: classes/partitioning device mismatch");
  }
  if (view.alive == 0 || (view.alive & ~FullMask(n)) != 0) {
    return Status::InvalidArgument("IncrementalRepartition: membership does not fit partitioning");
  }
  if (view.alive == FullMask(n)) {
    return partitioning;  // nothing died
  }

  Partitioning out = partitioning;
  std::vector<uint64_t> load(n, 0);
  for (uint32_t part : out.assignment) {
    if (part >= n) {
      return Status::InvalidArgument("IncrementalRepartition: assignment entry out of range");
    }
    ++load[part];
  }

  RepartitionStats local_stats;
  // Dead-sourced equivalence classes move wholesale to the cheapest survivor
  // in their destination set: those devices already need every member vertex,
  // so the move erases one transfer obligation per vertex instead of adding
  // one. Least-loaded-first keeps the balance; classes whose destinations all
  // died fall back to the globally least-loaded survivor.
  for (const CommClass& cls : classes.classes) {
    if (view.IsAlive(cls.source)) {
      continue;
    }
    DeviceMask candidates = cls.mask & view.alive;
    if (candidates == 0) {
      candidates = view.alive;
    }
    const uint32_t target = LeastLoaded(load, candidates);
    for (VertexId v : cls.vertices) {
      out.assignment[v] = target;
    }
    load[target] += cls.weight;
    load[cls.source] -= cls.weight;
    ++local_stats.moved_classes;
    local_stats.moved_vertices += cls.weight;
  }
  // Dead-owned vertices with an empty destination set belong to no class;
  // sweep them to the least-loaded survivor.
  for (VertexId v = 0; v < out.assignment.size(); ++v) {
    if (view.IsAlive(out.assignment[v])) {
      continue;
    }
    const uint32_t target = LeastLoaded(load, view.alive);
    --load[out.assignment[v]];
    out.assignment[v] = target;
    ++load[target];
    ++local_stats.moved_vertices;
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return out;
}

Result<Partitioning> RemapPartitioning(const Partitioning& partitioning,
                                       const std::vector<uint32_t>& old_to_new,
                                       uint32_t new_num_parts) {
  Partitioning out;
  out.num_parts = new_num_parts;
  out.assignment.reserve(partitioning.assignment.size());
  for (size_t v = 0; v < partitioning.assignment.size(); ++v) {
    const uint32_t old_part = partitioning.assignment[v];
    if (old_part >= old_to_new.size() || old_to_new[old_part] == kInvalidId ||
        old_to_new[old_part] >= new_num_parts) {
      return Status::InvalidArgument("RemapPartitioning: vertex " + std::to_string(v) +
                                     " assigned to unmapped part " + std::to_string(old_part));
    }
    out.assignment.push_back(old_to_new[old_part]);
  }
  return out;
}

void EmbeddingCheckpointStore::Save(uint32_t boundary, EmbeddingMatrix acts) {
  EmbeddingCheckpoint& slot = checkpoints_[boundary];
  slot.boundary = boundary;
  slot.acts = std::move(acts);
}

const EmbeddingCheckpoint* EmbeddingCheckpointStore::Find(uint32_t boundary) const {
  auto it = checkpoints_.find(boundary);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

uint64_t EmbeddingCheckpointStore::TotalBytes() const {
  uint64_t bytes = 0;
  for (const auto& [boundary, ckpt] : checkpoints_) {
    bytes += static_cast<uint64_t>(ckpt.acts.data.size()) * sizeof(float);
  }
  return bytes;
}

}  // namespace dgcl
