// Elastic fault recovery: survive a dead device by re-planning onto the
// surviving topology.
//
// PR 4 made failure *detectable* — a dead peer surfaces as kDeadlineExceeded
// from a deadline-bounded wait instead of a hang. This subsystem answers the
// question a production training stack must answer next: what happens then?
// The paper's pipeline (partition -> relation -> SPST plan -> compiled
// tables) is exactly the machinery needed to recover: agree on the failed
// device set, fold the dead device's vertices into the survivors, rebuild the
// plan for the surviving topology, restore embeddings from a lightweight
// in-memory checkpoint and resume the epoch — the same elastic-membership
// direction NCCL-style collectives and BytePS-style elastic training take.
//
// This header holds the *mechanisms* (membership epochs, surviving-topology
// derivation, the incremental repartition heuristic, the checkpoint store);
// the *protocol driver* that stitches them into the planning pipeline lives
// in DgclContext::Recover and ElasticTrainingSession (src/dgcl/elastic.h).
// Every phase is a DGCL_TSPAN under the "recovery" category, so
// `dgcl_trace summarize --recovery` breaks MTTR down per phase.

#ifndef DGCL_RUNTIME_RECOVERY_H_
#define DGCL_RUNTIME_RECOVERY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "comm/relation.h"
#include "common/status.h"
#include "partition/partitioner.h"
#include "runtime/allgather_engine.h"
#include "topology/topology.h"

namespace dgcl {

// Knobs for the recovery protocol, carried by DgclOptions::recovery.
struct RecoveryOptions {
  // Master switch: with recovery disabled (the default), a failed collective
  // surfaces its Status to the caller exactly as before this subsystem.
  bool enabled = false;

  // The trainer snapshots the global activation matrix entering every n-th
  // layer (by global vertex id, so a snapshot survives repartitioning). On
  // resume, layers whose boundary is checkpointed rebuild their slot inputs
  // from the snapshot instead of re-running the allgather — recompute is
  // local, the re-done communication is what the checkpoint saves. 0
  // disables activation checkpoints (recovery then re-runs the whole epoch's
  // communication).
  uint32_t checkpoint_every_n_layers = 1;

  // Upper bound on recoveries per training session; one more failure than
  // this surfaces the failing Status to the caller.
  uint32_t max_recoveries = 4;

  Status Validate() const;
};

// Status codes the recovery protocol can handle: a deadline-bounded wait that
// ran out (the dead-peer signature) or an unavailable peer/transport.
bool IsRecoverableFailure(const Status& status);

// A membership epoch: which devices (in the *current* device-id space) are
// alive. The epoch is bumped by every committed failure and carried across
// the device-id compaction that follows, so "membership epoch e" globally
// orders recoveries.
struct MembershipView {
  uint64_t epoch = 0;
  DeviceMask alive = 0;

  bool IsAlive(uint32_t device) const { return (alive >> device) & 1; }
  uint32_t NumAlive() const;
  std::vector<uint32_t> DeadDevices(uint32_t num_devices) const;
};

// Centralized membership agreement, mirroring the engine's centralized
// coordination mode: conceptually the lowest-id survivor collects the
// suspicion votes (the engine's PassFailure::suspects) and commits the new
// epoch; every survivor adopts the committed view. In this in-process
// reproduction the collection is a function call, but the commit rules are
// the real ones: only currently-alive devices can be declared dead, at least
// one device must be declared dead, and at least one must survive.
class MembershipService {
 public:
  MembershipService(uint32_t num_devices, uint64_t starting_epoch = 0);

  const MembershipView& view() const { return view_; }
  uint32_t num_devices() const { return num_devices_; }

  // Commits `suspects & alive` as dead and bumps the epoch. Fails when the
  // effective suspect set is empty or would leave no survivor.
  Result<MembershipView> CommitFailure(DeviceMask suspects);

 private:
  uint32_t num_devices_ = 0;
  MembershipView view_;
};

// Replica-aware membership over the same epoch discipline. The serving tier
// runs `replicas_per_device` read replicas of every device (shard); replica r
// of device d is one routable serving home. Replica failures commit through
// this service — every commit bumps the replica epoch — and when a device's
// last replica dies the device itself is committed dead through the wrapped
// MembershipService, so device-level consumers (alive masks, suspect naming,
// surviving-topology derivation) observe replica exhaustion exactly as they
// observe a whole-device kill. Not thread-safe; callers serialize commits
// (GraphService holds its kill mutex across a commit + queue handoff).
class ReplicaMembershipService {
 public:
  // replicas_per_device in [1, 32] (replica liveness is a uint32_t mask).
  ReplicaMembershipService(uint32_t num_devices, uint32_t replicas_per_device);

  uint32_t num_devices() const { return devices_.num_devices(); }
  uint32_t replicas_per_device() const { return replicas_per_device_; }

  // Device-level view: a device is alive while >= 1 of its replicas is.
  const MembershipView& view() const { return devices_.view(); }
  // Replica-commit epoch; >= view().epoch (device commits are a subset).
  uint64_t replica_epoch() const { return replica_epoch_; }

  bool IsReplicaAlive(uint32_t device, uint32_t replica) const;
  uint32_t AliveReplicas(uint32_t device) const;
  // Bit r = replica r of `device` alive.
  uint32_t AliveReplicaMask(uint32_t device) const;

  // Commits replica (device, replica) dead and bumps the replica epoch.
  // Killing the device's last replica also commits the device failure under
  // MembershipService's rules — notably, the last replica of the last alive
  // device cannot be killed. Out-of-range ids and already-dead replicas fail
  // without touching either view. Returns the (possibly updated)
  // device-level view.
  Result<MembershipView> CommitReplicaFailure(uint32_t device, uint32_t replica);

 private:
  MembershipService devices_;
  uint32_t replicas_per_device_ = 1;
  uint64_t replica_epoch_ = 0;
  std::vector<uint32_t> alive_replicas_;  // per device; bit r = replica r alive
};

// The surviving topology after a membership commit: dead devices removed and
// the survivors compacted to [0, NumAlive). Physical connections are copied
// verbatim (a dead GPU does not remove a bus); links between two survivors
// keep their hop lists. Fully-connected topologies stay fully connected.
struct SurvivingTopology {
  Topology topology;
  std::vector<uint32_t> old_to_new;  // kInvalidId for dead devices
  std::vector<uint32_t> new_to_old;
};

Result<SurvivingTopology> BuildSurvivingTopology(const Topology& topo,
                                                 const MembershipView& view);

struct RepartitionStats {
  uint64_t moved_vertices = 0;  // vertices that changed owner
  uint64_t moved_classes = 0;   // dead-sourced equivalence classes rerouted
};

// Incremental repartition: reassigns every vertex owned by a dead device to a
// survivor without re-running the (expensive) multilevel partitioner. The
// heuristic works over the existing destination-set equivalence classes: a
// dead-sourced class moves wholesale to the cheapest survivor *in its
// destination set* (those devices already need every member vertex, so the
// move erases one transfer obligation per vertex instead of adding one),
// least-loaded-first for balance; classes with no surviving destination and
// dead-owned vertices with no destinations at all go to the least-loaded
// survivor. Returns an assignment in the same (pre-compaction) device-id
// space using only surviving ids; RemapPartitioning compacts it.
Result<Partitioning> IncrementalRepartition(const CommClasses& classes,
                                            const Partitioning& partitioning,
                                            const MembershipView& view,
                                            RepartitionStats* stats = nullptr);

// Rewrites an assignment through `old_to_new` (entries must all be alive).
Result<Partitioning> RemapPartitioning(const Partitioning& partitioning,
                                       const std::vector<uint32_t>& old_to_new,
                                       uint32_t new_num_parts);

// One per-layer activation snapshot: the global [num_vertices x dim] matrix
// entering layer `boundary`, keyed by global vertex id so it can be
// re-dispatched under any post-recovery layout.
struct EmbeddingCheckpoint {
  uint32_t boundary = 0;  // layer the activations feed into (>= 1)
  EmbeddingMatrix acts;
};

// In-memory checkpoint store for one epoch's forward pass. Snapshots are
// valid only while the model weights that produced them are live, so the
// trainer clears the store after every completed (weight-updating) epoch.
class EmbeddingCheckpointStore {
 public:
  explicit EmbeddingCheckpointStore(uint32_t every_n_layers = 1)
      : every_n_layers_(every_n_layers) {}

  // True when the activations entering `boundary` should be snapshotted.
  bool ShouldCheckpoint(uint32_t boundary) const {
    return every_n_layers_ > 0 && boundary >= 1 && boundary % every_n_layers_ == 0;
  }

  void Save(uint32_t boundary, EmbeddingMatrix acts);

  // nullptr when no snapshot exists for this boundary.
  const EmbeddingCheckpoint* Find(uint32_t boundary) const;

  void Clear() { checkpoints_.clear(); }
  size_t size() const { return checkpoints_.size(); }
  uint32_t every_n_layers() const { return every_n_layers_; }

  // The checkpoint cost model's numerator: bytes held across all snapshots.
  uint64_t TotalBytes() const;

 private:
  uint32_t every_n_layers_ = 1;
  std::map<uint32_t, EmbeddingCheckpoint> checkpoints_;  // by boundary
};

// What one completed recovery cost, phase by phase (seconds). The same
// breakdown is recorded as "recovery.<phase>" telemetry spans; bench_recovery
// reports it as the MTTR table.
struct RecoveryReport {
  uint64_t epoch = 0;                     // membership epoch after the commit
  std::vector<uint32_t> failed_devices;   // ids in the pre-recovery space
  uint32_t survivors = 0;
  uint64_t moved_vertices = 0;
  uint64_t moved_classes = 0;

  double detect_seconds = 0.0;       // failure classification + suspect readout
  double membership_seconds = 0.0;   // epoch commit
  double repartition_seconds = 0.0;  // surviving topology + incremental repartition
  double replan_seconds = 0.0;       // relation + SPST + compile + arm engine
  double restore_seconds = 0.0;      // trainer rebuild + weight/checkpoint restore
  double resume_seconds = 0.0;       // the retried epoch, to completion

  // Recovery work proper (everything but the retried epoch).
  double MttrSeconds() const {
    return detect_seconds + membership_seconds + repartition_seconds + replan_seconds +
           restore_seconds;
  }
};

}  // namespace dgcl

#endif  // DGCL_RUNTIME_RECOVERY_H_
