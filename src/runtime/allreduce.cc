#include "runtime/allreduce.h"

#include <algorithm>
#include <limits>

namespace dgcl {
namespace {

// Chunk c covers [bounds[c], bounds[c+1]) of the flat buffer.
std::vector<size_t> ChunkBounds(size_t total, uint32_t chunks) {
  std::vector<size_t> bounds(chunks + 1, 0);
  const size_t base = total / chunks;
  const size_t extra = total % chunks;
  for (uint32_t c = 0; c < chunks; ++c) {
    bounds[c + 1] = bounds[c] + base + (c < extra ? 1 : 0);
  }
  return bounds;
}

}  // namespace

Result<AllReduceStats> RingAllReduceSum(std::vector<EmbeddingMatrix*> replicas) {
  const uint32_t n = static_cast<uint32_t>(replicas.size());
  if (n == 0) {
    return Status::InvalidArgument("no replicas");
  }
  for (EmbeddingMatrix* replica : replicas) {
    if (replica == nullptr) {
      return Status::InvalidArgument("null replica");
    }
    if (replica->rows != replicas[0]->rows || replica->dim != replicas[0]->dim) {
      return Status::InvalidArgument("replica shape mismatch");
    }
  }
  AllReduceStats stats;
  if (n == 1) {
    return stats;
  }
  const size_t total = replicas[0]->data.size();
  const auto bounds = ChunkBounds(total, n);

  // Scatter-reduce: after step s, device d holds the running sum of chunk
  // (d - s + n) % n accumulated from s+1 replicas. Each step, device d sends
  // its current accumulation chunk to d+1 which adds its own data.
  for (uint32_t step = 0; step + 1 < n; ++step) {
    for (uint32_t d = 0; d < n; ++d) {
      const uint32_t receiver = (d + 1) % n;
      const uint32_t chunk = (d + n - step) % n;
      float* dst = replicas[receiver]->data.data();
      const float* src = replicas[d]->data.data();
      for (size_t i = bounds[chunk]; i < bounds[chunk + 1]; ++i) {
        dst[i] += src[i];
      }
      if (d == 0) {
        stats.bytes_per_device += (bounds[chunk + 1] - bounds[chunk]) * sizeof(float);
      }
    }
    ++stats.steps;
  }
  // Allgather: device d now owns the fully reduced chunk (d + 1) % n; rotate
  // the finished chunks around the ring.
  for (uint32_t step = 0; step + 1 < n; ++step) {
    for (uint32_t d = 0; d < n; ++d) {
      const uint32_t receiver = (d + 1) % n;
      const uint32_t chunk = (d + 1 + n - step) % n;
      float* dst = replicas[receiver]->data.data();
      const float* src = replicas[d]->data.data();
      std::copy(src + bounds[chunk], src + bounds[chunk + 1], dst + bounds[chunk]);
      if (d == 0) {
        stats.bytes_per_device += (bounds[chunk + 1] - bounds[chunk]) * sizeof(float);
      }
    }
    ++stats.steps;
  }
  return stats;
}

Result<double> RingAllReduceSeconds(const Topology& topo, uint64_t bytes_per_device) {
  const uint32_t n = topo.num_devices();
  if (n == 0) {
    return Status::InvalidArgument("empty topology");
  }
  if (n == 1) {
    return 0.0;
  }
  // Each of the 2(N-1) steps moves ~bytes/N on every ring link concurrently;
  // the step time is set by the slowest ring link.
  double min_bw = std::numeric_limits<double>::infinity();
  for (uint32_t d = 0; d < n; ++d) {
    LinkId link = topo.LinkBetween(d, (d + 1) % n);
    if (link == kInvalidId) {
      return Status::FailedPrecondition("topology has no ring link " + std::to_string(d));
    }
    min_bw = std::min(min_bw, topo.LinkBottleneckGBps(link) * 1e9);
  }
  const double chunk_bytes = static_cast<double>(bytes_per_device) / n;
  return 2.0 * (n - 1) * chunk_bytes / min_bw;
}

}  // namespace dgcl
