#include "runtime/allgather_engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dgcl {

// Shared flag/buffer state for one pass (forward or backward).
struct PassState {
  // ready_stage[d]: d has finished consuming all receives of stages < value.
  std::unique_ptr<std::atomic<uint32_t>[]> ready_stage;
  // One staging buffer + done flag per op. Buffers are written by exactly one
  // sender and read by exactly one receiver after `done` is raised.
  std::vector<std::vector<float>> op_buffers;
  std::unique_ptr<std::atomic<bool>[]> op_done;
  // Centralized coordination only: the master's stage gate.
  std::optional<std::barrier<>> stage_barrier;

  PassState(uint32_t num_devices, const CompiledPlan& plan, uint32_t dim) {
    ready_stage = std::make_unique<std::atomic<uint32_t>[]>(num_devices);
    for (uint32_t d = 0; d < num_devices; ++d) {
      ready_stage[d].store(0, std::memory_order_relaxed);
    }
    op_buffers.resize(plan.ops.size());
    op_done = std::make_unique<std::atomic<bool>[]>(plan.ops.size());
    for (uint32_t i = 0; i < plan.ops.size(); ++i) {
      op_buffers[i].resize(plan.ops[i].vertices.size() * static_cast<size_t>(dim));
      op_done[i].store(false, std::memory_order_relaxed);
    }
  }
};

namespace {

// Copies embedding rows in 16-byte chunks where possible (§6.2 data packing:
// one CUDA thread fetches 16 bytes per instruction; memcpy vectorizes the
// same way on CPU).
void PackRow(float* dst, const float* src, uint32_t dim) {
  std::memcpy(dst, src, static_cast<size_t>(dim) * sizeof(float));
}

// Span category for a transfer: the link type of its bottleneck hop
// (LinkTypeName returns interned strings, as the recorder requires).
const char* LinkCategory(const Topology& topo, LinkId link) {
  const Link& l = topo.link(link);
  if (l.hops.empty()) {
    return "local";
  }
  ConnId slowest = l.hops[0];
  for (ConnId hop : l.hops) {
    if (topo.connection(hop).bandwidth_gbps < topo.connection(slowest).bandwidth_gbps) {
      slowest = hop;
    }
  }
  return LinkTypeName(topo.connection(slowest).type);
}

}  // namespace

Result<AllgatherEngine> AllgatherEngine::Create(const CommRelation& relation, CompiledPlan plan,
                                                const Topology& topo) {
  DGCL_RETURN_IF_ERROR(ValidateCompiledPlan(plan, relation, topo));
  AllgatherEngine engine;
  engine.relation_ = &relation;
  engine.topo_ = &topo;
  engine.plan_ = std::move(plan);

  // Slot layout per device: locals, then required remotes, then any vertices
  // held only for forwarding.
  engine.slots_.resize(relation.num_devices);
  engine.slot_counts_.resize(relation.num_devices);
  for (uint32_t d = 0; d < relation.num_devices; ++d) {
    auto& map = engine.slots_[d];
    uint32_t next = 0;
    for (VertexId v : relation.local_vertices[d]) {
      map.emplace(v, next++);
    }
    for (VertexId v : relation.remote_vertices[d]) {
      map.emplace(v, next++);
    }
    engine.slot_counts_[d] = next;
  }
  for (const TransferOp& op : engine.plan_.ops) {
    auto& map = engine.slots_[op.dst];
    for (VertexId v : op.vertices) {
      if (!map.contains(v)) {
        map.emplace(v, engine.slot_counts_[op.dst]++);
      }
    }
  }
  return engine;
}

uint32_t AllgatherEngine::SlotOf(uint32_t device, VertexId v) const {
  auto it = slots_[device].find(v);
  return it == slots_[device].end() ? kInvalidId : it->second;
}

uint32_t AllgatherEngine::NumContractSlots(uint32_t device) const {
  return static_cast<uint32_t>(relation_->local_vertices[device].size() +
                               relation_->remote_vertices[device].size());
}

void AllgatherEngine::RunDevice(uint32_t device, uint32_t dim, bool backward,
                                std::vector<EmbeddingMatrix>& buffers, PassState& state) const {
  const uint32_t num_stages = plan_.num_stages;
  EmbeddingMatrix& mine = buffers[device];

  auto wait_ready = [&state](uint32_t peer, uint32_t stage) {
    while (state.ready_stage[peer].load(std::memory_order_acquire) < stage) {
      std::this_thread::yield();
    }
  };
  auto wait_done = [&state](uint32_t op_id) {
    while (!state.op_done[op_id].load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };

  // Ops this device sends/receives, grouped by stage. In the backward pass
  // the roles reverse: gradients for an op flow dst -> src, and receives are
  // consumed in ascending sub-stage order (§6.2 non-atomic aggregation).
  std::vector<std::vector<uint32_t>> sends(num_stages);
  std::vector<std::vector<uint32_t>> recvs(num_stages);
  for (uint32_t i = 0; i < plan_.ops.size(); ++i) {
    const TransferOp& op = plan_.ops[i];
    const uint32_t sender = backward ? op.dst : op.src;
    const uint32_t receiver = backward ? op.src : op.dst;
    if (sender == device) {
      sends[op.stage].push_back(i);
    }
    if (receiver == device) {
      recvs[op.stage].push_back(i);
    }
  }
  if (backward) {
    for (auto& ids : recvs) {
      std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
        return plan_.ops[a].substage < plan_.ops[b].substage;
      });
    }
  }

  for (uint32_t step = 0; step < num_stages; ++step) {
    if (device == straggler_device_ && straggler_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(straggler_micros_));
    }
    if (coordination_ == CoordinationMode::kCentralized && state.stage_barrier.has_value()) {
      // Centralized §6.1 alternative: report to the master and block until
      // every device is released into this stage.
      state.stage_barrier->arrive_and_wait();
    }
    const uint32_t stage = backward ? num_stages - 1 - step : step;
    uint64_t stage_bytes = 0;
    if (telemetry::Telemetry::Enabled()) {
      for (uint32_t op_id : sends[stage]) {
        stage_bytes += plan_.ops[op_id].vertices.size() * static_cast<size_t>(dim) * sizeof(float);
      }
    }
    // Spans the whole stage on this device, waits included — the max over
    // devices is the stage's wall time (what CostAudit joins against the
    // cost model's per-stage prediction).
    DGCL_TSPAN2("runtime", backward ? "bwd.stage" : "fwd.stage", "stage", stage, "bytes",
                stage_bytes);
    for (uint32_t op_id : sends[stage]) {
      const TransferOp& op = plan_.ops[op_id];
      const uint32_t receiver = backward ? op.src : op.dst;
      if (!backward && coordination_ == CoordinationMode::kDecentralized) {
        wait_ready(receiver, stage);
      }
      DGCL_TSPAN2(LinkCategory(*topo_, op.link), backward ? "bwd.send" : "fwd.send", "stage",
                  stage, "bytes", op.vertices.size() * static_cast<size_t>(dim) * sizeof(float));
      std::vector<float>& staging = state.op_buffers[op_id];
      for (size_t i = 0; i < op.vertices.size(); ++i) {
        const uint32_t slot = SlotOf(device, op.vertices[i]);
        DGCL_CHECK_NE(slot, kInvalidId);
        PackRow(staging.data() + i * dim, mine.Row(slot), dim);
      }
      state.op_done[op_id].store(true, std::memory_order_release);
    }
    for (uint32_t op_id : recvs[stage]) {
      const TransferOp& op = plan_.ops[op_id];
      wait_done(op_id);
      const std::vector<float>& staging = state.op_buffers[op_id];
      for (size_t i = 0; i < op.vertices.size(); ++i) {
        const uint32_t slot = SlotOf(device, op.vertices[i]);
        DGCL_CHECK_NE(slot, kInvalidId);
        if (backward) {
          // Gradient accumulation at the forwarding/owning device.
          float* row = mine.Row(slot);
          const float* incoming = staging.data() + i * dim;
          for (uint32_t c = 0; c < dim; ++c) {
            row[c] += incoming[c];
          }
        } else {
          PackRow(mine.Row(slot), staging.data() + i * dim, dim);
        }
      }
    }
    state.ready_stage[device].store(step + 1, std::memory_order_release);
  }
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::Forward(
    const std::vector<EmbeddingMatrix>& local) const {
  if (local.size() != relation_->num_devices) {
    return Status::InvalidArgument("one local matrix per device required");
  }
  uint32_t dim = 0;
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    if (local[d].rows != relation_->local_vertices[d].size()) {
      return Status::InvalidArgument("local row count mismatch");
    }
    if (local[d].rows > 0) {
      if (dim != 0 && local[d].dim != dim) {
        return Status::InvalidArgument("inconsistent embedding dim");
      }
      dim = local[d].dim;
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("no embeddings provided");
  }

  std::vector<EmbeddingMatrix> buffers;
  buffers.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    EmbeddingMatrix m = EmbeddingMatrix::Zero(slot_counts_[d], dim);
    for (uint32_t r = 0; r < local[d].rows; ++r) {
      PackRow(m.Row(r), local[d].Row(r), dim);
    }
    buffers.push_back(std::move(m));
  }

  PassState state(relation_->num_devices, plan_, dim);
  if (coordination_ == CoordinationMode::kCentralized) {
    state.stage_barrier.emplace(relation_->num_devices);
  }
  DGCL_TSPAN2("runtime", "fwd.pass", "devices", relation_->num_devices, "dim", dim);
  std::vector<std::thread> threads;
  threads.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    threads.emplace_back(
        [this, d, dim, &buffers, &state]() { RunDevice(d, dim, /*backward=*/false, buffers, state); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return buffers;
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::Backward(
    const std::vector<EmbeddingMatrix>& slot_grads) const {
  if (slot_grads.size() != relation_->num_devices) {
    return Status::InvalidArgument("one gradient matrix per device required");
  }
  uint32_t dim = 0;
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    if (slot_grads[d].rows > 0) {
      if (slot_grads[d].rows < NumContractSlots(d)) {
        return Status::InvalidArgument("gradient rows below local+remote slot count");
      }
      if (dim != 0 && slot_grads[d].dim != dim) {
        return Status::InvalidArgument("inconsistent gradient dim");
      }
      dim = slot_grads[d].dim;
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("no gradients provided");
  }

  std::vector<EmbeddingMatrix> buffers;
  buffers.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    EmbeddingMatrix m = EmbeddingMatrix::Zero(slot_counts_[d], dim);
    const uint32_t provided = std::min<uint32_t>(slot_grads[d].rows, slot_counts_[d]);
    for (uint32_t r = 0; r < provided; ++r) {
      PackRow(m.Row(r), slot_grads[d].Row(r), dim);
    }
    buffers.push_back(std::move(m));
  }

  PassState state(relation_->num_devices, plan_, dim);
  if (coordination_ == CoordinationMode::kCentralized) {
    state.stage_barrier.emplace(relation_->num_devices);
  }
  DGCL_TSPAN2("runtime", "bwd.pass", "devices", relation_->num_devices, "dim", dim);
  std::vector<std::thread> threads;
  threads.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    threads.emplace_back(
        [this, d, dim, &buffers, &state]() { RunDevice(d, dim, /*backward=*/true, buffers, state); });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  std::vector<EmbeddingMatrix> out;
  out.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    const uint32_t locals = static_cast<uint32_t>(relation_->local_vertices[d].size());
    EmbeddingMatrix m = EmbeddingMatrix::Zero(locals, dim);
    for (uint32_t r = 0; r < locals; ++r) {
      PackRow(m.Row(r), buffers[d].Row(r), dim);
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace dgcl
