#include "runtime/allgather_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dgcl {
namespace {

// The status a device reports when it bails out of its waits because some
// *other* device failed first. Filtered out of the pass verdict unless it is
// all there is.
Status AbortedStatus() { return Status::Unavailable("pass aborted by peer failure"); }

bool IsAborted(const Status& s) {
  return s.code() == StatusCode::kUnavailable && s.message() == "pass aborted by peer failure";
}

// Copies embedding rows in 16-byte chunks where possible (§6.2 data packing:
// one CUDA thread fetches 16 bytes per instruction; memcpy vectorizes the
// same way on CPU).
void PackRow(float* dst, const float* src, uint32_t dim) {
  std::memcpy(dst, src, static_cast<size_t>(dim) * sizeof(float));
}

// Span category for a transfer: the link type of its bottleneck hop
// (LinkTypeName returns interned strings, as the recorder requires).
const char* LinkCategory(const Topology& topo, LinkId link) {
  const Link& l = topo.link(link);
  if (l.hops.empty()) {
    return "local";
  }
  ConnId slowest = l.hops[0];
  for (ConnId hop : l.hops) {
    if (topo.connection(hop).bandwidth_gbps < topo.connection(slowest).bandwidth_gbps) {
      slowest = hop;
    }
  }
  return LinkTypeName(topo.connection(slowest).type);
}

// A std::barrier with a deadline and an abort path: the centralized §6.1
// master gate must fail a collective whose peer died, not park forever.
class TimedBarrier {
 public:
  explicit TimedBarrier(uint32_t parties) : parties_(parties) {}

  // OK when every party arrived; kDeadlineExceeded when `timeout_micros` (> 0)
  // elapsed first (the barrier is poisoned so everyone else unblocks);
  // the aborted sentinel when another thread failed the pass.
  Status ArriveAndWait(uint64_t timeout_micros) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) {
      return AbortedStatus();
    }
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return Status::Ok();
    }
    const uint64_t generation = generation_;
    auto released = [&] { return generation_ != generation || aborted_; };
    if (timeout_micros == 0) {
      cv_.wait(lock, released);
    } else if (!cv_.wait_for(lock, std::chrono::microseconds(timeout_micros), released)) {
      aborted_ = true;
      cv_.notify_all();
      return Status::DeadlineExceeded("centralized barrier timed out: a peer never arrived");
    }
    if (generation_ != generation) {
      return Status::Ok();
    }
    return AbortedStatus();
  }

  void Abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const uint32_t parties_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace

// Shared flag/buffer state for one pass (forward or backward). Staging
// buffers live in the engine's ConnectionTable; this holds the coordination
// state only.
struct PassState {
  // ready_stage[d]: d has finished consuming all receives of stages < value.
  std::unique_ptr<std::atomic<uint32_t>[]> ready_stage;
  // op_chunks_done[op]: chunks of the op staged and published so far — the
  // §6.1 per-op done flag generalized to a monotone counter. The sender
  // writes a chunk's rows into the connection-owned staging buffer, then
  // release-stores the bumped count; the receiver acquire-loads before
  // reading those rows. With overlap.num_chunks == 1 this degenerates to the
  // original single done flag.
  std::unique_ptr<std::atomic<uint32_t>[]> op_chunks_done;
  // Raised by the first failing device; every other device bails out of its
  // waits with the aborted sentinel instead of running to its own deadline.
  std::atomic<bool> abort{false};
  // Centralized coordination only: the master's stage gate.
  std::unique_ptr<TimedBarrier> stage_barrier;
  // One per device, written by that device's thread, read after join.
  std::vector<Status> device_status;
  // Suspicion evidence for the recovery protocol, read after join:
  // named[d] = peers device d's waits timed out on (owner-thread-written);
  // self_dead = devices that self-reported death this pass.
  std::vector<DeviceMask> named;
  std::atomic<DeviceMask> self_dead{0};
  // Engine-lifetime index of this pass (for FaultInjection::dead_from_pass).
  uint64_t pass_index = 0;

  PassState(uint32_t num_devices, const CompiledPlan& plan, const EngineOptions& options) {
    ready_stage = std::make_unique<std::atomic<uint32_t>[]>(num_devices);
    for (uint32_t d = 0; d < num_devices; ++d) {
      ready_stage[d].store(0, std::memory_order_relaxed);
    }
    op_chunks_done = std::make_unique<std::atomic<uint32_t>[]>(plan.ops.size());
    for (uint32_t i = 0; i < plan.ops.size(); ++i) {
      op_chunks_done[i].store(0, std::memory_order_relaxed);
    }
    if (options.coordination == CoordinationMode::kCentralized) {
      stage_barrier = std::make_unique<TimedBarrier>(num_devices);
    }
    device_status.resize(num_devices);
    named.assign(num_devices, 0);
  }

  bool DeviceIsDead(uint32_t device, const EngineOptions& options) const {
    return device == options.faults.dead_device && pass_index >= options.faults.dead_from_pass;
  }

  void Fail() {
    abort.store(true, std::memory_order_release);
    if (stage_barrier != nullptr) {
      stage_barrier->Abort();
    }
  }
};

std::pair<uint32_t, uint32_t> ChunkRows(size_t rows, uint32_t num_chunks, uint32_t chunk) {
  const uint64_t n = rows;
  return {static_cast<uint32_t>(n * chunk / num_chunks),
          static_cast<uint32_t>(n * (chunk + 1) / num_chunks)};
}

Status OverlapOptions::Validate() const {
  if (num_chunks == 0) {
    return Status::InvalidArgument("overlap.num_chunks must be at least 1");
  }
  if (num_chunks > 4096) {
    return Status::InvalidArgument("overlap.num_chunks above 4096 is surely a typo");
  }
  return Status::Ok();
}

Status EngineOptions::Validate() const {
  DGCL_RETURN_IF_ERROR(transport.Validate());
  DGCL_RETURN_IF_ERROR(faults.Validate());
  DGCL_RETURN_IF_ERROR(overlap.Validate());
  if (straggler_device != kInvalidId && straggler_micros > 10'000'000) {
    return Status::InvalidArgument("straggler delay above 10 s per stage is surely a typo");
  }
  return Status::Ok();
}

Result<AllgatherEngine> AllgatherEngine::Create(const CommRelation& relation, CompiledPlan plan,
                                                const Topology& topo, EngineOptions options) {
  DGCL_RETURN_IF_ERROR(options.Validate());
  DGCL_RETURN_IF_ERROR(ValidateCompiledPlan(plan, relation, topo));
  AllgatherEngine engine;
  engine.relation_ = &relation;
  engine.topo_ = &topo;
  engine.plan_ = std::move(plan);
  engine.options_ = std::move(options);
  DGCL_ASSIGN_OR_RETURN(
      engine.connections_,
      ConnectionTable::Build(topo, engine.plan_, engine.options_.transport,
                             engine.options_.faults, engine.options_.transport_overrides));

  // Slot layout per device: locals, then required remotes, then any vertices
  // held only for forwarding.
  engine.slots_.resize(relation.num_devices);
  engine.slot_counts_.resize(relation.num_devices);
  for (uint32_t d = 0; d < relation.num_devices; ++d) {
    auto& map = engine.slots_[d];
    uint32_t next = 0;
    for (VertexId v : relation.local_vertices[d]) {
      map.emplace(v, next++);
    }
    for (VertexId v : relation.remote_vertices[d]) {
      map.emplace(v, next++);
    }
    engine.slot_counts_[d] = next;
  }
  for (const TransferOp& op : engine.plan_.ops) {
    auto& map = engine.slots_[op.dst];
    for (VertexId v : op.vertices) {
      if (!map.contains(v)) {
        map.emplace(v, engine.slot_counts_[op.dst]++);
      }
    }
  }
  return engine;
}

uint32_t AllgatherEngine::SlotOf(uint32_t device, VertexId v) const {
  auto it = slots_[device].find(v);
  return it == slots_[device].end() ? kInvalidId : it->second;
}

uint32_t AllgatherEngine::NumContractSlots(uint32_t device) const {
  return static_cast<uint32_t>(relation_->local_vertices[device].size() +
                               relation_->remote_vertices[device].size());
}

Status AllgatherEngine::RunDevice(uint32_t device, uint32_t dim, bool backward,
                                  std::vector<EmbeddingMatrix>& buffers, PassState& state,
                                  const ChunkConsumer* on_chunk) const {
  const uint32_t num_stages = plan_.num_stages;
  const uint32_t num_chunks = options_.overlap.num_chunks;
  EmbeddingMatrix& mine = buffers[device];
  const uint64_t timeout_micros = options_.transport.wait_timeout_micros;

  if (state.DeviceIsDead(device, options_)) {
    // The killed peer: never publishes readiness, never sends, never
    // consumes. Its peers' deadline-bounded waits turn this into a timeout
    // Status for the whole collective.
    state.self_dead.fetch_or(DeviceMask{1} << device, std::memory_order_release);
    return Status::Unavailable("device " + std::to_string(device) + " is dead (injected fault)");
  }

  // Deadline-bounded flag spins. The deadline is re-armed per wait; the
  // abort flag short-circuits every spin once any device has failed.
  auto spin_until = [&state, device, timeout_micros](auto&& ready, const char* what, uint32_t peer,
                                                     uint32_t stage) -> Status {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_micros == 0 ? 0 : timeout_micros);
    uint64_t spins = 0;
    while (!ready()) {
      if (state.abort.load(std::memory_order_relaxed)) {
        return AbortedStatus();
      }
      if (timeout_micros != 0 && (++spins & 0x3ff) == 0 &&
          std::chrono::steady_clock::now() >= deadline) {
        state.named[device] |= DeviceMask{1} << peer;
        return Status::DeadlineExceeded(std::string(what) + " wait timed out on peer " +
                                        std::to_string(peer) + " at stage " +
                                        std::to_string(stage));
      }
      std::this_thread::yield();
    }
    return Status::Ok();
  };

  // Ops this device sends/receives, grouped by stage. In the backward pass
  // the roles reverse: gradients for an op flow dst -> src, and receives are
  // consumed in ascending sub-stage order (§6.2 non-atomic aggregation).
  std::vector<std::vector<uint32_t>> sends(num_stages);
  std::vector<std::vector<uint32_t>> recvs(num_stages);
  for (uint32_t i = 0; i < plan_.ops.size(); ++i) {
    const TransferOp& op = plan_.ops[i];
    const uint32_t sender = backward ? op.dst : op.src;
    const uint32_t receiver = backward ? op.src : op.dst;
    if (sender == device) {
      sends[op.stage].push_back(i);
    }
    if (receiver == device) {
      recvs[op.stage].push_back(i);
    }
  }
  if (backward) {
    for (auto& ids : recvs) {
      std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
        return plan_.ops[a].substage < plan_.ops[b].substage;
      });
    }
  }

  for (uint32_t step = 0; step < num_stages; ++step) {
    if (device == options_.straggler_device && options_.straggler_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(options_.straggler_micros));
    }
    if (state.stage_barrier != nullptr) {
      // Centralized §6.1 alternative: report to the master and block until
      // every device is released into this stage.
      Status status;
      {
        DGCL_TSPAN2("runtime", "wait.barrier", "peer", device, "stage", step);
        status = state.stage_barrier->ArriveAndWait(timeout_micros);
      }
      if (!status.ok()) {
        state.Fail();
        return status;
      }
    }
    const uint32_t stage = backward ? num_stages - 1 - step : step;
    uint64_t stage_bytes = 0;
    if (telemetry::Telemetry::Enabled()) {
      for (uint32_t op_id : sends[stage]) {
        stage_bytes += plan_.ops[op_id].vertices.size() * static_cast<size_t>(dim) * sizeof(float);
      }
    }
    // Spans the whole stage on this device, waits included — the max over
    // devices is the stage's wall time (what CostAudit joins against the
    // cost model's per-stage prediction).
    DGCL_TSPAN2("runtime", backward ? "bwd.stage" : "fwd.stage", "stage", stage, "bytes",
                stage_bytes);
    for (uint32_t op_id : sends[stage]) {
      const TransferOp& op = plan_.ops[op_id];
      const uint32_t receiver = backward ? op.src : op.dst;
      Connection& conn = connections_.ForOp(op_id);
      if (!backward && options_.coordination == CoordinationMode::kDecentralized) {
        // Double buffering (overlap.double_buffer) relaxes the §6.1 gate by
        // one stage: the sender may stage into the "other" recv-table buffer
        // while the receiver still consumes the previous stage. Per-op
        // staging buffers make the relaxed gate memory-safe.
        const uint32_t lead = options_.overlap.double_buffer ? 1 : 0;
        Status status;
        {
          DGCL_TSPAN3(conn.name(), "fwd.wait.ready", "peer", receiver, "stage", stage, "op",
                      op_id);
          status = spin_until(
              [&state, receiver, stage, lead] {
                return state.ready_stage[receiver].load(std::memory_order_acquire) + lead >= stage;
              },
              "ready-flag", receiver, stage);
        }
        if (!status.ok()) {
          state.Fail();
          return status;
        }
      }
      // One transmit + pack + flag publish per chunk; a receiver may consume
      // chunk c while chunk c+1 is still on the wire. num_chunks == 1 is
      // byte-for-byte the original whole-op path.
      std::vector<float>& staging = connections_.OpStaging(op_id);
      for (uint32_t c = 0; c < num_chunks; ++c) {
        const auto [row_begin, row_end] = ChunkRows(op.vertices.size(), num_chunks, c);
        if (row_end > row_begin) {
          const uint64_t bytes =
              static_cast<uint64_t>(row_end - row_begin) * static_cast<size_t>(dim) * sizeof(float);
          if (Status status = conn.Transmit(bytes); !status.ok()) {
            state.Fail();
            return status;
          }
          DGCL_TSPAN2(LinkCategory(*topo_, op.link), backward ? "bwd.send" : "fwd.send", "stage",
                      stage, "bytes", bytes);
          for (size_t i = row_begin; i < row_end; ++i) {
            const uint32_t slot = SlotOf(device, op.vertices[i]);
            DGCL_CHECK_NE(slot, kInvalidId);
            PackRow(staging.data() + i * dim, mine.Row(slot), dim);
          }
        }
        state.op_chunks_done[op_id].store(c + 1, std::memory_order_release);
      }
    }

    // Receives of this stage, split into per-chunk units and grouped so that
    // eager (arrival-order) consumption stays bitwise-identical to barrier
    // execution: forward chunks write disjoint slot rows (each vertex is
    // delivered to a device by exactly one op per pass), so the whole stage
    // is one group; backward accumulation is order-sensitive across ops that
    // carry the same vertex, so eagerness is confined to one §6.2 sub-stage
    // group at a time (conflict-free by AssignBackwardSubstages construction)
    // and groups drain in ascending sub-stage order.
    struct RecvUnit {
      uint32_t op_id;
      uint32_t chunk;
      uint32_t row_begin;
      uint32_t row_end;
    };
    std::vector<std::vector<RecvUnit>> groups;
    uint32_t group_substage = 0;
    for (uint32_t op_id : recvs[stage]) {
      const TransferOp& op = plan_.ops[op_id];
      if (groups.empty() || (backward && op.substage != group_substage)) {
        groups.emplace_back();
        group_substage = op.substage;
      }
      for (uint32_t c = 0; c < num_chunks; ++c) {
        const auto [row_begin, row_end] = ChunkRows(op.vertices.size(), num_chunks, c);
        groups.back().push_back(RecvUnit{op_id, c, row_begin, row_end});
      }
    }

    auto consume_unit = [&](const RecvUnit& u) {
      const TransferOp& op = plan_.ops[u.op_id];
      const std::vector<float>& staging = connections_.OpStaging(u.op_id);
      for (size_t i = u.row_begin; i < u.row_end; ++i) {
        const uint32_t slot = SlotOf(device, op.vertices[i]);
        DGCL_CHECK_NE(slot, kInvalidId);
        if (backward) {
          // Gradient accumulation at the forwarding/owning device.
          float* row = mine.Row(slot);
          const float* incoming = staging.data() + i * dim;
          for (uint32_t c = 0; c < dim; ++c) {
            row[c] += incoming[c];
          }
        } else {
          PackRow(mine.Row(slot), staging.data() + i * dim, dim);
        }
      }
      if (!backward && on_chunk != nullptr) {
        DGCL_TSPAN2("runtime", "overlap.consume", "stage", stage, "chunk", u.chunk);
        ChunkArrival arrival;
        arrival.device = device;
        arrival.stage = stage;
        arrival.op = u.op_id;
        arrival.chunk = u.chunk;
        arrival.row_begin = u.row_begin;
        arrival.row_end = u.row_end;
        arrival.dim = dim;
        arrival.output = &mine;
        (*on_chunk)(arrival);
      }
    };

    const bool eager =
        num_chunks > 1 && options_.overlap.consume_policy == ConsumePolicy::kEager;
    for (const std::vector<RecvUnit>& group : groups) {
      if (!eager) {
        // Deterministic-schedule drain: (op, chunk) order, one flag wait per
        // unit. num_chunks == 1 keeps the seed wait-span taxonomy
        // (fwd.wait.done / bwd.wait.done, tagged {peer, stage, op}).
        for (const RecvUnit& u : group) {
          const TransferOp& op = plan_.ops[u.op_id];
          const uint32_t sender = backward ? op.dst : op.src;
          const Connection& conn = connections_.ForOp(u.op_id);
          Status status;
          {
            DGCL_TSPAN3(conn.name(),
                        num_chunks == 1 ? (backward ? "bwd.wait.done" : "fwd.wait.done")
                                        : (backward ? "bwd.wait.chunk" : "fwd.wait.chunk"),
                        "peer", sender, "stage", stage, num_chunks == 1 ? "op" : "chunk",
                        num_chunks == 1 ? u.op_id : u.chunk);
            status = spin_until(
                [&state, &u] {
                  return state.op_chunks_done[u.op_id].load(std::memory_order_acquire) > u.chunk;
                },
                "chunk-flag", sender, stage);
          }
          if (!status.ok()) {
            state.Fail();
            return status;
          }
          consume_unit(u);
        }
        continue;
      }
      // Eager drain: consume every published unit each scan; when none is
      // published, block with a deadline until one rises, the pass is
      // poisoned, or the deadline fires. Progress re-arms the deadline (a
      // slow-but-alive sender never times the receiver out), and a timeout
      // names *every* pending sender — with chunk waits outstanding on
      // several peers at once, the poison and the recovery protocol's
      // suspect math must cover all of them, not just the first.
      std::vector<uint8_t> consumed(group.size(), 0);
      size_t remaining = group.size();
      while (remaining > 0) {
        bool progress = false;
        for (size_t i = 0; i < group.size(); ++i) {
          if (consumed[i]) {
            continue;
          }
          const RecvUnit& u = group[i];
          if (state.op_chunks_done[u.op_id].load(std::memory_order_acquire) > u.chunk) {
            consume_unit(u);
            consumed[i] = 1;
            --remaining;
            progress = true;
          }
        }
        if (remaining == 0 || progress) {
          continue;
        }
        size_t first_pending = 0;
        while (consumed[first_pending]) {
          ++first_pending;
        }
        const RecvUnit& fu = group[first_pending];
        const TransferOp& first_op = plan_.ops[fu.op_id];
        const uint32_t first_sender = backward ? first_op.dst : first_op.src;
        Status status;
        {
          DGCL_TSPAN3(connections_.ForOp(fu.op_id).name(),
                      backward ? "bwd.wait.chunk" : "fwd.wait.chunk", "peer", first_sender,
                      "stage", stage, "chunk", fu.chunk);
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::microseconds(timeout_micros == 0 ? 0 : timeout_micros);
          uint64_t spins = 0;
          for (;;) {
            bool any = false;
            for (size_t i = 0; i < group.size() && !any; ++i) {
              any = !consumed[i] &&
                    state.op_chunks_done[group[i].op_id].load(std::memory_order_acquire) >
                        group[i].chunk;
            }
            if (any) {
              status = Status::Ok();
              break;
            }
            if (state.abort.load(std::memory_order_relaxed)) {
              status = AbortedStatus();
              break;
            }
            if (timeout_micros != 0 && (++spins & 0x3ff) == 0 &&
                std::chrono::steady_clock::now() >= deadline) {
              for (size_t i = 0; i < group.size(); ++i) {
                if (!consumed[i]) {
                  const TransferOp& op = plan_.ops[group[i].op_id];
                  state.named[device] |= DeviceMask{1} << (backward ? op.dst : op.src);
                }
              }
              status = Status::DeadlineExceeded(
                  "chunk-flag wait timed out on peer " + std::to_string(first_sender) +
                  " at stage " + std::to_string(stage) + " with " + std::to_string(remaining) +
                  " chunks outstanding");
              break;
            }
            std::this_thread::yield();
          }
        }
        if (!status.ok()) {
          state.Fail();
          return status;
        }
      }
    }
    state.ready_stage[device].store(step + 1, std::memory_order_release);
  }
  return Status::Ok();
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::RunPass(
    std::vector<EmbeddingMatrix> buffers, uint32_t dim, bool backward,
    const ChunkConsumer* on_chunk) const {
  // Connection staging buffers are shared engine state; passes serialize.
  std::lock_guard<std::mutex> pass_lock(*pass_mutex_);
  connections_.PrepareBuffers(dim);
  PassState state(relation_->num_devices, plan_, options_);
  state.pass_index = pass_count_++;
  DGCL_TSPAN2("runtime", backward ? "bwd.pass" : "fwd.pass", "devices", relation_->num_devices,
              "dim", dim);
  std::vector<std::thread> threads;
  threads.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    threads.emplace_back([this, d, dim, backward, &buffers, &state, on_chunk]() {
      state.device_status[d] = RunDevice(d, dim, backward, buffers, state, on_chunk);
      // A failed device aborts everyone else's waits — except the injected
      // dead peer, which must vanish *silently* so that its peers' deadlines
      // (not an abort broadcast) are what fail the collective.
      if (!state.device_status[d].ok() && !state.DeviceIsDead(d, options_)) {
        state.Fail();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Pass verdict: prefer a timeout (the injected-death signature), then any
  // root-cause error, and only report the aborted sentinel when it is all
  // there is.
  Status verdict;
  for (const Status& s : state.device_status) {
    if (s.ok()) {
      continue;
    }
    if (s.code() == StatusCode::kDeadlineExceeded) {
      verdict = s;
      break;
    }
    if (verdict.ok() || (IsAborted(verdict) && !IsAborted(s))) {
      verdict = s;
    }
  }
  if (!verdict.ok()) {
    // Suspect derivation for the recovery protocol: self-reported deaths are
    // certain; a device *named* by a timed-out wait is suspected only if it
    // never produced a status of its own this pass (a named device that ran —
    // even into its own timeout — was just blocked downstream of the real
    // failure and stays innocent).
    DeviceMask named = 0;
    DeviceMask responders = 0;
    const DeviceMask self_dead = state.self_dead.load(std::memory_order_acquire);
    for (uint32_t d = 0; d < relation_->num_devices; ++d) {
      named |= state.named[d];
      const Status& s = state.device_status[d];
      if (s.ok() || s.code() == StatusCode::kDeadlineExceeded || IsAborted(s)) {
        responders |= DeviceMask{1} << d;
      }
    }
    last_failure_ = PassFailure{verdict, self_dead | (named & ~responders), state.pass_index};
    return verdict;
  }
  last_failure_.reset();
  return buffers;
}

std::optional<PassFailure> AllgatherEngine::last_failure() const {
  std::lock_guard<std::mutex> pass_lock(*pass_mutex_);
  return last_failure_;
}

uint64_t AllgatherEngine::pass_count() const {
  std::lock_guard<std::mutex> pass_lock(*pass_mutex_);
  return pass_count_;
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::Forward(
    const std::vector<EmbeddingMatrix>& local) const {
  return ForwardImpl(local, nullptr);
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::Forward(
    const std::vector<EmbeddingMatrix>& local, const ChunkConsumer& on_chunk) const {
  return ForwardImpl(local, on_chunk ? &on_chunk : nullptr);
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::ForwardImpl(
    const std::vector<EmbeddingMatrix>& local, const ChunkConsumer* on_chunk) const {
  if (local.size() != relation_->num_devices) {
    return Status::InvalidArgument("one local matrix per device required");
  }
  uint32_t dim = 0;
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    if (local[d].rows != relation_->local_vertices[d].size()) {
      return Status::InvalidArgument("local row count mismatch");
    }
    if (local[d].rows > 0) {
      if (dim != 0 && local[d].dim != dim) {
        return Status::InvalidArgument("inconsistent embedding dim");
      }
      dim = local[d].dim;
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("no embeddings provided");
  }

  std::vector<EmbeddingMatrix> buffers;
  buffers.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    EmbeddingMatrix m = EmbeddingMatrix::Zero(slot_counts_[d], dim);
    for (uint32_t r = 0; r < local[d].rows; ++r) {
      PackRow(m.Row(r), local[d].Row(r), dim);
    }
    buffers.push_back(std::move(m));
  }
  return RunPass(std::move(buffers), dim, /*backward=*/false, on_chunk);
}

Result<std::vector<EmbeddingMatrix>> AllgatherEngine::Backward(
    const std::vector<EmbeddingMatrix>& slot_grads) const {
  if (slot_grads.size() != relation_->num_devices) {
    return Status::InvalidArgument("one gradient matrix per device required");
  }
  uint32_t dim = 0;
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    if (slot_grads[d].rows > 0) {
      if (slot_grads[d].rows < NumContractSlots(d)) {
        return Status::InvalidArgument("gradient rows below local+remote slot count");
      }
      if (dim != 0 && slot_grads[d].dim != dim) {
        return Status::InvalidArgument("inconsistent gradient dim");
      }
      dim = slot_grads[d].dim;
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("no gradients provided");
  }

  std::vector<EmbeddingMatrix> buffers;
  buffers.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    EmbeddingMatrix m = EmbeddingMatrix::Zero(slot_counts_[d], dim);
    const uint32_t provided = std::min<uint32_t>(slot_grads[d].rows, slot_counts_[d]);
    for (uint32_t r = 0; r < provided; ++r) {
      PackRow(m.Row(r), slot_grads[d].Row(r), dim);
    }
    buffers.push_back(std::move(m));
  }
  DGCL_ASSIGN_OR_RETURN(buffers,
                        RunPass(std::move(buffers), dim, /*backward=*/true, nullptr));

  std::vector<EmbeddingMatrix> out;
  out.reserve(relation_->num_devices);
  for (uint32_t d = 0; d < relation_->num_devices; ++d) {
    const uint32_t locals = static_cast<uint32_t>(relation_->local_vertices[d].size());
    EmbeddingMatrix m = EmbeddingMatrix::Zero(locals, dim);
    for (uint32_t r = 0; r < locals; ++r) {
      PackRow(m.Row(r), buffers[d].Row(r), dim);
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace dgcl
