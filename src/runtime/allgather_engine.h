// Threaded graphAllgather execution engine.
//
// Runs a compiled communication plan on real embedding data, one thread per
// simulated device, coordinated with the decentralized ready/done flag
// protocol of §6.1: a sender spins on the receiver's published stage-ready
// flag before writing into the receiver's staging buffer, then raises the
// op's done flag; the receiver consumes buffers as done flags appear and
// publishes readiness for the next stage. There is no central coordinator on
// the data path.
//
// Every transfer rides a per-pair Connection (transport.h): the engine asks
// the connection to Transmit (which emulates the wire — injected
// latency/jitter/drops with bounded exponential-backoff retry, optional
// bandwidth emulation for cost-model calibration) before copying the payload
// into the connection-owned staging buffer. Every coordination wait is
// deadline-bounded (TransportPolicy::wait_timeout_micros) and recorded as a
// telemetry span tagged {peer, stage, op} with the transport as category, so
// a dead peer fails the collective with a kDeadlineExceeded Status instead
// of spinning forever, and coordination stalls are visible per wait in a
// recorded trace (`tools/dgcl_trace summarize --waits`).
//
// The forward pass delivers, for every device, the embeddings of its local
// plus required remote vertices; the backward pass routes gradient
// contributions along the same trees in reverse, accumulating at each hop, so
// each owner ends up with the total gradient for its local vertices.

#ifndef DGCL_RUNTIME_ALLGATHER_ENGINE_H_
#define DGCL_RUNTIME_ALLGATHER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/compiled_plan.h"
#include "comm/relation.h"
#include "common/status.h"
#include "runtime/transport.h"
#include "topology/topology.h"

namespace dgcl {

// Row-major float matrix view used at the engine boundary.
struct EmbeddingMatrix {
  uint32_t rows = 0;
  uint32_t dim = 0;
  std::vector<float> data;  // rows * dim

  float* Row(uint32_t r) { return data.data() + static_cast<size_t>(r) * dim; }
  const float* Row(uint32_t r) const { return data.data() + static_cast<size_t>(r) * dim; }

  static EmbeddingMatrix Zero(uint32_t rows, uint32_t dim) {
    EmbeddingMatrix m;
    m.rows = rows;
    m.dim = dim;
    m.data.assign(static_cast<size_t>(rows) * dim, 0.0f);
    return m;
  }
};

// How devices agree on stage boundaries (§6.1). DGCL's protocol is
// decentralized (peer-published ready/done flags); the centralized mode —
// every device reports to and waits for a master barrier between stages — is
// kept for the coordination-overhead ablation.
enum class CoordinationMode : uint8_t { kDecentralized, kCentralized };

// How an overlapped receiver orders chunk consumption within a stage.
// kEager consumes whichever published chunk it finds first (bitwise-safe:
// forward chunks write disjoint slot rows, and backward eagerness is confined
// to one §6.2 sub-stage group at a time, whose ops are conflict-free by
// construction). kInOrder drains chunks in (op, chunk) order — the
// deterministic-schedule reference the conformance suite compares against.
enum class ConsumePolicy : uint8_t { kEager, kInOrder };

// Chunked/overlapped execution (§6.1 flag protocol, extended). With
// num_chunks > 1 each op's rows are split into near-equal chunks; the sender
// publishes a per-chunk flag as soon as that chunk's rows are staged, so the
// receiver (and the trainer, via Forward's ChunkConsumer overload) starts
// consuming while later chunks are still on the wire. Like every other
// EngineOptions knob, this never changes what a pass delivers — outputs stay
// bit-identical to barrier (num_chunks == 1) execution.
struct OverlapOptions {
  // Chunks per op. 1 keeps the seed barrier behavior (one flag per op).
  uint32_t num_chunks = 1;
  // Models the double-buffered recv table: the sender's stage-readiness gate
  // is relaxed by one stage (it may stage into the "other" buffer while the
  // receiver still consumes the previous stage). Per-op staging buffers make
  // this memory-safe; the gate only throttles.
  bool double_buffer = false;
  ConsumePolicy consume_policy = ConsumePolicy::kEager;

  Status Validate() const;
};

// Notification that one received chunk's rows are final in the receiving
// device's output matrix. Fired on the receiving device's pass thread, so
// consumers overlap with that device's still-in-flight transfers; a consumer
// must only touch state owned by `device` (callbacks for different devices
// run concurrently).
struct ChunkArrival {
  uint32_t device = 0;  // receiving device
  uint32_t stage = 0;
  uint32_t op = 0;    // index into plan().ops
  uint32_t chunk = 0;
  uint32_t row_begin = 0;  // row range within plan().ops[op].vertices
  uint32_t row_end = 0;
  uint32_t dim = 0;
  // The receiving device's slot matrix; rows SlotOf(device, vertices[i]) for
  // i in [row_begin, row_end) are final. Valid only during the callback.
  const EmbeddingMatrix* output = nullptr;
};
using ChunkConsumer = std::function<void(const ChunkArrival&)>;

// Row range [first, second) of chunk `chunk` when `rows` rows are split into
// `num_chunks` near-equal chunks (the engine's chunking rule — shared with
// NetworkSim so simulated chunk arrivals line up with real ones).
std::pair<uint32_t, uint32_t> ChunkRows(size_t rows, uint32_t num_chunks, uint32_t chunk);

// Engine construction options, fixed at Create (the same options-first shape
// as SpstOptions / MultilevelOptions). None of these change what a pass
// delivers — outputs stay bit-identical to the default for every setting;
// they change how the pass is coordinated, faulted and timed.
struct EngineOptions {
  CoordinationMode coordination = CoordinationMode::kDecentralized;

  // Straggler injection for tests: `straggler_device` sleeps
  // `straggler_micros` before every stage (§6.1's transient stragglers only
  // delay their own dependents, never correctness). kInvalidId disables.
  uint32_t straggler_device = kInvalidId;
  uint32_t straggler_micros = 0;

  // Per-connection retry/timeout/emulation policy and injected faults.
  TransportPolicy transport;
  FaultInjection faults;

  // Forced transports per ordered pair (ablations); selection falls back to
  // the SelectTransport decision table for unlisted pairs.
  std::vector<TransportOverride> transport_overrides;

  // Chunked/overlapped execution mode.
  OverlapOptions overlap;

  Status Validate() const;
};

// Post-mortem of a failed pass: the verdict Status plus the device set the
// survivors suspect of being dead. A device is suspected when it either
// self-reported death or was named by a timed-out wait and never demonstrably
// ran the pass itself — a named peer that produced its own (even failing)
// status was merely blocked on someone else and stays innocent. This is the
// input to MembershipService::CommitFailure (recovery.h).
struct PassFailure {
  Status status;
  DeviceMask suspects = 0;
  uint64_t pass_index = 0;  // which Forward/Backward call failed, counting from 0
};

class AllgatherEngine {
 public:
  // Validates the plan against the relation (delivery and causality),
  // precomputes per-device slot tables and builds the per-pair connection
  // table. The relation, plan and topology must outlive the engine.
  static Result<AllgatherEngine> Create(const CommRelation& relation, CompiledPlan plan,
                                        const Topology& topo, EngineOptions options = {});

  // `local[d]` holds device d's local embeddings, one row per vertex in
  // relation.local_vertices[d] order, all with the same dim. Returns per
  // device a matrix over its slots: local rows first, then remote rows in
  // relation.remote_vertices[d] order (forwarded-only extras are appended
  // after and are not part of the contract). Fails with kDeadlineExceeded /
  // kUnavailable when a peer dies or a transport exhausts its retries.
  Result<std::vector<EmbeddingMatrix>> Forward(const std::vector<EmbeddingMatrix>& local) const;

  // Overlapped forward: `on_chunk` fires on the receiving device's pass
  // thread as each received chunk's rows become final, so the caller consumes
  // arrivals while later chunks are still in flight. The returned matrices
  // are identical to the plain overload's; with overlap.num_chunks == 1 the
  // callback fires once per op.
  Result<std::vector<EmbeddingMatrix>> Forward(const std::vector<EmbeddingMatrix>& local,
                                               const ChunkConsumer& on_chunk) const;

  // `slot_grads[d]` has the same shape as Forward's output for device d
  // (extras rows zero-extended internally if absent). Returns per device the
  // accumulated gradients for its local vertices only.
  Result<std::vector<EmbeddingMatrix>> Backward(
      const std::vector<EmbeddingMatrix>& slot_grads) const;

  const EngineOptions& options() const { return options_; }
  CoordinationMode coordination_mode() const { return options_.coordination; }

  // Post-mortem of the most recent failed pass (nullopt while every pass has
  // succeeded). Cleared by the next successful pass. This is what the
  // recovery protocol reads to seed the membership commit.
  std::optional<PassFailure> last_failure() const;

  // Passes run so far (Forward + Backward, successful or not).
  uint64_t pass_count() const;

  // Per-pair connections (transport kind, fault/retry counters, staging
  // ownership). Read-only for callers; counters accumulate across passes.
  const ConnectionTable& connections() const { return connections_; }

  // Slot index of a global vertex on a device; kInvalidId if the device
  // never holds it. Locals occupy [0, num_local), remotes follow.
  uint32_t SlotOf(uint32_t device, VertexId v) const;
  uint32_t NumSlots(uint32_t device) const { return slot_counts_[device]; }
  uint32_t NumContractSlots(uint32_t device) const;  // locals + remotes

  const CompiledPlan& plan() const { return plan_; }

 private:
  AllgatherEngine() = default;

  Result<std::vector<EmbeddingMatrix>> ForwardImpl(const std::vector<EmbeddingMatrix>& local,
                                                   const ChunkConsumer* on_chunk) const;
  Result<std::vector<EmbeddingMatrix>> RunPass(std::vector<EmbeddingMatrix> buffers, uint32_t dim,
                                               bool backward, const ChunkConsumer* on_chunk) const;
  Status RunDevice(uint32_t device, uint32_t dim, bool backward,
                   std::vector<EmbeddingMatrix>& buffers, struct PassState& state,
                   const ChunkConsumer* on_chunk) const;

  const CommRelation* relation_ = nullptr;
  const Topology* topo_ = nullptr;
  EngineOptions options_;
  CompiledPlan plan_;
  // Mutable: connections own per-op staging buffers that are resized at pass
  // start, so passes on one engine are serialized by pass_mutex_ (concurrent
  // Forward/Backward calls are safe, they just queue). Heap-held so the
  // engine stays movable.
  mutable ConnectionTable connections_;
  std::unique_ptr<std::mutex> pass_mutex_ = std::make_unique<std::mutex>();
  // Both guarded by pass_mutex_ (written at pass end, read via accessors).
  mutable uint64_t pass_count_ = 0;
  mutable std::optional<PassFailure> last_failure_;
  std::vector<std::unordered_map<VertexId, uint32_t>> slots_;  // per device
  std::vector<uint32_t> slot_counts_;
};

}  // namespace dgcl

#endif  // DGCL_RUNTIME_ALLGATHER_ENGINE_H_
