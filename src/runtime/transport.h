// Automatic communication method selection (§6.2).
//
// On real hardware DGCL picks a transport per device pair: CUDA virtual
// memory for GPUs under one CPU socket, pinned host memory across sockets,
// and a NIC helper thread (with GPU RDMA when available) across machines. In
// this reproduction all transports resolve to shared memory, but the
// *selection logic* is preserved and exercised so the decision table matches
// the paper.

#ifndef DGCL_RUNTIME_TRANSPORT_H_
#define DGCL_RUNTIME_TRANSPORT_H_

#include "topology/topology.h"

namespace dgcl {

enum class Transport : uint8_t {
  kCudaVirtualMemory,  // same socket: direct peer access
  kPinnedHostMemory,   // same machine, different socket: DMA via host buffer
  kNic,                // different machine: helper thread + NIC (RDMA if IB)
};

const char* TransportName(Transport transport);

Transport SelectTransport(const Topology& topo, DeviceId src, DeviceId dst);

}  // namespace dgcl

#endif  // DGCL_RUNTIME_TRANSPORT_H_
