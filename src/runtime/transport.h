// Pluggable per-pair transports (§6.2).
//
// On real hardware DGCL picks a transport per device pair: CUDA virtual
// memory for GPUs under one CPU socket, pinned host memory across sockets,
// and a NIC helper thread (with GPU RDMA when available) across machines. In
// this reproduction all transports resolve to shared memory, but the
// *selection logic* is preserved and the transport is a first-class object,
// not a bare enum: every device pair that appears in a compiled plan gets a
// `Connection` created from the `SelectTransport` decision table (optionally
// overridden per pair for ablations). A connection owns the staging buffers
// of the transfer ops routed over it and carries per-connection state —
// injectable latency/jitter/drop for the emulated NIC path, bounded retry
// with exponential backoff, and wall-clock bandwidth emulation used to
// calibrate the runtime against the planner's cost model (see
// EpochSimulator::AuditAllgatherFromEngine).

#ifndef DGCL_RUNTIME_TRANSPORT_H_
#define DGCL_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/compiled_plan.h"
#include "common/status.h"
#include "topology/topology.h"

namespace dgcl {

enum class Transport : uint8_t {
  kCudaVirtualMemory,  // same socket: direct peer access
  kPinnedHostMemory,   // same machine, different socket: DMA via host buffer
  kNic,                // different machine: helper thread + NIC (RDMA if IB)
};

// Interned, static-lifetime name ("cuda-vm" / "pinned-host" / "nic") — safe
// to hand to the telemetry recorder as a span category.
const char* TransportName(Transport transport);

Transport SelectTransport(const Topology& topo, DeviceId src, DeviceId dst);

// Forces the transport for one ordered device pair (ablations: e.g. route
// same-socket traffic through the pinned-host path to price NVLink loss).
// Only *downgrades* are physical: a cross-machine pair must stay kNic.
struct TransportOverride {
  DeviceId src = 0;
  DeviceId dst = 0;
  Transport transport = Transport::kNic;
};

// SelectTransport plus overrides; the last matching override wins.
Transport ResolveTransport(const Topology& topo, DeviceId src, DeviceId dst,
                           std::span<const TransportOverride> overrides);

// Checks every override against the topology: ids in range, src != dst, and
// cross-machine pairs not forced onto a shared-memory transport.
Status ValidateTransportOverrides(const Topology& topo,
                                  std::span<const TransportOverride> overrides);

// Emulated-wire faults, applied on Connection::Transmit. By default only the
// NIC path is faulty (the paper's cross-machine transport is the one with a
// real wire under it); `all_transports` widens the blast radius for tests on
// single-machine topologies. All draws are counter-hashed from `seed`, so a
// fault sequence is deterministic per connection regardless of thread
// scheduling.
struct FaultInjection {
  uint32_t latency_micros = 0;  // fixed extra latency per transmit attempt
  uint32_t jitter_micros = 0;   // + uniform [0, jitter] per attempt
  double drop_rate = 0.0;       // P(attempt dropped and retried), in [0, 1]
  uint64_t seed = 0x5eed;
  bool all_transports = false;  // false: faults hit kNic connections only
  // Device that never participates in a pass (a killed peer). Waits on it
  // time out and the collective fails with a Status instead of hanging.
  uint32_t dead_device = kInvalidId;
  // First engine pass (counting Forward and Backward calls from 0) at which
  // `dead_device` dies; earlier passes run healthy. Models a mid-epoch kill:
  // with a 2-layer model, dead_from_pass = 2 kills the device entering layer
  // 1's forward allgather.
  uint32_t dead_from_pass = 0;

  Status Validate() const;
};

// Retry/timeout/emulation policy shared by every connection of an engine.
struct TransportPolicy {
  // Bounded retry with exponential backoff for dropped transmits: attempt k
  // backs off base * 2^k micros, capped at `backoff_max_micros`. A transmit
  // that exhausts `max_retries` returns kUnavailable.
  uint32_t max_retries = 8;
  uint32_t backoff_base_micros = 50;
  uint32_t backoff_max_micros = 5000;
  // Deadline for every coordination wait (ready-flag spin, done-flag
  // consume, centralized barrier). 0 waits forever (the seed behaviour); the
  // default is a safety net that turns a dead peer into a
  // kDeadlineExceeded Status instead of an infinite spin.
  uint64_t wait_timeout_micros = 30'000'000;
  // Wall-clock calibration: each transmit additionally waits
  // bytes / bottleneck_bandwidth * time_scale, so recorded stage spans become
  // comparable (after dividing by time_scale) to the cost model's per-stage
  // predictions.
  bool emulate_bandwidth = false;
  double bandwidth_time_scale = 1.0;

  Status Validate() const;
};

// One device pair's channel. Created by ConnectionTable from the transport
// decision table; owns the staging buffers of the ops routed over it (one
// buffer per op, sized at pass start) and the per-connection fault/retry
// state. Transmit may be called by one thread at a time per connection (the
// pair's sender for the current pass); stats are atomics and readable from
// any thread.
class Connection {
 public:
  struct Stats {
    uint64_t transmits = 0;       // successful Transmit calls
    uint64_t attempts = 0;        // wire attempts (>= transmits when drops hit)
    uint64_t retries = 0;         // attempts - first tries
    uint64_t drops_injected = 0;  // attempts eaten by fault injection
    uint64_t emulated_wait_ns = 0;  // injected latency + bandwidth emulation
  };

  Connection(DeviceId src, DeviceId dst, Transport transport, LinkId link,
             double bottleneck_gbps, const TransportPolicy& policy, const FaultInjection& faults);

  // Emulates putting `bytes` on the wire: injected latency/jitter, bandwidth
  // emulation, and drop draws with bounded exponential backoff. Returns
  // kUnavailable once retries are exhausted. The actual payload copy is the
  // caller's (it needs the engine's slot tables); a transmit that fails must
  // not be followed by the copy.
  Status Transmit(uint64_t bytes);

  DeviceId src() const { return src_; }
  DeviceId dst() const { return dst_; }
  Transport transport() const { return transport_; }
  // Interned transport name; usable as a telemetry category.
  const char* name() const { return TransportName(transport_); }
  LinkId link() const { return link_; }
  double bottleneck_gbps() const { return bottleneck_gbps_; }
  bool faulty() const { return faults_apply_; }

  Stats stats() const;

  // Op ids (forward direction src -> dst) staged through this connection and
  // their staging buffers, parallel vectors. Buffers are (re)sized by
  // ConnectionTable::PrepareBuffers.
  const std::vector<uint32_t>& op_ids() const { return op_ids_; }

 private:
  friend class ConnectionTable;

  DeviceId src_;
  DeviceId dst_;
  Transport transport_;
  LinkId link_;
  double bottleneck_gbps_;
  TransportPolicy policy_;
  FaultInjection faults_;
  bool faults_apply_;

  std::vector<uint32_t> op_ids_;
  std::vector<size_t> op_units_;              // vertices per op (buffer rows)
  std::vector<std::vector<float>> staging_;   // one buffer per op

  std::atomic<uint64_t> transmits_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> drops_injected_{0};
  std::atomic<uint64_t> emulated_wait_ns_{0};
};

// The engine's connection registry: one Connection per ordered device pair
// that appears in the plan (forward direction; the backward pass reuses the
// same connection with the roles reversed, as both directions of a pair share
// the physical medium here).
class ConnectionTable {
 public:
  ConnectionTable() = default;

  static Result<ConnectionTable> Build(const Topology& topo, const CompiledPlan& plan,
                                       const TransportPolicy& policy,
                                       const FaultInjection& faults,
                                       std::span<const TransportOverride> overrides);

  // (Re)sizes every op staging buffer for embedding dimension `dim`. Must be
  // called before a pass, with no pass in flight.
  void PrepareBuffers(uint32_t dim);

  Connection& ForOp(uint32_t op_id) { return *connections_[op_conn_[op_id]]; }
  const Connection& ForOp(uint32_t op_id) const { return *connections_[op_conn_[op_id]]; }

  // The op's staging buffer (written by the pass's sender, read by its
  // receiver after the done flag is raised).
  std::vector<float>& OpStaging(uint32_t op_id) {
    Connection& c = ForOp(op_id);
    return c.staging_[op_slot_[op_id]];
  }

  size_t size() const { return connections_.size(); }
  const Connection& connection(size_t i) const { return *connections_[i]; }

  // nullptr when the ordered pair carries no traffic in the plan.
  const Connection* Find(DeviceId src, DeviceId dst) const;
  // Non-const lookup for callers that Transmit outside an engine pass (the
  // serving tier's remote-feature fetches). Same single-sender-per-connection
  // contract as engine use; such callers serialize externally.
  Connection* FindMutable(DeviceId src, DeviceId dst);

 private:
  std::vector<std::unique_ptr<Connection>> connections_;  // sorted by (src, dst)
  std::vector<uint32_t> op_conn_;  // op id -> index into connections_
  std::vector<uint32_t> op_slot_;  // op id -> index into its connection's staging_
};

}  // namespace dgcl

#endif  // DGCL_RUNTIME_TRANSPORT_H_
