// dgcl_trace — post-processing for Chrome-trace files written by the benches
// (`--trace <path>`) or by telemetry::WriteChromeTrace.
//
// Usage:
//   dgcl_trace summarize <trace.json>...        per-(category,name) table
//   dgcl_trace merge -o <out.json> <in.json>... merge traces into one file
//   dgcl_trace convert <in.json> <out.json>     re-emit in canonical form
//
// All subcommands round-trip through the importer, so they double as a
// validation pass: a file that summarizes cleanly will load in Perfetto.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/chrome_trace.h"
#include "telemetry/cost_audit.h"

using namespace dgcl;

namespace {

void PrintUsage() {
  std::printf(
      "usage: dgcl_trace summarize <trace.json>...\n"
      "       dgcl_trace merge -o <out.json> <in.json>...\n"
      "       dgcl_trace convert <in.json> <out.json>\n");
}

int Summarize(const std::vector<std::string>& paths) {
  std::vector<telemetry::Trace> traces;
  for (const std::string& path : paths) {
    Result<telemetry::Trace> trace = telemetry::ReadChromeTrace(path);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), trace.status().ToString().c_str());
      return 1;
    }
    traces.push_back(std::move(trace).value());
  }
  const telemetry::Trace merged = telemetry::MergeTraces(traces);
  std::string title = paths.size() == 1 ? paths[0] : std::to_string(paths.size()) + " traces";
  std::printf("%s", telemetry::RenderTraceSummary(merged, title).c_str());
  std::printf("%zu events total\n", merged.events.size());

  // When the trace carries per-stage allgather spans, also report observed
  // stage wall times (the CostAudit's observation side).
  const std::vector<double> fwd =
      telemetry::ObservedStageSecondsFromTrace(merged, "fwd.stage", "stage");
  for (size_t k = 0; k < fwd.size(); ++k) {
    std::printf("observed fwd stage %zu: %.6f ms\n", k, fwd[k] * 1e3);
  }
  return 0;
}

int Merge(const std::string& out_path, const std::vector<std::string>& paths) {
  std::vector<telemetry::Trace> traces;
  for (const std::string& path : paths) {
    Result<telemetry::Trace> trace = telemetry::ReadChromeTrace(path);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), trace.status().ToString().c_str());
      return 1;
    }
    traces.push_back(std::move(trace).value());
  }
  const telemetry::Trace merged = telemetry::MergeTraces(traces);
  Status status = telemetry::WriteChromeTrace(merged, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events from %zu traces)\n", out_path.c_str(),
              merged.events.size(), paths.size());
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path) {
  Result<telemetry::Trace> trace = telemetry::ReadChromeTrace(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), trace.status().ToString().c_str());
    return 1;
  }
  Status status = telemetry::WriteChromeTrace(*trace, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", out_path.c_str(), trace->events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "summarize" && argc >= 3) {
    return Summarize(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (cmd == "merge") {
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else {
        inputs.emplace_back(argv[i]);
      }
    }
    if (out_path.empty() || inputs.empty()) {
      PrintUsage();
      return 2;
    }
    return Merge(out_path, inputs);
  }
  if (cmd == "convert" && argc == 4) {
    return Convert(argv[2], argv[3]);
  }
  PrintUsage();
  return 2;
}
