// dgcl_trace — post-processing for Chrome-trace files written by the benches
// (`--trace <path>`) or by telemetry::WriteChromeTrace.
//
// Usage:
//   dgcl_trace summarize <trace.json>...         per-(category,name) table
//   dgcl_trace summarize --waits <trace.json>... per-peer wait-time histogram
//   dgcl_trace summarize --recovery <trace.json>... per-phase recovery MTTR
//   dgcl_trace summarize --serving <trace.json>...  per-shard serving latency
//   dgcl_trace merge -o <out.json> <in.json>...  merge traces into one file
//   dgcl_trace convert <in.json> <out.json>      re-emit in canonical form
//
// All subcommands round-trip through the importer, so they double as a
// validation pass: a file that summarizes cleanly will load in Perfetto.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/percentile.h"
#include "common/table_printer.h"

#include "telemetry/chrome_trace.h"
#include "telemetry/cost_audit.h"

using namespace dgcl;

namespace {

void PrintUsage() {
  std::printf(
      "usage: dgcl_trace summarize [--waits|--recovery|--serving] <trace.json>...\n"
      "       dgcl_trace merge -o <out.json> <in.json>...\n"
      "       dgcl_trace convert <in.json> <out.json>\n");
}

Result<telemetry::Trace> LoadMerged(const std::vector<std::string>& paths) {
  std::vector<telemetry::Trace> traces;
  for (const std::string& path : paths) {
    Result<telemetry::Trace> trace = telemetry::ReadChromeTrace(path);
    if (!trace.ok()) {
      return Status(trace.status().code(), path + ": " + std::string(trace.status().message()));
    }
    traces.push_back(std::move(trace).value());
  }
  return telemetry::MergeTraces(traces);
}

// Per-peer wait-time histogram over the engine's coordination-wait spans
// (names containing "wait": fwd.wait.ready, fwd.wait.done, bwd.wait.done,
// wait.barrier), grouped by (wait name, peer arg). Buckets are decades of
// wait duration — the shape separates healthy spin-throughs (<10us) from
// stalls behind a straggler or injected NIC latency.
int SummarizeWaits(const telemetry::Trace& trace) {
  struct Bucketed {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
    uint64_t buckets[5] = {0, 0, 0, 0, 0};  // <10us, <100us, <1ms, <10ms, >=10ms
  };
  std::map<std::pair<std::string, uint64_t>, Bucketed> waits;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind != telemetry::TraceEventKind::kSpan ||
        ev.name.find("wait") == std::string::npos) {
      continue;
    }
    uint64_t peer = ~uint64_t{0};
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      if (ev.arg_key[i] == "peer") {
        peer = ev.arg_val[i];
        break;
      }
    }
    Bucketed& b = waits[{ev.name, peer}];
    ++b.count;
    const double seconds = ev.dur_ns / 1e9;
    b.total_seconds += seconds;
    b.max_seconds = std::max(b.max_seconds, seconds);
    const size_t bucket = ev.dur_ns < 10'000        ? 0
                          : ev.dur_ns < 100'000     ? 1
                          : ev.dur_ns < 1'000'000   ? 2
                          : ev.dur_ns < 10'000'000  ? 3
                                                    : 4;
    ++b.buckets[bucket];
  }
  if (waits.empty()) {
    std::printf("no wait spans in trace (record with telemetry enabled on the engine)\n");
    return 0;
  }
  TablePrinter table({"Wait", "Peer", "Count", "Total ms", "Max ms", "<10us", "<100us", "<1ms",
                      "<10ms", ">=10ms"});
  for (const auto& [key, b] : waits) {
    table.AddRow({key.first, key.second == ~uint64_t{0} ? "-" : TablePrinter::FmtInt(key.second),
                  TablePrinter::FmtInt(b.count), TablePrinter::Fmt(b.total_seconds * 1e3, 3),
                  TablePrinter::Fmt(b.max_seconds * 1e3, 3), TablePrinter::FmtInt(b.buckets[0]),
                  TablePrinter::FmtInt(b.buckets[1]), TablePrinter::FmtInt(b.buckets[2]),
                  TablePrinter::FmtInt(b.buckets[3]), TablePrinter::FmtInt(b.buckets[4])});
  }
  std::printf("%s", table.Render("coordination waits by (wait, peer)").c_str());
  return 0;
}

// Per-phase MTTR breakdown over the "recovery" span category (emitted by
// DgclContext::Recover / ElasticTrainingSession). The MTTR line sums the
// recovery work proper — detect, membership, repartition, replan, restore —
// matching RecoveryReport::MttrSeconds(); recovery.protocol (the envelope
// around membership..replan) and recovery.resume (the retried epoch) are
// shown but not double-counted into it.
int SummarizeRecovery(const telemetry::Trace& trace) {
  struct Phase {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
  };
  std::map<std::string, Phase> phases;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind != telemetry::TraceEventKind::kSpan || ev.category != "recovery") {
      continue;
    }
    Phase& p = phases[ev.name];
    ++p.count;
    const double seconds = ev.dur_ns / 1e9;
    p.total_seconds += seconds;
    p.max_seconds = std::max(p.max_seconds, seconds);
  }
  if (phases.empty()) {
    std::printf("no recovery spans in trace (enable RecoveryOptions and telemetry)\n");
    return 0;
  }
  TablePrinter table({"Phase", "Count", "Total ms", "Mean ms", "Max ms"});
  double mttr_seconds = 0.0;
  for (const auto& [name, p] : phases) {
    table.AddRow({name, TablePrinter::FmtInt(p.count), TablePrinter::Fmt(p.total_seconds * 1e3, 3),
                  TablePrinter::Fmt(p.total_seconds / p.count * 1e3, 3),
                  TablePrinter::Fmt(p.max_seconds * 1e3, 3)});
    if (name == "recovery.detect" || name == "recovery.membership" ||
        name == "recovery.repartition" || name == "recovery.replan" ||
        name == "recovery.restore") {
      mttr_seconds += p.total_seconds;
    }
  }
  std::printf("%s", table.Render("recovery phases").c_str());
  std::printf("MTTR (detect+membership+repartition+replan+restore): %.3f ms\n",
              mttr_seconds * 1e3);
  return 0;
}

// Per-shard latency table over the serving tier's "serve.request" spans
// (GraphService::Process), using the same nearest-rank percentile definition
// as bench_serving (common/percentile.h) so the two reports are comparable.
// Follows with a phase breakdown (serve.queue / serve.sample / serve.features
// / serve.infer) and the FeatureCache's hit/miss/evict counter totals.
int SummarizeServing(const telemetry::Trace& trace) {
  struct ShardStats {
    std::vector<double> latency_ms;
    uint64_t ok = 0;
    uint64_t failed = 0;
  };
  struct Phase {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
  };
  struct ReplicaStats {
    uint64_t ok = 0;
    uint64_t failed = 0;
  };
  std::map<uint64_t, ShardStats> shards;
  // (shard, replica) -> routed counts; only filled when spans carry the
  // "replica" arg (replica-aware service).
  std::map<std::pair<uint64_t, uint64_t>, ReplicaStats> replicas;
  std::map<std::string, Phase> phases;
  std::map<std::string, double> counters;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.category != "service") {
      continue;
    }
    if (ev.kind == telemetry::TraceEventKind::kCounter) {
      counters[ev.name] += ev.value;
      continue;
    }
    if (ev.kind != telemetry::TraceEventKind::kSpan) {
      continue;
    }
    if (ev.name == "serve.request") {
      uint64_t shard = ~uint64_t{0};
      uint64_t replica = ~uint64_t{0};
      bool has_replica = false;
      uint64_t ok = 1;
      for (size_t i = 0; i < ev.arg_key.size(); ++i) {
        if (ev.arg_key[i] == "shard") {
          shard = ev.arg_val[i];
        } else if (ev.arg_key[i] == "replica") {
          replica = ev.arg_val[i];
          has_replica = true;
        } else if (ev.arg_key[i] == "ok") {
          ok = ev.arg_val[i];
        }
      }
      ShardStats& s = shards[shard];
      s.latency_ms.push_back(ev.dur_ns / 1e6);
      ++(ok != 0 ? s.ok : s.failed);
      if (has_replica) {
        ReplicaStats& r = replicas[{shard, replica}];
        ++(ok != 0 ? r.ok : r.failed);
      }
    } else {
      Phase& p = phases[ev.name];
      ++p.count;
      const double seconds = ev.dur_ns / 1e9;
      p.total_seconds += seconds;
      p.max_seconds = std::max(p.max_seconds, seconds);
    }
  }
  if (shards.empty()) {
    std::printf("no serve.request spans in trace (run bench_serving --trace, or serve "
                "with telemetry enabled)\n");
    return 0;
  }
  TablePrinter table(
      {"Shard", "Requests", "OK", "Failed", "p50 ms", "p99 ms", "p999 ms", "Max ms"});
  std::vector<double> all_ms;
  uint64_t all_ok = 0;
  uint64_t all_failed = 0;
  for (auto& [shard, s] : shards) {
    all_ms.insert(all_ms.end(), s.latency_ms.begin(), s.latency_ms.end());
    all_ok += s.ok;
    all_failed += s.failed;
    std::sort(s.latency_ms.begin(), s.latency_ms.end());
    table.AddRow({shard == ~uint64_t{0} ? "-" : TablePrinter::FmtInt(shard),
                  TablePrinter::FmtInt(s.latency_ms.size()), TablePrinter::FmtInt(s.ok),
                  TablePrinter::FmtInt(s.failed),
                  TablePrinter::Fmt(PercentileSorted(s.latency_ms, 0.50), 3),
                  TablePrinter::Fmt(PercentileSorted(s.latency_ms, 0.99), 3),
                  TablePrinter::Fmt(PercentileSorted(s.latency_ms, 0.999), 3),
                  TablePrinter::Fmt(s.latency_ms.back(), 3)});
  }
  std::sort(all_ms.begin(), all_ms.end());
  table.AddRow({"all", TablePrinter::FmtInt(all_ms.size()), TablePrinter::FmtInt(all_ok),
                TablePrinter::FmtInt(all_failed),
                TablePrinter::Fmt(PercentileSorted(all_ms, 0.50), 3),
                TablePrinter::Fmt(PercentileSorted(all_ms, 0.99), 3),
                TablePrinter::Fmt(PercentileSorted(all_ms, 0.999), 3),
                TablePrinter::Fmt(all_ms.back(), 3)});
  std::printf("%s", table.Render("serving latency by shard (serve.request)").c_str());

  // Per-replica routing: where each shard's requests actually landed. The
  // 0xFFFFFFFF sentinel (kInvalidId) marks requests no replica served — the
  // sync path answering for an exhausted shard.
  if (!replicas.empty()) {
    TablePrinter replica_table({"Shard", "Replica", "Requests", "OK", "Failed"});
    for (const auto& [key, r] : replicas) {
      const bool unserved = key.second == 0xFFFFFFFFull;
      replica_table.AddRow({TablePrinter::FmtInt(key.first),
                            unserved ? "-" : TablePrinter::FmtInt(key.second),
                            TablePrinter::FmtInt(r.ok + r.failed), TablePrinter::FmtInt(r.ok),
                            TablePrinter::FmtInt(r.failed)});
    }
    std::printf("%s", replica_table.Render("replica routing (serve.request)").c_str());
  }

  if (!phases.empty()) {
    TablePrinter phase_table({"Phase", "Count", "Total ms", "Mean ms", "Max ms"});
    for (const auto& [name, p] : phases) {
      phase_table.AddRow(
          {name, TablePrinter::FmtInt(p.count), TablePrinter::Fmt(p.total_seconds * 1e3, 3),
           TablePrinter::Fmt(p.total_seconds / p.count * 1e3, 3),
           TablePrinter::Fmt(p.max_seconds * 1e3, 3)});
    }
    std::printf("%s", phase_table.Render("serving phases").c_str());

    // The sample phase is recorded per strategy (serve.sample.<name>, the
    // SamplerRegistry name) — break it out so strategy cost is comparable at
    // a glance.
    TablePrinter sample_table({"Sampler", "Samples", "Total ms", "Mean ms", "Max ms"});
    bool any_strategy = false;
    const std::string prefix = "serve.sample.";
    for (const auto& [name, p] : phases) {
      if (name.rfind(prefix, 0) != 0) {
        continue;
      }
      any_strategy = true;
      sample_table.AddRow({name.substr(prefix.size()), TablePrinter::FmtInt(p.count),
                           TablePrinter::Fmt(p.total_seconds * 1e3, 3),
                           TablePrinter::Fmt(p.total_seconds / p.count * 1e3, 3),
                           TablePrinter::Fmt(p.max_seconds * 1e3, 3)});
    }
    if (any_strategy) {
      std::printf("%s", sample_table.Render("sample phase by strategy").c_str());
    }
  }

  const double hits = counters["cache.hit"];
  const double misses = counters["cache.miss"];
  if (hits + misses > 0.0) {
    std::printf("feature cache: %.0f hits, %.0f misses, %.0f evictions (hit rate %.3f)\n",
                hits, misses, counters["cache.evict"], hits / (hits + misses));
  }
  const double flushes = counters["fetch.batch.flush"];
  if (flushes > 0.0) {
    const double rows = counters["fetch.batch.rows"];
    std::printf("batched fetches: %.0f transmits carrying %.0f rows (%.1f rows/transmit)\n",
                flushes, rows, rows / flushes);
  }
  for (const char* name : {"request.shed", "fetch.unplanned", "shard.killed", "replica.killed",
                           "train.ride_through"}) {
    const auto it = counters.find(name);
    if (it != counters.end() && it->second > 0.0) {
      std::printf("%s: %.0f\n", name, it->second);
    }
  }
  return 0;
}

// Planner auto-selection scorecard: the "planner" category's
// "auto.<strategy>.cost_us" / "auto.<strategy>.sim_us" counters recorded per
// candidate by PlanWithStrategy, plus the "auto.selected.<strategy>" marker.
// Lets a trace answer *why* a strategy was committed after the fact.
void SummarizeAutoSelect(const telemetry::Trace& trace) {
  struct Scores {
    double cost_us = 0.0;
    double sim_us = 0.0;
    uint64_t rounds = 0;
    bool selected = false;
  };
  std::map<std::string, Scores> by_strategy;  // latest sample wins
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind != telemetry::TraceEventKind::kCounter || ev.category != "planner" ||
        ev.name.rfind("auto.", 0) != 0) {
      continue;
    }
    const std::string rest = ev.name.substr(5);
    if (rest.rfind("selected.", 0) == 0) {
      by_strategy[rest.substr(9)].selected = true;
      continue;
    }
    const size_t dot = rest.rfind('.');
    if (dot == std::string::npos) {
      continue;
    }
    const std::string strategy = rest.substr(0, dot);
    const std::string metric = rest.substr(dot + 1);
    Scores& s = by_strategy[strategy];
    if (metric == "cost_us") {
      s.cost_us = ev.value;
      ++s.rounds;
    } else if (metric == "sim_us") {
      s.sim_us = ev.value;
    }
  }
  if (by_strategy.empty()) {
    return;  // no auto-selection in this trace
  }
  TablePrinter table({"Strategy", "Cost-model ms", "Simulated ms", "Samples", "Selected"});
  for (const auto& [name, s] : by_strategy) {
    table.AddRow({name, TablePrinter::Fmt(s.cost_us / 1e3, 3), TablePrinter::Fmt(s.sim_us / 1e3, 3),
                  TablePrinter::FmtInt(s.rounds), s.selected ? "*" : ""});
  }
  std::printf("%s", table.Render("planner auto-select candidates (last sample)").c_str());
}

int Summarize(const std::vector<std::string>& paths, bool waits, bool recovery, bool serving) {
  Result<telemetry::Trace> loaded = LoadMerged(paths);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const telemetry::Trace& merged = *loaded;
  if (waits) {
    return SummarizeWaits(merged);
  }
  if (recovery) {
    return SummarizeRecovery(merged);
  }
  if (serving) {
    return SummarizeServing(merged);
  }
  std::string title = paths.size() == 1 ? paths[0] : std::to_string(paths.size()) + " traces";
  std::printf("%s", telemetry::RenderTraceSummary(merged, title).c_str());
  std::printf("%zu events total\n", merged.events.size());
  SummarizeAutoSelect(merged);

  // When the trace carries per-stage allgather spans, also report observed
  // stage wall times (the CostAudit's observation side).
  const std::vector<double> fwd =
      telemetry::ObservedStageSecondsFromTrace(merged, "fwd.stage", "stage");
  for (size_t k = 0; k < fwd.size(); ++k) {
    std::printf("observed fwd stage %zu: %.6f ms\n", k, fwd[k] * 1e3);
  }
  return 0;
}

int Merge(const std::string& out_path, const std::vector<std::string>& paths) {
  Result<telemetry::Trace> loaded = LoadMerged(paths);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const telemetry::Trace& merged = *loaded;
  Status status = telemetry::WriteChromeTrace(merged, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events from %zu traces)\n", out_path.c_str(),
              merged.events.size(), paths.size());
  return 0;
}

int Convert(const std::string& in_path, const std::string& out_path) {
  Result<telemetry::Trace> trace = telemetry::ReadChromeTrace(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), trace.status().ToString().c_str());
    return 1;
  }
  Status status = telemetry::WriteChromeTrace(*trace, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events)\n", out_path.c_str(), trace->events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "summarize" && argc >= 3) {
    bool waits = false;
    bool recovery = false;
    bool serving = false;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--waits") == 0) {
        waits = true;
      } else if (std::strcmp(argv[i], "--recovery") == 0) {
        recovery = true;
      } else if (std::strcmp(argv[i], "--serving") == 0) {
        serving = true;
      } else {
        paths.emplace_back(argv[i]);
      }
    }
    if (paths.empty()) {
      PrintUsage();
      return 2;
    }
    return Summarize(paths, waits, recovery, serving);
  }
  if (cmd == "merge") {
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else {
        inputs.emplace_back(argv[i]);
      }
    }
    if (out_path.empty() || inputs.empty()) {
      PrintUsage();
      return 2;
    }
    return Merge(out_path, inputs);
  }
  if (cmd == "convert" && argc == 4) {
    return Convert(argv[2], argv[3]);
  }
  PrintUsage();
  return 2;
}
