// dgcl_plan — command-line front end for the planning pipeline.
//
// Loads a graph (SNAP edge list or DGCL binary; synthetic RMAT if omitted),
// partitions it for a chosen topology preset, runs a planner, prints the
// plan statistics / cost estimate / simulated allgather time, and optionally
// saves the compiled plan for later runtime use.
//
// Usage:
//   dgcl_plan [--graph path] [--gpus N] [--no-nvlink] [--nvswitch]
//             [--machines M] [--dim D] [--planner <name>|auto]
//             [--list-planners] [--list-samplers] [--save-plan path]
//             [--seed S]
//
// --planner resolves through the PlannerRegistry, so any registered strategy
// works by name; "auto" plans with every strategy and commits the cost-model
// winner, printing the per-candidate scorecard. --list-planners prints the
// registered planner names and exits; --list-samplers does the same for the
// serving tier's SamplerRegistry (ServiceOptions::sampler /
// SampleRequest::sampler take these names).

#include <cstdio>
#include <cstring>
#include <string>

#include "comm/plan_io.h"
#include "comm/plan_stats.h"
#include "common/table_printer.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "partition/hierarchical.h"
#include "partition/multilevel.h"
#include "planner/cost_model.h"
#include "planner/registry.h"
#include "sim/network_sim.h"
#include "sim/planner_select.h"
#include "service/sampler_registry.h"
#include "topology/presets.h"

using namespace dgcl;

namespace {

struct Args {
  std::string graph_path;
  std::string save_plan;
  std::string planner = "spst";
  uint32_t gpus = 8;
  uint32_t machines = 1;
  uint32_t dim = 128;
  uint64_t seed = 7;
  bool nvlink = true;
  bool nvswitch = false;
  bool list_planners = false;
  bool list_samplers = false;
};

void PrintUsage() {
  std::printf(
      "usage: dgcl_plan [--graph path] [--gpus N] [--machines M] [--no-nvlink]\n"
      "                 [--nvswitch] [--dim D] [--planner <name>|auto]\n"
      "                 [--list-planners] [--list-samplers] [--save-plan path]\n"
      "                 [--seed S]\n");
}

bool Parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--graph") {
      const char* v = next("--graph");
      if (v == nullptr) {
        return false;
      }
      args.graph_path = v;
    } else if (flag == "--save-plan") {
      const char* v = next("--save-plan");
      if (v == nullptr) {
        return false;
      }
      args.save_plan = v;
    } else if (flag == "--planner") {
      const char* v = next("--planner");
      if (v == nullptr) {
        return false;
      }
      args.planner = v;
    } else if (flag == "--gpus") {
      const char* v = next("--gpus");
      if (v == nullptr) {
        return false;
      }
      args.gpus = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--machines") {
      const char* v = next("--machines");
      if (v == nullptr) {
        return false;
      }
      args.machines = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--dim") {
      const char* v = next("--dim");
      if (v == nullptr) {
        return false;
      }
      args.dim = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) {
        return false;
      }
      args.seed = std::stoull(v);
    } else if (flag == "--list-planners") {
      args.list_planners = true;
    } else if (flag == "--list-samplers") {
      args.list_samplers = true;
    } else if (flag == "--no-nvlink") {
      args.nvlink = false;
    } else if (flag == "--nvswitch") {
      args.nvswitch = true;
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      PrintUsage();
      return false;
    }
  }
  return true;
}

Result<CsrGraph> LoadGraph(const Args& args) {
  if (args.graph_path.empty()) {
    Rng rng(args.seed);
    std::printf("no --graph given; generating a synthetic RMAT graph (seed %llu)\n",
                static_cast<unsigned long long>(args.seed));
    return GenerateRmat({.scale = 13, .num_edges = 100000}, rng);
  }
  if (args.graph_path.size() > 4 &&
      args.graph_path.compare(args.graph_path.size() - 4, 4, ".bin") == 0) {
    return LoadBinary(args.graph_path);
  }
  return LoadEdgeList(args.graph_path, /*symmetrize=*/true, /*compact_ids=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    return 1;
  }
  if (args.list_planners) {
    std::printf("registered planner strategies:\n");
    for (const std::string& name : PlannerRegistry::Global().Names()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("  auto (cost-model selection over the above)\n");
    return 0;
  }
  if (args.list_samplers) {
    std::printf("registered sampler strategies:\n");
    for (const std::string& name : SamplerRegistry::Global().Names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }

  auto graph = LoadGraph(args);
  if (!graph.ok()) {
    std::fprintf(stderr, "load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %s\n", ComputeStats(*graph).ToString().c_str());

  MachineConfig config;
  config.num_gpus = args.gpus;
  config.nvlink = args.nvlink;
  config.nvswitch = args.nvswitch;
  Topology topo = BuildCluster(args.machines, config);
  std::printf("topology: %u machines x %u GPUs = %u devices, %u physical connections\n",
              args.machines, args.gpus, topo.num_devices(), topo.num_connections());

  MultilevelPartitioner metis;
  auto parts = PartitionForTopology(*graph, topo, metis);
  if (!parts.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", parts.status().ToString().c_str());
    return 1;
  }
  std::printf("partition: %s\n", EvaluatePartition(*graph, *parts).ToString().c_str());

  auto rel = BuildCommRelation(*graph, *parts);
  if (!rel.ok()) {
    std::fprintf(stderr, "relation failed: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  std::printf("communication relation: %llu vertex transfers\n",
              static_cast<unsigned long long>(rel->TotalTransfers()));

  PlannerOptions popts;
  popts.strategy = args.planner;
  if (Status s = popts.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const double bytes = static_cast<double>(args.dim) * sizeof(float);
  CommClasses classes = BuildCommClasses(*rel);
  SelectionReport report;
  auto class_plan = PlanWithStrategy(popts, classes, topo, bytes, &report);
  if (!class_plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", class_plan.status().ToString().c_str());
    return 1;
  }
  if (popts.IsAuto()) {
    std::printf("\nauto-select scorecard (winner starred):\n%s", report.Table().c_str());
  }
  CommPlan expanded = ExpandClassPlan(*class_plan, classes);
  if (Status s = ValidatePlan(expanded, *rel, topo); !s.ok()) {
    std::fprintf(stderr, "plan invalid: %s\n", s.ToString().c_str());
    return 1;
  }
  const CommPlan* plan = &expanded;

  CompiledPlan compiled = CompilePlan(*class_plan, classes, topo);
  AssignBackwardSubstages(compiled);
  NetworkSimOptions net;
  net.bytes_per_unit = bytes;
  const double simulated = SimulateTransfer(compiled, topo, net).total_seconds;
  std::printf("\nplanner %s (embedding dim %u):\n", class_plan->planner_name.c_str(), args.dim);
  std::printf("  stages              %u\n", plan->NumStages());
  std::printf("  transfer ops        %zu\n", compiled.ops.size());
  std::printf("  link traversals     %llu\n",
              static_cast<unsigned long long>(PlanTotalTraffic(*plan)));
  std::printf("  send/recv tables    %s\n",
              TablePrinter::FmtBytes(static_cast<double>(compiled.TableBytes())).c_str());
  std::printf("  plan stats          %s\n",
              ComputePlanStats(*plan, *rel, topo).ToString().c_str());
  std::printf("  cost-model estimate %.3f ms\n", EvaluatePlanCost(*plan, topo, bytes) * 1e3);
  std::printf("  simulated allgather %.3f ms\n", simulated * 1e3);

  if (!args.save_plan.empty()) {
    if (Status s = SaveCompiledPlan(compiled, topo, args.save_plan); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("compiled plan saved to %s\n", args.save_plan.c_str());
  }
  return 0;
}
