// Centralized vs decentralized coordination (§6.1) must deliver identical
// results; only the synchronization protocol differs. The fault-injection
// tests exercise the runtime's failure paths: a dead peer turns into a
// kDeadlineExceeded Status (never a hang), dropped transmits are retried to
// an identical result, and exhausted retries surface the transport's
// kUnavailable. The trace-shape test pins the wait-span taxonomy the
// `dgcl_trace summarize --waits` tool consumes.

#include <gtest/gtest.h>

#include <chrono>

#include "graph/generators.h"
#include "partition/multilevel.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "telemetry/trace.h"
#include "topology/presets.h"

namespace dgcl {
namespace {

struct Fixture {
  CsrGraph graph;
  Topology topo;
  CommRelation relation;
  CompiledPlan plan;

  static Fixture Make(uint32_t gpus, uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    f.graph = GenerateErdosRenyi(70, 210, rng);
    f.topo = BuildPaperTopology(gpus);
    MultilevelPartitioner metis;
    f.relation = *BuildCommRelation(f.graph, *metis.Partition(f.graph, gpus));
    SpstPlanner spst;
    f.plan = CompilePlan(*spst.Plan(f.relation, f.topo, 64), f.topo);
    AssignBackwardSubstages(f.plan);
    return f;
  }

  std::vector<EmbeddingMatrix> Local(uint32_t dim) const {
    std::vector<EmbeddingMatrix> local;
    for (uint32_t d = 0; d < relation.num_devices; ++d) {
      const auto& locals = relation.local_vertices[d];
      EmbeddingMatrix m = EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()), dim);
      for (uint32_t i = 0; i < locals.size(); ++i) {
        m.Row(i)[0] = static_cast<float>(locals[i] + 1);
      }
      local.push_back(std::move(m));
    }
    return local;
  }
};

Result<AllgatherEngine> MakeEngine(const Fixture& f, const EngineOptions& options = {}) {
  return AllgatherEngine::Create(f.relation, f.plan, f.topo, options);
}

class CoordinationSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoordinationSweep, ModesProduceIdenticalForwardResults) {
  Fixture f = Fixture::Make(GetParam(), 11);
  auto local = f.Local(3);
  std::vector<std::vector<EmbeddingMatrix>> outputs;
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    EngineOptions options;
    options.coordination = mode;
    auto engine = MakeEngine(f, options);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(engine->coordination_mode(), mode);
    auto out = engine->Forward(local);
    ASSERT_TRUE(out.ok());
    outputs.push_back(*std::move(out));
  }
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ(outputs[0][d].data, outputs[1][d].data) << "device " << d;
  }
}

TEST_P(CoordinationSweep, ModesProduceIdenticalBackwardResults) {
  Fixture f = Fixture::Make(GetParam(), 13);
  std::vector<std::vector<EmbeddingMatrix>> outputs;
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    EngineOptions options;
    options.coordination = mode;
    auto engine = MakeEngine(f, options);
    ASSERT_TRUE(engine.ok());
    std::vector<EmbeddingMatrix> grads;
    for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
      EmbeddingMatrix g = EmbeddingMatrix::Zero(engine->NumContractSlots(d), 2);
      for (float& x : g.data) {
        x = 1.0f;
      }
      grads.push_back(std::move(g));
    }
    auto out = engine->Backward(grads);
    ASSERT_TRUE(out.ok());
    outputs.push_back(*std::move(out));
  }
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ(outputs[0][d].data, outputs[1][d].data) << "device " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, CoordinationSweep, ::testing::Values(2u, 4u, 8u, 16u));

TEST(CoordinationTest, DefaultIsDecentralized) {
  Fixture f = Fixture::Make(2, 17);
  auto engine = MakeEngine(f);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->coordination_mode(), CoordinationMode::kDecentralized);
}

TEST(CoordinationTest, CreateRejectsInvalidOptions) {
  Fixture f = Fixture::Make(2, 17);
  EngineOptions options;
  options.faults.drop_rate = 2.0;
  EXPECT_FALSE(MakeEngine(f, options).ok());
  options = {};
  options.transport.backoff_max_micros = 1;
  options.transport.backoff_base_micros = 10;
  EXPECT_FALSE(MakeEngine(f, options).ok());
  options = {};
  options.transport_overrides.push_back({0, 99, Transport::kNic});
  EXPECT_FALSE(MakeEngine(f, options).ok());
}

// A killed peer must fail the collective with a timeout Status, not hang.
// Both protocols: decentralized waiters time out on the dead peer's flags;
// the centralized barrier poisons itself when the peer never arrives.
TEST(CoordinationTest, DeadPeerFailsTheCollectiveInsteadOfHanging) {
  Fixture f = Fixture::Make(4, 19);
  auto local = f.Local(2);
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    EngineOptions options;
    options.coordination = mode;
    options.faults.dead_device = 1;
    options.transport.wait_timeout_micros = 200'000;  // fail fast, not in 30s
    auto engine = MakeEngine(f, options);
    ASSERT_TRUE(engine.ok());
    auto out = engine->Forward(local);
    ASSERT_FALSE(out.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
        << "mode " << static_cast<int>(mode) << ": " << out.status().ToString();
  }
}

// Regression: a dead peer detected mid-chunk must poison ALL outstanding
// chunk waits — in every device thread and for every not-yet-published chunk
// — not just the wait that timed out. The failing shape this pins against:
// each of K chunk waits (or each blocked device) running to its own full
// deadline serially, turning one detection into many. With 16 chunks and a
// 150 ms deadline the serial shape needs >= 2.4 s for a single stage; the
// poisoned path needs roughly one deadline regardless of K, coordination
// mode or consume policy (the centralized barrier's Abort and the
// decentralized abort flag are both part of the poison broadcast).
TEST(CoordinationTest, DeadPeerMidChunkPoisonsAllOutstandingChunkWaits) {
  Fixture f = Fixture::Make(4, 19);
  auto local = f.Local(2);
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    for (ConsumePolicy policy : {ConsumePolicy::kEager, ConsumePolicy::kInOrder}) {
      EngineOptions options;
      options.coordination = mode;
      options.overlap.num_chunks = 16;
      options.overlap.double_buffer = true;
      options.overlap.consume_policy = policy;
      options.faults.dead_device = 1;
      options.transport.wait_timeout_micros = 150'000;
      auto engine = MakeEngine(f, options);
      ASSERT_TRUE(engine.ok());
      const auto start = std::chrono::steady_clock::now();
      auto out = engine->Forward(local);
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      ASSERT_FALSE(out.ok());
      EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
          << "mode " << static_cast<int>(mode) << ": " << out.status().ToString();
      EXPECT_LT(elapsed_s, 1.2) << "outstanding chunk waits ran to serial deadlines";
      // The recovery handoff still points at exactly the dead device: the
      // timed-out waits name every pending sender, and innocents that merely
      // aborted stay off the suspect list.
      auto failure = engine->last_failure();
      ASSERT_TRUE(failure.has_value());
      EXPECT_EQ(failure->suspects, DeviceMask{1} << 1);
    }
  }
}

// Injected drops force retries but never corrupt the payload: a faulted
// engine's outputs are bit-identical to a clean engine's.
TEST(CoordinationTest, DroppedTransmitsRetryToIdenticalOutputs) {
  Fixture f = Fixture::Make(4, 23);
  auto local = f.Local(3);
  auto clean = MakeEngine(f);
  ASSERT_TRUE(clean.ok());
  auto want = clean->Forward(local);
  ASSERT_TRUE(want.ok());

  EngineOptions options;
  options.faults.all_transports = true;  // 4 GPUs, one machine: no NIC pairs
  options.faults.drop_rate = 0.25;
  options.faults.jitter_micros = 5;
  options.transport.max_retries = 10;  // P(10 straight drops) ~ 1e-6 per op
  options.transport.backoff_base_micros = 1;
  options.transport.backoff_max_micros = 20;
  auto faulted = MakeEngine(f, options);
  ASSERT_TRUE(faulted.ok());
  auto got = faulted->Forward(local);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ((*got)[d].data, (*want)[d].data) << "device " << d;
  }
  uint64_t drops = 0;
  const ConnectionTable& table = faulted->connections();
  for (size_t i = 0; i < table.size(); ++i) {
    drops += table.connection(i).stats().drops_injected;
  }
  EXPECT_GT(drops, 0u) << "drop_rate 0.25 should have injected at least one drop";
}

TEST(CoordinationTest, ExhaustedRetriesSurfaceUnavailable) {
  Fixture f = Fixture::Make(4, 23);
  EngineOptions options;
  options.faults.all_transports = true;
  options.faults.drop_rate = 1.0;  // every attempt dropped, retries must exhaust
  options.transport.max_retries = 2;
  options.transport.backoff_base_micros = 1;
  options.transport.backoff_max_micros = 2;
  auto engine = MakeEngine(f, options);
  ASSERT_TRUE(engine.ok());
  auto out = engine->Forward(f.Local(2));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable) << out.status().ToString();
}

// The wait-span taxonomy is an interface: `dgcl_trace summarize --waits` and
// the cost-model audit both key on these names/args. Pin span names, the
// transport-name category and the {peer, stage} tags.
TEST(CoordinationTest, WaitSpansCarryPeerAndStageTags) {
  telemetry::Telemetry& telem = telemetry::Telemetry::Get();
  const bool was_enabled = telemetry::Telemetry::Enabled();
  telem.SetEnabled(true);
  telem.Reset();

  Fixture f = Fixture::Make(4, 29);
  for (CoordinationMode mode :
       {CoordinationMode::kDecentralized, CoordinationMode::kCentralized}) {
    EngineOptions options;
    options.coordination = mode;
    options.faults.all_transports = true;
    options.faults.latency_micros = 20;  // make the waits non-trivial
    auto engine = MakeEngine(f, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->Forward(f.Local(2)).ok());
  }

  telemetry::Trace trace = telem.Collect();
  telem.Reset();
  telem.SetEnabled(was_enabled);

  uint64_t ready_waits = 0, done_waits = 0, barrier_waits = 0;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind != telemetry::TraceEventKind::kSpan ||
        ev.name.find("wait") == std::string::npos) {
      continue;
    }
    bool has_peer = false, has_stage = false;
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      has_peer = has_peer || ev.arg_key[i] == "peer";
      has_stage = has_stage || ev.arg_key[i] == "stage";
    }
    EXPECT_TRUE(has_peer) << ev.name;
    EXPECT_TRUE(has_stage) << ev.name;
    if (ev.name == "fwd.wait.ready" || ev.name == "fwd.wait.done") {
      // Wait spans on the data path are categorized by their transport.
      EXPECT_TRUE(ev.category == "cuda-vm" || ev.category == "pinned-host" ||
                  ev.category == "nic")
          << ev.category;
      (ev.name == "fwd.wait.ready" ? ready_waits : done_waits) += 1;
    } else if (ev.name == "wait.barrier") {
      EXPECT_EQ(ev.category, "runtime");
      ++barrier_waits;
    }
  }
  EXPECT_GT(ready_waits, 0u);
  EXPECT_GT(done_waits, 0u);
  EXPECT_GT(barrier_waits, 0u);
}

// Chunked waits extend the same taxonomy: a chunked receiver's blocked time
// shows up as transport-categorized "fwd.wait.chunk" spans tagged
// {peer, stage, chunk} (the series the hidden/exposed overlap audit sums),
// and the barrier-mode names never appear in a chunked trace.
TEST(CoordinationTest, ChunkWaitSpansCarryPeerStageAndChunkTags) {
  telemetry::Telemetry& telem = telemetry::Telemetry::Get();
  const bool was_enabled = telemetry::Telemetry::Enabled();
  telem.SetEnabled(true);
  telem.Reset();

  Fixture f = Fixture::Make(4, 29);
  EngineOptions options;
  options.overlap.num_chunks = 4;
  options.overlap.double_buffer = true;
  options.faults.all_transports = true;
  options.faults.latency_micros = 20;  // make the waits non-trivial
  auto engine = MakeEngine(f, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Forward(f.Local(2)).ok());

  telemetry::Trace trace = telem.Collect();
  telem.Reset();
  telem.SetEnabled(was_enabled);

  uint64_t chunk_waits = 0;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind != telemetry::TraceEventKind::kSpan) {
      continue;
    }
    EXPECT_NE(ev.name, "fwd.wait.done") << "barrier-mode span name in a chunked trace";
    if (ev.name != "fwd.wait.chunk") {
      continue;
    }
    ++chunk_waits;
    bool has_peer = false, has_stage = false, has_chunk = false;
    for (size_t i = 0; i < ev.arg_key.size(); ++i) {
      has_peer = has_peer || ev.arg_key[i] == "peer";
      has_stage = has_stage || ev.arg_key[i] == "stage";
      has_chunk = has_chunk || ev.arg_key[i] == "chunk";
    }
    EXPECT_TRUE(has_peer && has_stage && has_chunk) << ev.name;
    EXPECT_TRUE(ev.category == "cuda-vm" || ev.category == "pinned-host" ||
                ev.category == "nic")
        << ev.category;
  }
  EXPECT_GT(chunk_waits, 0u);
}

// The acceptance path end to end: latency injected on the NIC transport only
// (2-machine topology, no all_transports widening) shows up as nic-categorized
// wait spans in a recorded trace, and the faulted run still delivers outputs
// bit-identical to a clean engine.
TEST(CoordinationTest, InjectedNicLatencyShowsUpInNicWaitSpans) {
  telemetry::Telemetry& telem = telemetry::Telemetry::Get();
  const bool was_enabled = telemetry::Telemetry::Enabled();
  telem.SetEnabled(true);
  telem.Reset();

  Fixture f = Fixture::Make(16, 31);  // 2 machines: cross-machine pairs ride the NIC
  auto local = f.Local(2);
  auto clean = MakeEngine(f);
  ASSERT_TRUE(clean.ok());
  auto want = clean->Forward(local);
  ASSERT_TRUE(want.ok());

  EngineOptions options;
  options.faults.latency_micros = 30;  // NIC-only by default
  auto engine = MakeEngine(f, options);
  ASSERT_TRUE(engine.ok());
  auto got = engine->Forward(local);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  telemetry::Trace trace = telem.Collect();
  telem.Reset();
  telem.SetEnabled(was_enabled);

  uint64_t nic_waits = 0;
  for (const telemetry::TraceEvent& ev : trace.events) {
    if (ev.kind == telemetry::TraceEventKind::kSpan && ev.category == "nic" &&
        ev.name.find("wait") != std::string::npos) {
      ++nic_waits;
    }
  }
  EXPECT_GT(nic_waits, 0u);
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ((*got)[d].data, (*want)[d].data) << "device " << d;
  }
}

}  // namespace
}  // namespace dgcl
