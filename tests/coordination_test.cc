// Centralized vs decentralized coordination (§6.1) must deliver identical
// results; only the synchronization protocol differs.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "partition/multilevel.h"
#include "planner/spst.h"
#include "runtime/allgather_engine.h"
#include "topology/presets.h"

namespace dgcl {
namespace {

struct Fixture {
  CsrGraph graph;
  Topology topo;
  CommRelation relation;
  CompiledPlan plan;

  static Fixture Make(uint32_t gpus, uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    f.graph = GenerateErdosRenyi(70, 210, rng);
    f.topo = BuildPaperTopology(gpus);
    MultilevelPartitioner metis;
    f.relation = *BuildCommRelation(f.graph, *metis.Partition(f.graph, gpus));
    SpstPlanner spst;
    f.plan = CompilePlan(*spst.Plan(f.relation, f.topo, 64), f.topo);
    AssignBackwardSubstages(f.plan);
    return f;
  }

  std::vector<EmbeddingMatrix> Local(uint32_t dim) const {
    std::vector<EmbeddingMatrix> local;
    for (uint32_t d = 0; d < relation.num_devices; ++d) {
      const auto& locals = relation.local_vertices[d];
      EmbeddingMatrix m = EmbeddingMatrix::Zero(static_cast<uint32_t>(locals.size()), dim);
      for (uint32_t i = 0; i < locals.size(); ++i) {
        m.Row(i)[0] = static_cast<float>(locals[i] + 1);
      }
      local.push_back(std::move(m));
    }
    return local;
  }
};

class CoordinationSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoordinationSweep, ModesProduceIdenticalForwardResults) {
  Fixture f = Fixture::Make(GetParam(), 11);
  auto engine = AllgatherEngine::Create(f.relation, f.plan, f.topo);
  ASSERT_TRUE(engine.ok());
  auto local = f.Local(3);

  engine->set_coordination_mode(CoordinationMode::kDecentralized);
  auto decentralized = engine->Forward(local);
  ASSERT_TRUE(decentralized.ok());

  engine->set_coordination_mode(CoordinationMode::kCentralized);
  EXPECT_EQ(engine->coordination_mode(), CoordinationMode::kCentralized);
  auto centralized = engine->Forward(local);
  ASSERT_TRUE(centralized.ok());

  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ((*decentralized)[d].data, (*centralized)[d].data) << "device " << d;
  }
}

TEST_P(CoordinationSweep, ModesProduceIdenticalBackwardResults) {
  Fixture f = Fixture::Make(GetParam(), 13);
  auto engine = AllgatherEngine::Create(f.relation, f.plan, f.topo);
  ASSERT_TRUE(engine.ok());
  std::vector<EmbeddingMatrix> grads;
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EmbeddingMatrix g = EmbeddingMatrix::Zero(engine->NumContractSlots(d), 2);
    for (float& x : g.data) {
      x = 1.0f;
    }
    grads.push_back(std::move(g));
  }
  engine->set_coordination_mode(CoordinationMode::kDecentralized);
  auto a = engine->Backward(grads);
  engine->set_coordination_mode(CoordinationMode::kCentralized);
  auto b = engine->Backward(grads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint32_t d = 0; d < f.relation.num_devices; ++d) {
    EXPECT_EQ((*a)[d].data, (*b)[d].data) << "device " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, CoordinationSweep, ::testing::Values(2u, 4u, 8u, 16u));

TEST(CoordinationTest, DefaultIsDecentralized) {
  Fixture f = Fixture::Make(2, 17);
  auto engine = AllgatherEngine::Create(f.relation, f.plan, f.topo);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->coordination_mode(), CoordinationMode::kDecentralized);
}

}  // namespace
}  // namespace dgcl
