// Graph service tier: shard resolution, cache eviction conformance, queue
// backpressure and the shard-death failure contract.

#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "common/ids.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/khop.h"
#include "service/feature_cache.h"
#include "service/graph_shard.h"
#include "service/request_queue.h"

namespace dgcl {
namespace {

CsrGraph TestGraph(VertexId n = 200, EdgeIndex edges = 1200, uint64_t seed = 11) {
  Rng rng(seed);
  return GenerateErdosRenyi(n, edges, rng);
}

ServiceOptions SmallOptions(uint32_t shards = 4) {
  ServiceOptions options;
  options.num_shards = shards;
  options.samplers_per_shard = 2;
  options.partitioner = "hash";  // every shard owns vertices everywhere: samples cross shards
  options.cache_capacity_rows = 64;
  options.feature_dim = 8;
  options.hidden_dim = 4;
  options.request_deadline_micros = 500'000;
  return options;
}

// ---- sharded store ---------------------------------------------------------

TEST(GraphShardTest, ResolutionRoundTrips) {
  CsrGraph graph = TestGraph();
  HashPartitioner partitioner;
  Partitioning partitioning = std::move(partitioner.Partition(graph, 4)).value();
  auto store = ShardedGraphStore::Build(graph, partitioning);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  uint32_t total = 0;
  for (uint32_t s = 0; s < store->num_shards(); ++s) {
    const GraphShard& shard = store->shard(s);
    total += shard.num_local();
    for (uint32_t rank = 0; rank < shard.num_local(); ++rank) {
      const VertexId v = shard.GlobalOf(rank);
      EXPECT_EQ(shard.LocalRank(v), rank);
      EXPECT_TRUE(shard.Owns(v));
      EXPECT_EQ(store->OwnerOf(v), s);
      const auto resolved = store->Resolve(v);
      EXPECT_EQ(resolved.shard, s);
      EXPECT_EQ(resolved.local, rank);
    }
  }
  EXPECT_EQ(total, graph.num_vertices());
}

TEST(GraphShardTest, ForeignAndOutOfRangeIdsResolveInvalid) {
  CsrGraph graph = TestGraph();
  HashPartitioner partitioner;
  Partitioning partitioning = std::move(partitioner.Partition(graph, 4)).value();
  auto store = ShardedGraphStore::Build(graph, partitioning);
  ASSERT_TRUE(store.ok());

  // Hash partitioning: vertex 1 belongs to shard 1, so shard 0 must not own it.
  EXPECT_EQ(store->shard(0).LocalRank(1), kInvalidId);
  EXPECT_FALSE(store->shard(0).Owns(1));
  const auto resolved = store->Resolve(graph.num_vertices() + 7);
  EXPECT_EQ(resolved.shard, kInvalidId);
  EXPECT_EQ(resolved.local, kInvalidId);
}

TEST(GraphShardTest, BuildRejectsNonCoveringPartitioning) {
  CsrGraph graph = TestGraph(10, 20);
  Partitioning bad;
  bad.num_parts = 2;
  bad.assignment.assign(10, 0);
  bad.assignment[3] = 9;  // out of range part
  EXPECT_FALSE(ShardedGraphStore::Build(graph, bad).ok());
}

TEST(GraphShardTest, RemoteEdgeCountMatchesBruteForce) {
  CsrGraph graph = TestGraph();
  HashPartitioner partitioner;
  Partitioning partitioning = std::move(partitioner.Partition(graph, 3)).value();
  auto store = ShardedGraphStore::Build(graph, partitioning);
  ASSERT_TRUE(store.ok());
  for (uint32_t s = 0; s < 3; ++s) {
    uint64_t expected = 0;
    for (VertexId v : store->shard(s).local_vertices()) {
      for (VertexId nbr : graph.Neighbors(v)) {
        expected += partitioning.assignment[nbr] != s ? 1 : 0;
      }
    }
    EXPECT_EQ(store->shard(s).CountRemoteEdges(partitioning), expected);
  }
}

// ---- eviction conformance --------------------------------------------------

std::vector<float> RowOf(float x) { return {x, x}; }

// The contract every policy must satisfy: bounded size, victims are resident,
// hits refresh, stats add up.
class EvictionConformanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EvictionConformanceTest, BoundedSizeAndCountedStats) {
  auto policy = MakeEvictionPolicy(GetParam());
  ASSERT_TRUE(policy.ok());
  FeatureCache cache(4, std::move(*policy));
  std::vector<float> row;
  for (VertexId v = 0; v < 32; ++v) {
    EXPECT_FALSE(cache.Lookup(v, row));
    cache.Insert(v, RowOf(static_cast<float>(v)));
    EXPECT_LE(cache.size(), 4u);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 32u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 32u - 4u);
  // The four youngest inserts are resident under both LRU and LFU (all
  // frequencies equal => FIFO tie-break == recency order here).
  for (VertexId v = 28; v < 32; ++v) {
    EXPECT_TRUE(cache.Lookup(v, row)) << GetParam() << " evicted resident key " << v;
    EXPECT_EQ(row, RowOf(static_cast<float>(v)));
  }
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 4.0 / 36.0);
}

TEST_P(EvictionConformanceTest, ReinsertRefreshesInsteadOfDuplicating) {
  auto policy = MakeEvictionPolicy(GetParam());
  ASSERT_TRUE(policy.ok());
  FeatureCache cache(2, std::move(*policy));
  cache.Insert(1, RowOf(1));
  cache.Insert(1, RowOf(10));
  EXPECT_EQ(cache.size(), 1u);
  std::vector<float> row;
  ASSERT_TRUE(cache.Lookup(1, row));
  EXPECT_EQ(row, RowOf(10));
}

INSTANTIATE_TEST_SUITE_P(Policies, EvictionConformanceTest, ::testing::Values("lru", "lfu"));

TEST(EvictionPolicyTest, LruEvictsLeastRecentlyUsed) {
  FeatureCache cache(2, std::make_unique<LruPolicy>());
  std::vector<float> row;
  cache.Insert(1, RowOf(1));
  cache.Insert(2, RowOf(2));
  ASSERT_TRUE(cache.Lookup(1, row));  // 1 becomes most recent
  cache.Insert(3, RowOf(3));          // evicts 2
  EXPECT_TRUE(cache.Lookup(1, row));
  EXPECT_FALSE(cache.Lookup(2, row));
  EXPECT_TRUE(cache.Lookup(3, row));
}

TEST(EvictionPolicyTest, LfuEvictsLeastFrequentlyUsedWithFifoTieBreak) {
  FeatureCache cache(2, std::make_unique<LfuPolicy>());
  std::vector<float> row;
  cache.Insert(1, RowOf(1));
  cache.Insert(2, RowOf(2));
  ASSERT_TRUE(cache.Lookup(2, row));  // 2's frequency 1, 1's frequency 0
  cache.Insert(3, RowOf(3));          // evicts 1 (lowest frequency)
  EXPECT_FALSE(cache.Lookup(1, row));
  EXPECT_TRUE(cache.Lookup(2, row));
  // 2:freq=2, 3:freq=1. Insert 4: evicts 3.
  cache.Insert(4, RowOf(4));
  EXPECT_FALSE(cache.Lookup(3, row));
  // Tie-break: rebuild with equal frequencies; the oldest insertion goes.
  FeatureCache tie(2, std::make_unique<LfuPolicy>());
  tie.Insert(7, RowOf(7));
  tie.Insert(8, RowOf(8));
  tie.Insert(9, RowOf(9));  // 7 and 8 tied at frequency 0: 7 is older
  EXPECT_FALSE(tie.Lookup(7, row));
  EXPECT_TRUE(tie.Lookup(8, row));
}

TEST(EvictionPolicyTest, DivergeOnScanAfterHotSet) {
  // The workload that separates the two: a hot key accessed often, then a
  // scan of cold keys. LRU forgets the hot key; LFU keeps it.
  auto run = [](std::unique_ptr<EvictionPolicy> policy) {
    FeatureCache cache(2, std::move(policy));
    std::vector<float> row;
    cache.Insert(100, RowOf(100));
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(cache.Lookup(100, row));
    }
    cache.Insert(1, RowOf(1));
    cache.Insert(2, RowOf(2));
    cache.Insert(3, RowOf(3));
    return cache.Lookup(100, row);
  };
  EXPECT_FALSE(run(std::make_unique<LruPolicy>()));
  EXPECT_TRUE(run(std::make_unique<LfuPolicy>()));
}

TEST(EvictionPolicyTest, UnknownPolicyNameFails) {
  EXPECT_FALSE(MakeEvictionPolicy("arc").ok());
}

// ---- bounded queue ---------------------------------------------------------

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop(0).value(), 1);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, PushTimesOutOnFullQueue) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.Push(2, 20'000));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(BoundedQueueTest, CloseDrainsPendingThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop(0).value(), 1);
  EXPECT_EQ(queue.Pop(0).value(), 2);
  EXPECT_EQ(queue.Pop(0), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper) {
  BoundedQueue<int> queue(1);
  std::thread popper([&] {
    // Far longer than the test may take: only Close can end this wait early.
    EXPECT_EQ(queue.Pop(30'000'000), std::nullopt);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.join();
}

TEST(ServiceBackpressureTest, SubmitShedsWhenQueueFull) {
  CsrGraph graph = TestGraph();
  ServiceOptions options = SmallOptions(2);
  options.request_queue_capacity = 3;
  auto service = GraphService::Create(graph, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // No Start(): nothing drains the queues, so capacity is exact.
  for (uint32_t i = 0; i < 3; ++i) {
    SampleRequest request;
    request.shard = 0;
    EXPECT_TRUE((*service)->Submit(std::move(request)).ok()) << i;
  }
  SampleRequest overflow;
  overflow.shard = 0;
  Status status = (*service)->Submit(std::move(overflow));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // The other shard's queue is independent.
  SampleRequest other;
  other.shard = 1;
  EXPECT_TRUE((*service)->Submit(std::move(other)).ok());
  const ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.shed, 1u);
}

// ---- end-to-end serving ----------------------------------------------------

TEST(GraphServiceTest, ServeReturnsSampleAndFeaturesAndEmbeddings) {
  CsrGraph graph = TestGraph();
  auto service = GraphService::Create(graph, SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  SampleRequest request;
  request.shard = 1;
  request.seeds = {1, 5, 9};
  request.sample = {2, 4, 123};
  request.run_inference = true;
  SampleResponse response = (*service)->Serve(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  // The sampled set equals the single-machine sampler's (all shards alive).
  std::vector<VertexId> expected = SampleKHop(graph, request.seeds, request.sample);
  EXPECT_EQ(response.nodes, expected);
  // Hash partitioning on 4 shards: a multi-vertex sample crosses shards.
  EXPECT_GT(response.remote_rows, 0u);
  EXPECT_EQ(response.cache_hits + response.cache_misses, response.remote_rows);
  EXPECT_EQ(response.embeddings.rows, response.nodes.size());
  EXPECT_EQ(response.embeddings.dim, (*service)->options().hidden_dim);

  // Same request again: everything remote now hits the cache.
  SampleResponse again = (*service)->Serve(request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.nodes, response.nodes);
  EXPECT_EQ(again.cache_misses, 0u);
  EXPECT_EQ(again.cache_hits, again.remote_rows);
  EXPECT_EQ(again.embeddings.data, response.embeddings.data);
}

TEST(GraphServiceTest, SubmitPopRoundTrip) {
  CsrGraph graph = TestGraph();
  auto service = GraphService::Create(graph, SmallOptions());
  ASSERT_TRUE(service.ok());
  (*service)->Start();
  for (uint32_t i = 0; i < 8; ++i) {
    SampleRequest request;
    request.request_id = i;
    request.shard = i % 4;
    request.num_seeds = 4;
    request.sample.seed = i;
    ASSERT_TRUE((*service)->Submit(std::move(request)).ok());
  }
  std::set<uint64_t> seen;
  for (uint32_t i = 0; i < 8; ++i) {
    auto response = (*service)->PopResponse(2'000'000);
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->status.ok()) << response->status.ToString();
    EXPECT_FALSE(response->nodes.empty());
    EXPECT_GT(response->latency_seconds, 0.0);
    seen.insert(response->request_id);
  }
  EXPECT_EQ(seen.size(), 8u);
  (*service)->Stop();
  const ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.responses_dropped, 0u);
}

// ---- shard death -----------------------------------------------------------

TEST(ShardDeathTest, KilledShardFailsFastWithSuspect) {
  CsrGraph graph = TestGraph();
  ServiceOptions options = SmallOptions();
  auto service = GraphService::Create(graph, options);
  ASSERT_TRUE(service.ok());

  // Queue a few requests on the victim before any worker runs, then kill it:
  // every one must come back kUnavailable naming the shard, within one
  // deadline, never a hang.
  for (uint32_t i = 0; i < 4; ++i) {
    SampleRequest request;
    request.request_id = 100 + i;
    request.shard = 2;
    ASSERT_TRUE((*service)->Submit(std::move(request)).ok());
  }
  ASSERT_TRUE((*service)->KillShard(2).ok());
  EXPECT_FALSE((*service)->membership().IsAlive(2));
  EXPECT_EQ((*service)->membership().epoch, 1u);
  (*service)->Start();

  // Submits after the kill are accepted and also fail asynchronously.
  SampleRequest late;
  late.request_id = 200;
  late.shard = 2;
  ASSERT_TRUE((*service)->Submit(std::move(late)).ok());

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(2 * options.request_deadline_micros);
  uint32_t unavailable = 0;
  while (unavailable < 5 && std::chrono::steady_clock::now() < deadline) {
    auto response = (*service)->PopResponse(options.request_deadline_micros);
    if (!response) {
      continue;
    }
    if (response->shard != 2) {
      continue;  // unrelated traffic
    }
    EXPECT_EQ(response->status.code(), StatusCode::kUnavailable)
        << response->status.ToString();
    ASSERT_FALSE(response->suspects.empty());
    EXPECT_EQ(response->suspects[0], 2u);
    ++unavailable;
  }
  EXPECT_EQ(unavailable, 5u) << "kUnavailable responses must arrive within one deadline";
  (*service)->Stop();
}

TEST(ShardDeathTest, SamplingAcrossDeadShardNamesItAsSuspect) {
  CsrGraph graph = TestGraph();
  auto service = GraphService::Create(graph, SmallOptions());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->KillShard(3).ok());

  // Home shard 0 is alive, but a 2-hop sample over a hash partitioning
  // expands vertices owned by shard 3.
  SampleRequest request;
  request.shard = 0;
  request.num_seeds = 16;
  request.sample = {2, 10, 9};
  SampleResponse response = (*service)->Serve(request);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  ASSERT_FALSE(response.suspects.empty());
  EXPECT_EQ(response.suspects[0], 3u);
}

TEST(ShardDeathTest, KillValidation) {
  CsrGraph graph = TestGraph();
  auto service = GraphService::Create(graph, SmallOptions(2));
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->KillShard(9).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE((*service)->KillShard(0).ok());
  EXPECT_FALSE((*service)->KillShard(0).ok());  // already dead
  EXPECT_FALSE((*service)->KillShard(1).ok());  // last shard standing
  EXPECT_TRUE((*service)->membership().IsAlive(1));
}

// ---- options ---------------------------------------------------------------

TEST(ServiceOptionsTest, ValidateRejectsBadKnobs) {
  CsrGraph graph = TestGraph(20, 40);
  ServiceOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(GraphService::Create(graph, options).ok());
  options = ServiceOptions();
  options.num_shards = 17;
  EXPECT_FALSE(GraphService::Create(graph, options).ok());
  options = ServiceOptions();
  options.cache_policy = "mru";
  EXPECT_FALSE(GraphService::Create(graph, options).ok());
  options = ServiceOptions();
  options.partitioner = "metis";
  EXPECT_FALSE(GraphService::Create(graph, options).ok());
  options = ServiceOptions();
  options.sample.fanout = 0;
  EXPECT_FALSE(GraphService::Create(graph, options).ok());
}

}  // namespace
}  // namespace dgcl
