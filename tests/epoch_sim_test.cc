#include "sim/epoch_sim.h"

#include <gtest/gtest.h>

#include "planner/spst.h"
#include "topology/presets.h"

namespace dgcl {
namespace {

// A small dense-ish dataset so every method exercises real traffic.
Dataset SmallDataset() {
  Rng rng(77);
  Dataset ds;
  ds.name = "small";
  ds.graph = GenerateRmat({.scale = 10, .num_edges = 8000}, rng);
  ds.feature_dim = 64;
  ds.hidden_dim = 32;
  return ds;
}

EpochOptions FastOptions() {
  EpochOptions opts;
  opts.inverse_scale = 1;
  opts.net.per_op_latency_s = 0.0;
  opts.compute.layer_overhead_s = 0.0;  // fixed costs would mask scaling laws
  return opts;
}

TEST(EpochSimTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kDgcl), "DGCL");
  EXPECT_STREQ(MethodName(Method::kPeerToPeer), "Peer-to-peer");
  EXPECT_STREQ(MethodName(Method::kSwap), "Swap");
  EXPECT_STREQ(MethodName(Method::kReplication), "Replication");
  EXPECT_STREQ(MethodName(Method::kDgclR), "DGCL-R");
}

TEST(EpochSimTest, AllMethodsRunOnSingleMachine) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  for (Method m : {Method::kDgcl, Method::kPeerToPeer, Method::kSwap, Method::kReplication,
                   Method::kDgclR}) {
    auto report = sim->Simulate(m);
    ASSERT_TRUE(report.ok()) << MethodName(m) << ": " << report.status().ToString();
    EXPECT_FALSE(report->oom) << MethodName(m);
    EXPECT_GE(report->comm_ms, 0.0);
    EXPECT_GT(report->compute_ms, 0.0);
  }
}

TEST(EpochSimTest, DgclCommNoSlowerThanPeerToPeer) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  auto dgcl = sim->Simulate(Method::kDgcl);
  auto p2p = sim->Simulate(Method::kPeerToPeer);
  ASSERT_TRUE(dgcl.ok());
  ASSERT_TRUE(p2p.ok());
  EXPECT_LE(dgcl->comm_ms, p2p->comm_ms * 1.05);
  // Same partitioning, same compute.
  EXPECT_DOUBLE_EQ(dgcl->compute_ms, p2p->compute_ms);
}

TEST(EpochSimTest, ReplicationHasZeroCommAndFactorAboveOne) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  auto rep = sim->Simulate(Method::kReplication);
  ASSERT_TRUE(rep.ok());
  EXPECT_DOUBLE_EQ(rep->comm_ms, 0.0);
  EXPECT_GT(rep->replication_factor, 1.0);
  EXPECT_LE(rep->replication_factor, 8.0);
  // Replicated compute must exceed non-replicated compute.
  auto dgcl = sim->Simulate(Method::kDgcl);
  EXPECT_GT(rep->compute_ms, dgcl->compute_ms);
}

TEST(EpochSimTest, ReplicationOomsWhenMemoryTight) {
  // A well-partitionable sparse graph: DGCL stores ~1/8 of the graph per
  // device, Replication's 2-hop closure stores several times more. A
  // capacity between the two footprints OOMs only Replication — the
  // mechanism behind the paper's Figure 7 OOM entries.
  Rng rng(79);
  Dataset ds;
  ds.name = "communities";
  ds.graph = GenerateCommunityGraph(4000, 8, 8.0, 0.3, rng);
  ds.feature_dim = 64;
  ds.hidden_dim = 32;
  Topology topo = BuildPaperTopology(8);
  EpochOptions opts = FastOptions();
  opts.memory.device_capacity_bytes = 1.2e6;
  auto sim = EpochSimulator::Create(ds, topo, opts);
  ASSERT_TRUE(sim.ok());
  auto rep = sim->Simulate(Method::kReplication);
  auto dgcl = sim->Simulate(Method::kDgcl);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(dgcl.ok());
  EXPECT_TRUE(rep->oom);
  EXPECT_FALSE(dgcl->oom) << dgcl->oom_detail;
}

TEST(EpochSimTest, SwapFailsOnTwoMachines) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(16);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim->Simulate(Method::kSwap).ok());
}

TEST(EpochSimTest, DgclROnTwoMachinesNeedsMachineTopology) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(16);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim->Simulate(Method::kDgclR).ok());

  EpochOptions opts = FastOptions();
  Topology machine = BuildPaperTopology(8);
  opts.machine_topology = &machine;
  auto sim2 = EpochSimulator::Create(ds, topo, opts);
  ASSERT_TRUE(sim2.ok());
  auto report = sim2->Simulate(Method::kDgclR);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->replication_factor, 1.0);
  EXPECT_LE(report->replication_factor, 2.0);  // bounded by machine count
}

TEST(EpochSimTest, DgclROnOneMachineEqualsDgcl) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(4);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  auto r = sim->Simulate(Method::kDgclR);
  auto d = sim->Simulate(Method::kDgcl);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(r->comm_ms, d->comm_ms);
}

TEST(EpochSimTest, InverseScaleScalesTimes) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(4);
  EpochOptions opts = FastOptions();
  auto sim1 = EpochSimulator::Create(ds, topo, opts);
  opts.inverse_scale = 4;
  auto sim4 = EpochSimulator::Create(ds, topo, opts);
  ASSERT_TRUE(sim1.ok());
  ASSERT_TRUE(sim4.ok());
  auto r1 = sim1->Simulate(Method::kPeerToPeer);
  auto r4 = sim4->Simulate(Method::kPeerToPeer);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_NEAR(r4->comm_ms / r1->comm_ms, 4.0, 0.1);
  EXPECT_GT(r4->compute_ms, r1->compute_ms * 2.0);
}

TEST(EpochSimTest, AllgatherEstimateTracksSimulation) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  auto report = sim->Simulate(Method::kDgcl);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->estimated_allgather_ms, 0.0);
  EXPECT_GT(report->simulated_allgather_ms, 0.0);
  // Same order of magnitude (Figure 10's premise).
  const double ratio = report->simulated_allgather_ms / report->estimated_allgather_ms;
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(EpochSimTest, VolumeFractionScalesAllgather) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  SpstPlanner spst;
  auto full = sim->SimulateAllgatherSeconds(spst, 64, 1.0);
  auto half = sim->SimulateAllgatherSeconds(spst, 64, 0.5);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(half.ok());
  EXPECT_NEAR(*half / *full, 0.5, 0.05);
}

TEST(EpochSimTest, PlanMetadataPopulated) {
  Dataset ds = SmallDataset();
  Topology topo = BuildPaperTopology(8);
  auto sim = EpochSimulator::Create(ds, topo, FastOptions());
  ASSERT_TRUE(sim.ok());
  auto report = sim->Simulate(Method::kDgcl);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->plan_table_bytes, 0u);
  EXPECT_GT(report->plan_wall_seconds, 0.0);
  EXPECT_GT(report->avg_comm_bytes_per_gpu, 0u);
}

}  // namespace
}  // namespace dgcl
